"""Distributed cluster executor: bit-identity, placement, admission, faults.

The contract under test is the ISSUE's acceptance bar for the
owner-computes executor:

- ``cluster(workers=2)`` factors bit-identically to the inline reference
  for all five solvers across special matrices from the Table III
  registry;
- every task executes on exactly the rank
  :func:`repro.analysis.placement.assign_owners` assigns (asserted from
  the execution trace);
- the measured per-edge message counts/bytes equal the static
  placement analysis's prediction wire-for-wire when one worker hosts
  each logical rank;
- over-budget systems are rejected by admission control against the
  workers' advertised memory budgets;
- a worker dying mid-factorization is survived: its ranks remap, the
  in-flight task retries on a survivor, and the result stays
  bit-identical.
"""

from __future__ import annotations

import threading
from multiprocessing.connection import Listener

import numpy as np
import pytest

import repro
from repro.analysis.placement import (
    analyze_placement,
    owner_of_ref,
    task_anchor,
)
from repro.cluster import (
    ClusterError,
    MemoryAdmissionError,
    worker as cluster_worker,
)
from repro.kernels.dispatch import SigContext
from repro.matrices import build as build_matrix
from repro.tiles import BlockCyclicDistribution, ProcessGrid

WORKERS = 2
NB = 8
N = 32  # 4x4 tiles on a 2x2 grid
ALGORITHMS = ["hybrid", "lupp", "lu_nopiv", "lu_incpiv", "hqr"]
SPECIAL_MATRICES = ["circul", "condex", "lehmer"]


@pytest.fixture(scope="module")
def cluster2():
    """One 2-worker cluster shared by the module (spawns are expensive)."""
    executor = repro.ClusterExecutor(workers=WORKERS)
    yield executor
    executor.close()


def _solver(algorithm, executor=None):
    return repro.make_solver(
        algorithm, tile_size=NB, grid="2x2", executor=executor
    )


def _system(rng, n=N):
    a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
    b = rng.standard_normal(n)
    return a, b


# --------------------------------------------------------------------- #
# Bit-identity to the inline reference
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("matrix_name", SPECIAL_MATRICES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cluster_bit_identical_to_inline(cluster2, algorithm, matrix_name, rng):
    a = build_matrix(matrix_name, N)
    b = rng.standard_normal(N)

    inline = _solver(algorithm).factor(a, b)
    distributed = _solver(algorithm, cluster2).factor(a, b)

    assert distributed.step_kinds == inline.step_kinds
    np.testing.assert_array_equal(distributed.tiles.array, inline.tiles.array)
    np.testing.assert_array_equal(distributed.tiles.rhs, inline.tiles.rhs)
    assert distributed.growth_factor == inline.growth_factor
    x_inline = inline.solve()
    x_cluster = distributed.solve()
    np.testing.assert_array_equal(x_cluster, x_inline)


def test_cluster_trace_metadata(cluster2, rng):
    a, b = _system(rng)
    _solver("hybrid", cluster2).factor(a, b)
    trace = cluster2.last_trace
    assert trace is not None and trace.n_tasks > 0
    assert set(trace.rank_of_task) == set(trace.finish_times)
    assert all(name.startswith("cluster-w") for name in trace.worker_of_task.values())


# --------------------------------------------------------------------- #
# Placement: execution trace == assign_owners, measured == predicted
# --------------------------------------------------------------------- #
def test_execution_ranks_match_assign_owners(cluster2, rng):
    a, b = _system(rng)
    solver = _solver("hybrid", cluster2)
    solver.collect_step_graphs = True
    solver.factor(a, b)

    ctx = SigContext(n=N // NB, nb=NB, nrhs=1, dtype=np.float64)
    dist = BlockCyclicDistribution(ProcessGrid(2, 2), N // NB)
    checked = 0
    for graph, trace in zip(solver.step_graphs, solver.step_traces):
        for task in graph.tasks:
            anchor = task_anchor(task, ctx)
            assert anchor is not None
            expected = owner_of_ref(anchor, dist)
            assert trace.rank_of_task[task.uid] == expected
            checked += 1
    assert checked > 0


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_measured_comm_matches_placement_prediction(algorithm, rng):
    """One worker per rank: payload items == the analyzer's predictions."""
    a, b = _system(rng)
    executor = repro.ClusterExecutor(workers=4)
    try:
        solver = _solver(algorithm, executor)
        solver.collect_step_graphs = True
        solver.factor(a, b)
        measured = executor.last_comm
    finally:
        executor.close()

    ctx = SigContext(n=N // NB, nb=NB, nrhs=1, dtype=np.float64)
    dist = BlockCyclicDistribution(ProcessGrid(2, 2), N // NB)
    violations, predicted = analyze_placement(solver.step_graphs, dist, ctx)

    assert violations == []
    assert predicted.multi_owner_tasks == 0
    assert measured.cross_messages == predicted.cross_messages
    assert measured.cross_bytes == predicted.cross_bytes
    assert measured.product_messages == predicted.product_messages
    assert measured.product_bytes == predicted.product_bytes
    assert measured.edge_messages == predicted.edge_messages
    assert measured.diagonal_pivot_steps == predicted.diagonal_pivot_steps
    assert measured.panel_wide_pivot_steps == predicted.panel_wide_pivot_steps
    assert measured.retried_tasks == 0


# --------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------- #
def test_admission_rejects_overbudget_system(rng):
    a, b = _system(rng)
    executor = repro.ClusterExecutor(workers=2, memory_budget=1024)
    try:
        with pytest.raises(MemoryAdmissionError) as excinfo:
            _solver("lupp", executor).factor(a, b)
        err = excinfo.value
        assert err.budget == 1024
        assert err.required == N * N * 8 + N * 1 * 8
        # The failed bind must not leave the executor wedged: a system
        # within budget still runs afterwards.
        with pytest.raises(MemoryAdmissionError):
            _solver("hybrid", executor).factor(a, b)
    finally:
        executor.close()


def test_admission_accepts_within_budget_and_audit_gates(rng):
    budget = 1 << 26
    executor = repro.ClusterExecutor(workers=2, memory_budget=budget)
    try:
        assert executor.min_budget() == budget
        solver = _solver("lupp", executor)
        report = repro.analysis.audit(solver, max_memory=executor.min_budget())
        assert report.ok, report.summary()
    finally:
        executor.close()


def test_min_budget_unlimited_is_none(cluster2):
    assert cluster2.min_budget() is None


# --------------------------------------------------------------------- #
# Fault tolerance
# --------------------------------------------------------------------- #
def test_worker_death_retries_bit_identically(rng):
    """Worker 1 dies on its 3rd task: ranks remap, result is unchanged."""
    a, b = _system(rng)
    inline = _solver("lupp").factor(a, b)
    executor = repro.ClusterExecutor(workers=2, fail_worker_after=(1, 3))
    try:
        distributed = _solver("lupp", executor).factor(a, b)
        np.testing.assert_array_equal(distributed.tiles.array, inline.tiles.array)
        np.testing.assert_array_equal(distributed.tiles.rhs, inline.tiles.rhs)
        assert executor.last_comm.retried_tasks >= 1
        assert executor.last_comm.recovery_messages > 0
        # The survivor keeps serving later factorizations.
        inline2 = _solver("hybrid").factor(a, b)
        distributed2 = _solver("hybrid", executor).factor(a, b)
        np.testing.assert_array_equal(distributed2.tiles.array, inline2.tiles.array)
    finally:
        executor.close()


def test_kill_worker_between_runs_is_survived(rng):
    a, b = _system(rng)
    inline = _solver("lu_nopiv").factor(a, b)
    executor = repro.ClusterExecutor(workers=2)
    try:
        _solver("lu_nopiv", executor).factor(a, b)
        executor.kill_worker(0)
        distributed = _solver("lu_nopiv", executor).factor(a, b)
        np.testing.assert_array_equal(distributed.tiles.array, inline.tiles.array)
    finally:
        executor.close()


# --------------------------------------------------------------------- #
# TCP hosts mode
# --------------------------------------------------------------------- #
def test_tcp_hosts_mode_round_trip(rng):
    """Pre-started listener workers, reached via cluster(hosts=[...])."""
    a, b = _system(rng)
    inline = _solver("hybrid").factor(a, b)

    listeners = [Listener(("127.0.0.1", 0), authkey=b"secret") for _ in range(2)]
    threads = []
    for worker_id, listener in enumerate(listeners):
        thread = threading.Thread(
            target=cluster_worker.serve_listener,
            args=(listener,),
            kwargs={"worker_id": worker_id, "memory_budget": 1 << 30},
            daemon=True,
        )
        thread.start()
        threads.append(thread)

    hosts = [f"127.0.0.1:{listener.address[1]}" for listener in listeners]
    executor = repro.ClusterExecutor(hosts=hosts, authkey=b"secret")
    try:
        assert executor.min_budget() == 1 << 30
        distributed = _solver("hybrid", executor).factor(a, b)
        np.testing.assert_array_equal(distributed.tiles.array, inline.tiles.array)
        np.testing.assert_array_equal(distributed.tiles.rhs, inline.tiles.rhs)
        with pytest.raises(ClusterError):
            executor.kill_worker(0)  # remote workers cannot be terminated here
    finally:
        executor.close()
        for listener in listeners:
            listener.close()
    for thread in threads:
        thread.join(timeout=10)
        assert not thread.is_alive()


# --------------------------------------------------------------------- #
# Registry / spec / error paths
# --------------------------------------------------------------------- #
def test_cluster_spec_resolves_through_registry():
    executor = repro.make_executor("cluster(workers=3)")
    try:
        assert isinstance(executor, repro.ClusterExecutor)
        assert executor.workers == 3
    finally:
        executor.close()


def test_solve_through_cluster_spec(rng):
    a, b = _system(rng)
    result = repro.solve(
        a, b, algorithm="lupp", tile_size=NB, grid="2x2",
        executor=f"cluster(workers={WORKERS})",
    )
    reference = repro.solve(a, b, algorithm="lupp", tile_size=NB, grid="2x2")
    np.testing.assert_array_equal(result.x, reference.x)


def test_run_requires_binding(cluster2):
    from repro.kernels.dispatch import KernelCall
    from repro.runtime.schedule import KernelTask, build_step_graph

    graph = build_step_graph(
        [KernelTask("x", lambda: None, call=KernelCall("lu.gemm", args=(0, 0, 0)))]
    )
    with pytest.raises(RuntimeError, match="not bound"):
        cluster2.run(graph)


def test_invalid_worker_count_rejected():
    with pytest.raises(ValueError):
        repro.ClusterExecutor(workers=0)


def test_close_is_idempotent():
    executor = repro.ClusterExecutor(workers=1)
    executor.close()
    executor.close()
    with pytest.raises(ClusterError):
        executor.min_budget()


# --------------------------------------------------------------------- #
# Platform message-size model (satellite a)
# --------------------------------------------------------------------- #
def test_platform_prices_actual_message_sizes():
    from repro.runtime.platform import dancer_platform

    platform = dancer_platform()
    assert platform.transfer_time(0) == platform.latency
    assert platform.transfer_time(13) == platform.latency + 13 / platform.bandwidth
    odd = platform.tile_bytes(8, itemsize=3)
    assert odd == 192.0
    with pytest.raises(ValueError):
        platform.transfer_time(-1)
    with pytest.raises(ValueError):
        platform.transfer_time(float("nan"))
    with pytest.raises(ValueError):
        platform.tile_bytes(-1)
    with pytest.raises(ValueError):
        platform.tile_bytes(8, itemsize=0)
    assert platform.allreduce_time(0, 64) == 0.0
    assert platform.allreduce_time(1, 64) == 0.0
    assert platform.allreduce_time(4, 0) > 0.0  # a barrier still pays latency
    with pytest.raises(ValueError):
        platform.allreduce_time(4, -8)
    with pytest.raises(ValueError):
        platform.allreduce_time(-1, 8)


def test_platform_prices_measured_cluster_traffic(rng):
    """The platform prices the executor's *measured* counters directly."""
    from repro.runtime.platform import dancer_platform

    a, b = _system(rng)
    executor = repro.ClusterExecutor(workers=2)
    try:
        _solver("lupp", executor).factor(a, b)
        comm = executor.last_comm
    finally:
        executor.close()
    platform = dancer_platform(ProcessGrid(2, 2))
    priced = (
        (comm.cross_messages + comm.product_messages) * platform.latency
        + (comm.cross_bytes + comm.product_bytes) / platform.bandwidth
    )
    assert priced > 0.0
    # Per-message pricing accepts every measured size, including the
    # 0-byte control traffic of heartbeats/acks.
    for nbytes in (0, comm.cross_bytes, comm.forward_bytes):
        assert platform.transfer_time(nbytes) >= platform.latency
