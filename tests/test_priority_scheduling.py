"""Critical-path priority scheduling and cross-step lookahead.

The scheduler refactor must be invisible to the numerics: priorities only
reorder *ready* tasks, and the lookahead pipeline only defers tasks whose
results nothing in the current panel needs.  These tests pin both halves —
the b-level computation itself, the executors honouring it, and the
bit-identity of every solver under every executor with lookahead enabled.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api.facade import make_solver
from repro.matrices.random_gen import random_matrix, random_rhs
from repro.runtime.executor import SequentialExecutor, ThreadedExecutor
from repro.runtime.graph import TaskGraph
from repro.runtime.process_executor import ProcessExecutor
from repro.runtime.schedule import kernel_cost_fn
from repro.runtime.task import Task

ALGORITHMS = ["hybrid", "lupp", "hqr", "lu_incpiv", "lu_nopiv"]


# --------------------------------------------------------------------------- #
# b-level computation
# --------------------------------------------------------------------------- #
def _chain_graph():
    r"""Diamond with a long tail::

        0 -> 1 -> 3 -> 4
          \-> 2 ------/
    """
    g = TaskGraph()
    t0 = g.add_task("a", 0)
    t1 = g.add_task("b", 0, extra_deps=(t0.uid,))
    t2 = g.add_task("c", 0, extra_deps=(t0.uid,))
    t3 = g.add_task("d", 0, extra_deps=(t1.uid,))
    g.add_task("e", 0, extra_deps=(t3.uid, t2.uid))
    return g


def test_blevels_unit_cost():
    g = _chain_graph()
    levels = g.blevels()
    # Bottom-up: sink = 1, long branch 0->1->3->4 dominates.
    assert levels[4] == 1.0
    assert levels[3] == 2.0
    assert levels[2] == 2.0
    assert levels[1] == 3.0
    assert levels[0] == 4.0


def test_blevels_weighted_cost_flips_branch():
    g = _chain_graph()
    # Make the short branch (task 2) enormously expensive: it must now
    # carry a higher b-level than the two-hop branch.
    levels = g.blevels(cost=lambda t: 100.0 if t.kernel == "c" else 1.0)
    assert levels[2] > levels[1]


def test_assign_priorities_writes_task_field():
    g = _chain_graph()
    levels = g.assign_priorities()
    for task in g.tasks:
        assert task.priority == levels[task.uid]


def test_kernel_cost_fn_static_fallback_orders_kernels():
    cost = kernel_cost_fn(tile_size=16)
    gemm = cost(Task(uid=0, kernel="gemm", step=0))
    getrf = cost(Task(uid=1, kernel="getrf", step=0))
    unknown = cost(Task(uid=2, kernel="mystery_kernel", step=0))
    assert gemm > 0 and getrf > 0
    assert unknown == pytest.approx(16.0**3)


# --------------------------------------------------------------------------- #
# Executors honour priorities
# --------------------------------------------------------------------------- #
def test_threaded_executor_dispatches_by_priority():
    """On one worker, independent ready tasks must run in priority order."""
    order = []
    lock = threading.Lock()

    def make_fn(label):
        def fn():
            with lock:
                order.append(label)

        return fn

    g = TaskGraph()
    for label, prio in [("low", 1.0), ("high", 3.0), ("mid", 2.0)]:
        g.add_task(label, 0, fn=make_fn(label)).priority = prio
    ThreadedExecutor(workers=1).run(g)
    assert order == ["high", "mid", "low"]


def test_sequential_executor_records_kernels():
    g = TaskGraph()
    g.add_task("noop", 0, fn=lambda: None)
    trace = SequentialExecutor().run(g)
    assert trace.kernel_of_task == {0: "noop"}


# --------------------------------------------------------------------------- #
# Bit-identity under priorities + lookahead, all solvers, all executors
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("lookahead", [0, 1, 2])
def test_threaded_lookahead_bit_identical(algorithm, lookahead):
    n, nb = 48, 8
    a = random_matrix(n, seed=11)
    b = random_rhs(n, seed=12)
    ref = make_solver(algorithm, tile_size=nb, executor=None).factor(
        a.copy(), b.copy()
    )
    par_solver = make_solver(
        algorithm, tile_size=nb, executor=ThreadedExecutor(workers=3)
    )
    par_solver.lookahead = lookahead
    par = par_solver.factor(a.copy(), b.copy())
    assert np.array_equal(ref.tiles.array, par.tiles.array)
    assert ref.growth_factor == par.growth_factor


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_process_lookahead_bit_identical(algorithm):
    n, nb = 48, 8
    a = random_matrix(n, seed=11)
    ref = make_solver(algorithm, tile_size=nb, executor=None).factor(a.copy())
    par_solver = make_solver(
        algorithm, tile_size=nb, executor=ProcessExecutor(workers=2)
    )
    par_solver.lookahead = 1
    par = par_solver.factor(a.copy())
    assert np.array_equal(ref.tiles.array, par.tiles.array)
    assert ref.growth_factor == par.growth_factor


def test_lookahead_exact_per_step_growth():
    """Growth sampling through the pipeline must equal the inline path."""
    n, nb = 48, 8
    a = random_matrix(n, seed=21)
    seq = make_solver("hybrid", tile_size=nb, executor=None)
    par = make_solver(
        "hybrid", tile_size=nb, executor=ThreadedExecutor(workers=3)
    )
    par.lookahead = 2
    f_seq = seq.factor(a.copy())
    f_par = par.factor(a.copy())
    assert f_seq.growth.per_step == f_par.growth.per_step


def test_lookahead_batches_steps_into_one_graph():
    """With lookahead > 0 some flushed graphs must span multiple steps —
    the whole point of deferring trailing updates."""
    n, nb = 48, 8
    a = random_matrix(n, seed=31)
    solver = make_solver(
        "lupp", tile_size=nb, executor=ThreadedExecutor(workers=2),
        track_growth=False,
    )
    solver.lookahead = 2
    solver.collect_step_graphs = True
    solver.factor(a.copy())
    spans = [
        {t.step for t in g.tasks} for g in solver.step_graphs if len(g)
    ]
    assert any(len(span) > 1 for span in spans), spans


def test_lookahead_zero_matches_stepwise_trace_count():
    """lookahead=0 still defers only within the dependency-closed window;
    the number of traces stays bounded by the number of steps + final flush."""
    n, nb = 32, 8
    a = random_matrix(n, seed=41)
    solver = make_solver(
        "lupp", tile_size=nb, executor=ThreadedExecutor(workers=2),
        track_growth=False,
    )
    solver.lookahead = 0
    solver.factor(a.copy())
    assert 0 < len(solver.step_traces) <= n // nb + 1


def test_negative_lookahead_rejected():
    with pytest.raises(ValueError):
        solver = make_solver("lupp", tile_size=8, executor=None)
        type(solver)(8, lookahead=-1)
