"""Tests for the ``SolverSession`` serving layer."""

import numpy as np
import pytest

import repro
from repro.api.session import matrix_fingerprint
from repro.linalg.pivoting import SingularPanelError


@pytest.fixture
def session():
    return repro.SolverSession(
        algorithm="hybrid", tile_size=8, criterion="max(alpha=50)"
    )


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self, rng):
        a = rng.standard_normal((16, 16))
        assert matrix_fingerprint(a) == matrix_fingerprint(a.copy())

    def test_different_content_different_fingerprint(self, rng):
        a = rng.standard_normal((16, 16))
        b = a.copy()
        b[3, 4] += 1e-12
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_non_contiguous_matches_contiguous(self, rng):
        a = rng.standard_normal((16, 16))
        assert matrix_fingerprint(a.T.copy().T) == matrix_fingerprint(a)


class TestSessionCache:
    def test_same_matrix_factors_exactly_once(self, rng, session):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        x1 = rng.standard_normal(n)
        x2 = rng.standard_normal(n)

        r1 = session.solve(a, a @ x1, x_true=x1)
        r2 = session.solve(a, a @ x2, x_true=x2)

        assert session.stats.misses == 1
        assert session.stats.hits == 1
        assert session.stats.solves == 2
        # both requests share the one factorization object
        assert r1.factorization is r2.factorization
        # and both pass the existing stability checks
        for r in (r1, r2):
            assert r.hpl3 < 50
            assert r.stability.forward_error < 1e-8

    def test_hit_matches_direct_solve(self, rng, session):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        b = rng.standard_normal(n)
        session.solve(a, rng.standard_normal(n))  # warm the cache
        served = session.solve(a, b)
        direct = repro.solve(a, b, algorithm="hybrid", tile_size=8,
                             criterion="max(alpha=50)")
        np.testing.assert_allclose(served.x, direct.x, rtol=0, atol=1e-10)

    def test_solution_shapes_mirror_solver(self, rng, session):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        assert session.solve(a, rng.standard_normal(n)).x.shape == (n,)
        assert session.solve(a, rng.standard_normal((n, 3))).x.shape == (n, 3)
        assert session.stats.misses == 1

    def test_padded_order_served_correctly(self, rng):
        n = 13
        session = repro.SolverSession(algorithm="hybrid", tile_size=4,
                                      criterion="max(alpha=10)")
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        x_true = rng.standard_normal(n)
        r = session.solve(a, a @ x_true, x_true=x_true)
        assert r.x.shape == (n,)
        np.testing.assert_allclose(r.x, x_true, atol=1e-8)
        assert r.factorization.padding == 3
        # hits on the padded matrix work too
        r2 = session.solve(a, a @ x_true)
        assert session.stats.hits == 1
        np.testing.assert_allclose(r2.x, x_true, atol=1e-8)

    def test_lru_eviction(self, rng):
        session = repro.SolverSession(
            algorithm="lupp", tile_size=8, capacity=1
        )
        n = 16
        a1 = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        a2 = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        b = rng.standard_normal(n)
        session.solve(a1, b)          # miss, cached
        session.solve(a2, b)          # miss, evicts a1
        session.solve(a1, b)          # miss again
        assert session.stats.misses == 3
        assert session.stats.hits == 0
        assert session.stats.evictions == 2
        assert len(session) == 1

    def test_clear_resets_cache_and_stats(self, rng, session):
        n = 16
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        session.solve(a, rng.standard_normal(n))
        session.clear()
        assert len(session) == 0
        assert session.stats.requests == 0
        session.solve(a, rng.standard_normal(n))
        assert session.stats.misses == 1

    def test_warm_prefactors(self, rng, session):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        fact = session.warm(a)
        assert fact.succeeded
        assert session.stats.misses == 1
        session.solve(a, rng.standard_normal(n))
        assert session.stats.hits == 1
        assert session.cached_factorization(a) is fact
        assert session.cached_factorization(np.eye(n)) is None

    def test_solve_many_serves_from_cache(self, rng, session):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        xs = rng.standard_normal((n, 4))
        results = session.solve_many(a, a @ xs, x_true=xs)
        assert len(results) == 4
        assert session.stats.misses == 1
        for j, r in enumerate(results):
            np.testing.assert_allclose(r.x, xs[:, j], atol=1e-8)
            assert r.hpl3 < 50

    def test_solve_many_x_true_as_sequence_of_vectors(self, rng, session):
        """Regression: a sequence-form x_true must be *column*-stacked.

        It used to go through ``np.asarray`` only, landing as ``(nrhs, n)``
        so the per-column slicing read the wrong axis (or broke outright).
        """
        n = 16
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        xs = [rng.standard_normal(n) for _ in range(3)]
        bs = [a @ x for x in xs]
        results = session.solve_many(a, bs, x_true=xs)
        for r in results:
            assert r.stability.forward_error is not None
            assert r.stability.forward_error < 1e-8

    def test_solve_many_validations_match_base_class(self, rng, session):
        """Regression: the base class's shape validations were missing."""
        n = 16
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        with pytest.raises(ValueError, match="1-D or 2-D"):
            session.solve_many(a, np.ones((n, 2, 2)))
        with pytest.raises(ValueError, match="x_true has shape"):
            session.solve_many(a, np.ones((n, 2)), x_true=np.ones((n, 3)))

    def test_solve_many_matches_direct_solver(self, rng, session):
        n = 24
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        bs = [rng.standard_normal(n) for _ in range(2)]
        direct = repro.make_solver(
            "hybrid", tile_size=8, criterion="max(alpha=50)"
        ).solve_many(a, bs)
        served = session.solve_many(a, bs)
        for d, s in zip(direct, served):
            np.testing.assert_allclose(s.x, d.x, atol=1e-10)

    def test_breakdown_raises_and_is_not_cached(self):
        # A singular matrix breaks the factorization down.
        session = repro.SolverSession(algorithm="lu_nopiv", tile_size=2)
        a = np.zeros((8, 8))
        with pytest.raises(SingularPanelError):
            session.solve(a, np.ones(8))
        assert len(session) == 0

    def test_concurrent_misses_factor_exactly_once(self, rng, session):
        import threading

        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        bs = [rng.standard_normal(n) for _ in range(4)]
        results = []

        def worker(b):
            results.append(session.solve(a, b))

        threads = [threading.Thread(target=worker, args=(b,)) for b in bs]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(results) == 4
        assert session.stats.misses == 1
        assert session.stats.hits == 3
        fact = results[0].factorization
        assert all(r.factorization is fact for r in results)

    def test_hit_rate(self, rng, session):
        n = 16
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        assert session.stats.hit_rate == 0.0
        session.solve(a, rng.standard_normal(n))
        session.solve(a, rng.standard_normal(n))
        session.solve(a, rng.standard_normal(n))
        assert session.stats.hit_rate == pytest.approx(2 / 3)


class TestPrecomputedKey:
    """The ``key=`` kwarg skips the per-request O(n^2) re-hash."""

    def test_solve_with_key_skips_fingerprint(self, rng, session, monkeypatch):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        key = matrix_fingerprint(a)
        session.warm(a, key=key)

        def boom(_):
            raise AssertionError("matrix_fingerprint called despite key=")

        monkeypatch.setattr("repro.api.session.matrix_fingerprint", boom)
        b = rng.standard_normal(n)
        r = session.solve(a, b, key=key)
        assert session.stats.hits == 1
        np.testing.assert_allclose(a @ r.x, b, atol=1e-8)
        results = session.solve_many(a, rng.standard_normal((n, 2)), key=key)
        assert len(results) == 2
        assert session.stats.hits == 2

    def test_key_and_plain_path_share_the_entry(self, rng, session):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        fact = session.warm(a, key=matrix_fingerprint(a))
        r = session.solve(a, rng.standard_normal(n))  # no key: hashes, same entry
        assert r.factorization is fact
        assert session.stats.misses == 1
        assert session.stats.hits == 1

    def test_solve_with_key_matches_plain_solve(self, rng, session):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        b = rng.standard_normal(n)
        key = matrix_fingerprint(a)
        plain = session.solve(a, b)
        keyed = session.solve(a, b, key=key)
        np.testing.assert_array_equal(plain.x, keyed.x)


class TestCachedFactorization:
    def test_validates_like_solve(self, rng, session):
        """Regression: it used to bypass ``_check_matrix`` entirely."""
        with pytest.raises(ValueError, match="square"):
            session.cached_factorization(np.ones((4, 5)))

    def test_key_only_lookup(self, rng, session):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        key = matrix_fingerprint(a)
        assert session.cached_factorization(key=key) is None
        fact = session.warm(a)
        assert session.cached_factorization(key=key) is fact

    def test_requires_matrix_or_key(self, session):
        with pytest.raises(ValueError, match="matrix or a key"):
            session.cached_factorization()

    def test_integer_dtype_matrix_matches_solve_path(self, rng, session):
        """dtype coercion now mirrors ``solve``/``warm`` (via _check_matrix)."""
        a = np.eye(16, dtype=np.int64) * 4
        session.warm(a)
        assert session.cached_factorization(a) is not None


class _InstrumentedSolver:
    """Wraps a real solver to observe (and stall) its ``factor`` calls."""

    def __init__(self, inner, before=None, after=None):
        self.inner = inner
        self.algorithm = inner.algorithm
        self._before = before
        self._after = after

    def factor(self, a, b=None):
        if self._before is not None:
            self._before()
        try:
            return self.inner.factor(a, b)
        finally:
            if self._after is not None:
                self._after()

    def solve(self, a, b, x_true=None):
        return self.inner.solve(a, b, x_true=x_true)


class TestClearRace:
    def test_clear_during_factorization_does_not_resurrect_entry(self, rng):
        """An in-flight miss must not re-insert its entry after clear()."""
        import threading

        started = threading.Event()
        cleared = threading.Event()

        def before():
            started.set()
            assert cleared.wait(10.0), "clear() never ran"

        solver = _InstrumentedSolver(
            repro.make_solver("lupp", tile_size=8), before=before
        )
        session = repro.SolverSession(solver)
        n = 16
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        b = rng.standard_normal(n)
        results = []
        t = threading.Thread(target=lambda: results.append(session.solve(a, b)))
        t.start()
        assert started.wait(10.0)
        session.clear()  # races the factorization that is still running
        cleared.set()
        t.join()

        # The solve itself succeeded (the caller keeps its entry) ...
        np.testing.assert_allclose(a @ results[0].x, b, atol=1e-8)
        # ... but the cleared cache was not resurrected, and the reset
        # stats were not charged for pre-clear work.
        assert len(session) == 0
        assert session.stats.misses == 0
        assert session.stats.factor_seconds == 0.0

    def test_concurrent_misses_on_different_matrices(self, rng, session):
        """Regression: different-key misses share one solver instance.

        The solver carries per-factorization state (norm cache, traces),
        so concurrent ``factor`` calls must serialize inside it instead of
        corrupting each other (previously a broadcast error or silently
        wrong growth stats, and with a process executor a racing buffer
        binding).
        """
        import threading

        mats = [
            rng.standard_normal((16, 16)) + 4.0 * np.eye(16),
            rng.standard_normal((32, 32)) + 4.0 * np.eye(32),
        ]
        vecs = [rng.standard_normal(16), rng.standard_normal(32)]
        errors, residuals = [], []

        def solve(i):
            try:
                r = session.solve(mats[i], vecs[i])
                residuals.append(float(np.linalg.norm(mats[i] @ r.x - vecs[i])))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        for _ in range(3):
            session.clear()
            threads = [threading.Thread(target=solve, args=(i,)) for i in (0, 1)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not errors, errors
        assert max(residuals) < 1e-8

    def test_hammered_key_with_concurrent_clear(self, rng):
        """Many threads on one key + clear(): never two factorizations at once."""
        import threading
        import time

        lock = threading.Lock()
        state = {"active": 0, "max_active": 0, "calls": 0}

        def before():
            with lock:
                state["active"] += 1
                state["calls"] += 1
                state["max_active"] = max(state["max_active"], state["active"])
            time.sleep(0.005)  # widen the race window

        def after():
            with lock:
                state["active"] -= 1

        solver = _InstrumentedSolver(
            repro.make_solver("lupp", tile_size=8), before=before, after=after
        )
        session = repro.SolverSession(solver)
        n = 16
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        b = rng.standard_normal(n)
        n_clears = 6
        errors = []

        def hammer():
            try:
                for _ in range(5):
                    np.testing.assert_allclose(a @ session.solve(a, b).x, b, atol=1e-8)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        def clearer():
            for _ in range(n_clears):
                time.sleep(0.004)
                session.clear()

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        threads.append(threading.Thread(target=clearer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors, errors
        # The per-key lock keeps serializing across clear(): the same
        # matrix never factors twice concurrently, and each clear() allows
        # at most one legitimate re-factorization.
        assert state["max_active"] == 1
        assert state["calls"] <= n_clears + 1
        # Stats stay internally consistent after the interleaved resets.
        assert session.stats.requests == session.stats.hits + session.stats.misses
        assert 0 <= session.stats.misses <= state["calls"]


class TestSessionConstruction:
    def test_accepts_prebuilt_solver(self, rng):
        solver = repro.HybridLUQRSolver(tile_size=8)
        session = repro.SolverSession(solver)
        assert session.solver is solver

    def test_rejects_spec_kwargs_with_prebuilt_solver(self):
        solver = repro.HybridLUQRSolver(tile_size=8)
        with pytest.raises(ValueError):
            repro.SolverSession(solver, tile_size=16)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            repro.SolverSession(algorithm="lupp", tile_size=8, capacity=0)

    def test_unbounded_capacity(self, rng):
        session = repro.SolverSession(algorithm="lupp", tile_size=8,
                                      capacity=None)
        n = 16
        for _ in range(3):
            a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
            session.solve(a, rng.standard_normal(n))
        assert len(session) == 3
        assert session.stats.evictions == 0
