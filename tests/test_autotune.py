"""Autotuned solver configuration: ``tile_size="auto"`` / ``executor="auto"``.

Covers the deterministic no-calibration fallback, the calibrated
model-driven choice, the reserved ``"auto"`` executor name, and the
bit-identity of an auto-configured solve against the same configuration
spelled out explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.facade import make_solver, solve
from repro.api.registry import EXECUTORS, Registry
from repro.matrices.random_gen import random_matrix, random_rhs
from repro.perf.autotune import (
    TunedConfig,
    autotune_config,
    candidate_tile_sizes,
    predicted_makespan,
)
from repro.perf.calibrate import Calibration, clear_calibration_cache


@pytest.fixture()
def no_calibration(tmp_path, monkeypatch):
    """Force the no-calibration fallback path."""
    monkeypatch.setenv("REPRO_CALIBRATION", str(tmp_path / "missing.json"))
    clear_calibration_cache()
    yield
    clear_calibration_cache()


@pytest.fixture()
def toy_calibration():
    cal = Calibration(host="test")
    cal.add_samples(
        {
            ("gemm", 8): [1e-4],
            ("getrf", 8): [2e-4],
            ("trsm", 8): [1e-4],
            ("gemm", 16): [8e-4],
            ("getrf", 16): [1.6e-3],
            ("trsm", 16): [8e-4],
        }
    )
    return cal


# --------------------------------------------------------------------------- #
# Candidate generation
# --------------------------------------------------------------------------- #
def test_candidates_are_divisors_within_range():
    for nb in candidate_tile_sizes(96):
        assert 96 % nb == 0
        assert 8 <= nb <= 96
    assert 8 in candidate_tile_sizes(96)
    assert 32 in candidate_tile_sizes(96)


def test_candidates_include_observed_dividing_sizes(toy_calibration):
    assert 16 in candidate_tile_sizes(96, toy_calibration)


def test_candidates_prime_order_single_tile_only():
    # A prime order has no nontrivial divisor; the only in-range candidate
    # is the whole matrix as one tile.
    assert candidate_tile_sizes(97) == [97]
    # Beyond the practical range even that disappears.
    assert candidate_tile_sizes(521) == []


# --------------------------------------------------------------------------- #
# Deterministic fallback
# --------------------------------------------------------------------------- #
def test_fallback_without_calibration_is_deterministic(no_calibration):
    first = autotune_config(96, workers=4)
    second = autotune_config(96, workers=4)
    assert first.source == "fallback"
    assert (first.tile_size, first.executor) == (second.tile_size, second.executor)
    # Divisor of 96 closest to the default 32.
    assert first.tile_size == 32


def test_fallback_small_matrix_stays_inline(no_calibration):
    cfg = autotune_config(96, workers=8)
    assert cfg.executor is None  # below the serial cutoff of 256


def test_fallback_large_matrix_goes_threaded(no_calibration):
    cfg = autotune_config(512, workers=4)
    assert cfg.executor == "threaded(workers=4)"
    assert 512 % cfg.tile_size == 0


def test_fallback_unknown_size(no_calibration):
    cfg = autotune_config(None, workers=1)
    assert cfg.tile_size == 32
    assert cfg.source == "fallback"


def test_fallback_prime_order_picks_a_divisor(no_calibration):
    cfg = autotune_config(97, workers=1)
    assert 97 % cfg.tile_size == 0


# --------------------------------------------------------------------------- #
# Calibrated choice
# --------------------------------------------------------------------------- #
def test_calibrated_choice_minimizes_predicted_makespan(toy_calibration):
    cfg = autotune_config(96, calibration=toy_calibration, workers=1)
    assert cfg.source == "calibrated"
    assert 96 % cfg.tile_size == 0
    assert cfg.predicted_makespans
    best = min(
        cfg.predicted_makespans, key=lambda nb: (cfg.predicted_makespans[nb], nb)
    )
    assert cfg.tile_size == best


def test_predicted_makespan_positive_and_monotone_in_cores(toy_calibration):
    serial = predicted_makespan(96, 8, toy_calibration, cores=1)
    parallel = predicted_makespan(96, 8, toy_calibration, cores=4)
    assert 0 < parallel <= serial


def test_calibrated_single_worker_stays_inline(toy_calibration):
    cfg = autotune_config(96, calibration=toy_calibration, workers=1)
    assert cfg.executor is None


def test_tuned_config_is_a_plain_record(toy_calibration):
    cfg = autotune_config(96, calibration=toy_calibration, workers=2)
    assert isinstance(cfg, TunedConfig)
    assert cfg.n == 96


# --------------------------------------------------------------------------- #
# Facade integration
# --------------------------------------------------------------------------- #
def test_make_solver_auto_resolves_tile_size(no_calibration):
    solver = make_solver("lupp", tile_size="auto", executor="auto", size_hint=96)
    assert solver.tile_size == 32
    assert solver.executor is None


def test_make_solver_auto_without_hint_uses_default(no_calibration):
    solver = make_solver("lupp", tile_size="auto")
    assert solver.tile_size == 32


def test_auto_executor_overrides_env_fallback(no_calibration, monkeypatch):
    """An auto-resolved inline executor must not be displaced by
    REPRO_EXECUTOR: the autotuner made an explicit decision."""
    monkeypatch.setenv("REPRO_EXECUTOR", "threaded(workers=2)")
    solver = make_solver("lupp", tile_size=8, executor="auto", size_hint=96)
    assert solver.executor is None


def test_solve_auto_bit_identical_to_explicit(no_calibration):
    n = 96
    a = random_matrix(n, seed=3)
    b = random_rhs(n, seed=4)
    auto = solve(a, b, algorithm="lupp", tile_size="auto", executor="auto")
    explicit = solve(a, b, algorithm="lupp", tile_size=32, executor=None)
    assert np.array_equal(auto.x, explicit.x)
    assert np.array_equal(
        auto.factorization.tiles.array, explicit.factorization.tiles.array
    )


# --------------------------------------------------------------------------- #
# Reserved registry name
# --------------------------------------------------------------------------- #
def test_executor_auto_is_reserved():
    with pytest.raises(ValueError, match="reserved"):
        EXECUTORS.get("auto")


def test_reserved_name_cannot_be_registered():
    reg = Registry("thing")
    reg.reserve("auto", "handled elsewhere")
    with pytest.raises(ValueError, match="reserved"):
        reg.register("auto")(object)
    with pytest.raises(ValueError, match="reserved"):
        reg.register("other", aliases=("auto",))(object)


def test_reserve_rejects_taken_name():
    reg = Registry("thing")
    reg.register("taken")(object)
    with pytest.raises(ValueError, match="already registered"):
        reg.reserve("taken", "nope")
