"""Tests of the correctness-analysis subsystem (`repro.analysis`).

Covers the static plan verifier (clean plans for all five solvers over
the Table III special-matrix registry, plus deliberately corrupted plans
it must flag), the dynamic access-tracing race detector (undeclared
reads/writes raise structured RaceReports; clean factorizations trace
bit-identically to the numpy reference), the registry lint (clean
built-ins, injected drift detected), the schedule-perturbation
determinism check, the `CycleError` / `merge_traces` runtime hardening,
and the `repro-analyze` CLI.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import (
    AuditReport,
    PerturbedThreadedExecutor,
    RaceReport,
    TracingBackend,
    TracingTileMatrix,
    audit,
    determinism_check,
    lint_registries,
    verify_graph,
)
from repro.analysis.registry_lint import TASK_KERNELS_OF_OP
from repro.api.registry import KERNEL_BACKENDS, SOLVERS
from repro.core.solver_base import pad_to_tile_multiple
from repro.kernels.backends import KernelBackend, resolve_backend
from repro.kernels.dispatch import KERNELS, KernelCall
from repro.matrices import registry as matrix_registry
from repro.runtime.executor import ExecutionTrace, ThreadedExecutor
from repro.runtime.graph import CycleError, TaskGraph
from repro.runtime.schedule import KernelTask, build_step_graph, merge_traces
from repro.tiles.distribution import BlockCyclicDistribution
from repro.tiles.tile_matrix import TileMatrix

ALGORITHMS = ["hybrid", "lupp", "lu_nopiv", "lu_incpiv", "hqr"]

#: Table III matrices on which all five solvers complete at small orders.
SPECIAL_MATRICES = ["circul", "condex", "lehmer"]


def _system(n=32, seed=0, dominant=False):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    if dominant:
        a += n * np.eye(n)
    b = rng.standard_normal(n)
    return a, b


def _solver(algorithm, tile_size=8, **kwargs):
    """Construct a solver directly (no facade, no REPRO_EXECUTOR fallback)."""
    return SOLVERS.get(algorithm)(tile_size=tile_size, **kwargs)


def _capture_plan(solver, a, b=None):
    """Plan + execute every step inline; return the cumulative TaskGraph."""
    a_work, b_work, _ = pad_to_tile_multiple(a, b, solver.tile_size)
    tiles = TileMatrix.from_dense(a_work, solver.tile_size, rhs=b_work)
    dist = BlockCyclicDistribution(solver.grid, tiles.n)
    solver._reset()
    graph = TaskGraph()
    for k in range(tiles.n):
        _, tasks = solver._plan_step(tiles, dist, k)
        build_step_graph(tasks, step=k, graph=graph)
        for task in tasks:
            task.fn()
    return graph


# --------------------------------------------------------------------------- #
# CycleError satellite
# --------------------------------------------------------------------------- #
class TestCycleError:
    def test_submission_order_is_topological(self):
        g = TaskGraph()
        g.add_task("a", 0, writes={(0, 0)})
        g.add_task("b", 0, reads={(0, 0)}, writes={(1, 0)})
        assert g.topological_order() == [0, 1]

    def test_forward_edges_fall_back_to_kahn(self):
        g = TaskGraph()
        g.add_task("a", 0, writes={(0, 0)})
        g.add_task("b", 0, writes={(1, 1)})
        g.add_task("c", 0, writes={(2, 2)})
        g.task(0).deps.add(2)  # acyclic, but forward in submission order
        order = g.topological_order()
        assert sorted(order) == [0, 1, 2]
        assert order.index(2) < order.index(0)

    def test_cycle_raises_cycle_error_naming_uids(self):
        g = TaskGraph()
        g.add_task("a", 0, writes={(0, 0)})
        g.add_task("b", 0, reads={(0, 0)}, writes={(1, 1)})
        g.task(0).deps.add(1)  # 0 -> 1 already; now 1 -> 0 too
        with pytest.raises(CycleError) as exc_info:
            g.topological_order()
        assert exc_info.value.task_uids == (0, 1)
        assert isinstance(exc_info.value, ValueError)  # backward compatible

    def test_unknown_dependency_raises(self):
        g = TaskGraph()
        g.add_task("a", 0, writes={(0, 0)})
        g.task(0).deps.add(7)
        with pytest.raises(CycleError, match="unknown task"):
            g.topological_order()

    def test_downstream_of_cycle_is_named(self):
        g = TaskGraph()
        g.add_task("a", 0, writes={(0, 0)})
        g.add_task("b", 0, reads={(0, 0)}, writes={(1, 1)})
        g.add_task("c", 0, reads={(1, 1)}, writes={(2, 2)})
        g.task(0).deps.add(1)
        with pytest.raises(CycleError) as exc_info:
            g.topological_order()
        # The cycle members and the task blocked behind them.
        assert exc_info.value.task_uids == (0, 1, 2)


# --------------------------------------------------------------------------- #
# merge_traces hardening satellite
# --------------------------------------------------------------------------- #
class TestMergeTraceConsistency:
    @staticmethod
    def _trace(kernels, fused=None):
        tr = ExecutionTrace()
        for uid, kernel in kernels.items():
            tr.kernel_of_task[uid] = kernel
            tr.start_times[uid] = 0.0
            tr.finish_times[uid] = 1.0
        for uid, m in (fused or {}).items():
            tr.fused_of_task[uid] = m
        return tr

    def test_consistent_traces_merge_with_offsets(self):
        t1 = self._trace({0: "gemm", 1: "getrf"}, fused={0: 3})
        t2 = self._trace({0: "trsm"})
        merged = merge_traces([t1, t2])
        assert merged.kernel_of_task == {0: "gemm", 1: "getrf", 2: "trsm"}
        assert merged.fused_of_task == {0: 3}

    def test_fused_entry_without_kernel_entry_rejected(self):
        tr = self._trace({0: "gemm"}, fused={0: 2})
        tr.fused_of_task[5] = 4  # task 5 was never recorded as started
        with pytest.raises(ValueError, match=r"\[5\].*kernel_of_task"):
            merge_traces([tr])

    def test_fused_multiplicity_below_two_rejected(self):
        tr = self._trace({0: "gemm"}, fused={0: 1})
        with pytest.raises(ValueError, match="multiplicity"):
            merge_traces([tr])

    def test_real_fused_traces_stay_consistent(self):
        a, b = _system(48, seed=5)
        solver = _solver(
            "lupp",
            kernel_backend="fused",
            executor=ThreadedExecutor(workers=2),
        )
        solver.factor(a, b)
        merged = merge_traces(solver.step_traces)
        assert set(merged.fused_of_task) <= set(merged.kernel_of_task)
        assert all(m >= 2 for m in merged.fused_of_task.values())


# --------------------------------------------------------------------------- #
# Plan verifier: clean plans
# --------------------------------------------------------------------------- #
class TestVerifierCleanPlans:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("matrix", SPECIAL_MATRICES)
    @pytest.mark.parametrize("n,nb", [(24, 4), (32, 8)])
    def test_special_matrix_plans_verify_clean(self, algorithm, matrix, n, nb):
        a = matrix_registry.build(matrix, n)
        b = np.ones(n)
        solver = _solver(algorithm, tile_size=nb)
        graph = _capture_plan(solver, a, b)
        assert verify_graph(graph) == []

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("backend", ["numpy", "fused"])
    def test_audit_clean_inline(self, algorithm, backend):
        solver = _solver(algorithm, tile_size=8, kernel_backend=backend)
        report = audit(solver, lint=False)
        assert report.ok, [str(v) for v in report.violations]
        assert report.checked["tasks"] > 0

    @pytest.mark.parametrize("algorithm", ["hybrid", "lupp", "hqr"])
    @pytest.mark.parametrize("lookahead", [0, 2])
    def test_audit_clean_threaded_lookahead(self, algorithm, lookahead):
        solver = _solver(
            algorithm,
            tile_size=8,
            lookahead=lookahead,
            executor=ThreadedExecutor(workers=2),
        )
        report = audit(solver, lint=False)
        assert report.ok, [str(v) for v in report.violations]
        # The executor pass verified at least the flushed pipeline graphs.
        assert report.checked["graphs"] >= 2

    def test_audit_accepts_task_graph_directly(self):
        solver = _solver("lupp", tile_size=8)
        a, b = _system(32, seed=1)
        graph = _capture_plan(solver, a, b)
        report = audit(graph)
        assert isinstance(report, AuditReport)
        assert report.ok
        assert report.checked["tasks"] == len(graph)


# --------------------------------------------------------------------------- #
# Plan verifier: corrupted plans must be flagged
# --------------------------------------------------------------------------- #
class TestVerifierCorruptedPlans:
    @pytest.fixture()
    def lupp_plan(self):
        a, b = _system(32, seed=2)
        return _capture_plan(_solver("lupp", tile_size=8), a, b)

    def test_dropped_read_edge_is_flagged(self, lupp_plan):
        # Find a task that depends on the writer of one of its reads and
        # sever that edge: the classic under-declared dependency.
        graph = lupp_plan
        victim = writer = None
        for t in graph.tasks:
            for d in sorted(t.deps):
                if graph.task(d).writes & t.reads:
                    victim, writer = t, d
                    break
            if victim:
                break
        assert victim is not None
        victim.deps.discard(writer)
        kinds = {v.kind for v in verify_graph(graph)}
        assert "read-write-conflict" in kinds or "write-write-conflict" in kinds

    def test_cycle_is_flagged(self, lupp_plan):
        last = lupp_plan.tasks[-1]
        lupp_plan.task(0).deps.add(last.uid)
        violations = verify_graph(lupp_plan)
        assert [v.kind for v in violations] == ["cycle"]
        assert 0 in violations[0].tasks

    def test_duplicate_unordered_writes_flagged(self):
        g = TaskGraph()
        g.add_task("w1", 0, writes={(0, 0)})
        g.add_task("w2", 0, writes={(0, 0)})
        g.task(1).deps.clear()  # two writers, no ordering edge
        kinds = [v.kind for v in verify_graph(g)]
        assert kinds == ["write-write-conflict"]

    def test_wrong_fused_union_is_flagged(self):
        a, b = _system(32, seed=3)
        solver = _solver("lupp", tile_size=8, kernel_backend="fused")
        graph = _capture_plan(solver, a, b)
        fused = [t for t in graph.tasks if t.fused > 1]
        assert fused
        victim = fused[0]
        victim.reads = frozenset(set(victim.reads) - {next(iter(victim.writes))})
        kinds = {v.kind for v in verify_graph(graph)}
        assert "fused-union-mismatch" in kinds

    def test_wrong_fused_count_is_flagged(self):
        a, b = _system(32, seed=3)
        solver = _solver("hqr", tile_size=8, kernel_backend="fused")
        graph = _capture_plan(solver, a, b)
        victim = next(t for t in graph.tasks if t.fused > 1)
        victim.fused += 1
        kinds = {v.kind for v in verify_graph(graph)}
        assert "fused-count-mismatch" in kinds

    def test_fused_task_without_descriptor_is_flagged(self):
        g = TaskGraph()
        g.add_task("gemm", 0, reads={(1, 0)}, writes={(1, 1)}, fused=3)
        kinds = [v.kind for v in verify_graph(g)]
        assert kinds == ["fused-descriptor-missing"]

    def test_missing_producer_is_flagged(self):
        g = TaskGraph()
        key = ("geqrt", 0, 0)
        g.add_task(
            "unmqr",
            0,
            reads={(0, 0)},
            writes={(0, 1)},
            call=KernelCall("qr.unmqr", args=(0,), consumes=(key,)),
        )
        kinds = [v.kind for v in verify_graph(g)]
        assert kinds == ["missing-producer"]
        # The same key supplied by an earlier pipeline flush is legal.
        assert verify_graph(g, external_products=frozenset({key})) == []

    def test_unordered_producer_is_flagged(self):
        g = TaskGraph()
        key = ("geqrt", 0, 0)
        g.add_task(
            "geqrt",
            0,
            writes={(0, 0)},
            call=KernelCall("qr.geqrt", args=(0, 0), produces=key),
        )
        g.add_task(
            "unmqr",
            0,
            reads={(1, 1)},
            writes={(1, 2)},
            call=KernelCall("qr.unmqr", args=(1,), consumes=(key,)),
        )
        # Disjoint tiles: no inferred edge between producer and consumer.
        kinds = [v.kind for v in verify_graph(g)]
        assert kinds == ["unordered-producer"]


# --------------------------------------------------------------------------- #
# Dynamic access tracing
# --------------------------------------------------------------------------- #
class TestTracingBackend:
    @staticmethod
    def _traced_tiles(backend, n=16, nb=8):
        return backend.prepare_tiles(TileMatrix.from_dense(np.eye(n), nb))

    def test_undeclared_tile_write_raises_race_report(self):
        backend = TracingBackend()
        tiles = self._traced_tiles(backend)

        def bad_kernel():
            tiles.set_tile(0, 1, np.ones((8, 8)))  # only (0, 0) declared

        task = KernelTask(
            "bad_kernel",
            bad_kernel,
            reads=frozenset({(0, 0)}),
            writes=frozenset({(0, 0)}),
        )
        with pytest.raises(RaceReport) as exc_info:
            backend.wrap_task(task, step=0).fn()
        report = exc_info.value
        assert report.kernel == "bad_kernel"
        assert report.tile == (0, 1)
        assert report.access == "write"
        assert backend.reports == [report]
        assert report.as_violation().kind == "undeclared-write"

    def test_undeclared_read_raises_race_report(self):
        backend = TracingBackend()
        tiles = self._traced_tiles(backend)

        def bad_kernel():
            float(tiles.tile(1, 0).sum())  # not declared at all

        task = KernelTask(
            "bad_reader", bad_kernel, reads=frozenset({(0, 0)}), writes=frozenset()
        )
        with pytest.raises(RaceReport, match="undeclared read"):
            backend.wrap_task(task, step=0).fn()

    def test_inplace_write_through_guarded_view_raises(self):
        backend = TracingBackend()
        tiles = self._traced_tiles(backend)

        def bad_kernel():
            tiles.tile(1, 1)[...] = 5.0  # declared read-only

        task = KernelTask(
            "bad_writer",
            bad_kernel,
            reads=frozenset({(1, 1)}),
            writes=frozenset(),
        )
        with pytest.raises(RaceReport, match="read-guarded"):
            backend.wrap_task(task, step=0).fn()

    def test_declared_accesses_pass_and_are_recorded(self):
        backend = TracingBackend()
        tiles = self._traced_tiles(backend)

        def good_kernel():
            tiles.set_tile(0, 1, tiles.tile(0, 0) * 2.0)

        task = KernelTask(
            "good",
            good_kernel,
            reads=frozenset({(0, 0)}),
            writes=frozenset({(0, 1)}),
        )
        backend.wrap_task(task, step=0).fn()
        assert backend.reports == []
        [record] = backend.recorder.records
        assert record.touched == {(0, 0), (0, 1)}
        assert record.written == {(0, 1)}
        assert backend.undeclared_accesses() == []

    def test_out_of_context_access_is_unguarded(self):
        backend = TracingBackend()
        tiles = self._traced_tiles(backend)
        tiles.tile(1, 0)[...] = 7.0  # planning-time access: no context
        assert float(tiles.tile(1, 0).mean()) == 7.0
        assert backend.recorder.records == []

    def test_block_views_guard_on_the_whole_range(self):
        backend = TracingBackend()
        tiles = self._traced_tiles(backend, n=24, nb=8)

        def sweep():
            block = tiles.block(1, 3, 0, 1)
            block += 1.0

        task = KernelTask(
            "sweep",
            sweep,
            reads=frozenset({(1, 0), (2, 0)}),
            writes=frozenset({(1, 0)}),  # (2, 0) missing from writes
        )
        with pytest.raises(RaceReport):
            backend.wrap_task(task, step=0).fn()

    def test_tracing_backend_is_registered_and_resolves(self):
        assert "tracing" in KERNEL_BACKENDS
        backend = resolve_backend("tracing")
        assert isinstance(backend, TracingBackend)
        assert backend.name == "tracing"
        # Fused descriptors must carry a compute backend's name.
        assert backend.descriptor_name == "numpy"
        with pytest.raises(ValueError, match="nested"):
            TracingBackend(TracingBackend())

    @pytest.mark.parametrize("inner", ["numpy", "fused"])
    def test_traced_factorization_matches_inner_backend(self, inner):
        a, b = _system(48, seed=7)
        reference = _solver("hybrid", kernel_backend=inner).factor(a, b)
        traced_backend = TracingBackend(inner)
        traced = _solver("hybrid", kernel_backend=traced_backend).factor(a, b)
        assert np.array_equal(reference.tiles.array, traced.tiles.array)
        assert np.array_equal(reference.tiles.rhs, traced.tiles.rhs)
        assert traced_backend.reports == []
        assert traced_backend.recorder.records  # kernels were actually traced

    def test_traced_factorization_on_threaded_executor(self):
        a, b = _system(48, seed=8)
        reference = _solver("lupp").factor(a, b)
        traced = _solver(
            "lupp",
            kernel_backend="tracing",
            executor=ThreadedExecutor(workers=2),
        ).factor(a, b)
        assert np.array_equal(reference.tiles.array, traced.tiles.array)

    def test_wrap_preserves_storage_aliasing(self):
        base = TileMatrix.from_dense(np.zeros((16, 16)), 8)
        traced = TracingTileMatrix.wrap(base, TracingBackend().recorder)
        traced.tile(0, 0)[...] = 3.0
        assert float(base.tile(0, 0).mean()) == 3.0

    def test_audit_detects_seeded_undeclared_write(self):
        """End-to-end: a solver whose plan under-declares a write is caught."""

        class CorruptedLUPP(SOLVERS.get("lupp")):
            def _plan_step(self, tiles, dist, k):
                record, tasks = super()._plan_step(tiles, dist, k)
                corrupted = []
                for t in tasks:
                    if t.kernel == "gemm" and t.fused == 1:
                        # Drop one tile from the declared write set while
                        # the kernel body keeps writing it.
                        t = KernelTask(
                            t.kernel,
                            t.fn,
                            reads=t.reads,
                            writes=frozenset(),
                            flops=t.flops,
                            call=t.call,
                            fused=t.fused,
                        )
                    corrupted.append(t)
                return record, corrupted

        solver = CorruptedLUPP(tile_size=8)
        a, b = _system(32, seed=4)
        report = audit(solver, a, b, lint=False)
        kinds = {v.kind for v in report.violations}
        assert not report.ok
        assert kinds & {"undeclared-write", "read-write-conflict"}


# --------------------------------------------------------------------------- #
# Registry lint
# --------------------------------------------------------------------------- #
class TestRegistryLint:
    def test_builtin_registries_are_clean(self):
        assert lint_registries() == []

    def test_every_registered_kernel_op_is_mapped(self):
        assert set(KERNELS) == set(TASK_KERNELS_OF_OP)

    def test_unmapped_kernel_op_is_flagged(self):
        name = "test.ephemeral_op"

        def op(tiles, inputs):  # pragma: no cover - never executed
            return None

        KERNELS[name] = op
        try:
            kinds = {v.kind for v in lint_registries()}
            assert "unmapped-kernel-op" in kinds
        finally:
            del KERNELS[name]
        assert lint_registries() == []

    def test_protocol_violating_backend_is_flagged(self):
        class BrokenBackend(KernelBackend):
            # fuses=True without implementing any sweep method, and a
            # name that resolves to nothing.
            name = "broken_test_backend"
            fuses = True

        KERNEL_BACKENDS.register("broken_test_backend")(BrokenBackend)
        try:
            violations = [
                v for v in lint_registries() if v.subject == "broken_test_backend"
            ]
            kinds = {v.kind for v in violations}
            assert kinds == {"backend-protocol"}
            assert len(violations) >= 6  # six missing sweep methods
        finally:
            KERNEL_BACKENDS.unregister("broken_test_backend")
        assert lint_registries() == []


# --------------------------------------------------------------------------- #
# Schedule-perturbation determinism
# --------------------------------------------------------------------------- #
class TestDeterminism:
    @pytest.mark.parametrize("algorithm", ["hybrid", "lupp"])
    def test_randomized_ready_orders_stay_bit_identical(self, algorithm):
        a, b = _system(32, seed=11)
        violations = determinism_check(
            lambda executor: _solver(algorithm, executor=executor),
            a,
            b,
            rounds=2,
            workers=3,
        )
        assert violations == []

    def test_perturbed_executor_overwrites_priorities(self):
        g = TaskGraph()
        done = []
        g.add_task("a", 0, writes={(0, 0)}, fn=lambda: done.append("a"))
        g.add_task("b", 0, reads={(0, 0)}, writes={(1, 1)}, fn=lambda: done.append("b"))
        executor = PerturbedThreadedExecutor(workers=2, seed=0)
        executor.run(g)
        assert done == ["a", "b"]  # dependencies still gate readiness
        priorities = {t.priority for t in g.tasks}
        assert all(0.0 <= p < 1.0 for p in priorities)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCli:
    def test_cli_audits_one_algorithm(self, capsys):
        from repro.api.cli import main

        rc = main(["--algorithm", "lupp", "--tile-size", "4", "--n", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "AUDIT PASSED" in out

    def test_cli_runs_via_module(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                "--algorithm",
                "lu_nopiv",
                "--tile-size",
                "4",
                "--n",
                "16",
                "--skip-lint",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "AUDIT PASSED" in proc.stdout
