"""Tests for the multi-process executor and the shared-memory tile buffer.

The contract is the same as for the threaded executor, but stronger in
what it exercises: kernels run in *worker processes* against tiles in a
``multiprocessing.shared_memory`` segment, shipped as picklable
``KernelCall`` descriptors — and the factors, pivots, transformed
right-hand sides and solutions must still match the sequential reference
bit for bit.
"""

import pickle

import numpy as np
import pytest

import repro
from repro import (
    HQRSolver,
    HybridLUQRSolver,
    LUIncPivSolver,
    LUNoPivSolver,
    LUPPSolver,
    MaxCriterion,
    ProcessExecutor,
    ThreadedExecutor,
)
from repro.kernels.dispatch import KERNELS, KernelCall
from repro.runtime import KernelTask, build_step_graph
from repro.tiles import SharedBufferMeta, SharedTileBuffer

#: Small worker pools: the suite must stay cheap on small CI machines.
WORKERS = 2


def _solver_factories():
    return [
        pytest.param(
            lambda ex: HybridLUQRSolver(8, MaxCriterion(alpha=1.0), executor=ex),
            id="hybrid",
        ),
        pytest.param(lambda ex: LUPPSolver(8, executor=ex), id="lupp"),
        pytest.param(lambda ex: HQRSolver(8, executor=ex), id="hqr"),
        pytest.param(lambda ex: LUIncPivSolver(8, executor=ex), id="incpiv"),
    ]


# --------------------------------------------------------------------------- #
# Bit-identity: processes == threaded == sequential
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("factory", _solver_factories())
def test_process_factorization_identical_to_sequential_and_threaded(rng, factory):
    n = 48
    a = rng.standard_normal((n, n))
    b = rng.standard_normal(n)
    f_seq = factory(None).factor(a, b)
    f_thr = factory(ThreadedExecutor(workers=2)).factor(a, b)
    f_proc = factory(ProcessExecutor(workers=WORKERS)).factor(a, b)

    assert f_proc.step_kinds == f_seq.step_kinds
    np.testing.assert_array_equal(f_proc.tiles.array, f_seq.tiles.array)
    np.testing.assert_array_equal(f_proc.tiles.array, f_thr.tiles.array)
    np.testing.assert_array_equal(f_proc.tiles.rhs, f_seq.tiles.rhs)
    np.testing.assert_array_equal(f_proc.tiles.rhs, f_thr.tiles.rhs)
    assert np.linalg.norm(f_proc.solve() - f_seq.solve()) == 0.0
    assert f_proc.growth_factor == f_seq.growth_factor


def test_process_padded_order_identical(rng):
    n = 21  # not a multiple of nb = 8: exercises the padded shared buffer
    a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
    b = rng.standard_normal(n)
    seq = LUPPSolver(8).solve(a, b)
    proc = LUPPSolver(8, executor=ProcessExecutor(workers=WORKERS)).solve(a, b)
    np.testing.assert_array_equal(proc.x, seq.x)


def test_process_traces_recorded(rng):
    a = rng.standard_normal((48, 48))
    solver = LUPPSolver(8, track_growth=False, executor=ProcessExecutor(workers=WORKERS))
    solver.factor(a)
    assert solver.step_traces, "process path must record per-step traces"
    trace = solver.step_traces[0]
    assert trace.n_tasks == trace.n_started > 0
    assert all(w for w in trace.worker_of_task.values())
    assert trace.concurrency_profile()


def test_breakdown_propagates_through_process_executor():
    a = np.zeros((16, 16))  # every diagonal tile singular
    fact = LUNoPivSolver(4, executor=ProcessExecutor(workers=WORKERS)).factor(a)
    assert not fact.succeeded


def test_repeated_factorizations_reuse_pool(rng):
    """Consecutive factorizations (fresh shared segments) stay identical."""
    solver = LUPPSolver(8, executor=ProcessExecutor(workers=WORKERS))
    for seed in (0, 1):
        a = np.random.default_rng(seed).standard_normal((32, 32))
        np.testing.assert_array_equal(
            solver.factor(a).tiles.array, LUPPSolver(8).factor(a).tiles.array
        )


# --------------------------------------------------------------------------- #
# String specs, facade, session
# --------------------------------------------------------------------------- #
def test_processes_spec_through_repro_solve(rng):
    n = 32
    a = rng.standard_normal((n, n))
    b = rng.standard_normal(n)
    base = repro.solve(a, b, algorithm="hybrid", tile_size=8, criterion="max(alpha=50)")
    proc = repro.solve(
        a,
        b,
        algorithm="hybrid",
        tile_size=8,
        criterion="max(alpha=50)",
        executor=f"processes(workers={WORKERS})",
    )
    np.testing.assert_array_equal(proc.x, base.x)


def test_processes_spec_resolves_workers():
    ex = repro.make_executor("processes(workers=3)")
    assert isinstance(ex, ProcessExecutor)
    assert ex.workers == 3
    assert repro.make_executor("procs").workers == 8  # alias + default


def test_processes_through_solver_session(rng):
    n = 32
    a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
    b = rng.standard_normal(n)
    proc = repro.SolverSession(
        algorithm="lupp", tile_size=8, executor=f"processes(workers={WORKERS})"
    )
    base = repro.SolverSession(algorithm="lupp", tile_size=8)
    np.testing.assert_array_equal(proc.solve(a, b).x, base.solve(a, b).x)
    np.testing.assert_array_equal(proc.solve(a, b).x, base.solve(a, b).x)
    assert (proc.stats.misses, proc.stats.hits) == (1, 1)


def test_concurrent_different_matrix_misses_on_process_session(rng):
    """Regression: concurrent misses must not race the executor binding.

    The shared-buffer binding is thread-local and the solver serializes
    its factorizations, so two threads missing on *different* matrices
    through one process-backed session both get correct (and correctly
    cached) results.
    """
    import threading

    session = repro.SolverSession(
        algorithm="lupp", tile_size=8, executor=f"processes(workers={WORKERS})"
    )
    mats = [
        rng.standard_normal((16, 16)) + 4.0 * np.eye(16),
        rng.standard_normal((32, 32)) + 4.0 * np.eye(32),
    ]
    vecs = [rng.standard_normal(16), rng.standard_normal(32)]
    errors = []

    def solve(i):
        try:
            r = session.solve(mats[i], vecs[i])
            assert np.linalg.norm(mats[i] @ r.x - vecs[i]) < 1e-8
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=solve, args=(i,)) for i in (0, 1)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    # The cached entries are clean too (not cross-contaminated).
    for i in (0, 1):
        r = session.solve(mats[i], vecs[i])
        assert np.linalg.norm(mats[i] @ r.x - vecs[i]) < 1e-8
    assert session.stats.misses == 2


def test_repro_executor_env_var(rng, monkeypatch):
    """REPRO_EXECUTOR supplies the default executor of facade-built solvers."""
    monkeypatch.setenv("REPRO_EXECUTOR", f"processes(workers={WORKERS})")
    solver = repro.make_solver("lupp", tile_size=8)
    assert isinstance(solver.executor, ProcessExecutor)
    # An explicit inline spec still wins over the environment.
    assert repro.make_solver("lupp", tile_size=8, executor="none").executor is None
    # make_executor itself is not affected (only solver assembly is).
    assert repro.make_executor(None) is None
    a = rng.standard_normal((16, 16))
    np.testing.assert_array_equal(
        solver.factor(a).tiles.array, LUPPSolver(8).factor(a).tiles.array
    )


# --------------------------------------------------------------------------- #
# Error handling and preconditions
# --------------------------------------------------------------------------- #
def test_unbound_executor_rejects_run():
    graph = build_step_graph(
        [KernelTask("x", lambda: None, call=KernelCall("lu.gemm", args=(0, 0, 0)))]
    )
    with pytest.raises(RuntimeError, match="not bound"):
        ProcessExecutor(workers=1).run(graph)


def test_closure_only_tasks_rejected():
    graph = build_step_graph([KernelTask("closure_only", lambda: None)])
    executor = ProcessExecutor(workers=1)
    buf = SharedTileBuffer.allocate(np.eye(8), 4)
    try:
        executor.bind(buf.meta)
        with pytest.raises(RuntimeError, match="descriptor"):
            executor.run(graph)
    finally:
        buf.close()
        buf.unlink()


def test_unknown_kernel_name_raises():
    buf = SharedTileBuffer.allocate(np.eye(8), 4)
    executor = ProcessExecutor(workers=1)
    executor.bind(buf.meta)
    graph = build_step_graph(
        [KernelTask("bogus", lambda: None, call=KernelCall("no.such_kernel"))]
    )
    try:
        with pytest.raises(ValueError, match="unknown kernel operation"):
            executor.run(graph)
    finally:
        buf.close()
        buf.unlink()


def test_invalid_worker_count():
    with pytest.raises(ValueError):
        ProcessExecutor(workers=0)


def test_broken_pool_is_evicted_and_next_run_recovers(rng):
    """A pool whose worker died between runs must not poison later runs."""
    import os
    import signal

    from repro.runtime import process_executor as pe

    executor = ProcessExecutor(workers=1)
    solver = LUPPSolver(8, executor=executor)
    a = rng.standard_normal((16, 16))
    ref = LUPPSolver(8).factor(a)
    np.testing.assert_array_equal(solver.factor(a).tiles.array, ref.tiles.array)

    pool = pe._POOLS[(executor.workers, executor.start_method)]
    for pid in list(pool._processes):
        os.kill(pid, signal.SIGKILL)
    # The first run on the broken pool fails (synchronously or via a dead
    # future) and evicts it; the run after that gets a fresh pool.
    with pytest.raises(Exception):
        solver.factor(a)
    np.testing.assert_array_equal(solver.factor(a).tiles.array, ref.tiles.array)


def test_cycle_below_sources_detected():
    """A dependency cycle among non-source tasks must not return a
    half-executed graph as if it had finished."""
    from repro.runtime.graph import TaskGraph

    graph = TaskGraph()
    call = KernelCall("lu.gemm", args=(0, 0, 1))
    graph.add_task(kernel="source", step=0, fn=lambda: None, call=call)
    # Tasks 1 and 2 depend on each other through explicit extra_deps.
    graph.add_task(kernel="a", step=0, fn=lambda: None, call=call, extra_deps=[2])
    graph.add_task(kernel="b", step=0, fn=lambda: None, call=call, extra_deps=[1])

    executor = ProcessExecutor(workers=1)
    buf = SharedTileBuffer.allocate(np.eye(8), 4)
    try:
        executor.bind(buf.meta)
        with pytest.raises(ValueError, match="never became ready"):
            executor.run(graph)
    finally:
        buf.close()
        buf.unlink()


# --------------------------------------------------------------------------- #
# SharedTileBuffer
# --------------------------------------------------------------------------- #
class TestSharedTileBuffer:
    def test_roundtrip_and_aliasing(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 2))
        with SharedTileBuffer.allocate(a, 8, rhs=b) as buf:
            np.testing.assert_array_equal(buf.array, a)
            np.testing.assert_array_equal(buf.rhs, b)
            tiles = buf.tile_matrix()
            tiles.tile(0, 0)[...] = 7.0
            # The TileMatrix aliases the segment (no copy).
            assert buf.array[0, 0] == 7.0

    def test_attach_sees_owner_writes(self, rng):
        a = rng.standard_normal((8, 8))
        owner = SharedTileBuffer.allocate(a, 4)
        try:
            other = SharedTileBuffer.attach(owner.meta)
            np.testing.assert_array_equal(other.array, a)
            owner.array[2, 3] = 42.0
            assert other.array[2, 3] == 42.0
            other.close()
        finally:
            owner.close()
            owner.unlink()

    def test_meta_pickles(self, rng):
        with SharedTileBuffer.allocate(np.eye(8), 4, rhs=np.ones(8)) as buf:
            meta = pickle.loads(pickle.dumps(buf.meta))
            assert meta == buf.meta
            assert isinstance(meta, SharedBufferMeta)
            assert meta.nrhs == 1
            assert meta.nbytes == (64 + 8) * 8

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="square"):
            SharedTileBuffer.allocate(np.ones((4, 6)), 2)
        with pytest.raises(ValueError, match="multiple"):
            SharedTileBuffer.allocate(np.eye(6), 4)
        with pytest.raises(ValueError, match="rows"):
            SharedTileBuffer.allocate(np.eye(8), 4, rhs=np.ones(6))

    def test_closed_buffer_rejects_views(self):
        buf = SharedTileBuffer.allocate(np.eye(8), 4)
        buf.close()
        buf.unlink()
        with pytest.raises(ValueError, match="closed"):
            _ = buf.array


# --------------------------------------------------------------------------- #
# Kernel descriptors
# --------------------------------------------------------------------------- #
class TestKernelDescriptors:
    def test_all_planned_tasks_carry_descriptors(self, rng):
        """Every task of every built-in planner has a picklable descriptor."""
        from repro.core.factorization import StepRecord
        from repro.core.lu_step import lu_step_tasks
        from repro.core.panel_analysis import analyze_panel
        from repro.core.qr_step import qr_step_tasks
        from repro.tiles import BlockCyclicDistribution, ProcessGrid, TileMatrix
        from repro.trees.greedy import GreedyTree

        n, nb = 32, 8
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        tiles = TileMatrix.from_dense(a, nb, rhs=rng.standard_normal(n))
        dist = BlockCyclicDistribution(ProcessGrid(1, 1), tiles.n)

        lu = lu_step_tasks(
            tiles, 0, analyze_panel(tiles, dist, 0), StepRecord(k=0, kind="LU")
        )
        elims = GreedyTree().eliminations(list(range(tiles.n)))
        qr = qr_step_tasks(tiles.copy(), 0, elims, StepRecord(k=0, kind="QR"))
        incpiv_solver = LUIncPivSolver(nb)
        _, incpiv = incpiv_solver._plan_step(tiles.copy(), dist, 0)

        for task in [*lu, *qr, *incpiv]:
            assert task.call is not None, task.kernel
            assert task.call.kernel in KERNELS
            pickle.dumps(task.call)  # descriptors must cross process boundaries

    def test_consumed_keys_are_produced_upstream(self, rng):
        """Every consumes key of a plan is produced by an earlier task."""
        from repro.core.factorization import StepRecord
        from repro.core.qr_step import qr_step_tasks
        from repro.tiles import TileMatrix
        from repro.trees.fibonacci import FibonacciTree

        n, nb = 40, 8
        a = rng.standard_normal((n, n))
        tiles = TileMatrix.from_dense(a, nb, rhs=rng.standard_normal(n))
        elims = FibonacciTree().eliminations(list(range(tiles.n)))
        tasks = qr_step_tasks(tiles, 0, elims, StepRecord(k=0, kind="QR"))
        produced = set()
        for t in tasks:
            for key in t.call.consumes:
                assert key in produced, f"{t.kernel} consumes unproduced {key}"
            if t.call.produces is not None:
                produced.add(t.call.produces)
