"""Tests for the TileMatrix container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiles import TileMatrix


class TestConstruction:
    def test_basic(self, rng):
        a = rng.standard_normal((24, 24))
        tm = TileMatrix(a, 8)
        assert tm.n == 3
        assert tm.nb == 8
        assert tm.order == 24
        assert not tm.has_rhs

    def test_from_dense_copies(self, rng):
        a = rng.standard_normal((16, 16))
        tm = TileMatrix.from_dense(a, 4)
        tm.array[0, 0] = 123.0
        assert a[0, 0] != 123.0

    def test_aliasing_by_default(self, rng):
        a = rng.standard_normal((16, 16))
        tm = TileMatrix(a, 4)
        tm.array[0, 0] = 77.0
        assert a[0, 0] == 77.0

    def test_rejects_non_square(self, rng):
        with pytest.raises(ValueError):
            TileMatrix(rng.standard_normal((8, 12)), 4)

    def test_rejects_bad_tile_size(self, rng):
        a = rng.standard_normal((10, 10))
        with pytest.raises(ValueError):
            TileMatrix(a, 4)
        with pytest.raises(ValueError):
            TileMatrix(a, 0)

    def test_rhs_vector_and_matrix(self, rng):
        a = rng.standard_normal((12, 12))
        b = rng.standard_normal(12)
        tm = TileMatrix(a, 4, rhs=b)
        assert tm.has_rhs
        assert tm.rhs.shape == (12, 1)
        b2 = rng.standard_normal((12, 3))
        tm2 = TileMatrix(a, 4, rhs=b2)
        assert tm2.rhs.shape == (12, 3)

    def test_rhs_wrong_rows(self, rng):
        with pytest.raises(ValueError):
            TileMatrix(rng.standard_normal((12, 12)), 4, rhs=np.ones(8))

    def test_copy_is_deep(self, rng):
        a = rng.standard_normal((8, 8))
        tm = TileMatrix(a, 4, rhs=np.ones(8))
        cp = tm.copy()
        cp.array[0, 0] = 5.0
        cp.rhs[0, 0] = 5.0
        assert tm.array[0, 0] != 5.0 or a[0, 0] == 5.0
        assert tm.rhs[0, 0] == 1.0


class TestTileAccess:
    def test_tile_view_roundtrip(self, rng):
        a = rng.standard_normal((24, 24))
        tm = TileMatrix.from_dense(a, 8)
        for i in range(3):
            for j in range(3):
                np.testing.assert_array_equal(
                    tm.tile(i, j), a[i * 8 : (i + 1) * 8, j * 8 : (j + 1) * 8]
                )

    def test_tile_is_view(self, rng):
        tm = TileMatrix(rng.standard_normal((16, 16)), 8)
        tm.tile(1, 1)[...] = 0.0
        assert np.all(tm.array[8:, 8:] == 0.0)

    def test_set_tile(self, rng):
        tm = TileMatrix(rng.standard_normal((16, 16)), 8)
        block = np.full((8, 8), 3.0)
        tm.set_tile(0, 1, block)
        np.testing.assert_array_equal(tm.tile(0, 1), block)

    def test_tile_out_of_range(self, rng):
        tm = TileMatrix(rng.standard_normal((16, 16)), 8)
        with pytest.raises(IndexError):
            tm.tile(2, 0)
        with pytest.raises(IndexError):
            tm.tile(0, -1)

    def test_rhs_tile(self, rng):
        b = np.arange(16.0)
        tm = TileMatrix(rng.standard_normal((16, 16)), 8, rhs=b)
        np.testing.assert_array_equal(tm.rhs_tile(1)[:, 0], b[8:])
        tm.rhs_tile(0)[...] = 0.0
        assert np.all(tm.rhs[:8] == 0.0)

    def test_rhs_tile_without_rhs(self, rng):
        tm = TileMatrix(rng.standard_normal((16, 16)), 8)
        with pytest.raises(ValueError):
            tm.rhs_tile(0)

    def test_row_block(self, rng):
        a = rng.standard_normal((24, 24))
        tm = TileMatrix.from_dense(a, 8)
        np.testing.assert_array_equal(tm.row_block(1, 1), a[8:16, 8:])
        np.testing.assert_array_equal(tm.row_block(0, 1, 2), a[0:8, 8:16])

    def test_panel_and_scatter_roundtrip(self, rng):
        a = rng.standard_normal((32, 32))
        tm = TileMatrix.from_dense(a, 8)
        rows = [1, 3]
        panel = tm.panel(2, rows)
        assert panel.shape == (16, 8)
        panel2 = panel * 2.0
        tm.scatter_panel(2, rows, panel2)
        np.testing.assert_array_equal(tm.tile(1, 2), panel2[:8])
        np.testing.assert_array_equal(tm.tile(3, 2), panel2[8:])

    def test_panel_default_rows(self, rng):
        tm = TileMatrix(rng.standard_normal((32, 32)), 8)
        panel = tm.panel(1)
        assert panel.shape == (24, 8)

    def test_scatter_panel_shape_check(self, rng):
        tm = TileMatrix(rng.standard_normal((16, 16)), 8)
        with pytest.raises(ValueError):
            tm.scatter_panel(0, [0, 1], np.zeros((8, 8)))

    def test_tiles_iterator(self, rng):
        tm = TileMatrix(rng.standard_normal((16, 16)), 8)
        coords = [(i, j) for i, j, _ in tm.tiles()]
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestNorms:
    def test_tile_norm_matches_numpy(self, rng):
        a = rng.standard_normal((16, 16))
        tm = TileMatrix.from_dense(a, 8)
        assert tm.tile_norm(0, 1) == pytest.approx(np.linalg.norm(a[:8, 8:], 1))

    def test_tile_norms_shape_and_max(self, rng):
        tm = TileMatrix(rng.standard_normal((24, 24)), 8)
        norms = tm.tile_norms()
        assert norms.shape == (3, 3)
        assert tm.max_tile_norm() == pytest.approx(norms.max())

    def test_full_norm(self, rng):
        a = rng.standard_normal((16, 16))
        tm = TileMatrix.from_dense(a, 8)
        assert tm.norm() == pytest.approx(np.linalg.norm(a, np.inf))

    def test_to_dense_copy(self, rng):
        a = rng.standard_normal((16, 16))
        tm = TileMatrix.from_dense(a, 8)
        d = tm.to_dense()
        d[0, 0] = 1e9
        assert tm.array[0, 0] != 1e9

    @given(n_tiles=st.integers(1, 5), nb=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_property_tile_reassembly(self, n_tiles, nb):
        rng = np.random.default_rng(n_tiles * 10 + nb)
        a = rng.standard_normal((n_tiles * nb, n_tiles * nb))
        tm = TileMatrix.from_dense(a, nb)
        rebuilt = np.block(
            [[tm.tile(i, j) for j in range(n_tiles)] for i in range(n_tiles)]
        )
        np.testing.assert_allclose(rebuilt, a)
