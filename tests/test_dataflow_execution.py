"""The numerical factorization executed through the dataflow runtime.

The parallel path must be *numerically identical* to the sequential
reference: both paths run the exact same kernel closures, only their
interleaving differs, and no two tasks accumulate into the same tile, so
the factors, pivots, transformed right-hand sides and solutions match
bit for bit.
"""

import numpy as np
import pytest

from repro import (
    HQRSolver,
    HybridLUQRSolver,
    LUIncPivSolver,
    LUNoPivSolver,
    LUPPSolver,
    MaxCriterion,
    SequentialExecutor,
    ThreadedExecutor,
)
from repro.core.lu_step import lu_step_tasks
from repro.core.panel_analysis import analyze_panel
from repro.core.factorization import StepRecord
from repro.core.qr_step import qr_step_tasks
from repro.runtime import (
    KernelTask,
    build_step_graph,
    merge_traces,
    run_step_tasks,
    written_tiles,
)
from repro.runtime.task import RHS_COLUMN
from repro.tiles import BlockCyclicDistribution, ProcessGrid, TileMatrix
from repro.trees.flat import FlatTree
from repro.trees.hierarchical import HierarchicalTree


def _solver_factories():
    return [
        lambda ex: HybridLUQRSolver(
            8, MaxCriterion(alpha=1.0), grid=ProcessGrid(2, 2), executor=ex
        ),
        lambda ex: LUPPSolver(8, executor=ex),
        lambda ex: LUNoPivSolver(8, executor=ex),
        lambda ex: LUIncPivSolver(8, executor=ex),
        lambda ex: HQRSolver(8, grid=ProcessGrid(2, 2), executor=ex),
    ]


@pytest.mark.parametrize("factory", _solver_factories())
def test_threaded_factorization_identical_to_sequential(rng, factory):
    n = 96
    a = rng.standard_normal((n, n))
    b = rng.standard_normal(n)
    seq = factory(None)
    par = factory(ThreadedExecutor(workers=4))

    f_seq = seq.factor(a, b)
    f_par = par.factor(a, b)

    assert f_par.step_kinds == f_seq.step_kinds
    np.testing.assert_array_equal(f_par.tiles.array, f_seq.tiles.array)
    np.testing.assert_array_equal(f_par.tiles.rhs, f_seq.tiles.rhs)
    x_seq, x_par = f_seq.solve(), f_par.solve()
    assert np.linalg.norm(x_par - x_seq) == 0.0
    # Growth tracking sees the same trailing-matrix states on both paths.
    assert f_par.growth_factor == f_seq.growth_factor


def test_threaded_hybrid_same_decisions_and_pivots(rng):
    """The sequential control layer (criterion, pivots) is untouched."""
    n = 80
    a = rng.standard_normal((n, n))
    b = rng.standard_normal(n)
    seq = HybridLUQRSolver(8, MaxCriterion(alpha=1.0))
    par = HybridLUQRSolver(8, MaxCriterion(alpha=1.0), executor=ThreadedExecutor(workers=4))
    f_seq, f_par = seq.factor(a, b), par.factor(a, b)
    for s, p in zip(f_seq.steps, f_par.steps):
        assert s.kind == p.kind
        assert s.domain_rows == p.domain_rows
        assert s.kernel_counts == p.kernel_counts
        if s.decision is not None:
            assert s.decision.use_lu == p.decision.use_lu


def test_threaded_execution_overlaps_tasks(rng):
    """On >= 4 workers the per-step traces show real task concurrency."""
    n = 128
    a = rng.standard_normal((n, n))
    solver = LUPPSolver(16, track_growth=False, executor=ThreadedExecutor(workers=4))
    solver.factor(a)
    assert solver.step_traces, "executor path must record per-step traces"
    assert max(t.max_concurrency for t in solver.step_traces) > 1
    merged = merge_traces(solver.step_traces)
    assert merged.n_tasks == sum(t.n_tasks for t in solver.step_traces)
    assert merged.max_concurrency > 1


def test_merge_traces_partial_non_contiguous_uids():
    """Regression: partial traces with uid gaps must not collide when merged."""
    from repro.runtime import ExecutionTrace

    partial = ExecutionTrace()
    partial.start_times = {0: 0.0, 7: 0.1}  # uids 1-6 never started
    partial.finish_times = {0: 0.2}
    full = ExecutionTrace()
    full.start_times = {5: 0.3}
    full.finish_times = {5: 0.4}
    merged = merge_traces([partial, full])
    assert len(merged.start_times) == 3  # nothing overwritten
    assert merged.n_tasks == 2


def test_sequential_executor_path_matches_inline(rng):
    """SequentialExecutor through the graph equals the inline path."""
    n = 64
    a = rng.standard_normal((n, n))
    b = rng.standard_normal(n)
    inline = LUNoPivSolver(8).factor(a, b)
    graphed = LUNoPivSolver(8, executor=SequentialExecutor()).factor(a, b)
    np.testing.assert_array_equal(inline.tiles.array, graphed.tiles.array)
    np.testing.assert_array_equal(inline.tiles.rhs, graphed.tiles.rhs)


def test_breakdown_propagates_through_executor():
    """A singular panel still surfaces as a breakdown on the parallel path."""
    a = np.zeros((16, 16))  # every diagonal tile singular
    seq = LUNoPivSolver(4)
    par = LUNoPivSolver(4, executor=ThreadedExecutor(workers=2))
    assert not seq.factor(a).succeeded
    assert not par.factor(a).succeeded


def test_step_traces_reset_between_factorizations(rng):
    a = rng.standard_normal((32, 32))
    solver = LUPPSolver(8, executor=ThreadedExecutor(workers=2))
    solver.factor(a)
    first = len(solver.step_traces)
    solver.factor(a)
    assert len(solver.step_traces) == first


# --------------------------------------------------------------------------- #
# Step task plans
# --------------------------------------------------------------------------- #
class TestStepTaskPlans:
    def _tiles(self, rng, n_tiles=4, nb=8, rhs=True):
        n = n_tiles * nb
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        b = rng.standard_normal(n) if rhs else None
        return TileMatrix.from_dense(a, nb, rhs=b)

    def test_lu_plan_matches_inline_execution(self, rng):
        tiles_a = self._tiles(rng)
        tiles_b = tiles_a.copy()
        dist = BlockCyclicDistribution(ProcessGrid(1, 1), tiles_a.n)

        from repro.core.lu_step import perform_lu_step

        rec_a = StepRecord(k=0, kind="LU")
        perform_lu_step(tiles_a, 0, analyze_panel(tiles_a, dist, 0), rec_a)

        rec_b = StepRecord(k=0, kind="LU")
        tasks = lu_step_tasks(tiles_b, 0, analyze_panel(tiles_b, dist, 0), rec_b)
        run_step_tasks(tasks, executor=ThreadedExecutor(workers=4))

        np.testing.assert_array_equal(tiles_a.array, tiles_b.array)
        np.testing.assert_array_equal(tiles_a.rhs, tiles_b.rhs)
        assert rec_a.kernel_counts == rec_b.kernel_counts

    def test_qr_plan_matches_inline_execution(self, rng):
        tiles_a = self._tiles(rng)
        tiles_b = tiles_a.copy()
        dist = BlockCyclicDistribution(ProcessGrid(2, 1), tiles_a.n)
        tree = HierarchicalTree(
            distribution=dist, intra_tree=FlatTree(), inter_tree=FlatTree(), step=0
        )
        elims = tree.eliminations_for_step(0, list(range(tiles_a.n)))

        from repro.core.qr_step import perform_qr_step

        rec_a = StepRecord(k=0, kind="QR")
        perform_qr_step(tiles_a, 0, elims, rec_a)

        rec_b = StepRecord(k=0, kind="QR")
        tasks = qr_step_tasks(tiles_b, 0, elims, rec_b)
        run_step_tasks(tasks, executor=ThreadedExecutor(workers=4))

        np.testing.assert_array_equal(tiles_a.array, tiles_b.array)
        np.testing.assert_array_equal(tiles_a.rhs, tiles_b.rhs)
        assert rec_a.kernel_counts == rec_b.kernel_counts
        assert rec_a.eliminations == rec_b.eliminations

    def test_plan_kernel_counts_match_record(self, rng):
        """Every planned task is counted in the step record (matrix kernels)."""
        tiles = self._tiles(rng, rhs=False)
        dist = BlockCyclicDistribution(ProcessGrid(1, 1), tiles.n)
        rec = StepRecord(k=0, kind="LU")
        tasks = lu_step_tasks(tiles, 0, analyze_panel(tiles, dist, 0), rec)
        # One getrf covering the domain, one swptrsm per trailing column and
        # one gemm per trailing tile; the record additionally charges the
        # Table-I trsm count for the sub-diagonal panel tiles.
        from collections import Counter

        planned = Counter(t.kernel for t in tasks)
        assert planned["getrf"] == rec.kernel_counts["getrf"]
        assert planned["swptrsm"] == rec.kernel_counts["swptrsm"]
        assert planned["gemm"] == rec.kernel_counts["gemm"]

    def test_written_tiles_covers_trailing_region(self, rng):
        tiles = self._tiles(rng)
        dist = BlockCyclicDistribution(ProcessGrid(1, 1), tiles.n)
        rec = StepRecord(k=0, kind="LU")
        tasks = lu_step_tasks(tiles, 0, analyze_panel(tiles, dist, 0), rec)
        written = written_tiles(tasks)
        n = tiles.n
        for i in range(n):
            for j in range(n):
                assert (i, j) in written
        assert (0, RHS_COLUMN) in written

    def test_build_step_graph_appends_for_lookahead(self):
        """Two steps can share one graph (the cross-step lookahead seam)."""
        log = []
        step0 = [KernelTask("a", lambda: log.append(0), writes=frozenset({(0, 0)}))]
        step1 = [
            KernelTask(
                "b",
                lambda: log.append(1),
                reads=frozenset({(0, 0)}),
                writes=frozenset({(1, 1)}),
            )
        ]
        graph = build_step_graph(step0, step=0)
        graph = build_step_graph(step1, step=1, graph=graph)
        assert len(graph) == 2
        assert graph.task(0).uid in graph.task(1).deps
        ThreadedExecutor(workers=2).run(graph)
        assert log == [0, 1]

    def test_run_step_tasks_inline_returns_no_trace(self):
        log = []
        tasks = [KernelTask("x", lambda: log.append(1))]
        assert run_step_tasks(tasks, executor=None) is None
        assert log == [1]


# --------------------------------------------------------------------------- #
# solve_many
# --------------------------------------------------------------------------- #
class TestSolveMany:
    def test_matches_individual_solves(self, rng):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        bs = rng.standard_normal((n, 3))
        solver = HybridLUQRSolver(8, MaxCriterion(alpha=2.0))
        results = solver.solve_many(a, bs)
        assert len(results) == 3
        for j, res in enumerate(results):
            single = HybridLUQRSolver(8, MaxCriterion(alpha=2.0)).solve(a, bs[:, j])
            np.testing.assert_allclose(res.x, single.x, atol=1e-12)
            assert res.hpl3 < 100
        # All results share one factorization.
        assert all(r.factorization is results[0].factorization for r in results)

    def test_accepts_sequence_of_vectors_and_padding(self, rng):
        n = 21  # not a multiple of nb=8: exercises the padded path
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        vecs = [rng.standard_normal(n) for _ in range(2)]
        results = LUPPSolver(8).solve_many(a, vecs)
        for b, res in zip(vecs, results):
            assert res.x.shape == (n,)
            np.testing.assert_allclose(a @ res.x, b, atol=1e-8)

    def test_threaded_solve_many_identical(self, rng):
        n = 64
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        bs = rng.standard_normal((n, 4))
        seq = LUPPSolver(8).solve_many(a, bs)
        par = LUPPSolver(8, executor=ThreadedExecutor(workers=4)).solve_many(a, bs)
        for s, p in zip(seq, par):
            assert np.linalg.norm(p.x - s.x) == 0.0

    def test_x_true_forwarded(self, rng):
        n = 32
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        x_true = rng.standard_normal((n, 2))
        bs = a @ x_true
        results = LUPPSolver(8).solve_many(a, bs, x_true=x_true)
        for res in results:
            assert res.stability.forward_error is not None
            assert res.stability.forward_error < 1e-8

    def test_x_true_as_sequence_of_vectors(self, rng):
        """Regression: x_true in the same sequence form as bs is column-stacked."""
        n = 16
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        xs = [rng.standard_normal(n) for _ in range(2)]
        bs = [a @ x for x in xs]
        results = LUPPSolver(8).solve_many(a, bs, x_true=xs)
        for res in results:
            assert res.stability.forward_error < 1e-10  # not buffer-scrambled

    def test_shape_mismatch_raises(self, rng):
        a = rng.standard_normal((16, 16))
        with pytest.raises(ValueError):
            LUPPSolver(8).solve_many(a, np.ones((8, 2)))
        with pytest.raises(ValueError):
            LUPPSolver(8).solve_many(a, np.ones((16, 2)), x_true=np.ones((16, 3)))

    def test_solve_column_vector_b_keeps_shape(self, rng):
        """Regression: b of shape (n, 1) yields x of shape (n, 1) and sane metrics."""
        n = 16
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        b = rng.standard_normal((n, 1))
        res = LUPPSolver(8).solve(a, b)
        assert res.x.shape == (n, 1)
        assert res.hpl3 < 100  # no (n,) - (n,1) broadcast blow-up
        flat = LUPPSolver(8).solve(a, b[:, 0])
        np.testing.assert_array_equal(res.x[:, 0], flat.x)

    def test_single_1d_rhs_array(self, rng):
        """A plain 1-D b (the natural single-RHS call) is one column."""
        n = 16
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        b = rng.standard_normal(n)
        (res,) = LUPPSolver(8).solve_many(a, b)
        single = LUPPSolver(8).solve(a, b)
        np.testing.assert_allclose(res.x, single.x, atol=1e-13)


# --------------------------------------------------------------------------- #
# Incremental growth tracking
# --------------------------------------------------------------------------- #
class TestIncrementalGrowth:
    def test_matches_full_rescan(self, rng):
        """The cached incremental norms equal a from-scratch trailing rescan."""
        n = 72
        a = rng.standard_normal((n, n))
        b = rng.standard_normal(n)
        fact = HybridLUQRSolver(8, MaxCriterion(alpha=1.0)).factor(a, b)
        per_step = fact.growth.per_step
        assert len(per_step) == fact.n_steps

        # Brute-force recomputation: a solver whose steps report no write
        # information falls back to a full rescan of the trailing region.
        class BruteForce(HybridLUQRSolver):
            def _do_step(self, tiles, dist, k):
                record, tasks = self._plan_step(tiles, dist, k)
                for t in tasks:
                    t.fn()
                return record  # leaves _last_written = None

        fact_b = BruteForce(8, MaxCriterion(alpha=1.0)).factor(a, b)
        assert fact_b.growth.per_step == pytest.approx(per_step, rel=1e-12)

    def test_region_tile_norms_vectorized_matches_loop(self, rng):
        tiles = TileMatrix.from_dense(rng.standard_normal((40, 40)), 8)
        fast = tiles.region_tile_norms(1, 5, 2, 4)
        for di, i in enumerate(range(1, 5)):
            for dj, j in enumerate(range(2, 4)):
                assert fast[di, dj] == pytest.approx(tiles.tile_norm(i, j, ord=1))

    def test_region_tile_norms_bounds(self, rng):
        tiles = TileMatrix.from_dense(rng.standard_normal((16, 16)), 8)
        assert tiles.region_tile_norms(0, 0, 0, 2).shape == (0, 2)
        with pytest.raises(IndexError):
            tiles.region_tile_norms(0, 3, 0, 1)

    def test_growth_factor_unchanged_by_executor(self, rng):
        a = rng.standard_normal((48, 48))
        f_seq = LUPPSolver(8).factor(a)
        f_par = LUPPSolver(8, executor=ThreadedExecutor(workers=4)).factor(a)
        assert f_seq.growth.per_step == f_par.growth.per_step
