"""Tests of the pluggable kernel-backend layer.

Covers the registry plumbing (unknown names list the available backends,
``resolve_backend`` shares singletons), the numerical contract (the
``numpy`` backend is bit-identical to the sequential reference on every
executor; ``fused``/``jit`` meet backward-error tolerance on the
adversarial Table III matrices for all five solvers), the fused-task
bookkeeping (``fused`` counts flow into traces and are normalized by
``collect_samples``), the per-backend calibration format, autotuned
backend selection, and the facade threading of ``kernel_backend=``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.facade import SolverSpec, make_kernel_backend, make_solver
from repro.api.registry import KERNEL_BACKENDS, SOLVERS
from repro.kernels.backends import (
    FusedBackend,
    JitBackend,
    KernelBackend,
    NumpyBackend,
    numba_available,
    resolve_backend,
)
from repro.matrices import registry as matrix_registry
from repro.perf.autotune import autotune_config
from repro.perf.calibrate import (
    Calibration,
    calibration_path,
    clear_calibration_cache,
    collect_samples,
    run_calibration,
)
from repro.runtime.executor import ExecutionTrace, ThreadedExecutor
from repro.runtime.process_executor import ProcessExecutor
from repro.stability.metrics import normwise_backward_error

ALGORITHMS = ["hybrid", "lupp", "lu_nopiv", "lu_incpiv", "hqr"]

#: Adversarial Table III matrices on which all five solvers complete
#: (no LU NoPiv/IncPiv breakdown at this size).
SPECIAL_MATRICES = ["circul", "condex", "lehmer", "orthog", "house"]


@pytest.fixture()
def isolated_calibration(tmp_path, monkeypatch):
    path = tmp_path / "calibration.json"
    monkeypatch.setenv("REPRO_CALIBRATION", str(path))
    clear_calibration_cache()
    yield path
    clear_calibration_cache()


def _system(n=64, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(dtype)
    b = rng.standard_normal(n).astype(dtype)
    return a, b


# --------------------------------------------------------------------------- #
# Registry and resolution
# --------------------------------------------------------------------------- #
def test_unknown_backend_lists_available_options():
    with pytest.raises(ValueError, match="available:.*fused.*jit.*numpy"):
        KERNEL_BACKENDS.get("nope")
    with pytest.raises(ValueError, match="available:"):
        resolve_backend("nope")


def test_builtin_backends_are_registered():
    assert isinstance(KERNEL_BACKENDS.get("numpy"), type)
    for name, cls in [("numpy", NumpyBackend), ("fused", FusedBackend), ("jit", JitBackend)]:
        assert KERNEL_BACKENDS.get(name) is cls
    # Aliases resolve to the same classes.
    assert KERNEL_BACKENDS.get("reference") is NumpyBackend
    assert KERNEL_BACKENDS.get("batched") is FusedBackend
    assert KERNEL_BACKENDS.get("numba") is JitBackend


def test_auto_is_reserved_for_the_facade():
    with pytest.raises(ValueError, match="facade"):
        KERNEL_BACKENDS.get("auto")


def test_resolve_backend_shares_singletons():
    assert resolve_backend("fused") is resolve_backend("fused")
    assert resolve_backend("fused") is resolve_backend("batched")
    assert resolve_backend(None).name == "numpy"
    instance = FusedBackend()
    assert resolve_backend(instance) is instance
    assert make_kernel_backend("jit").name == "jit"


def test_backend_flags():
    assert not resolve_backend("numpy").fuses
    assert resolve_backend("fused").fuses
    assert resolve_backend("jit").fuses
    # warm() never raises, compiled or not.
    resolve_backend("jit").warm(8, np.float64)
    KernelBackend().warm(8)


def test_jit_backend_degrades_without_numba():
    backend = JitBackend()
    if not numba_available():
        assert not backend.jit_active
    # Either way the fused implementations must work.
    solver = SOLVERS.get("lupp")(tile_size=8, kernel_backend=backend)
    a, b = _system(32)
    ref = SOLVERS.get("lupp")(tile_size=8).solve(a, b)
    assert np.allclose(solver.solve(a, b).x, ref.x)


def test_jit_backend_compiles_with_numba():
    pytest.importorskip("numba")
    backend = JitBackend()
    assert backend.jit_active
    backend.warm(8, np.float64)
    a, b = _system(48)
    ref = SOLVERS.get("lupp")(tile_size=8).solve(a, b)
    res = SOLVERS.get("lupp")(tile_size=8, kernel_backend=backend).solve(a, b)
    assert normwise_backward_error(a, res.x, b) <= max(
        10.0 * normwise_backward_error(a, ref.x, b), 1e-12
    )


# --------------------------------------------------------------------------- #
# Numerical contract
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_numpy_backend_bit_identical_across_executors(algorithm):
    cls = SOLVERS.get(algorithm)
    a, b = _system(64)
    ref = cls(tile_size=16).solve(a, b)  # seed reference: no backend arg path
    for executor in [None, ThreadedExecutor(workers=4)]:
        res = cls(tile_size=16, kernel_backend="numpy", executor=executor).solve(a, b)
        assert np.array_equal(res.x, ref.x)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("backend", ["fused", "jit"])
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("matrix", SPECIAL_MATRICES)
def test_fused_backends_meet_backward_error_tolerance(
    algorithm, backend, dtype, matrix
):
    n = 48
    a = matrix_registry.build(matrix, n).astype(dtype)
    rng = np.random.default_rng(20140401)
    b = rng.standard_normal(n).astype(dtype)
    cls = SOLVERS.get(algorithm)
    ref = cls(tile_size=8, kernel_backend="numpy").solve(a, b)
    res = cls(tile_size=8, kernel_backend=backend).solve(a, b)
    be_ref = ref.stability.backward_error
    be = res.stability.backward_error
    # The fused plan replays per-column program order, so it tracks the
    # reference closely; allow headroom for reassociated stacked GEMMs.
    assert be <= max(10.0 * be_ref, 1e-12)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fused_backend_inline_matches_threaded(algorithm):
    cls = SOLVERS.get(algorithm)
    a, b = _system(64, seed=3)
    inline = cls(tile_size=16, kernel_backend="fused").solve(a, b)
    threaded = cls(
        tile_size=16, kernel_backend="fused", executor=ThreadedExecutor(workers=4)
    ).solve(a, b)
    assert np.array_equal(inline.x, threaded.x)


def test_fused_backend_on_process_executor():
    a, b = _system(64, seed=5)
    cls = SOLVERS.get("hybrid")
    ref = cls(tile_size=16, kernel_backend="fused").solve(a, b)
    res = cls(
        tile_size=16,
        kernel_backend="fused",
        executor=ProcessExecutor(workers=2),
    ).solve(a, b)
    assert np.array_equal(res.x, ref.x)


# --------------------------------------------------------------------------- #
# Fused-task bookkeeping
# --------------------------------------------------------------------------- #
def test_fused_tasks_carry_batch_counts():
    from repro.core.factorization import StepRecord
    from repro.core.lu_step import lu_step_tasks
    from repro.core.panel_analysis import analyze_panel
    from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid
    from repro.tiles.tile_matrix import TileMatrix

    a, _ = _system(64, seed=7)
    tiles = TileMatrix.from_dense(a + 4.0 * np.eye(64), 16)
    dist = BlockCyclicDistribution(ProcessGrid(1, 1), tiles.n)
    analysis = analyze_panel(tiles, dist, 0, domain_pivoting=True, recursive_panel=True)
    record = StepRecord(k=0, kind="LU")

    per_tile = lu_step_tasks(tiles, 0, analysis, StepRecord(k=0, kind="LU"))
    fused = lu_step_tasks(
        tiles, 0, analysis, record, backend=resolve_backend("fused")
    )
    per_tile_gemms = [t for t in per_tile if t.kernel == "gemm"]
    fused_gemms = [t for t in fused if t.kernel == "gemm"]
    assert len(fused_gemms) < len(per_tile_gemms)
    assert all(t.fused == tiles.n - 1 for t in fused_gemms)
    # Logical kernel counts are preserved (Table-I accounting).
    assert record.kernel_counts["gemm"] == len(per_tile_gemms)


def test_execution_trace_records_fused_counts():
    cls = SOLVERS.get("lupp")
    a, b = _system(64, seed=9)
    solver = cls(
        tile_size=16, kernel_backend="fused", executor=ThreadedExecutor(workers=2)
    )
    solver.solve(a, b)
    fused_counts = [
        m for trace in solver.step_traces for m in trace.fused_of_task.values()
    ]
    assert fused_counts and all(m > 1 for m in fused_counts)


def test_collect_samples_normalizes_fused_durations():
    trace = ExecutionTrace()
    trace.kernel_of_task = {0: "gemm"}
    trace.start_times = {0: 0.0}
    trace.finish_times = {0: 3.0}
    trace.fused_of_task = {0: 3}
    samples = collect_samples([trace], tile_size=16)
    assert samples[("gemm", 16)] == [1.0, 1.0, 1.0]


# --------------------------------------------------------------------------- #
# Per-backend calibration and autotuning
# --------------------------------------------------------------------------- #
def test_run_calibration_keeps_per_backend_tables(isolated_calibration):
    cal = run_calibration(
        n=48,
        tile_sizes=(8,),
        algorithms=("lupp",),
        kernel_backends=("numpy", "fused"),
    )
    assert "gemm" in cal.kernels
    assert "gemm" in cal.backends["fused"]
    assert set(cal.calibrated_backends()) == {"numpy", "fused"}
    on_disk = json.loads(isolated_calibration.read_text())
    assert on_disk["version"] == 2
    assert "fused" in on_disk["backends"]
    reloaded = Calibration.load(isolated_calibration)
    assert reloaded.n_samples == cal.n_samples
    assert reloaded.kernel_duration("gemm", 8, backend="fused") is not None


def test_calibration_view_prefers_backend_table():
    cal = Calibration()
    cal.add_samples({("gemm", 16): [4.0], ("trsm", 16): [2.0]})
    cal.add_samples({("gemm", 16): [1.0]}, backend="fused")
    view = cal.view("fused")
    assert view.kernel_duration("gemm", 16) == 1.0
    # Kernels the backend never observed fall back to the reference table.
    assert view.kernel_duration("trsm", 16) == 2.0
    assert cal.view("numpy") is cal
    assert cal.view(None) is cal


def test_calibration_v1_files_still_load():
    cal = Calibration()
    cal.add_samples({("gemm", 16): [1.0]})
    data = cal.to_dict()
    data["version"] = 1
    del data["backends"]
    loaded = Calibration.from_dict(data)
    assert loaded.kernel_duration("gemm", 16) == 1.0
    with pytest.raises(ValueError):
        Calibration.from_dict({"version": 99, "kernels": {}})


def _synthetic_calibration(gemm_numpy: float, gemm_fused: float) -> Calibration:
    cal = Calibration(host="test")
    kernels = ["getrf", "swptrsm", "trsm", "gemm", "gemm_rhs"]
    for nb in (8, 16):
        scale = (nb / 16.0) ** 3
        cal.add_samples(
            {(k, nb): [gemm_numpy * scale] * 4 for k in kernels}
        )
        cal.add_samples(
            {(k, nb): [gemm_fused * scale] * 4 for k in kernels},
            backend="fused",
        )
    return cal


def test_autotune_picks_the_faster_backend():
    fast_fused = _synthetic_calibration(gemm_numpy=1e-4, gemm_fused=1e-5)
    cfg = autotune_config(64, calibration=fast_fused, workers=1, kernel_backends="auto")
    assert cfg.source == "calibrated"
    assert cfg.kernel_backend == "fused"

    fast_numpy = _synthetic_calibration(gemm_numpy=1e-5, gemm_fused=1e-4)
    cfg = autotune_config(64, calibration=fast_numpy, workers=1, kernel_backends="auto")
    assert cfg.kernel_backend == "numpy"


def test_autotune_backend_tie_breaks_toward_fused():
    tied = _synthetic_calibration(gemm_numpy=1e-5, gemm_fused=1e-5)
    cfg = autotune_config(64, calibration=tied, workers=1, kernel_backends="auto")
    assert cfg.kernel_backend == "fused"


def test_autotune_without_backends_keeps_legacy_shape():
    cal = _synthetic_calibration(1e-5, 1e-5)
    cfg = autotune_config(64, calibration=cal, workers=1)
    assert cfg.kernel_backend is None


def test_autotune_fallback_backend_without_calibration():
    cfg = autotune_config(64, calibration=None, workers=1, kernel_backends="auto")
    assert cfg.source == "fallback"
    assert cfg.kernel_backend == "fused"


# --------------------------------------------------------------------------- #
# Facade threading
# --------------------------------------------------------------------------- #
def test_make_solver_threads_kernel_backend():
    for algorithm in ALGORITHMS:
        solver = make_solver(algorithm, tile_size=16, kernel_backend="fused")
        assert solver.kernel_backend.name == "fused"
    solver = make_solver("hybrid", tile_size=16)
    assert solver.kernel_backend.name == "numpy"


def test_make_solver_rejects_unknown_backend():
    with pytest.raises(ValueError, match="available:"):
        make_solver("hybrid", tile_size=16, kernel_backend="bogus")


def test_make_solver_resolves_auto_backend(isolated_calibration):
    solver = make_solver(
        "hybrid", tile_size=16, kernel_backend="auto", size_hint=64
    )
    # No calibration on disk: the fallback picks the fused sweep.
    assert solver.kernel_backend.name == "fused"


def test_solver_spec_carries_kernel_backend():
    spec = SolverSpec(algorithm="lupp", tile_size=16, kernel_backend="fused")
    solver = make_solver(spec)
    assert solver.kernel_backend.name == "fused"


def test_facade_solve_with_fused_backend_matches_reference():
    import repro

    a, b = _system(64, seed=11)
    ref = repro.solve(a, b, algorithm="hybrid", tile_size=16)
    res = repro.solve(a, b, algorithm="hybrid", tile_size=16, kernel_backend="fused")
    assert np.allclose(res.x, ref.x)
