"""Tests for the task-graph builder and the performance model."""

import numpy as np
import pytest

from repro import HybridLUQRSolver, MaxCriterion, ProcessGrid
from repro.core.dag_builder import (
    FactorizationSpec,
    build_task_graph,
    spec_from_factorization,
)
from repro.kernels.flops import fake_flops, true_flops
from repro.perf import PerformanceModel, dancer_platform
from repro.runtime.simulator import simulate


GRID = ProcessGrid(2, 2)


class TestFactorizationSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FactorizationSpec(n_tiles=3, tile_size=8, step_kinds=["LU"])
        with pytest.raises(ValueError):
            FactorizationSpec(n_tiles=2, tile_size=8, step_kinds=["LU", "XX"])

    def test_lu_fraction(self):
        spec = FactorizationSpec(4, 8, ["LU", "QR", "LU", "LU"])
        assert spec.lu_fraction == pytest.approx(0.75)

    def test_spec_from_factorization(self, rng):
        a = rng.standard_normal((32, 32)) + 4 * np.eye(32)
        fact = HybridLUQRSolver(8, MaxCriterion(10.0), grid=GRID).factor(a, np.ones(32))
        spec = spec_from_factorization(fact, grid=GRID)
        assert spec.n_tiles == 4
        assert spec.tile_size == 8
        assert spec.step_kinds == fact.step_kinds
        assert spec.decision_overhead
        assert spec.algorithm == "LUQR"


class TestBuildTaskGraph:
    def test_all_lu_task_count_matches_table1(self):
        n = 6
        spec = FactorizationSpec(n, 8, ["LU"] * n, algorithm="LU NoPiv",
                                 decision_overhead=False, grid=GRID)
        graph = build_task_graph(spec)
        counts = graph.kernel_counts()
        # Per step k: 1 getrf + (n-k-1) trsm + (n-k-1) swptrsm + (n-k-1)^2 gemm.
        assert counts["getrf"] == n
        expected_trsm = sum(n - k - 1 for k in range(n))
        assert counts["trsm"] == expected_trsm
        assert counts["swptrsm"] == expected_trsm
        assert counts["gemm"] == sum((n - k - 1) ** 2 for k in range(n))

    def test_hybrid_includes_decision_tasks(self):
        n = 4
        spec = FactorizationSpec(n, 8, ["LU", "QR", "LU", "LU"], algorithm="LUQR",
                                 decision_overhead=True, grid=GRID)
        graph = build_task_graph(spec)
        counts = graph.kernel_counts()
        assert counts["panel_backup"] == n
        assert counts["criterion_allreduce"] == n
        assert counts["panel_restore"] == 1  # only QR steps restore

    def test_lupp_has_pivot_exchange_per_step(self):
        n = 5
        spec = FactorizationSpec(n, 8, ["LU"] * n, algorithm="LUPP",
                                 decision_overhead=False, grid=GRID)
        counts = build_task_graph(spec).kernel_counts()
        assert counts["panel_pivot_exchange"] == n

    def test_incpiv_uses_pairwise_kernels(self):
        n = 4
        spec = FactorizationSpec(n, 8, ["LU"] * n, algorithm="LU IncPiv",
                                 decision_overhead=False, grid=GRID)
        counts = build_task_graph(spec).kernel_counts()
        assert "tstrf" in counts and "ssssm" in counts
        assert "trsm" not in counts

    def test_qr_steps_generate_qr_kernels(self):
        n = 5
        spec = FactorizationSpec(n, 8, ["QR"] * n, algorithm="HQR",
                                 decision_overhead=False, grid=GRID)
        counts = build_task_graph(spec).kernel_counts()
        assert counts.get("geqrt", 0) > 0
        assert counts.get("tsmqr", 0) + counts.get("ttmqr", 0) > 0
        assert "gemm" not in counts

    def test_owners_follow_block_cyclic(self):
        n = 4
        spec = FactorizationSpec(n, 8, ["LU"] * n, algorithm="LU NoPiv",
                                 decision_overhead=False, grid=GRID)
        graph = build_task_graph(spec)
        from repro.tiles import BlockCyclicDistribution

        dist = BlockCyclicDistribution(GRID, n)
        for task in graph.tasks:
            if task.kernel == "gemm":
                (i, j) = sorted(task.writes)[0]
                assert task.owner == dist.owner(i, j)

    def test_total_flops_close_to_formula(self):
        n, nb = 12, 32
        spec = FactorizationSpec(n, nb, ["LU"] * n, algorithm="LU NoPiv",
                                 decision_overhead=False, grid=GRID)
        graph = build_task_graph(spec)
        assert graph.total_flops() == pytest.approx(fake_flops(n * nb), rel=0.15)

    def test_graph_is_schedulable(self):
        spec = FactorizationSpec(5, 8, ["LU", "QR", "LU", "QR", "LU"], algorithm="LUQR",
                                 decision_overhead=True, grid=GRID)
        platform = dancer_platform(GRID)
        graph = build_task_graph(spec, platform=platform)
        sim = simulate(graph, platform, 8)
        assert sim.makespan > 0.0
        assert len(sim.schedule) == len(graph)


class TestPerformanceModel:
    @pytest.fixture(scope="class")
    def model(self):
        return PerformanceModel(dancer_platform(ProcessGrid(4, 4)))

    def _spec(self, kinds, algorithm, overhead):
        return FactorizationSpec(
            n_tiles=len(kinds), tile_size=64, step_kinds=list(kinds),
            algorithm=algorithm, decision_overhead=overhead, grid=ProcessGrid(4, 4),
        )

    def test_lu_faster_than_qr(self, model):
        n = 20
        lu = model.simulate_spec(self._spec(["LU"] * n, "LU NoPiv", False))
        qr = model.simulate_spec(self._spec(["QR"] * n, "HQR", False))
        assert lu.execution_time < qr.execution_time
        assert lu.fake_gflops > qr.fake_gflops

    def test_fake_vs_true_gflops(self, model):
        n = 16
        qr = model.simulate_spec(self._spec(["QR"] * n, "HQR", False))
        assert qr.true_gflops == pytest.approx(2.0 * qr.fake_gflops, rel=1e-9)
        lu = model.simulate_spec(self._spec(["LU"] * n, "LU NoPiv", False))
        assert lu.true_gflops == pytest.approx(lu.fake_gflops, rel=1e-9)

    def test_decision_overhead_costs_time(self, model):
        n = 16
        hqr = model.simulate_spec(self._spec(["QR"] * n, "HQR", False))
        luqr0 = model.simulate_spec(self._spec(["QR"] * n, "LUQR", True))
        overhead = luqr0.execution_time / hqr.execution_time - 1.0
        assert 0.0 < overhead < 0.6

    def test_hybrid_interpolates_between_extremes(self, model):
        n = 20
        all_lu = model.simulate_spec(self._spec(["LU"] * n, "LUQR", True))
        half = model.simulate_spec(self._spec((["LU", "QR"] * n)[:n], "LUQR", True))
        all_qr = model.simulate_spec(self._spec(["QR"] * n, "LUQR", True))
        assert all_lu.fake_gflops > half.fake_gflops > all_qr.fake_gflops

    def test_lupp_slower_than_lu_nopiv(self, model):
        n = 20
        nopiv = model.simulate_spec(self._spec(["LU"] * n, "LU NoPiv", False))
        lupp = model.simulate_spec(self._spec(["LU"] * n, "LUPP", False))
        assert lupp.execution_time > nopiv.execution_time

    def test_report_fields_and_row(self, model):
        n = 8
        rep = model.simulate_spec(self._spec(["LU"] * n, "LU NoPiv", False))
        assert rep.n_order == 8 * 64
        assert 0.0 < rep.fake_peak_fraction <= 1.0
        assert rep.platform_peak_gflops == pytest.approx(1091.0, rel=0.01)
        row = rep.as_row()
        assert set(row) >= {"algorithm", "N", "time_s", "fake_gflops", "true_gflops"}
        assert rep.lu_percentage == 100.0

    def test_simulate_factorization_end_to_end(self, rng):
        a = rng.standard_normal((48, 48)) + 4 * np.eye(48)
        fact = HybridLUQRSolver(8, MaxCriterion(20.0), grid=GRID).factor(a, np.ones(48))
        model = PerformanceModel(dancer_platform(GRID))
        rep = model.simulate_factorization(fact, grid=GRID)
        assert rep.algorithm == "LUQR"
        assert rep.n_tiles == 6
        assert rep.lu_fraction == pytest.approx(fact.lu_fraction)

    def test_true_flops_consistency_with_report(self, model):
        n = 10
        kinds = ["LU"] * 7 + ["QR"] * 3
        rep = model.simulate_spec(self._spec(kinds, "LUQR", True))
        expected_ratio = true_flops(rep.n_order, 0.7) / fake_flops(rep.n_order)
        assert rep.true_gflops / rep.fake_gflops == pytest.approx(expected_ratio, rel=1e-9)
