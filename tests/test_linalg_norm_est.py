"""Tests for the 1-norm condition estimator."""

import numpy as np
import pytest

from repro.linalg import (
    getrf,
    hager_norm1_estimate,
    inverse_norm1_estimate,
    inverse_norm1_exact,
    smallest_inverse_norm_from_lu,
)


class TestExact:
    def test_identity(self):
        assert inverse_norm1_exact(np.eye(5)) == pytest.approx(1.0)

    def test_diagonal(self):
        a = np.diag([2.0, 4.0, 0.5])
        assert inverse_norm1_exact(a) == pytest.approx(2.0)

    def test_singular_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            inverse_norm1_exact(np.zeros((3, 3)))


class TestHager:
    def test_estimates_explicit_matrix_norm(self, rng):
        # Estimate ||B||_1 for an explicit B through matvec callbacks.
        b = rng.standard_normal((12, 12))
        est = hager_norm1_estimate(lambda x: b @ x, lambda x: b.T @ x, 12)
        exact = np.linalg.norm(b, 1)
        assert est <= exact * (1.0 + 1e-10)
        assert est >= 0.3 * exact

    def test_exact_for_diagonal(self):
        d = np.diag([1.0, 10.0, 3.0])
        est = hager_norm1_estimate(lambda x: d @ x, lambda x: d @ x, 3)
        assert est == pytest.approx(10.0, rel=1e-10)


class TestInverseNormFromLU:
    def test_close_to_exact_on_random(self, rng):
        for _ in range(10):
            a = rng.standard_normal((10, 10)) + 2.0 * np.eye(10)
            lu, piv = getrf(a)
            est = inverse_norm1_estimate(lu, piv)
            exact = inverse_norm1_exact(a)
            assert est <= exact * (1.0 + 1e-8)
            assert est >= exact / 5.0

    def test_well_conditioned_reciprocal(self, rng):
        a = 3.0 * np.eye(6)
        lu, piv = getrf(a)
        assert smallest_inverse_norm_from_lu(lu, piv) == pytest.approx(3.0, rel=1e-8)

    def test_nearly_singular_gives_small_value(self, rng):
        a = rng.standard_normal((8, 8))
        a[:, 0] = a[:, 1] + 1e-12 * rng.standard_normal(8)  # nearly dependent columns
        lu, piv = getrf(a)
        value = smallest_inverse_norm_from_lu(lu, piv)
        assert value < 1e-8

    def test_ill_conditioned_smaller_than_well_conditioned(self, rng):
        well = rng.standard_normal((8, 8)) + 8.0 * np.eye(8)
        ill = well.copy()
        ill[:, -1] = ill[:, 0] + 1e-10 * rng.standard_normal(8)
        lu_w, piv_w = getrf(well)
        lu_i, piv_i = getrf(ill)
        assert smallest_inverse_norm_from_lu(lu_i, piv_i) < smallest_inverse_norm_from_lu(
            lu_w, piv_w
        )

    def test_exactly_singular_returns_zero(self):
        # A singular U factor (zero diagonal entry) must yield 0, not raise.
        lu = np.triu(np.ones((4, 4)))
        lu[2, 2] = 0.0
        piv = np.arange(4)
        assert smallest_inverse_norm_from_lu(lu, piv) == 0.0
