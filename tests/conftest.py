"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tiles import ProcessGrid


@pytest.fixture
def rng():
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_system(rng):
    """A well-conditioned 48x48 random system (6 tiles of 8)."""
    n = 48
    a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
    x = rng.standard_normal(n)
    b = a @ x
    return a, b, x


@pytest.fixture
def grid22():
    return ProcessGrid(2, 2)


@pytest.fixture
def grid41():
    return ProcessGrid(4, 1)
