"""Tests for the process grid and the 2D block-cyclic distribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiles import BlockCyclicDistribution, ProcessGrid


class TestProcessGrid:
    def test_size(self):
        assert ProcessGrid(4, 4).size == 16
        assert ProcessGrid(16, 1).size == 16
        assert ProcessGrid(1, 1).size == 1

    def test_rank_of_roundtrip(self):
        grid = ProcessGrid(3, 5)
        seen = set()
        for pr in range(3):
            for pc in range(5):
                rank = grid.rank_of(pr, pc)
                assert grid.coords_of(rank) == (pr, pc)
                seen.add(rank)
        assert seen == set(range(15))

    def test_rank_of_out_of_range(self):
        grid = ProcessGrid(2, 2)
        with pytest.raises(ValueError):
            grid.rank_of(2, 0)
        with pytest.raises(ValueError):
            grid.rank_of(0, -1)

    def test_coords_of_out_of_range(self):
        with pytest.raises(ValueError):
            ProcessGrid(2, 2).coords_of(4)

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            ProcessGrid(0, 3)
        with pytest.raises(ValueError):
            ProcessGrid(3, 0)

    def test_ranks_iterator(self):
        assert list(ProcessGrid(2, 3).ranks()) == list(range(6))


class TestBlockCyclicDistribution:
    def test_owner_coords_modular(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 3), 7)
        assert dist.owner_coords(0, 0) == (0, 0)
        assert dist.owner_coords(1, 2) == (1, 2)
        assert dist.owner_coords(2, 3) == (0, 0)
        assert dist.owner_coords(5, 4) == (1, 1)

    def test_every_tile_has_exactly_one_owner(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 5)
        owned = {}
        for rank in range(4):
            for tile in dist.local_tiles(rank):
                assert tile not in owned
                owned[tile] = rank
        assert len(owned) == 25

    def test_local_tile_count_matches_local_tiles(self):
        dist = BlockCyclicDistribution(ProcessGrid(3, 2), 8)
        for rank in range(6):
            assert dist.local_tile_count(rank) == len(dist.local_tiles(rank))

    def test_load_balance_when_divisible(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 8)
        counts = [dist.local_tile_count(r) for r in range(4)]
        assert counts == [16, 16, 16, 16]

    def test_is_local(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 4)
        owner = dist.owner(3, 2)
        assert dist.is_local(3, 2, owner)
        assert not dist.is_local(3, 2, (owner + 1) % 4)

    def test_panel_rows(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 6)
        assert dist.panel_rows(0) == [0, 1, 2, 3, 4, 5]
        assert dist.panel_rows(4) == [4, 5]

    def test_diagonal_domain_contains_diagonal(self):
        dist = BlockCyclicDistribution(ProcessGrid(4, 4), 10)
        for k in range(10):
            rows = dist.diagonal_domain_rows(k)
            assert rows[0] == k
            owner = dist.diagonal_owner(k)
            assert all(dist.owner(i, k) == owner for i in rows)

    def test_domains_partition_panel(self):
        dist = BlockCyclicDistribution(ProcessGrid(3, 2), 11)
        for k in (0, 3, 7):
            all_rows = []
            for _, rows in dist.domains(k):
                all_rows.extend(rows)
            assert sorted(all_rows) == dist.panel_rows(k)

    def test_domains_diagonal_first(self):
        dist = BlockCyclicDistribution(ProcessGrid(4, 1), 9)
        for k in range(9):
            first_rank, first_rows = dist.domains(k)[0]
            assert first_rank == dist.diagonal_owner(k)
            assert first_rows[0] == k

    def test_off_diagonal_domain_rows(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 6)
        k = 1
        diag = set(dist.diagonal_domain_rows(k))
        off = set(dist.off_diagonal_domain_rows(k))
        assert diag & off == set()
        assert diag | off == set(dist.panel_rows(k))

    def test_single_process_domain_covers_panel(self):
        dist = BlockCyclicDistribution(ProcessGrid(1, 1), 7)
        for k in range(7):
            assert dist.diagonal_domain_rows(k) == dist.panel_rows(k)

    def test_panel_owners_sorted_unique(self):
        dist = BlockCyclicDistribution(ProcessGrid(4, 4), 12)
        owners = dist.panel_owners(0)
        assert owners == sorted(set(owners))

    def test_errors(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 4)
        with pytest.raises(IndexError):
            dist.owner(4, 0)
        with pytest.raises(IndexError):
            dist.panel_rows(4)
        with pytest.raises(ValueError):
            BlockCyclicDistribution(ProcessGrid(2, 2), 0)

    @given(
        p=st.integers(1, 5),
        q=st.integers(1, 5),
        n=st.integers(1, 20),
        k=st.integers(0, 19),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_domain_rows_owned_by_diag_owner(self, p, q, n, k):
        if k >= n:
            return
        if p > n or q > n:
            # A grid larger than the tile matrix leaves ownerless
            # processes; construction rejects it (see __post_init__).
            with pytest.raises(ValueError):
                BlockCyclicDistribution(ProcessGrid(p, q), n)
            return
        dist = BlockCyclicDistribution(ProcessGrid(p, q), n)
        owner = dist.diagonal_owner(k)
        rows = dist.diagonal_domain_rows(k)
        assert rows and rows[0] == k
        assert all(dist.owner(i, k) == owner for i in rows)
        # Rows not in the domain are owned by someone else.
        for i in dist.off_diagonal_domain_rows(k):
            assert dist.owner(i, k) != owner
