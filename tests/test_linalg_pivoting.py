"""Tests for the pivoted-LU substrate and triangular solves."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    SingularPanelError,
    apply_row_pivots,
    getrf,
    getrf_nopiv,
    pivots_to_permutation,
    recursive_getrf,
    tiled_back_substitution,
    trsm_lower_left_unit,
    trsm_upper_left,
    trsm_upper_right,
)


def reconstruct_from_lu(lu, piv):
    """Rebuild the original matrix from packed LU factors and pivots."""
    m, k = lu.shape
    lo = np.tril(lu[:, :k], -1)
    lo[np.arange(k), np.arange(k)] = 1.0
    if m > k:
        lfull = np.zeros((m, k))
        lfull[:, :] = np.tril(lu, -1)[:, :k]
        lfull[np.arange(k), np.arange(k)] = 1.0
    else:
        lfull = lo
    u = np.triu(lu[:k, :k])
    pa = lfull @ u
    # Undo the pivoting: apply the swaps in reverse.
    return apply_row_pivots(pa.copy(), piv, inverse=True)


class TestGetrf:
    def test_square_reconstruction(self, rng):
        a = rng.standard_normal((8, 8))
        lu, piv = getrf(a)
        np.testing.assert_allclose(reconstruct_from_lu(lu, piv), a, atol=1e-12)

    def test_tall_reconstruction(self, rng):
        a = rng.standard_normal((20, 6))
        lu, piv = getrf(a)
        np.testing.assert_allclose(reconstruct_from_lu(lu, piv), a, atol=1e-12)

    def test_multipliers_bounded_by_one(self, rng):
        a = rng.standard_normal((16, 8))
        lu, _ = getrf(a)
        l_part = np.tril(lu, -1)
        assert np.max(np.abs(l_part)) <= 1.0 + 1e-12

    def test_matches_scipy(self, rng):
        a = rng.standard_normal((10, 10))
        lu, piv = getrf(a)
        lu_sp, piv_sp = sla.lu_factor(a)
        np.testing.assert_allclose(np.abs(np.diag(lu)), np.abs(np.diag(lu_sp)), rtol=1e-10)

    def test_wide_rejected(self, rng):
        with pytest.raises(ValueError):
            getrf(rng.standard_normal((3, 5)))

    def test_singular_raises(self):
        with pytest.raises(SingularPanelError):
            getrf(np.zeros((4, 4)))

    def test_input_not_modified(self, rng):
        a = rng.standard_normal((6, 6))
        a0 = a.copy()
        getrf(a)
        np.testing.assert_array_equal(a, a0)


class TestGetrfNoPiv:
    def test_reconstruction(self, rng):
        a = rng.standard_normal((8, 8)) + 8.0 * np.eye(8)
        lu = getrf_nopiv(a)
        lo = np.tril(lu, -1) + np.eye(8)
        u = np.triu(lu)
        np.testing.assert_allclose(lo @ u, a, atol=1e-10)

    def test_zero_diagonal_raises(self):
        a = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(SingularPanelError):
            getrf_nopiv(a)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            getrf_nopiv(rng.standard_normal((4, 3)))


class TestRecursiveGetrf:
    def test_matches_right_looking(self, rng):
        a = rng.standard_normal((24, 12))
        lu_r, piv_r = recursive_getrf(a, threshold=4)
        lu_p, piv_p = getrf(a)
        np.testing.assert_allclose(lu_r, lu_p, atol=1e-10)
        np.testing.assert_array_equal(piv_r, piv_p)

    def test_reconstruction(self, rng):
        a = rng.standard_normal((30, 10))
        lu, piv = recursive_getrf(a, threshold=3)
        np.testing.assert_allclose(reconstruct_from_lu(lu, piv), a, atol=1e-11)

    @given(m_extra=st.integers(0, 12), k=st.integers(1, 10), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_property_recursive_equals_plain(self, m_extra, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((k + m_extra, k))
        lu_r, piv_r = recursive_getrf(a, threshold=2)
        lu_p, piv_p = getrf(a)
        np.testing.assert_allclose(lu_r, lu_p, atol=1e-9)
        np.testing.assert_array_equal(piv_r, piv_p)


class TestPivotHelpers:
    def test_apply_row_pivots_roundtrip(self, rng):
        c = rng.standard_normal((6, 3))
        piv = np.array([3, 2, 5, 3, 4, 5])
        c2 = apply_row_pivots(c.copy(), piv)
        c3 = apply_row_pivots(c2, piv, inverse=True)
        np.testing.assert_allclose(c3, c)

    def test_pivots_to_permutation_consistent(self, rng):
        c = rng.standard_normal((7, 2))
        piv = np.array([2, 4, 6, 3])
        swapped = apply_row_pivots(c.copy(), piv)
        perm = pivots_to_permutation(piv, 7)
        np.testing.assert_allclose(c[perm], swapped)


class TestTriangularSolves:
    def test_trsm_upper_right(self, rng):
        u = np.triu(rng.standard_normal((6, 6))) + 6.0 * np.eye(6)
        b = rng.standard_normal((4, 6))
        x = trsm_upper_right(u, b)
        np.testing.assert_allclose(x @ u, b, atol=1e-10)

    def test_trsm_lower_left_unit(self, rng):
        lo = np.tril(rng.standard_normal((5, 5)), -1) + np.eye(5)
        b = rng.standard_normal((5, 3))
        x = trsm_lower_left_unit(lo, b)
        np.testing.assert_allclose(lo @ x, b, atol=1e-10)

    def test_trsm_upper_left(self, rng):
        u = np.triu(rng.standard_normal((5, 5))) + 5.0 * np.eye(5)
        b = rng.standard_normal((5, 2))
        x = trsm_upper_left(u, b)
        np.testing.assert_allclose(u @ x, b, atol=1e-10)

    def test_tiled_back_substitution_matches_numpy(self, rng):
        n, nb = 24, 6
        u = np.triu(rng.standard_normal((n, n))) + 4.0 * np.eye(n)
        # Fill the lower part with garbage that must be ignored.
        a = u + np.tril(rng.standard_normal((n, n)), -1) * 100.0
        x_true = rng.standard_normal(n)
        c = u @ x_true
        x = tiled_back_substitution(a, c, nb)
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_tiled_back_substitution_multiple_rhs(self, rng):
        n, nb = 16, 4
        u = np.triu(rng.standard_normal((n, n))) + 4.0 * np.eye(n)
        x_true = rng.standard_normal((n, 3))
        x = tiled_back_substitution(u, u @ x_true, nb)
        np.testing.assert_allclose(x, x_true, atol=1e-9)

    def test_tiled_back_substitution_bad_tile_size(self, rng):
        with pytest.raises(ValueError):
            tiled_back_substitution(np.eye(10), np.ones(10), 4)
