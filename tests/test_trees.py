"""Tests for the reduction trees of the HQR elimination step."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiles import BlockCyclicDistribution, ProcessGrid
from repro.trees import (
    BinaryTree,
    Elimination,
    FibonacciTree,
    FlatTree,
    GreedyTree,
    HierarchicalTree,
    elimination_depth,
    fibonacci_batches,
    validate_eliminations,
)

ALL_TREES = [FlatTree(), BinaryTree(), GreedyTree(), FibonacciTree()]


class TestElimination:
    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Elimination(killed=1, eliminator=0, kind="XX")

    def test_self_elimination_rejected(self):
        with pytest.raises(ValueError):
            Elimination(killed=2, eliminator=2, kind="TS")


class TestValidation:
    def test_valid_flat_list(self):
        rows = [3, 4, 5, 6]
        elims = FlatTree().eliminations(rows)
        validate_eliminations(rows, elims)

    def test_detects_double_kill(self):
        rows = [0, 1, 2]
        elims = [
            Elimination(1, 0, "TS"),
            Elimination(1, 0, "TS"),
            Elimination(2, 0, "TS"),
        ]
        with pytest.raises(ValueError):
            validate_eliminations(rows, elims)

    def test_detects_missing_kill(self):
        rows = [0, 1, 2]
        with pytest.raises(ValueError):
            validate_eliminations(rows, [Elimination(1, 0, "TS")])

    def test_detects_dead_eliminator(self):
        rows = [0, 1, 2]
        elims = [Elimination(1, 0, "TS"), Elimination(2, 1, "TS")]
        with pytest.raises(ValueError):
            validate_eliminations(rows, elims)

    def test_detects_killed_root(self):
        rows = [0, 1]
        with pytest.raises(ValueError):
            validate_eliminations(rows, [Elimination(0, 1, "TT")])

    def test_empty_panel_rejected(self):
        with pytest.raises(ValueError):
            validate_eliminations([], [])


class TestTreeShapes:
    @pytest.mark.parametrize("tree", ALL_TREES, ids=lambda t: t.name)
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13, 17])
    def test_all_trees_valid(self, tree, size):
        rows = list(range(10, 10 + size))
        elims = tree.eliminations(rows)
        validate_eliminations(rows, elims)
        assert len(elims) == size - 1

    def test_flat_depth_is_linear(self):
        rows = list(range(9))
        assert FlatTree().depth(rows) == 8

    def test_binary_depth_is_logarithmic(self):
        rows = list(range(16))
        assert BinaryTree().depth(rows) == 4
        assert BinaryTree().depth(list(range(17))) == 5

    def test_greedy_depth_is_logarithmic(self):
        for size in (2, 4, 8, 16, 31):
            depth = GreedyTree().depth(list(range(size)))
            assert depth <= math.ceil(math.log2(size)) + 1

    def test_greedy_beats_flat(self):
        rows = list(range(20))
        assert GreedyTree().depth(rows) < FlatTree().depth(rows)

    def test_fibonacci_depth_between_flat_and_binary(self):
        rows = list(range(21))
        fib = FibonacciTree().depth(rows)
        assert fib < FlatTree().depth(rows)

    def test_flat_uses_ts_only(self):
        elims = FlatTree().eliminations([0, 1, 2, 3])
        assert all(e.kind == "TS" for e in elims)
        assert all(e.eliminator == 0 for e in elims)

    def test_binary_uses_tt_only(self):
        elims = BinaryTree().eliminations([0, 1, 2, 3, 4])
        assert all(e.kind == "TT" for e in elims)

    def test_single_row_no_eliminations(self):
        for tree in ALL_TREES:
            assert tree.eliminations([7]) == []

    def test_fibonacci_batches(self):
        assert fibonacci_batches(0) == []
        assert fibonacci_batches(1) == [1]
        assert fibonacci_batches(7) == [1, 1, 2, 3]
        assert sum(fibonacci_batches(23)) == 23

    @given(size=st.integers(1, 40), start=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_property_all_trees_reduce_to_root(self, size, start):
        rows = list(range(start, start + size))
        for tree in ALL_TREES:
            elims = tree.eliminations(rows)
            validate_eliminations(rows, elims)
            killed = {e.killed for e in elims}
            assert rows[0] not in killed
            assert killed == set(rows[1:])


class TestEliminationDepth:
    def test_empty(self):
        assert elimination_depth([]) == 0

    def test_chain(self):
        elims = [Elimination(i, 0, "TS") for i in range(1, 6)]
        assert elimination_depth(elims) == 5

    def test_independent_pairs(self):
        elims = [Elimination(1, 0, "TT"), Elimination(3, 2, "TT")]
        assert elimination_depth(elims) == 1


class TestHierarchicalTree:
    def test_without_distribution_uses_intra_tree(self):
        tree = HierarchicalTree(intra_tree=FlatTree())
        rows = [2, 3, 4, 5]
        assert tree.eliminations(rows) == FlatTree().eliminations(rows)

    def test_valid_with_distribution(self):
        dist = BlockCyclicDistribution(ProcessGrid(4, 1), 13)
        for k in (0, 2, 5, 11):
            rows = list(range(k, 13))
            tree = HierarchicalTree(distribution=dist, step=k)
            elims = tree.eliminations_for_step(k, rows)
            validate_eliminations(rows, elims)

    def test_inter_domain_merges_are_tt(self):
        dist = BlockCyclicDistribution(ProcessGrid(4, 1), 12)
        tree = HierarchicalTree(distribution=dist, intra_tree=FlatTree(), step=0)
        elims = tree.eliminations_for_step(0, list(range(12)))
        # The per-domain survivors are rows 0..3 (one per process row); the
        # merges between them must be TT kernels.
        inter = [e for e in elims if e.killed in (1, 2, 3)]
        assert inter and all(e.kind == "TT" for e in inter)

    def test_domain_eliminations_stay_local(self):
        dist = BlockCyclicDistribution(ProcessGrid(4, 1), 16)
        tree = HierarchicalTree(distribution=dist, step=0)
        elims = tree.eliminations_for_step(0, list(range(16)))
        inter_count = 0
        for e in elims:
            if dist.owner(e.killed, 0) != dist.owner(e.eliminator, 0):
                inter_count += 1
        # Only the (p - 1) = 3 inter-domain merges cross node boundaries.
        assert inter_count == 3

    def test_empty_rows(self):
        tree = HierarchicalTree()
        assert tree.eliminations([]) == []

    def test_default_trees(self):
        tree = HierarchicalTree()
        assert isinstance(tree.intra_tree, GreedyTree)
        assert isinstance(tree.inter_tree, FibonacciTree)
