"""Tests for the static resource analyzer.

Covers the three passes (shape/dtype abstract interpretation, tile
liveness / peak-memory certification, placement & communication
analysis), their wiring through ``audit()``, the corruption fixtures,
the registry signature lint, and the distribution validation fixes.
"""

import json

import numpy as np
import pytest

from repro import analysis
from repro.analysis.corruption import (
    corrupt_cross_domain_pivot,
    corrupt_dtype_dropping_kernel,
    corrupt_factor_shape,
    corrupt_fused_sweep_range,
    corrupt_wrong_owner,
    run_corruption_suite,
)
from repro.api.cli import main as cli_main
from repro.api.facade import make_solver
from repro.kernels.dispatch import KERNEL_SIGNATURES, KERNELS, KernelSignature, OpEffect
from repro.runtime.graph import TaskGraph
from repro.runtime.schedule import StepPipeline
from repro.tiles.distribution import BlockCyclicDistribution, ProcessGrid

ALGORITHMS = ("lu_nopiv", "lupp", "lu_incpiv", "hqr", "hybrid")
GRIDS = ("1x1", "2x2", "4x1")


def _system(dtype=np.float64, n=16, seed=0):
    rng = np.random.default_rng(seed)
    a = (rng.standard_normal((n, n)) + n * np.eye(n)).astype(dtype)
    b = rng.standard_normal(n).astype(dtype)
    return a, b


# --------------------------------------------------------------------- #
# Clean matrix: every solver x dtype x lookahead x grid audits clean
# --------------------------------------------------------------------- #
class TestCleanMatrix:
    @pytest.mark.parametrize("grid", GRIDS)
    @pytest.mark.parametrize("lookahead", [0, 2])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_audit_clean(self, algorithm, dtype, lookahead, grid):
        a, b = _system(dtype)
        solver = make_solver(
            algorithm,
            tile_size=4,
            grid=grid,
            executor="threaded(workers=2)",
            lookahead=lookahead,
        )
        report = analysis.audit(solver, a, b, lint=False)
        assert report.ok, [str(v) for v in report.violations]
        # Both passes certified a peak-memory bound.
        assert report.resources["memory[plan]"]["peak_bytes"] > 0
        assert report.resources["memory[executed]"]["peak_bytes"] > 0
        assert "placement[plan]" in report.resources

    @pytest.mark.parametrize("backend", [None, "fused", "jit"])
    @pytest.mark.parametrize("grid", ["2x2", "4x1"])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_audit_clean_backends(self, algorithm, backend, grid):
        solver = make_solver(
            algorithm, tile_size=4, grid=grid, kernel_backend=backend
        )
        report = analysis.audit(solver, lint=False)
        assert report.ok, [str(v) for v in report.violations]
        assert report.resources["memory[plan]"]["peak_bytes"] > 0


# --------------------------------------------------------------------- #
# Liveness: certified bound dominates the traced high-water mark
# --------------------------------------------------------------------- #
class TestLiveness:
    @pytest.mark.parametrize(
        "executor", ["sequential", "threaded(workers=2)", "processes(workers=2)"]
    )
    def test_bound_dominates_traced_high_water(self, executor):
        solver = make_solver(
            "hqr", tile_size=4, grid="2x2", executor=executor, lookahead=2
        )
        report = analysis.audit(solver, lint=False)
        assert report.ok, [str(v) for v in report.violations]
        # No peak-bound-violated finding means the certified bound covered
        # the traced overlap; check the numbers directly too.
        solver2 = make_solver(
            "hqr", tile_size=4, grid="2x2", executor=executor, lookahead=2
        )
        solver2.collect_step_graphs = True
        a, b = _system()
        solver2.factor(a, b)
        ctx = analysis.make_context(4, 4, 1, np.float64)
        intervals = analysis.collect_product_intervals(solver2.step_graphs, ctx)
        cert = analysis.certify_peak_memory(
            solver2.step_graphs, ctx, mode="window", intervals=intervals
        )
        traced = analysis.traced_product_peak(solver2.step_traces, intervals)
        if traced is not None:
            assert cert.product_peak_bytes >= traced

    def test_sequential_mode_and_admission(self):
        solver = make_solver("hqr", tile_size=4)
        graph, ctx, _dist = analysis.capture_plan(solver)
        violations, cert = analysis.analyze_liveness(
            [graph], ctx, mode="sequential"
        )
        assert not violations
        assert cert.peak_bytes == cert.base_bytes + cert.product_peak_bytes
        assert cert.base_bytes == analysis.tile_storage_bytes(ctx, itemsize=8)
        # An impossible admission limit is flagged.
        violations, _ = analysis.analyze_liveness(
            [graph], ctx, mode="sequential", max_memory=1
        )
        assert any(v.kind == "memory-admission" for v in violations)
        with pytest.raises(ValueError):
            analysis.certify_peak_memory([graph], ctx, mode="bogus")

    def test_window_bound_at_least_sequential(self):
        # The window (flush-granular) bound is coarser than the
        # position-granular sequential sweep over the same graphs.
        solver = make_solver(
            "hqr", tile_size=4, executor="threaded(workers=2)", lookahead=2
        )
        solver.collect_step_graphs = True
        a, b = _system()
        solver.factor(a, b)
        ctx = analysis.make_context(4, 4, 1, np.float64)
        seq = analysis.certify_peak_memory(
            solver.step_graphs, ctx, mode="sequential"
        )
        win = analysis.certify_peak_memory(solver.step_graphs, ctx, mode="window")
        assert win.product_peak_bytes >= seq.product_peak_bytes

    def test_audit_admission_check(self):
        solver = make_solver("hqr", tile_size=4)
        report = analysis.audit(solver, lint=False, max_memory=1)
        assert not report.ok
        assert any(v.kind == "memory-admission" for v in report.violations)


# --------------------------------------------------------------------- #
# Placement: LUPP panel-wide pivoting is priced, not flagged
# --------------------------------------------------------------------- #
class TestPlacement:
    def test_lupp_panel_wide_pivot_priced(self):
        solver = make_solver("lupp", tile_size=4, grid="2x2")
        graph, ctx, dist = analysis.capture_plan(solver)
        analysis.assign_owners([graph], dist, ctx)
        violations, summary = analysis.analyze_placement([graph], dist, ctx)
        assert not violations
        assert summary.panel_wide_pivot_steps > 0

    def test_lu_diagonal_domain_invariant(self):
        for algorithm in ("lu_nopiv", "hybrid"):
            solver = make_solver(algorithm, tile_size=4, grid="2x2")
            graph, ctx, dist = analysis.capture_plan(solver)
            analysis.assign_owners([graph], dist, ctx)
            violations, summary = analysis.analyze_placement([graph], dist, ctx)
            assert not violations
            assert summary.diagonal_pivot_steps > 0

    def test_single_node_has_no_cross_traffic(self):
        solver = make_solver("hybrid", tile_size=4, grid="1x1")
        graph, ctx, dist = analysis.capture_plan(solver)
        analysis.assign_owners([graph], dist, ctx)
        violations, summary = analysis.analyze_placement([graph], dist, ctx)
        assert not violations
        assert summary.cross_messages == 0
        assert summary.cross_bytes == 0
        assert summary.product_messages == 0

    def test_comm_volume_priced_by_platform(self):
        from repro.runtime.platform import dancer_platform

        solver = make_solver("hqr", tile_size=4, grid="2x2")
        graph, ctx, dist = analysis.capture_plan(solver)
        analysis.assign_owners([graph], dist, ctx)
        _, summary = analysis.analyze_placement(
            [graph], dist, ctx, platform=dancer_platform(dist.grid)
        )
        assert summary.cross_messages > 0
        assert summary.comm_seconds > 0
        assert summary.critical_path_comm_seconds > 0
        assert summary.critical_path_comm_seconds <= summary.comm_seconds
        edges = summary.as_dict()["edge_messages"]
        assert sum(edges.values()) == summary.cross_messages + summary.product_messages


# --------------------------------------------------------------------- #
# Corruption fixtures: every seeded defect must be flagged
# --------------------------------------------------------------------- #
class TestCorruption:
    def test_wrong_owner_detected(self):
        kinds = {v.kind for v in corrupt_wrong_owner()}
        assert "wrong-owner" in kinds

    def test_cross_domain_pivot_detected(self):
        kinds = {v.kind for v in corrupt_cross_domain_pivot()}
        assert "cross-domain-pivot" in kinds

    def test_dtype_dropping_kernel_detected(self):
        kinds = {v.kind for v in corrupt_dtype_dropping_kernel()}
        assert "dtype-mismatch" in kinds

    def test_fused_range_detected(self):
        kinds = {v.kind for v in corrupt_fused_sweep_range()}
        assert "read-set-mismatch" in kinds
        assert "write-set-mismatch" in kinds

    def test_factor_shape_detected(self):
        kinds = {v.kind for v in corrupt_factor_shape()}
        assert "shape-mismatch" in kinds

    def test_suite_all_detected(self):
        suite = run_corruption_suite()
        assert suite, "suite must not be empty"
        for name, entry in suite.items():
            assert entry["detected"], f"corruption {name!r} went unnoticed"

    def test_fixture_kernel_cleanup(self):
        corrupt_dtype_dropping_kernel()
        assert "fixture.dtype_drop" not in KERNELS
        assert "fixture.dtype_drop" not in KERNEL_SIGNATURES


# --------------------------------------------------------------------- #
# Registry lint: signature drift in both directions
# --------------------------------------------------------------------- #
class TestSignatureLint:
    def test_registries_clean(self):
        assert analysis.lint_registries() == []

    def test_every_kernel_has_signature(self):
        assert set(KERNELS) == set(KERNEL_SIGNATURES)

    def test_missing_signature_flagged(self):
        KERNELS["fixture.nosig"] = lambda *a: None
        try:
            kinds = {v.kind for v in analysis.lint_registries()}
            assert "missing-kernel-signature" in kinds
        finally:
            del KERNELS["fixture.nosig"]

    def test_orphan_signature_flagged(self):
        KERNEL_SIGNATURES["fixture.orphan"] = KernelSignature(
            effect=lambda call, step, ctx: OpEffect(
                reads=frozenset(), writes=frozenset()
            )
        )
        try:
            kinds = {v.kind for v in analysis.lint_registries()}
            assert "orphan-kernel-signature" in kinds
        finally:
            del KERNEL_SIGNATURES["fixture.orphan"]


# --------------------------------------------------------------------- #
# Distribution validation fixes
# --------------------------------------------------------------------- #
class TestDistributionValidation:
    def test_grid_larger_than_tile_count_rejected(self):
        with pytest.raises(ValueError, match="larger than"):
            BlockCyclicDistribution(ProcessGrid(4, 4), 3)
        with pytest.raises(ValueError, match="larger than"):
            BlockCyclicDistribution(ProcessGrid(1, 5), 4)
        # Equality is fine: every process owns exactly one row/column.
        BlockCyclicDistribution(ProcessGrid(4, 4), 4)

    def test_is_local_rejects_bad_rank(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 4)
        with pytest.raises(ValueError, match="rank"):
            dist.is_local(0, 0, 99)

    def test_rhs_owner(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 4)
        for i in range(4):
            prow, pcol = dist.grid.coords_of(dist.rhs_owner(i))
            assert prow == i % 2
            assert pcol == 4 % 2
        with pytest.raises(IndexError):
            dist.rhs_owner(4)
        with pytest.raises(IndexError):
            dist.rhs_owner(-1)


# --------------------------------------------------------------------- #
# Runtime hooks: tile_intervals and pipeline window spans
# --------------------------------------------------------------------- #
class TestRuntimeHooks:
    def test_tile_intervals(self):
        graph = TaskGraph()
        graph.add_task("a", step=0, writes={(0, 0)})
        graph.add_task("b", step=0, reads={(0, 0)}, writes={(1, 0)})
        graph.add_task("c", step=1, reads={(1, 0)})
        intervals = graph.tile_intervals()
        assert intervals[(0, 0)] == (0, 1)
        assert intervals[(1, 0)] == (1, 2)
        offset = graph.tile_intervals(offset=10)
        assert offset[(0, 0)] == (10, 11)

    def test_pipeline_window_spans(self, monkeypatch):
        captured = {}
        orig = StepPipeline.flush_all

        def spy(self):
            captured["pipeline"] = self
            return orig(self)

        monkeypatch.setattr(StepPipeline, "flush_all", spy)
        solver = make_solver(
            "lu_nopiv", tile_size=4, executor="threaded(workers=2)", lookahead=2
        )
        solver.collect_step_graphs = True
        a, b = _system()
        solver.factor(a, b)
        pipeline = captured["pipeline"]
        assert len(pipeline.window_spans) == len(pipeline.graphs)
        for lo, hi in pipeline.window_spans:
            assert lo <= hi
            assert hi - lo <= solver.lookahead
        # Flushes drain in step order.
        los = [lo for lo, _ in pipeline.window_spans]
        assert los == sorted(los)


# --------------------------------------------------------------------- #
# Machine-readable output
# --------------------------------------------------------------------- #
class TestJsonOutput:
    def test_report_as_dict_round_trips(self):
        solver = make_solver("hybrid", tile_size=4, grid="2x2")
        report = analysis.audit(solver, lint=False)
        payload = json.loads(json.dumps(report.as_dict(), default=str))
        assert payload["ok"] is True
        assert "memory[plan]" in payload["resources"]
        assert "placement[plan]" in payload["resources"]
        assert payload["checked"]["kernels"] > 0

    def test_cli_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = cli_main(
            [
                "--algorithm",
                "hybrid",
                "--tile-size",
                "4",
                "--grid",
                "2x2",
                "--json",
                str(out),
            ]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["hybrid"]["ok"] is True
        assert "memory[plan]" in payload["hybrid"]["resources"]

    def test_cli_max_memory_fails(self):
        rc = cli_main(
            [
                "--algorithm",
                "hybrid",
                "--tile-size",
                "4",
                "--max-memory",
                "1",
            ]
        )
        assert rc == 1
