"""Tests for the public API: spec parser, registries, and the facades."""

import numpy as np
import pytest

import repro
from repro.api import CRITERIA, EXECUTORS, SOLVERS, TREES, SpecError, parse_spec
from repro.api.facade import SolverSpec, make_executor, make_grid, make_solver
from repro.core.solver_base import TiledSolverBase
from repro.criteria.base import RobustnessCriterion
from repro.runtime import SequentialExecutor, ThreadedExecutor
from repro.tiles import ProcessGrid
from repro.trees.base import ReductionTree


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("fibonacci") == ("fibonacci", (), {})

    def test_name_with_kwargs(self):
        assert parse_spec("max(alpha=50)") == ("max", (), {"alpha": 50})

    def test_float_bool_string_values(self):
        name, args, kwargs = parse_spec("random(lu_probability=0.25, seed=3)")
        assert name == "random"
        assert kwargs == {"lu_probability": 0.25, "seed": 3}
        assert parse_spec("x(flag=True)")[2] == {"flag": True}
        assert parse_spec("x(mode='fast')")[2] == {"mode": "fast"}
        # bare identifiers parse as strings so nested names need no quoting
        assert parse_spec("x(tree=fibonacci)")[2] == {"tree": "fibonacci"}

    def test_positional_args(self):
        assert parse_spec("max(50)") == ("max", (50,), {})

    def test_whitespace_tolerant(self):
        assert parse_spec("  threaded( workers = 4 ) ") == (
            "threaded", (), {"workers": 4},
        )

    def test_positional_after_keyword_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("max(alpha=1, 2)")

    def test_malformed_specs_rejected(self):
        for bad in ("", "1max", "max(", "max)"):
            with pytest.raises(SpecError):
                parse_spec(bad)
        with pytest.raises(SpecError):
            parse_spec(None)


class TestRegistries:
    # Superset checks (not equality): the registries are process-global and
    # open to user plugins, so other tests may have extended them.
    def test_every_builtin_criterion_round_trips(self):
        assert {"always_lu", "always_qr", "max", "mumps", "random", "sum"} <= set(
            CRITERIA.names()
        )
        for name in CRITERIA.names():
            crit = CRITERIA.create(name)
            assert isinstance(crit, RobustnessCriterion)

    def test_every_builtin_tree_round_trips(self):
        assert {"binary", "fibonacci", "flat", "greedy"} <= set(TREES.names())
        for name in TREES.names():
            assert isinstance(TREES.create(name), ReductionTree)

    def test_every_builtin_executor_round_trips(self):
        assert {"sequential", "threaded"} <= set(EXECUTORS.names())
        assert isinstance(EXECUTORS.create("sequential"), SequentialExecutor)
        threaded = EXECUTORS.create("threaded(workers=2)")
        assert isinstance(threaded, ThreadedExecutor)
        assert threaded.workers == 2

    def test_every_builtin_solver_round_trips(self):
        assert {"hqr", "hybrid", "lu_incpiv", "lu_nopiv", "lupp"} <= set(
            SOLVERS.names()
        )
        for name in SOLVERS.names():
            solver = make_solver(algorithm=name, tile_size=8)
            assert isinstance(solver, TiledSolverBase)
            assert solver.tile_size == 8

    def test_kwarg_spec_configures_instance(self):
        crit = CRITERIA.create("max(alpha=50)")
        assert crit.alpha == 50.0
        crit = CRITERIA.create("sum(alpha=1e-3)")
        assert crit.alpha == 1e-3

    def test_aliases_resolve_to_same_factory(self):
        assert SOLVERS.get("luqr") is SOLVERS.get("hybrid")
        assert SOLVERS.get("nopiv") is SOLVERS.get("lu_nopiv")
        assert CRITERIA.get("always-lu") is CRITERIA.get("always_lu")

    def test_lookup_is_case_insensitive(self):
        assert CRITERIA.get("MAX") is CRITERIA.get("max")

    def test_unknown_name_error_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            CRITERIA.get("frobnicate")
        message = str(excinfo.value)
        assert "frobnicate" in message
        for name in CRITERIA.names():
            assert name in message

        with pytest.raises(ValueError, match="hqr, hybrid, lu_incpiv, lu_nopiv, lupp"):
            SOLVERS.get("gauss")
        with pytest.raises(ValueError, match="binary, fibonacci, flat, greedy"):
            TREES.get("bushy")
        with pytest.raises(ValueError, match="sequential, threaded"):
            EXECUTORS.get("gpu")

    def test_instance_passes_through(self):
        crit = repro.MaxCriterion(alpha=7.0)
        assert CRITERIA.create(crit) is crit

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @repro.register_criterion("max")
            class Impostor:
                pass

    def test_registration_under_taken_alias_rejected(self):
        # "seq" is an alias of "sequential": a plugin must not shadow it,
        # in either direction (canonical-over-alias or alias-over-canonical).
        with pytest.raises(ValueError, match="already registered"):
            @repro.register_executor("seq")
            class AliasImpostor:
                pass
        with pytest.raises(ValueError, match="already registered"):
            @repro.register_executor("myexec", aliases=("threaded",))
            class CanonicalShadow:
                pass
        assert "myexec" not in EXECUTORS.names()

    def test_unregister_removes_name_and_aliases(self):
        @repro.register_criterion("ephemeral_test_only", aliases=("eto",))
        class Ephemeral(repro.MaxCriterion):
            pass

        assert CRITERIA.get("eto") is Ephemeral
        CRITERIA.unregister("eto")  # alias resolves to the canonical name
        assert "ephemeral_test_only" not in CRITERIA.names()
        with pytest.raises(ValueError):
            CRITERIA.get("eto")
        with pytest.raises(ValueError):
            CRITERIA.unregister("ephemeral_test_only")


class TestMakeSolver:
    def test_defaults_match_hand_constructed(self):
        via_api = make_solver(algorithm="hybrid", tile_size=8)
        by_hand = repro.HybridLUQRSolver(tile_size=8)
        assert type(via_api) is type(by_hand)
        assert via_api.criterion.alpha == by_hand.criterion.alpha
        assert type(via_api.intra_tree) is type(by_hand.intra_tree)
        assert type(via_api.inter_tree) is type(by_hand.inter_tree)
        assert via_api.grid == by_hand.grid

    def test_accepts_spec_dataclass_dict_and_name(self):
        spec = SolverSpec(algorithm="hqr", tile_size=8, inter_tree="binary")
        for built in (
            make_solver(spec),
            make_solver({"algorithm": "hqr", "tile_size": 8, "inter_tree": "binary"}),
            make_solver("hqr", tile_size=8, inter_tree="binary"),
        ):
            assert built.algorithm == "HQR"
            assert type(built.inter_tree).__name__ == "BinaryTree"

    def test_grid_specs(self):
        assert make_grid((2, 3)) == ProcessGrid(2, 3)
        assert make_grid("4x1") == ProcessGrid(4, 1)
        g = ProcessGrid(2, 2)
        assert make_grid(g) is g
        assert make_grid(None) is None
        with pytest.raises(ValueError):
            make_grid("hexagonal")

    def test_executor_specs(self):
        assert make_executor(None) is None
        assert make_executor("none") is None
        assert make_executor("inline") is None
        assert isinstance(make_executor("sequential"), SequentialExecutor)
        ex = ThreadedExecutor(workers=3)
        assert make_executor(ex) is ex

    def test_algorithm_specific_options_pass_through(self):
        solver = make_solver(
            algorithm="hybrid", tile_size=8, domain_pivoting=False,
        )
        assert solver.domain_pivoting is False
        # options may also ride on the algorithm spec itself
        solver = make_solver(algorithm="hybrid(recursive_panel=False)", tile_size=8)
        assert solver.recursive_panel is False

    def test_criterion_on_baseline_rejected(self):
        with pytest.raises(ValueError, match="does not accept a criterion"):
            make_solver(algorithm="lupp", tile_size=8, criterion="max")

    def test_unknown_option_rejected_with_accepted_list(self):
        with pytest.raises(ValueError, match="accepted:"):
            make_solver(algorithm="hybrid", tile_size=8, warp_speed=9)

    def test_tile_size_none_uses_facade_default(self):
        """Regression: ``tile_size=None`` used to crash with ``int(None)``."""
        from repro.api.facade import DEFAULT_TILE_SIZE

        solver = make_solver("lupp", tile_size=None)
        assert solver.tile_size == DEFAULT_TILE_SIZE
        # also through the spec-dataclass path
        assert make_solver(SolverSpec(algorithm="hybrid", tile_size=None)
                           ).tile_size == DEFAULT_TILE_SIZE

    def test_tile_size_none_keeps_plugin_constructor_default(self):
        """``None`` means the *algorithm's* default when one is declared."""
        @repro.register_solver("defaulted_tile_test_only")
        class DefaultedSolver:
            algorithm = "defaulted"

            def __init__(self, tile_size=17):
                self.tile_size = tile_size

        try:
            assert make_solver("defaulted_tile_test_only",
                               tile_size=None).tile_size == 17
            assert make_solver("defaulted_tile_test_only",
                               tile_size=8).tile_size == 8
        finally:
            SOLVERS.unregister("defaulted_tile_test_only")

    def test_plugin_solver_with_narrow_signature(self):
        @repro.register_solver("narrow_test_only")
        class NarrowSolver:
            algorithm = "narrow"

            def __init__(self, tile_size):
                self.tile_size = tile_size

        try:
            built = make_solver(algorithm="narrow_test_only", tile_size=8)
            assert built.tile_size == 8
            # configuring a base argument the plugin lacks is a spec error,
            # not a TypeError from the constructor
            with pytest.raises(ValueError, match="does not accept 'executor'"):
                make_solver(algorithm="narrow_test_only", tile_size=8,
                            executor="sequential")
        finally:
            SOLVERS.unregister("narrow_test_only")


class TestFacades:
    ALGORITHMS = {
        "hybrid": lambda: repro.HybridLUQRSolver(
            tile_size=8, criterion=repro.MaxCriterion(alpha=50)
        ),
        "lu_nopiv": lambda: repro.LUNoPivSolver(tile_size=8),
        "lu_incpiv": lambda: repro.LUIncPivSolver(tile_size=8),
        "lupp": lambda: repro.LUPPSolver(tile_size=8),
        "hqr": lambda: repro.HQRSolver(tile_size=8),
    }

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_solve_bit_identical_to_hand_constructed(self, rng, name):
        n = 48
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        b = rng.standard_normal(n)
        kwargs = {"criterion": "max(alpha=50)"} if name == "hybrid" else {}
        via_api = repro.solve(a, b, algorithm=name, tile_size=8, **kwargs)
        by_hand = self.ALGORITHMS[name]().solve(a, b)
        np.testing.assert_array_equal(via_api.x, by_hand.x)
        assert via_api.hpl3 == by_hand.hpl3
        assert via_api.factorization.step_kinds == by_hand.factorization.step_kinds

    def test_factor_facade(self, small_system):
        a, b, _ = small_system
        fact = repro.factor(a, b, algorithm="hybrid", tile_size=8,
                            criterion="max(alpha=50)")
        assert fact.succeeded
        assert fact.padding == 0
        x = fact.solve()
        assert x.shape == (a.shape[0],)

    def test_padding_is_a_real_field(self, rng):
        n = 13
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        fact = repro.factor(a, algorithm="lupp", tile_size=4)
        assert fact.padding == 3

    def test_solve_with_random_criterion_seeded(self, small_system):
        a, b, _ = small_system
        r1 = repro.solve(a, b, algorithm="hybrid", tile_size=8,
                         criterion="random(lu_probability=0.5, seed=11)")
        r2 = repro.solve(a, b, algorithm="hybrid", tile_size=8,
                         criterion="random(lu_probability=0.5, seed=11)")
        np.testing.assert_array_equal(r1.x, r2.x)

    def test_solve_through_threaded_executor_matches_inline(self, small_system):
        a, b, _ = small_system
        inline = repro.solve(a, b, algorithm="hybrid", tile_size=8,
                             criterion="max(alpha=50)")
        threaded = repro.solve(a, b, algorithm="hybrid", tile_size=8,
                               criterion="max(alpha=50)",
                               executor="threaded(workers=2)")
        np.testing.assert_array_equal(inline.x, threaded.x)

    def test_user_plugin_registers_and_resolves(self, small_system):
        @repro.register_criterion("paranoid_test_only")
        class ParanoidCriterion(repro.MaxCriterion):
            pass

        try:
            a, b, _ = small_system
            result = repro.solve(a, b, algorithm="hybrid", tile_size=8,
                                 criterion="paranoid_test_only(alpha=0.0)")
            # alpha = 0 forces QR at every step with off-diagonal mass present
            assert result.factorization.qr_steps > 0
        finally:
            CRITERIA.unregister("paranoid_test_only")
