"""End-to-end tests of the hybrid solver and all baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AlwaysLU,
    AlwaysQR,
    HQRSolver,
    HybridLUQRSolver,
    LUIncPivSolver,
    LUNoPivSolver,
    LUPPSolver,
    MaxCriterion,
    MumpsCriterion,
    ProcessGrid,
    RandomCriterion,
    SumCriterion,
)
from repro.linalg import SingularPanelError
from repro.matrices.random_gen import (
    block_diagonally_dominant,
    near_singular_leading_tile,
    random_matrix,
)

NB = 4
GRID = ProcessGrid(2, 2)


def solvers_under_test():
    return [
        ("hybrid-max", HybridLUQRSolver(NB, MaxCriterion(10.0), grid=GRID)),
        ("hybrid-sum", HybridLUQRSolver(NB, SumCriterion(10.0), grid=GRID)),
        ("hybrid-mumps", HybridLUQRSolver(NB, MumpsCriterion(2.0), grid=GRID)),
        ("hybrid-random", HybridLUQRSolver(NB, RandomCriterion(0.5, seed=0), grid=GRID)),
        ("lu-nopiv", LUNoPivSolver(NB)),
        ("lu-incpiv", LUIncPivSolver(NB)),
        ("lupp", LUPPSolver(NB)),
        ("hqr", HQRSolver(NB, grid=GRID)),
    ]


class TestSolveCorrectness:
    @pytest.mark.parametrize("name,solver", solvers_under_test(), ids=lambda v: v if isinstance(v, str) else "")
    def test_solves_random_system(self, rng, name, solver):
        n = 8 * NB
        a = rng.standard_normal((n, n)) + 3.0 * np.eye(n)
        x_true = rng.standard_normal(n)
        b = a @ x_true
        result = solver.solve(a, b, x_true=x_true)
        assert result.hpl3 < 100.0
        np.testing.assert_allclose(result.x, x_true, atol=1e-6)
        assert result.stability.forward_error < 1e-6

    def test_multiple_right_hand_sides(self, rng):
        n = 6 * NB
        a = rng.standard_normal((n, n)) + 3.0 * np.eye(n)
        b = rng.standard_normal((n, 3))
        solver = HybridLUQRSolver(NB, MaxCriterion(10.0), grid=GRID)
        result = solver.solve(a, b)
        np.testing.assert_allclose(a @ result.x, b, atol=1e-7)

    def test_padding_when_order_not_multiple_of_nb(self, rng):
        n = 6 * NB + 3
        a = rng.standard_normal((n, n)) + 3.0 * np.eye(n)
        x_true = rng.standard_normal(n)
        b = a @ x_true
        solver = HybridLUQRSolver(NB, MaxCriterion(10.0), grid=GRID)
        result = solver.solve(a, b)
        assert result.x.shape == (n,)
        np.testing.assert_allclose(result.x, x_true, atol=1e-6)

    def test_rejects_non_square(self, rng):
        solver = HybridLUQRSolver(NB, MaxCriterion(1.0))
        with pytest.raises(ValueError):
            solver.factor(rng.standard_normal((8, 12)))

    def test_rejects_mismatched_rhs(self, rng):
        solver = HybridLUQRSolver(NB, MaxCriterion(1.0))
        with pytest.raises(ValueError):
            solver.factor(rng.standard_normal((8, 8)), rng.standard_normal(12))

    def test_factor_without_rhs_cannot_solve(self, rng):
        solver = HybridLUQRSolver(NB, MaxCriterion(1.0))
        fact = solver.factor(rng.standard_normal((4 * NB, 4 * NB)))
        with pytest.raises(ValueError):
            fact.solve()

    @given(seed=st.integers(0, 200), n_tiles=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_property_hybrid_solves_well_conditioned_systems(self, seed, n_tiles):
        rng = np.random.default_rng(seed)
        n = n_tiles * NB
        a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
        x_true = rng.standard_normal(n)
        solver = HybridLUQRSolver(NB, MaxCriterion(20.0), grid=GRID, track_growth=False)
        result = solver.solve(a, a @ x_true)
        assert np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true) < 1e-6


class TestHybridBehaviour:
    def test_always_lu_and_always_qr_extremes(self, rng, small_system):
        a, b, _ = small_system
        all_lu = HybridLUQRSolver(8, AlwaysLU(), grid=GRID).factor(a, b)
        all_qr = HybridLUQRSolver(8, AlwaysQR(), grid=GRID).factor(a, b)
        assert all_lu.lu_percentage == 100.0
        assert all_qr.lu_percentage == 0.0
        assert all_lu.step_kinds == ["LU"] * all_lu.n_steps
        assert all_qr.step_kinds == ["QR"] * all_qr.n_steps

    def test_alpha_monotonicity_in_lu_steps(self, rng):
        """Larger alpha never yields fewer LU steps (same matrix)."""
        n = 10 * NB
        a = random_matrix(n, seed=5)
        b = np.ones(n)
        fractions = []
        for alpha in (0.5, 5.0, 50.0, float("inf")):
            fact = HybridLUQRSolver(NB, MaxCriterion(alpha), grid=GRID).factor(a, b)
            fractions.append(fact.lu_fraction)
        assert all(f2 >= f1 - 1e-12 for f1, f2 in zip(fractions, fractions[1:]))

    def test_diagonally_dominant_gets_all_lu_steps(self):
        n = 8 * NB
        a = block_diagonally_dominant(n, NB, seed=0)
        b = np.ones(n)
        for criterion in (MaxCriterion(1.0), SumCriterion(1.0)):
            fact = HybridLUQRSolver(NB, criterion, grid=GRID).factor(a, b)
            assert fact.lu_percentage == 100.0

    def test_near_singular_leading_tile_forces_qr_first_step(self):
        n = 6 * NB
        a = near_singular_leading_tile(n, NB, epsilon=1e-14, seed=1)
        b = np.ones(n)
        solver = HybridLUQRSolver(NB, MaxCriterion(1.0), grid=ProcessGrid(1, 1),
                                  domain_pivoting=False)
        fact = solver.factor(a, b)
        assert fact.steps[0].kind == "QR"
        # ... and the solve still succeeds thanks to the QR fallback.
        x = fact.solve()
        np.testing.assert_allclose(a @ x[: n], b, atol=1e-5)

    def test_last_step_records_and_metadata(self, rng, small_system):
        a, b, _ = small_system
        solver = HybridLUQRSolver(8, MaxCriterion(3.0), grid=GRID)
        fact = solver.factor(a, b)
        assert fact.algorithm == "LUQR"
        assert fact.criterion_name == "max"
        assert fact.alpha == 3.0
        assert fact.n_steps == 6
        assert all(s.decision is not None for s in fact.steps)
        assert all(s.decision_overhead for s in fact.steps)
        assert fact.succeeded

    def test_growth_tracking_on_and_off(self, rng, small_system):
        a, b, _ = small_system
        with_growth = HybridLUQRSolver(8, MaxCriterion(50.0), grid=GRID).factor(a, b)
        without = HybridLUQRSolver(8, MaxCriterion(50.0), grid=GRID, track_growth=False).factor(a, b)
        assert with_growth.growth is not None
        assert with_growth.growth_factor >= 1.0
        assert without.growth is None
        assert without.growth_factor == 1.0

    def test_kernel_totals_aggregates_steps(self, rng, small_system):
        a, b, _ = small_system
        fact = HybridLUQRSolver(8, AlwaysLU(), grid=GRID).factor(a, b)
        totals = fact.kernel_totals()
        assert totals["getrf"] == fact.n_steps
        per_step = sum(s.kernel_counts.get("gemm", 0) for s in fact.steps)
        assert totals["gemm"] == per_step

    def test_random_criterion_reset_between_factorizations(self, small_system):
        a, b, _ = small_system
        solver = HybridLUQRSolver(8, RandomCriterion(0.5, seed=7), grid=GRID)
        kinds1 = solver.factor(a, b).step_kinds
        kinds2 = solver.factor(a, b).step_kinds
        assert kinds1 == kinds2


class TestStabilityOrdering:
    def test_lu_nopiv_less_stable_than_lupp_on_random(self):
        """The paper's headline stability ordering on random matrices."""
        n = 12 * NB
        ratios = []
        for seed in range(3):
            a = random_matrix(n, seed=seed)
            b = np.ones(n)
            nopiv = LUNoPivSolver(NB).solve(a, b).hpl3
            lupp = LUPPSolver(NB).solve(a, b).hpl3
            ratios.append(nopiv / lupp)
        assert np.median(ratios) > 1.0

    def test_hqr_and_small_alpha_hybrid_comparable(self):
        n = 10 * NB
        a = random_matrix(n, seed=11)
        b = np.ones(n)
        hqr = HQRSolver(NB, grid=GRID).solve(a, b).hpl3
        hybrid = HybridLUQRSolver(NB, MaxCriterion(0.0), grid=GRID).solve(a, b).hpl3
        assert hybrid < 50 * max(hqr, 1e-10)

    def test_growth_factor_bounded_for_sum_criterion(self):
        n = 10 * NB
        a = random_matrix(n, seed=3)
        b = np.ones(n)
        solver = HybridLUQRSolver(NB, SumCriterion(1.0), grid=GRID)
        fact = solver.factor(a, b)
        bound = solver.criterion.growth_bound(fact.tiles.n)
        assert fact.growth_factor <= bound * 1.01

    def test_domain_pivoting_improves_all_lu_stability(self):
        """Section V-B: domain pivoting is much more stable than tile pivoting."""
        n = 16 * NB
        worst_tile, worst_domain = 0.0, 0.0
        for seed in range(3):
            a = random_matrix(n, seed=seed + 100)
            b = np.ones(n)
            tile = LUNoPivSolver(NB, grid=ProcessGrid(4, 1), domain_pivoting=False).solve(a, b).hpl3
            domain = LUNoPivSolver(NB, grid=ProcessGrid(4, 1), domain_pivoting=True).solve(a, b).hpl3
            worst_tile = max(worst_tile, tile)
            worst_domain = max(worst_domain, domain)
        assert worst_domain <= worst_tile


class TestBreakdowns:
    def test_lu_nopiv_breaks_on_singular_diagonal_tile(self):
        n = 4 * NB
        a = np.eye(n)
        a[:NB, :NB] = 0.0  # singular leading tile, but fixable by QR
        a[:NB, NB : 2 * NB] = np.eye(NB)
        a[NB : 2 * NB, :NB] = np.eye(NB)
        fact = LUNoPivSolver(NB).factor(a, np.ones(n))
        assert not fact.succeeded
        assert "step 0" in fact.breakdown
        with pytest.raises(RuntimeError):
            fact.solve()

    def test_solve_raises_on_breakdown(self):
        n = 4 * NB
        a = np.eye(n)
        a[:NB, :NB] = 0.0
        a[:NB, NB : 2 * NB] = np.eye(NB)
        a[NB : 2 * NB, :NB] = np.eye(NB)
        with pytest.raises(SingularPanelError):
            LUNoPivSolver(NB).solve(a, np.ones(n))

    def test_hybrid_survives_singular_leading_tile(self):
        n = 4 * NB
        a = np.eye(n)
        a[:NB, :NB] = 0.0
        a[:NB, NB : 2 * NB] = np.eye(NB)
        a[NB : 2 * NB, :NB] = np.eye(NB)
        b = np.ones(n)
        solver = HybridLUQRSolver(NB, MaxCriterion(1.0), grid=ProcessGrid(1, 1),
                                  domain_pivoting=False)
        result = solver.solve(a, b)
        np.testing.assert_allclose(a @ result.x, b, atol=1e-8)
        assert result.factorization.steps[0].kind == "QR"
