"""Tests for the Table III special matrices and the random generators."""

import numpy as np
import pytest

from repro.matrices import (
    block_diagonally_dominant,
    diagonally_dominant,
    matrix_with_condition,
    near_singular_leading_tile,
    random_matrix,
    random_rhs,
    registry,
    special,
)


class TestRegistry:
    def test_table_has_21_entries(self):
        assert len(registry.TABLE_III) == 21
        assert [e.number for e in registry.TABLE_III] == list(range(1, 22))

    def test_names_and_lookup(self):
        names = registry.names()
        assert len(names) == 21
        assert "wilkinson" in names
        entry = registry.by_name("HILB")
        assert entry.number == 15

    def test_names_with_extra(self):
        assert "fiedler" in registry.names(include_extra=True)
        assert "fiedler" not in registry.names()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            registry.by_name("does-not-exist")

    def test_build_all_shapes_and_dtype(self):
        n = 24
        for entry in registry.TABLE_III + registry.EXTRA:
            a = entry.build(n)
            assert a.shape == (n, n), entry.name
            assert a.dtype == np.float64, entry.name
            assert np.all(np.isfinite(a)), entry.name

    def test_build_by_name(self):
        a = registry.build("cauchy", 10)
        assert a.shape == (10, 10)


class TestSpecialMatrixProperties:
    def test_house_is_orthogonal_and_symmetric(self):
        a = special.house(20, seed=3)
        np.testing.assert_allclose(a @ a.T, np.eye(20), atol=1e-12)
        np.testing.assert_allclose(a, a.T, atol=1e-12)

    def test_parter_formula(self):
        a = special.parter(5)
        assert a[0, 0] == pytest.approx(1 / 0.5)
        assert a[2, 4] == pytest.approx(1 / (3 - 5 + 0.5))

    def test_ris_is_symmetric_hankel(self):
        a = special.ris(8)
        np.testing.assert_allclose(a, a.T, atol=1e-15)

    def test_circul_is_circulant(self):
        a = special.circul(6, seed=0)
        np.testing.assert_allclose(a[1], np.roll(a[0], 1))

    def test_hankel_constant_antidiagonals(self):
        a = special.hankel(7, seed=1)
        assert a[0, 3] == pytest.approx(a[1, 2])
        assert a[2, 5] == pytest.approx(a[4, 3])

    def test_compan_structure(self):
        a = special.compan(6, seed=0)
        np.testing.assert_allclose(a[1:, :-1], np.eye(5), atol=1e-15)

    def test_lehmer_spd_and_formula(self):
        a = special.lehmer(10)
        assert a[2, 5] == pytest.approx(3 / 6)
        assert np.all(np.linalg.eigvalsh(a) > 0)

    def test_dorr_is_tridiagonal_and_diag_dominant(self):
        a = special.dorr(12)
        mask = np.abs(np.arange(12)[:, None] - np.arange(12)[None, :]) > 1
        np.testing.assert_allclose(a[mask], 0.0)
        offdiag_sum = np.sum(np.abs(a), axis=1) - np.abs(np.diag(a))
        assert np.all(np.abs(np.diag(a)) >= offdiag_sum - 1e-9)

    def test_demmel_scaling(self):
        a = special.demmel(8, seed=0)
        assert abs(a[7, 7]) > 1e10 * abs(a[0, 0])

    def test_chebvand_first_rows(self):
        a = special.chebvand(6)
        np.testing.assert_allclose(a[0], 1.0)
        np.testing.assert_allclose(a[1], np.linspace(0, 1, 6))

    def test_invhess_inverse_is_hessenberg(self):
        a = special.invhess(8)
        inv = np.linalg.inv(a)
        lower = np.tril(inv, -2)
        np.testing.assert_allclose(lower, 0.0, atol=1e-8)

    def test_prolate_toeplitz_symmetric(self):
        a = special.prolate(9)
        np.testing.assert_allclose(a, a.T, atol=1e-15)
        assert a[0, 0] == pytest.approx(0.5)

    def test_cauchy_and_hilb_formulas(self):
        c = special.cauchy(5)
        h = special.hilb(5)
        assert c[1, 2] == pytest.approx(1 / 5)
        assert h[1, 2] == pytest.approx(1 / 4)

    def test_lotkin_is_hilb_with_ones_row(self):
        a = special.lotkin(6)
        np.testing.assert_allclose(a[0], 1.0)
        np.testing.assert_allclose(a[1:], special.hilb(6)[1:])

    def test_kahan_upper_triangular(self):
        a = special.kahan(10)
        np.testing.assert_allclose(np.tril(a, -1), 0.0)
        assert a[0, 0] == pytest.approx(1.0)

    def test_orthog_is_orthogonal(self):
        a = special.orthog(16)
        np.testing.assert_allclose(a @ a.T, np.eye(16), atol=1e-12)

    def test_wilkinson_gepp_growth(self):
        """GEPP on the Wilkinson matrix grows the last column by 2^(n-1)."""
        n = 30
        a = special.wilkinson(n)
        import scipy.linalg as sla

        _, _, u = sla.lu(a)
        growth = np.max(np.abs(u)) / np.max(np.abs(a))
        assert growth == pytest.approx(2.0 ** (n - 1), rel=1e-10)

    def test_foster_and_wright_are_nonsingular(self):
        for gen in (special.foster, special.wright):
            a = gen(20)
            assert np.linalg.matrix_rank(a) == 20

    def test_wright_requires_even_order(self):
        with pytest.raises(ValueError):
            special.wright(7)

    def test_fiedler_zero_diagonal_symmetric(self):
        a = special.fiedler(12)
        np.testing.assert_allclose(np.diag(a), 0.0)
        np.testing.assert_allclose(a, a.T)

    def test_condex_requires_n_ge_4(self):
        with pytest.raises(ValueError):
            special.condex(3)

    def test_seeded_generators_are_reproducible(self):
        for gen in (special.house, special.circul, special.hankel, special.compan, special.demmel):
            np.testing.assert_array_equal(gen(12, seed=5), gen(12, seed=5))


class TestRandomGenerators:
    def test_random_matrix_reproducible(self):
        np.testing.assert_array_equal(random_matrix(10, seed=1), random_matrix(10, seed=1))

    def test_random_rhs_shapes(self):
        assert random_rhs(8, seed=0).shape == (8,)
        assert random_rhs(8, seed=0, nrhs=3).shape == (8, 3)

    def test_diagonally_dominant(self):
        a = diagonally_dominant(20, seed=2)
        offdiag = np.sum(np.abs(a), axis=1) - np.abs(np.diag(a))
        assert np.all(np.abs(np.diag(a)) >= offdiag)

    def test_block_diagonally_dominant_condition(self):
        nb = 4
        a = block_diagonally_dominant(16, nb, seed=0)
        for j in range(4):
            cols = slice(j * nb, (j + 1) * nb)
            diag_block = a[j * nb : (j + 1) * nb, cols]
            inv_norm = 1.0 / np.linalg.norm(np.linalg.inv(diag_block), 1)
            off = sum(
                np.linalg.norm(a[i * nb : (i + 1) * nb, cols], 1) for i in range(4) if i != j
            )
            assert inv_norm >= off

    def test_block_diagonally_dominant_requires_divisible(self):
        with pytest.raises(ValueError):
            block_diagonally_dominant(10, 4)

    def test_matrix_with_condition(self):
        a = matrix_with_condition(16, 1e6, seed=0)
        assert np.linalg.cond(a) == pytest.approx(1e6, rel=1e-6)
        with pytest.raises(ValueError):
            matrix_with_condition(8, 0.5)

    def test_near_singular_leading_tile(self):
        a = near_singular_leading_tile(16, 4, epsilon=1e-10, seed=0)
        s = np.linalg.svd(a[:4, :4], compute_uv=False)
        assert s[-1] < 1e-8
