"""Online calibration: trace harvesting, fitting, persistence, prediction.

The calibration layer turns measured kernel durations into the cost model
behind the priority scheduler, the predictive simulator, and the
autotuner.  These tests pin the fit math, the trace-edge-case robustness
of :func:`merge_traces` / :func:`collect_samples`, the JSON round trip
through ``REPRO_CALIBRATION``, and — the tier-1 closing-the-loop check —
that a calibrated simulation predicts a measured makespan to within a
small factor for every solver.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.facade import make_solver
from repro.core.dag_builder import build_task_graph, spec_from_factorization
from repro.matrices.random_gen import random_matrix
from repro.perf.calibrate import (
    Calibration,
    KernelCost,
    calibrate_from_traces,
    calibrated_platform,
    calibration_path,
    clear_calibration_cache,
    collect_samples,
    default_calibration,
    run_calibration,
)
from repro.runtime.executor import ExecutionTrace, SequentialExecutor, ThreadedExecutor
from repro.runtime.schedule import merge_traces
from repro.runtime.simulator import simulate

ALGORITHMS = ["hybrid", "lupp", "hqr", "lu_incpiv", "lu_nopiv"]


@pytest.fixture()
def isolated_calibration(tmp_path, monkeypatch):
    """Point REPRO_CALIBRATION at a temp file and reset the lazy cache."""
    path = tmp_path / "calibration.json"
    monkeypatch.setenv("REPRO_CALIBRATION", str(path))
    clear_calibration_cache()
    yield path
    clear_calibration_cache()


# --------------------------------------------------------------------------- #
# merge_traces edge cases (regressions)
# --------------------------------------------------------------------------- #
def test_merge_traces_empty_sequence():
    merged = merge_traces([])
    assert merged.n_tasks == 0
    assert merged.wall_time == 0.0


def test_merge_traces_missing_start_timestamp():
    """A task that errored mid-run may have a finish/kernel entry only."""
    tr = ExecutionTrace()
    tr.finish_times[3] = 1.0
    tr.kernel_of_task[3] = "gemm"
    tr2 = ExecutionTrace()
    tr2.start_times[0] = 2.0
    tr2.finish_times[0] = 3.0
    merged = merge_traces([tr, tr2])
    # Offset advances past uid 3 of the first trace: no collision.
    assert set(merged.finish_times) == {3, 4}
    assert merged.kernel_of_task == {3: "gemm"}


def test_merge_traces_kernel_only_entries_advance_offset():
    """Entries present only in kernel_of_task must still push the offset."""
    tr = ExecutionTrace()
    tr.kernel_of_task[7] = "getrf"
    tr2 = ExecutionTrace()
    tr2.kernel_of_task[0] = "gemm"
    merged = merge_traces([tr, tr2])
    assert merged.kernel_of_task == {7: "getrf", 8: "gemm"}


def test_merge_traces_copies_tile_norms():
    tr = ExecutionTrace()
    tr.tile_norms[0] = {(1, 1): 2.0}
    merged = merge_traces([tr])
    merged.tile_norms[0][(1, 1)] = 99.0
    assert tr.tile_norms[0][(1, 1)] == 2.0


# --------------------------------------------------------------------------- #
# Sample harvesting
# --------------------------------------------------------------------------- #
def test_collect_samples_skips_partial_and_zero_duration():
    tr = ExecutionTrace()
    tr.kernel_of_task.update({0: "gemm", 1: "gemm", 2: "gemm"})
    tr.start_times.update({0: 1.0, 1: 5.0})
    tr.finish_times.update({0: 1.5, 1: 5.0})  # task 1: zero duration
    # task 2: no timestamps at all
    samples = collect_samples([tr], tile_size=8)
    assert samples == {("gemm", 8): [0.5]}


def test_collect_samples_empty_traces():
    assert collect_samples([], tile_size=8) == {}
    assert collect_samples([ExecutionTrace()], tile_size=8) == {}


# --------------------------------------------------------------------------- #
# Fit math
# --------------------------------------------------------------------------- #
def test_kernel_cost_exact_mean_and_cubic_extrapolation():
    cost = KernelCost()
    cost.add(8, [1.0, 3.0])  # mean 2.0
    assert cost.duration(8) == pytest.approx(2.0)
    # Extrapolation is the least-squares cubic through the one observation:
    # coeff = 2.0 / 8^3, so duration(16) = coeff * 16^3 = 16.0.
    assert cost.duration(16) == pytest.approx(16.0)


def test_kernel_cost_ignores_nonpositive_samples():
    cost = KernelCost()
    cost.add(8, [-1.0, 0.0])
    assert cost.count == 0
    assert cost.duration(8) is None


def test_calibration_flops_per_second_prefers_gemm():
    cal = Calibration()
    cal.add_samples({("gemm", 8): [1e-4], ("getrf", 8): [1e-2]})
    rate = cal.flops_per_second(8)
    # 2*8^3 flops of a GEMM in 1e-4 s.
    assert rate == pytest.approx(2 * 8**3 / 1e-4)


# --------------------------------------------------------------------------- #
# Persistence round trip
# --------------------------------------------------------------------------- #
def test_calibration_roundtrip_via_env(isolated_calibration):
    assert calibration_path() == isolated_calibration
    assert default_calibration() is None

    cal = Calibration(host="testhost")
    cal.add_samples({("gemm", 8): [0.5], ("getrf", 16): [0.25, 0.75]})
    cal.save()
    clear_calibration_cache()

    loaded = default_calibration()
    assert loaded is not None
    assert loaded.host == "testhost"
    assert loaded.kernel_duration("gemm", 8) == pytest.approx(0.5)
    assert loaded.kernel_duration("getrf", 16) == pytest.approx(0.5)
    assert loaded.observed_tile_sizes() == [8, 16]


def test_corrupt_calibration_degrades_to_none(isolated_calibration):
    isolated_calibration.write_text("not json {")
    clear_calibration_cache()
    assert default_calibration() is None


def test_calibration_rejects_future_format():
    with pytest.raises(ValueError):
        Calibration.from_dict({"version": 99, "kernels": {}})


def test_run_calibration_end_to_end(isolated_calibration):
    cal = run_calibration(n=32, tile_sizes=(8,), algorithms=("lupp",))
    assert cal.n_samples > 0
    assert "getrf" in cal.kernels
    # Persisted and picked up lazily.
    on_disk = json.loads(isolated_calibration.read_text())
    assert on_disk["version"] == 2
    reloaded = default_calibration()
    assert reloaded is not None and reloaded.n_samples == cal.n_samples


# --------------------------------------------------------------------------- #
# Tier-1: the calibrated simulator predicts reality
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_simulated_makespan_predicts_measured(algorithm, isolated_calibration):
    """Closing the loop: calibrate on this host, then check the simulated
    makespan of a factorization is within ~3x of the measured one.

    The simulator models list scheduling without Python/dispatch overhead,
    so a wide band is expected — but a wildly analytic model (the old
    platform rates) is off by orders of magnitude on a laptop-class host,
    which is exactly the regression this guards against.
    """
    n, nb = 64, 8
    a = random_matrix(n, seed=5)

    # Calibrate from a sequential run of this very algorithm.  The
    # measured makespan is the executor time (sum of per-step trace wall
    # times) — planning and growth bookkeeping happen outside the
    # schedule being predicted.
    solver = make_solver(
        algorithm, tile_size=nb, executor=SequentialExecutor(), track_growth=False
    )
    fact = solver.factor(a.copy())
    measured = sum(t.wall_time for t in solver.step_traces)
    assert fact.succeeded and measured > 0
    cal = calibrate_from_traces(solver.step_traces, nb)
    assert cal.n_samples > 0

    platform = calibrated_platform(cal, cores=1, nb=nb)
    graph = build_task_graph(
        spec_from_factorization(fact), platform=platform
    )
    sim = simulate(graph, platform, nb, record_schedule=False, calibration=cal)

    assert sim.makespan > 0
    # Kernel time is only part of the measured wall time (planning, growth
    # bookkeeping, and Python dispatch are unmodelled), so the prediction
    # must land within a factor of ~3 either side.
    ratio = sim.makespan / measured
    assert 1 / 3.0 <= ratio <= 3.0, (
        f"{algorithm}: simulated {sim.makespan:.4f}s vs measured "
        f"{measured:.4f}s (ratio {ratio:.2f})"
    )


def test_calibrated_costs_drive_priorities(isolated_calibration):
    """With a calibration present, the pipeline prices b-levels in seconds."""
    cal = Calibration()
    cal.add_samples({("gemm", 8): [1e-3], ("getrf", 8): [5e-3]})
    cal.save()
    clear_calibration_cache()

    n, nb = 32, 8
    a = random_matrix(n, seed=9)
    solver = make_solver(
        "lupp", tile_size=nb, executor=ThreadedExecutor(workers=2),
        track_growth=False,
    )
    solver.collect_step_graphs = True
    ref = make_solver("lupp", tile_size=nb, executor=None, track_growth=False)
    f_par = solver.factor(a.copy())
    f_seq = ref.factor(a.copy())
    assert np.array_equal(f_par.tiles.array, f_seq.tiles.array)
    priorities = [
        t.priority for g in solver.step_graphs for t in g.tasks
    ]
    assert priorities and all(p > 0 for p in priorities)
    # Calibrated seconds, not raw flop counts: b-levels stay far below the
    # ~1e4..1e6 flop magnitudes of the static model at nb=8.
    assert max(priorities) < 10.0
