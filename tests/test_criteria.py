"""Tests for the robustness criteria of Section III."""

import math

import numpy as np
import pytest

from repro.criteria import (
    AlwaysLU,
    AlwaysQR,
    MaxCriterion,
    MumpsCriterion,
    PanelInfo,
    RandomCriterion,
    SumCriterion,
    mumps_estimate_max,
)


def make_info(
    diag_inv_norm_inv=10.0,
    offdiag_norms=(1.0, 2.0, 3.0),
    local_max=None,
    away_max=None,
    pivots=None,
    nb=4,
    k=0,
    n=5,
):
    """Build a PanelInfo with sensible defaults for criterion unit tests."""
    local_max = np.ones(nb) if local_max is None else np.asarray(local_max, float)
    away_max = np.ones(nb) if away_max is None else np.asarray(away_max, float)
    pivots = np.ones(nb) if pivots is None else np.asarray(pivots, float)
    return PanelInfo(
        k=k,
        n=n,
        nb=nb,
        diag_inv_norm_inv=diag_inv_norm_inv,
        offdiag_tile_norms=list(offdiag_norms),
        local_max=local_max,
        away_max=away_max,
        pivots=pivots,
        domain_rows=[k],
    )


class TestPanelInfo:
    def test_max_and_sum(self):
        info = make_info(offdiag_norms=(1.0, 5.0, 2.0))
        assert info.max_offdiag_norm == 5.0
        assert info.sum_offdiag_norm == 8.0

    def test_last_panel(self):
        info = make_info(offdiag_norms=(), k=4, n=5)
        assert info.is_last_panel
        assert info.max_offdiag_norm == 0.0
        assert info.sum_offdiag_norm == 0.0


class TestMaxCriterion:
    def test_accepts_when_diagonal_dominates(self):
        info = make_info(diag_inv_norm_inv=10.0, offdiag_norms=(1.0, 2.0))
        assert MaxCriterion(alpha=1.0).decide(info)

    def test_rejects_when_diagonal_weak(self):
        info = make_info(diag_inv_norm_inv=0.1, offdiag_norms=(1.0, 2.0))
        assert not MaxCriterion(alpha=1.0).decide(info)

    def test_alpha_scales_threshold(self):
        info = make_info(diag_inv_norm_inv=1.0, offdiag_norms=(3.0,))
        assert not MaxCriterion(alpha=1.0).decide(info)
        assert MaxCriterion(alpha=5.0).decide(info)

    def test_alpha_inf_always_lu(self):
        info = make_info(diag_inv_norm_inv=0.0, offdiag_norms=(1e30,))
        assert MaxCriterion(alpha=float("inf")).decide(info)

    def test_alpha_zero_rejects_nonzero_panel(self):
        info = make_info(diag_inv_norm_inv=100.0, offdiag_norms=(0.5,))
        assert not MaxCriterion(alpha=0.0).decide(info)

    def test_alpha_zero_accepts_zero_panel(self):
        info = make_info(diag_inv_norm_inv=100.0, offdiag_norms=())
        assert MaxCriterion(alpha=0.0).decide(info)

    def test_singular_diagonal_forces_qr(self):
        info = make_info(diag_inv_norm_inv=0.0, offdiag_norms=(1.0,))
        assert not MaxCriterion(alpha=1e6).decide(info)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            MaxCriterion(alpha=-1.0)

    def test_growth_bound(self):
        assert MaxCriterion(alpha=1.0).growth_bound(10) == pytest.approx(2.0**9)
        assert math.isinf(MaxCriterion(alpha=float("inf")).growth_bound(10))

    def test_decision_exposes_sides(self):
        info = make_info(diag_inv_norm_inv=2.0, offdiag_norms=(3.0,))
        d = MaxCriterion(alpha=1.0).evaluate(info)
        assert d.lhs == pytest.approx(2.0)
        assert d.rhs == pytest.approx(3.0)
        assert not d.use_lu


class TestSumCriterion:
    def test_stricter_than_max(self):
        # Diagonal beats the max off-diagonal tile but not their sum.
        info = make_info(diag_inv_norm_inv=4.0, offdiag_norms=(3.0, 3.0))
        assert MaxCriterion(alpha=1.0).decide(info)
        assert not SumCriterion(alpha=1.0).decide(info)

    def test_accepts_block_diagonally_dominant(self):
        info = make_info(diag_inv_norm_inv=7.0, offdiag_norms=(3.0, 3.0))
        assert SumCriterion(alpha=1.0).decide(info)

    def test_growth_bound_linear(self):
        assert SumCriterion(alpha=1.0).growth_bound(20) == pytest.approx(20.0)

    def test_alpha_inf(self):
        info = make_info(diag_inv_norm_inv=0.0, offdiag_norms=(1.0,))
        assert SumCriterion(alpha=float("inf")).decide(info)


class TestMumpsCriterion:
    def test_estimate_max_formula(self):
        local = np.array([2.0, 4.0, 1.0])
        away = np.array([1.0, 1.0, 1.0])
        pivots = np.array([4.0, 2.0, 3.0])
        est = mumps_estimate_max(local, away, pivots)
        # growth = [2.0, 0.5, 3.0]; estimate(j) = away(j) * prod_{i<j} growth(i)
        np.testing.assert_allclose(est, [1.0, 2.0, 1.0])

    def test_estimate_max_zero_local_column(self):
        est = mumps_estimate_max(
            np.array([0.0, 1.0]), np.array([1.0, 1.0]), np.array([2.0, 2.0])
        )
        np.testing.assert_allclose(est, [1.0, 1.0])

    def test_accepts_good_local_pivots(self):
        info = make_info(
            local_max=[1.0, 1.0], away_max=[0.5, 0.5], pivots=[1.0, 1.0], nb=2
        )
        assert MumpsCriterion(alpha=1.0).decide(info)

    def test_rejects_when_away_entries_dominate(self):
        info = make_info(
            local_max=[1.0, 1.0], away_max=[10.0, 10.0], pivots=[1.0, 1.0], nb=2
        )
        assert not MumpsCriterion(alpha=1.0).decide(info)

    def test_alpha_loosens(self):
        info = make_info(
            local_max=[1.0, 1.0], away_max=[3.0, 3.0], pivots=[1.0, 1.0], nb=2
        )
        assert not MumpsCriterion(alpha=1.0).decide(info)
        assert MumpsCriterion(alpha=5.0).decide(info)

    def test_domain_local_panel_accepts(self):
        info = make_info(away_max=[0.0, 0.0, 0.0, 0.0])
        assert MumpsCriterion(alpha=0.5).decide(info)

    def test_alpha_inf(self):
        info = make_info(away_max=[1e30] * 4, pivots=[1e-30] * 4)
        assert MumpsCriterion(alpha=float("inf")).decide(info)


class TestRandomAndFixed:
    def test_random_probability_extremes(self):
        info = make_info()
        always = RandomCriterion(lu_probability=1.0, seed=0)
        never = RandomCriterion(lu_probability=0.0, seed=0)
        assert all(always.decide(info) for _ in range(20))
        assert not any(never.decide(info) for _ in range(20))

    def test_random_is_reproducible_after_reset(self):
        info = make_info()
        crit = RandomCriterion(lu_probability=0.5, seed=42)
        first = [crit.decide(info) for _ in range(10)]
        crit.reset()
        second = [crit.decide(info) for _ in range(10)]
        assert first == second

    def test_random_fraction_close_to_probability(self):
        info = make_info()
        crit = RandomCriterion(lu_probability=0.7, seed=3)
        draws = [crit.decide(info) for _ in range(500)]
        assert 0.6 < np.mean(draws) < 0.8

    def test_random_validates_probability(self):
        with pytest.raises(ValueError):
            RandomCriterion(lu_probability=1.5)

    def test_fixed_policies(self):
        info = make_info(diag_inv_norm_inv=0.0)
        assert AlwaysLU().decide(info)
        assert not AlwaysQR().decide(info)
