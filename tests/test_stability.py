"""Tests for the stability metrics (HPL3 & co.) and growth tracking."""

import numpy as np
import pytest

from repro.stability import (
    GrowthTracker,
    forward_error,
    hpl1,
    hpl2,
    hpl3,
    max_criterion_growth_bound,
    normwise_backward_error,
    partial_pivoting_growth_bound,
    scalar_growth_factor,
    stability_report,
    sum_criterion_growth_bound,
)


class TestHPLMetrics:
    def test_exact_solution_gives_tiny_values(self, rng):
        a = rng.standard_normal((32, 32)) + 5 * np.eye(32)
        x = rng.standard_normal(32)
        b = a @ x
        x_solved = np.linalg.solve(a, b)
        assert hpl3(a, x_solved, b) < 10.0
        assert hpl1(a, x_solved, b) < 100.0
        assert hpl2(a, x_solved, b) < 100.0
        assert normwise_backward_error(a, x_solved, b) < 1e-12

    def test_wrong_solution_gives_large_values(self, rng):
        a = rng.standard_normal((16, 16)) + 4 * np.eye(16)
        x = rng.standard_normal(16)
        b = a @ x
        assert hpl3(a, x + 1.0, b) > 1e6

    def test_hpl3_matches_formula(self, rng):
        a = rng.standard_normal((8, 8))
        x = rng.standard_normal(8)
        b = rng.standard_normal(8)
        eps = np.finfo(np.float64).eps
        expected = np.linalg.norm(a @ x - b, np.inf) / (
            np.linalg.norm(a, np.inf) * np.linalg.norm(x, np.inf) * eps * 8
        )
        assert hpl3(a, x, b) == pytest.approx(expected)

    def test_hpl3_invariant_under_scaling(self, rng):
        """HPL3 is invariant when A and b are scaled by the same factor."""
        a = rng.standard_normal((12, 12)) + 4 * np.eye(12)
        x = rng.standard_normal(12)
        b = a @ x
        x_pert = x * (1 + 1e-12)
        assert hpl3(a, x_pert, b) == pytest.approx(hpl3(1e6 * a, x_pert, 1e6 * b), rel=1e-3)

    def test_forward_error(self):
        x_true = np.array([1.0, 2.0, -4.0])
        x = np.array([1.0, 2.0, -4.4])
        assert forward_error(x, x_true) == pytest.approx(0.1)
        assert forward_error(np.zeros(3), np.zeros(3)) == 0.0

    def test_stability_report_fields(self, rng):
        a = rng.standard_normal((8, 8)) + 3 * np.eye(8)
        x_true = rng.standard_normal(8)
        b = a @ x_true
        x = np.linalg.solve(a, b)
        rep = stability_report(a, x, b, x_true=x_true)
        assert rep.hpl3 < 10
        assert rep.forward_error < 1e-10
        assert rep.backward_error < 1e-13

    def test_relative_to(self, rng):
        a = rng.standard_normal((8, 8)) + 3 * np.eye(8)
        x = np.linalg.solve(a, np.ones(8))
        rep = stability_report(a, x, np.ones(8))
        assert rep.relative_to(rep) == pytest.approx(1.0)


class TestGrowth:
    def test_tracker_records_peak(self):
        t = GrowthTracker(initial_max_norm=2.0)
        t.record(3.0)
        t.record(8.0)
        t.record(1.0)
        assert t.growth_factor == pytest.approx(4.0)

    def test_tracker_never_below_one(self):
        t = GrowthTracker(initial_max_norm=5.0)
        t.record(1.0)
        assert t.growth_factor == pytest.approx(1.0)

    def test_tracker_zero_initial(self):
        t = GrowthTracker(initial_max_norm=0.0)
        t.record(1.0)
        assert np.isinf(t.growth_factor)

    def test_bounds(self):
        assert max_criterion_growth_bound(1.0, 11) == pytest.approx(2.0**10)
        assert sum_criterion_growth_bound(17) == 17.0
        assert sum_criterion_growth_bound(17, diagonally_dominant=True) == 2.0
        assert partial_pivoting_growth_bound(5) == 16.0
        with pytest.raises(ValueError):
            max_criterion_growth_bound(-1.0, 4)

    def test_scalar_growth_factor(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        u = np.array([[8.0, 2.0], [0.0, 1.0]])
        assert scalar_growth_factor(a, u) == pytest.approx(2.0)
        assert np.isinf(scalar_growth_factor(np.zeros((2, 2)), u))
