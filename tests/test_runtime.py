"""Tests for the dataflow runtime: task graph, simulator, executors, dataflow."""

import numpy as np
import pytest

from repro.runtime import (
    Platform,
    SequentialExecutor,
    StepDataflow,
    TaskGraph,
    ThreadedExecutor,
    dancer_platform,
    laptop_platform,
    simulate,
)
from repro.tiles import BlockCyclicDistribution, ProcessGrid


# --------------------------------------------------------------------------- #
# Task graph
# --------------------------------------------------------------------------- #
class TestTaskGraph:
    def test_read_after_write_dependency(self):
        g = TaskGraph()
        w = g.add_task(kernel="a", step=0, writes={(0, 0)})
        r = g.add_task(kernel="b", step=0, reads={(0, 0)})
        assert w.uid in r.deps

    def test_write_after_write_dependency(self):
        g = TaskGraph()
        w1 = g.add_task(kernel="a", step=0, writes={(1, 1)})
        w2 = g.add_task(kernel="b", step=0, writes={(1, 1)})
        assert w1.uid in w2.deps

    def test_write_after_read_dependency(self):
        g = TaskGraph()
        g.add_task(kernel="w0", step=0, writes={(0, 0)})
        r = g.add_task(kernel="r", step=0, reads={(0, 0)})
        w = g.add_task(kernel="w1", step=0, writes={(0, 0)})
        assert r.uid in w.deps

    def test_independent_tasks_have_no_deps(self):
        g = TaskGraph()
        t1 = g.add_task(kernel="a", step=0, writes={(0, 0)})
        t2 = g.add_task(kernel="b", step=0, writes={(1, 1)})
        assert t2.deps == set()
        assert t1.deps == set()

    def test_extra_deps_merged(self):
        g = TaskGraph()
        t1 = g.add_task(kernel="a", step=0)
        t2 = g.add_task(kernel="b", step=0, extra_deps=[t1.uid])
        assert t1.uid in t2.deps

    def test_successors_and_counts(self):
        g = TaskGraph()
        a = g.add_task(kernel="x", step=0, writes={(0, 0)}, flops=5.0)
        b = g.add_task(kernel="x", step=0, reads={(0, 0)}, flops=7.0)
        succ = g.successors()
        assert succ[a.uid] == [b.uid]
        assert g.total_flops() == 12.0
        assert g.kernel_counts() == {"x": 2}
        assert len(g) == 2

    def test_critical_path_unit_durations(self):
        g = TaskGraph()
        a = g.add_task(kernel="a", step=0, writes={(0, 0)})
        g.add_task(kernel="b", step=0, reads={(0, 0)}, writes={(0, 1)})
        g.add_task(kernel="c", step=0, writes={(5, 5)})
        assert g.critical_path_length() == 2.0

    def test_critical_path_with_durations(self):
        g = TaskGraph()
        a = g.add_task(kernel="a", step=0, writes={(0, 0)})
        b = g.add_task(kernel="b", step=0, reads={(0, 0)})
        assert g.critical_path_length({a.uid: 3.0, b.uid: 4.0}) == 7.0


# --------------------------------------------------------------------------- #
# Platform
# --------------------------------------------------------------------------- #
class TestPlatform:
    def test_dancer_peak_matches_paper(self):
        p = dancer_platform()
        assert p.nodes == 16
        assert p.total_cores == 128
        assert p.peak_gflops == pytest.approx(1091.0, rel=0.01)

    def test_kernel_rates_ordering(self):
        p = dancer_platform()
        assert p.kernel_rate("gemm") > p.kernel_rate("geqrt")
        assert p.kernel_duration("gemm", 1e9) < p.kernel_duration("tsqrt", 1e9)
        assert p.kernel_duration("gemm", 0.0) == 0.0

    def test_transfer_time(self):
        p = dancer_platform()
        assert p.transfer_time(0.0) == p.latency
        assert p.transfer_time(1.25e9) == pytest.approx(p.latency + 1.0)

    def test_allreduce_and_pivot_exchange(self):
        p = dancer_platform()
        assert p.allreduce_time(1, 100) == 0.0
        assert p.allreduce_time(4, 100) > 0.0
        assert p.pivot_exchange_time(1, 240) == 0.0
        assert p.pivot_exchange_time(4, 240) > p.allreduce_time(4, 8 * 240)

    def test_laptop_platform_single_node(self):
        p = laptop_platform(cores=2)
        assert p.nodes == 1
        assert p.total_cores == 2


# --------------------------------------------------------------------------- #
# Simulator
# --------------------------------------------------------------------------- #
class TestSimulator:
    def _platform(self, cores=2):
        return Platform(grid=ProcessGrid(1, 1), cores=cores, gemm_gflops=1.0,
                        latency=0.0, bandwidth=1e12, name="test")

    def test_serial_chain_time_adds_up(self):
        g = TaskGraph()
        for _ in range(4):
            g.add_task(kernel="gemm", step=0, reads={(0, 0)}, writes={(0, 0)}, flops=0.87e9)
        sim = simulate(g, self._platform(), tile_size=4)
        assert sim.makespan == pytest.approx(4.0, rel=1e-6)
        assert sim.critical_path_time == pytest.approx(sim.makespan, rel=1e-6)

    def test_parallel_tasks_limited_by_cores(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(kernel="gemm", step=0, writes={(i, i)}, flops=0.87e9)
        sim = simulate(g, self._platform(cores=2), tile_size=4)
        assert sim.makespan == pytest.approx(2.0, rel=1e-6)
        sim4 = simulate(g, self._platform(cores=4), tile_size=4)
        assert sim4.makespan == pytest.approx(1.0, rel=1e-6)

    def test_duration_hint_overrides_flops(self):
        g = TaskGraph()
        g.add_task(kernel="whatever", step=0, flops=1e15, duration_hint=0.5)
        sim = simulate(g, self._platform(), tile_size=4)
        assert sim.makespan == pytest.approx(0.5)

    def test_cross_node_dependency_pays_communication(self):
        platform = Platform(grid=ProcessGrid(2, 1), cores=1, gemm_gflops=1.0,
                            latency=1.0, bandwidth=1e12, name="test")
        g = TaskGraph()
        g.add_task(kernel="gemm", step=0, writes={(0, 0)}, owner=0, flops=0.87e9)
        g.add_task(kernel="gemm", step=0, reads={(0, 0)}, owner=1, flops=0.87e9)
        sim = simulate(g, platform, tile_size=4)
        assert sim.makespan == pytest.approx(3.0, rel=1e-6)  # 1 + latency + 1
        assert sim.communication_events == 1
        assert sim.communication_bytes == pytest.approx(8 * 16)

    def test_same_node_dependency_is_free(self):
        platform = Platform(grid=ProcessGrid(2, 1), cores=1, gemm_gflops=1.0,
                            latency=1.0, bandwidth=1e12, name="test")
        g = TaskGraph()
        g.add_task(kernel="gemm", step=0, writes={(0, 0)}, owner=0, flops=0.87e9)
        g.add_task(kernel="gemm", step=0, reads={(0, 0)}, owner=0, flops=0.87e9)
        sim = simulate(g, platform, tile_size=4)
        assert sim.makespan == pytest.approx(2.0, rel=1e-6)
        assert sim.communication_events == 0

    def test_empty_graph(self):
        sim = simulate(TaskGraph(), self._platform(), tile_size=4)
        assert sim.makespan == 0.0

    def test_utilization_and_busy_time(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(kernel="gemm", step=0, writes={(i, i)}, flops=0.87e9)
        platform = self._platform(cores=2)
        sim = simulate(g, platform, tile_size=4)
        assert sim.total_busy_time == pytest.approx(4.0, rel=1e-6)
        assert sim.utilization(platform) == pytest.approx(1.0, rel=1e-6)

    def test_schedule_recording_toggle(self):
        g = TaskGraph()
        g.add_task(kernel="gemm", step=0, flops=1.0)
        assert simulate(g, self._platform(), 4, record_schedule=True).schedule
        assert not simulate(g, self._platform(), 4, record_schedule=False).schedule


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
def _build_sum_graph(counter, n=20):
    """Graph of n tasks appending to a list, each depending on the previous."""
    g = TaskGraph()
    for i in range(n):
        def fn(i=i):
            counter.append(i)
        g.add_task(kernel="op", step=0, reads={(0, 0)}, writes={(0, 0)}, fn=fn)
    return g


class TestExecutors:
    def test_sequential_order_respected(self):
        out = []
        trace = SequentialExecutor().run(_build_sum_graph(out))
        assert out == list(range(20))
        assert trace.n_tasks == 20

    def test_threaded_dependencies_respected(self):
        out = []
        trace = ThreadedExecutor(workers=4).run(_build_sum_graph(out))
        assert out == list(range(20))
        assert trace.n_tasks == 20

    def test_threaded_parallel_speedup_structure(self):
        """Independent tasks run concurrently (check via concurrency profile)."""
        import time

        g = TaskGraph()
        for i in range(8):
            g.add_task(kernel="sleep", step=0, writes={(i, i)}, fn=lambda: time.sleep(0.05))
        trace = ThreadedExecutor(workers=4).run(g)
        assert trace.wall_time < 8 * 0.05  # strictly faster than serial
        assert trace.max_concurrency >= 2

    def test_threaded_numeric_correctness(self, rng):
        n, nb = 64, 16
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        c = np.zeros((n, n))
        g = TaskGraph()
        for i in range(n // nb):
            for j in range(n // nb):
                for k in range(n // nb):
                    def gemm(i=i, j=j, k=k):
                        c[i * nb:(i + 1) * nb, j * nb:(j + 1) * nb] += (
                            a[i * nb:(i + 1) * nb, k * nb:(k + 1) * nb]
                            @ b[k * nb:(k + 1) * nb, j * nb:(j + 1) * nb]
                        )
                    g.add_task(kernel="gemm", step=k, reads={(i, k), (k, j)},
                               writes={(i, j)}, fn=gemm)
        ThreadedExecutor(workers=3).run(g)
        np.testing.assert_allclose(c, a @ b, atol=1e-10)

    def test_threaded_propagates_errors(self):
        g = TaskGraph()

        def boom():
            raise RuntimeError("kernel failed")

        g.add_task(kernel="boom", step=0, fn=boom)
        with pytest.raises(RuntimeError, match="kernel failed"):
            ThreadedExecutor(workers=2).run(g)

    def test_threaded_invalid_workers(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(workers=0)

    def test_empty_graph(self):
        assert ThreadedExecutor(workers=2).run(TaskGraph()).n_tasks == 0


class TestExecutorErrorHandling:
    def _failing_graph(self):
        g = TaskGraph()
        g.add_task(kernel="ok", step=0, writes={(0, 0)}, fn=lambda: None)

        def boom():
            raise RuntimeError("kernel failed")

        g.add_task(kernel="boom", step=0, reads={(0, 0)}, fn=boom)
        g.add_task(kernel="never", step=0, extra_deps=[1], fn=lambda: None)
        return g

    def test_concurrency_profile_with_unfinished_task(self):
        """Regression: a started-but-unfinished task must not raise KeyError."""
        from repro.runtime import ExecutionTrace

        trace = ExecutionTrace()
        trace.start_times = {0: 0.0, 1: 0.5}
        trace.finish_times = {0: 1.0}  # task 1 started but never finished
        profile = trace.concurrency_profile(resolution=10)
        assert profile  # no KeyError
        assert max(profile) == 2  # both overlap in [0.5, 1.0)
        assert profile[-1] >= 1  # the unfinished task is in flight until t1

    def test_concurrency_profile_all_unfinished(self):
        from repro.runtime import ExecutionTrace

        trace = ExecutionTrace()
        trace.start_times = {0: 0.0, 1: 0.25}
        profile = trace.concurrency_profile(resolution=5)
        assert profile[-1] == 2

    def test_concurrency_profile_single_point(self):
        """Regression: resolution=1 must not divide by zero."""
        from repro.runtime import ExecutionTrace

        trace = ExecutionTrace()
        trace.start_times = {0: 0.0, 1: 0.5}
        trace.finish_times = {0: 1.0, 1: 1.5}
        profile = trace.concurrency_profile(resolution=1)
        assert profile == [1]  # sampled at the window start: only task 0

    def test_concurrency_profile_validates_resolution(self):
        from repro.runtime import ExecutionTrace

        trace = ExecutionTrace()
        trace.start_times = {0: 0.0}
        trace.finish_times = {0: 1.0}
        for bad in (0, -3):
            with pytest.raises(ValueError, match="resolution"):
                trace.concurrency_profile(resolution=bad)

    def test_threaded_error_trace_inspectable(self):
        executor = ThreadedExecutor(workers=2)
        with pytest.raises(RuntimeError, match="kernel failed"):
            executor.run(self._failing_graph())
        trace = executor.last_trace
        assert trace is not None
        assert trace.wall_time > 0.0  # set before raising
        # The errored task has both a start and a finish time recorded.
        assert 1 in trace.start_times and 1 in trace.finish_times
        # The successor of the failed task never started.
        assert 2 not in trace.start_times
        # The partial trace supports analysis without raising.
        assert trace.concurrency_profile()
        assert trace.max_concurrency >= 1

    def test_sequential_error_trace_inspectable(self):
        executor = SequentialExecutor()
        with pytest.raises(RuntimeError, match="kernel failed"):
            executor.run(self._failing_graph())
        trace = executor.last_trace
        assert trace.wall_time > 0.0
        assert 1 in trace.finish_times
        assert trace.concurrency_profile()

    def test_threaded_timeout_partial_trace(self):
        import time

        g = TaskGraph()
        g.add_task(kernel="slow", step=0, fn=lambda: time.sleep(0.4))
        executor = ThreadedExecutor(workers=1)
        with pytest.raises(TimeoutError):
            executor.run(g, timeout=0.05)
        trace = executor.last_trace
        assert trace.wall_time > 0.0
        assert trace.n_started == 1
        assert trace.concurrency_profile()  # robust to the unfinished task

    def test_threaded_completes_within_timeout(self):
        g = TaskGraph()
        g.add_task(kernel="fast", step=0, fn=lambda: None)
        trace = ThreadedExecutor(workers=1).run(g, timeout=10.0)
        assert trace.n_tasks == 1


# --------------------------------------------------------------------------- #
# Dynamic per-step dataflow
# --------------------------------------------------------------------------- #
class TestStepDataflow:
    def test_stage_structure(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 6)
        flow = StepDataflow(dist, k=0, nb=8)
        summary = flow.summary()
        assert set(summary) == {
            "backup_panel", "lu_on_panel", "decision", "propagate", "lu_step", "qr_step",
        }
        assert summary["propagate"] == 6  # one per panel tile
        assert summary["backup_panel"] == len(dist.diagonal_domain_rows(0))

    def test_branch_sizes(self):
        n = 5
        dist = BlockCyclicDistribution(ProcessGrid(1, 1), n)
        flow = StepDataflow(dist, k=0, nb=4)
        r = n - 1
        # LU branch: r TRSM + r SWPTRSM + r*r GEMM.
        assert len(flow.lu_branch) == 2 * r + r * r
        # QR branch (flat TS chain): 1 GEQRT + r UNMQR + r TSQRT + r*r TSMQR.
        assert len(flow.qr_branch) == 1 + 2 * r + r * r

    def test_resolve_discards_other_branch(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 6)
        flow = StepDataflow(dist, k=1, nb=8)
        total = len(flow.graph)
        lu_kept = flow.resolve(use_lu=True)
        qr_kept = flow.resolve(use_lu=False)
        assert len(lu_kept) == total - len(flow.qr_branch)
        assert len(qr_kept) == total - len(flow.lu_branch)
        assert not any(t.uid in set(flow.qr_branch) for t in lu_kept)

    def test_control_tasks_in_both_resolutions(self):
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), 4)
        flow = StepDataflow(dist, k=0, nb=8)
        control = set(flow.control_tasks())
        for use_lu in (True, False):
            kept = {t.uid for t in flow.resolve(use_lu)}
            assert control <= kept
