"""Tests for the LU and QR tile kernels and the Table I flop model."""

import numpy as np
import pytest

from repro.kernels import (
    KernelFlops,
    LUPanelFactor,
    apply_swptrsm,
    eliminate_trsm,
    factor_panel_lu,
    factor_tile_lu,
    factorization_flops_lu,
    factorization_flops_qr,
    fake_flops,
    geqrt_tile,
    kernel_flops,
    lu_step_flops,
    qr_step_flops,
    step_flops_table,
    true_flops,
    tsmqr,
    tsqrt,
    ttmqr,
    ttqrt,
    unmqr,
    update_gemm,
)
from repro.linalg import build_q


# --------------------------------------------------------------------------- #
# LU kernels
# --------------------------------------------------------------------------- #
class TestLUKernels:
    def test_factor_tile_properties(self, rng):
        a = rng.standard_normal((8, 8))
        f = factor_tile_lu(a)
        assert isinstance(f, LUPanelFactor)
        assert f.nb == 8
        assert f.u.shape == (8, 8)
        np.testing.assert_allclose(np.tril(f.u, -1), 0.0)
        np.testing.assert_allclose(np.diag(f.l_top), 1.0)
        assert f.smallest_pivot > 0.0

    def test_factor_panel_stacks(self, rng):
        stacked = rng.standard_normal((24, 8))
        f = factor_panel_lu(stacked, 8)
        # The factored panel reproduces the permuted input: P W = L U.
        lfull = np.tril(f.lu, -1)
        lfull[np.arange(8), np.arange(8)] = 1.0
        from repro.linalg import apply_row_pivots

        pw = apply_row_pivots(stacked.copy(), f.piv)
        np.testing.assert_allclose(lfull @ f.u, pw, atol=1e-11)

    def test_factor_panel_recursive_equals_plain(self, rng):
        stacked = rng.standard_normal((32, 8))
        f1 = factor_panel_lu(stacked, 8, recursive=True)
        f2 = factor_panel_lu(stacked, 8, recursive=False)
        np.testing.assert_allclose(f1.lu, f2.lu, atol=1e-10)
        np.testing.assert_array_equal(f1.piv, f2.piv)

    def test_factor_panel_wrong_width(self, rng):
        with pytest.raises(ValueError):
            factor_panel_lu(rng.standard_normal((16, 4)), 8)

    def test_eliminate_trsm(self, rng):
        a_kk = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        f = factor_tile_lu(a_kk)
        a_ik = rng.standard_normal((6, 6))
        out = eliminate_trsm(f, a_ik)
        np.testing.assert_allclose(out @ f.u, a_ik, atol=1e-10)

    def test_apply_swptrsm_single_tile(self, rng):
        a_kk = rng.standard_normal((6, 6))
        f = factor_tile_lu(a_kk)
        c = rng.standard_normal((6, 4))
        out = apply_swptrsm(f, c)
        # out = L^{-1} P c  =>  L out = P c
        from repro.linalg import apply_row_pivots

        pc = apply_row_pivots(c.copy(), f.piv)
        np.testing.assert_allclose(f.l_top @ out[:6], pc[:6], atol=1e-10)

    def test_apply_swptrsm_row_count_check(self, rng):
        f = factor_tile_lu(rng.standard_normal((6, 6)))
        with pytest.raises(ValueError):
            apply_swptrsm(f, rng.standard_normal((8, 3)))

    def test_update_gemm(self, rng):
        a = rng.standard_normal((5, 5))
        b = rng.standard_normal((5, 5))
        c = rng.standard_normal((5, 5))
        np.testing.assert_allclose(update_gemm(c, a, b), c - a @ b)

    def test_lu_step_schur_complement(self, rng):
        """Factor + eliminate + apply + update reproduces the Schur complement."""
        nb = 6
        a_kk = rng.standard_normal((nb, nb)) + 5 * np.eye(nb)
        a_ik = rng.standard_normal((nb, nb))
        a_kj = rng.standard_normal((nb, nb))
        a_ij = rng.standard_normal((nb, nb))

        f = factor_tile_lu(a_kk)
        elim = eliminate_trsm(f, a_ik)
        applied = apply_swptrsm(f, a_kj)
        updated = update_gemm(a_ij, elim, applied[:nb])

        expected = a_ij - a_ik @ np.linalg.inv(a_kk) @ a_kj
        np.testing.assert_allclose(updated, expected, atol=1e-9)


# --------------------------------------------------------------------------- #
# QR kernels
# --------------------------------------------------------------------------- #
class TestQRKernels:
    def test_geqrt_tile(self, rng):
        a = rng.standard_normal((8, 8))
        f = geqrt_tile(a)
        q = build_q(f.v, f.t)
        np.testing.assert_allclose(q @ f.r, a, atol=1e-10)

    def test_unmqr_applies_qt(self, rng):
        a = rng.standard_normal((6, 6))
        c = rng.standard_normal((6, 4))
        f = geqrt_tile(a)
        q = build_q(f.v, f.t)
        np.testing.assert_allclose(unmqr(f, c), q.T @ c, atol=1e-10)

    def test_tsqrt_kills_bottom_tile(self, rng):
        nb = 6
        r_top = np.triu(rng.standard_normal((nb, nb)))
        a_bot = rng.standard_normal((nb, nb))
        f = tsqrt(r_top, a_bot)
        # R is upper triangular and the transformation reconstructs the stack.
        np.testing.assert_allclose(np.tril(f.r, -1), 0.0, atol=1e-12)
        q = build_q(f.v, f.t)
        stacked = np.vstack([r_top, a_bot])
        np.testing.assert_allclose(q @ np.vstack([f.r, np.zeros((nb, nb))]), stacked, atol=1e-10)

    def test_tsmqr_consistent_with_q(self, rng):
        nb = 5
        r_top = np.triu(rng.standard_normal((nb, nb)))
        a_bot = rng.standard_normal((nb, nb))
        f = tsqrt(r_top, a_bot)
        c_top = rng.standard_normal((nb, 3))
        c_bot = rng.standard_normal((nb, 3))
        top, bot = tsmqr(f, c_top, c_bot)
        q = build_q(f.v, f.t)
        expected = q.T @ np.vstack([c_top, c_bot])
        np.testing.assert_allclose(np.vstack([top, bot]), expected, atol=1e-10)

    def test_ttqrt_and_ttmqr(self, rng):
        nb = 4
        r1 = np.triu(rng.standard_normal((nb, nb)))
        r2 = np.triu(rng.standard_normal((nb, nb)))
        f = ttqrt(r1, r2)
        q = build_q(f.v, f.t)
        stacked = np.vstack([r1, r2])
        np.testing.assert_allclose(q @ np.vstack([f.r, np.zeros((nb, nb))]), stacked, atol=1e-10)
        c1, c2 = rng.standard_normal((nb, 2)), rng.standard_normal((nb, 2))
        top, bot = ttmqr(f, c1, c2)
        np.testing.assert_allclose(np.vstack([top, bot]), q.T @ np.vstack([c1, c2]), atol=1e-10)

    def test_norm_preservation(self, rng):
        """QR kernels never grow the Frobenius norm of the coupled tiles."""
        nb = 6
        r_top = np.triu(rng.standard_normal((nb, nb)))
        a_bot = rng.standard_normal((nb, nb))
        f = tsqrt(r_top, a_bot)
        before = np.linalg.norm(np.vstack([r_top, a_bot]))
        after = np.linalg.norm(f.r)
        assert after == pytest.approx(before, rel=1e-10)


# --------------------------------------------------------------------------- #
# Flop model (Table I)
# --------------------------------------------------------------------------- #
class TestFlops:
    def test_kernel_values_in_nb3_units(self):
        kf = KernelFlops(10)
        assert kf.getrf == pytest.approx((2 / 3) * 1000)
        assert kf.trsm == pytest.approx(1000)
        assert kf.gemm == pytest.approx(2000)
        assert kf.geqrt == pytest.approx((4 / 3) * 1000)
        assert kf.tsqrt == pytest.approx(2000)
        assert kf.tsmqr == pytest.approx(4000)

    def test_kernel_flops_by_name(self):
        assert kernel_flops("GEMM", 4) == pytest.approx(2 * 64)
        with pytest.raises(KeyError):
            kernel_flops("nope", 4)

    def test_table1_first_step_units(self):
        # For the first step of an n-tile matrix, Table I gives (n-1) factors.
        table = step_flops_table(nb=240, remaining=5)
        assert table["lu"]["factor"] == pytest.approx(2 / 3)
        assert table["lu"]["eliminate"] == pytest.approx(4.0)
        assert table["lu"]["apply"] == pytest.approx(4.0)
        assert table["lu"]["update"] == pytest.approx(2 * 16.0)
        assert table["qr"]["factor"] == pytest.approx(4 / 3)
        assert table["qr"]["eliminate"] == pytest.approx(8.0)
        assert table["qr"]["update"] == pytest.approx(4 * 16.0)

    def test_qr_step_roughly_twice_lu(self):
        for remaining in (2, 8, 40):
            lu = lu_step_flops(16, remaining)["total"]
            qr = qr_step_flops(16, remaining)["total"]
            assert 1.8 <= qr / lu <= 2.1

    def test_factorization_totals(self):
        n = 960
        assert factorization_flops_lu(n) == pytest.approx(2 / 3 * n**3)
        assert factorization_flops_qr(n) == pytest.approx(4 / 3 * n**3)
        assert fake_flops(n) == factorization_flops_lu(n)

    def test_sum_of_lu_steps_approaches_total(self):
        nb, n_tiles = 32, 24
        total = sum(lu_step_flops(nb, n_tiles - k)["total"] for k in range(n_tiles))
        expected = factorization_flops_lu(nb * n_tiles)
        assert total == pytest.approx(expected, rel=0.15)

    def test_true_flops_interpolates(self):
        n = 1000
        assert true_flops(n, 1.0) == pytest.approx(factorization_flops_lu(n))
        assert true_flops(n, 0.0) == pytest.approx(factorization_flops_qr(n))
        mid = true_flops(n, 0.5)
        assert factorization_flops_lu(n) < mid < factorization_flops_qr(n)

    def test_true_flops_validates_fraction(self):
        with pytest.raises(ValueError):
            true_flops(100, 1.5)
