"""Tests for the result objects and the solver-base plumbing."""

import numpy as np
import pytest

from repro import HybridLUQRSolver, MaxCriterion, ProcessGrid
from repro.core import pad_to_tile_multiple
from repro.core.factorization import SolveResult, StepRecord
from repro.trees import BinaryTree, FibonacciTree, FlatTree, GreedyTree


class TestPadding:
    def test_no_padding_when_multiple(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal(16)
        a2, b2, pad = pad_to_tile_multiple(a, b, 8)
        assert pad == 0
        assert a2 is a

    def test_padding_preserves_leading_solution(self, rng):
        n, nb = 13, 4
        a = rng.standard_normal((n, n)) + 4 * np.eye(n)
        x = rng.standard_normal(n)
        b = a @ x
        a2, b2, pad = pad_to_tile_multiple(a, b, nb)
        assert pad == 3
        assert a2.shape == (16, 16)
        x2 = np.linalg.solve(a2, b2[:, 0])
        np.testing.assert_allclose(x2[:n], x, atol=1e-10)
        np.testing.assert_allclose(x2[n:], 0.0, atol=1e-10)

    def test_padding_without_rhs(self, rng):
        a2, b2, pad = pad_to_tile_multiple(rng.standard_normal((10, 10)), None, 4)
        assert pad == 2 and b2 is None

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.complex128])
    def test_padding_preserves_dtype(self, rng, dtype):
        """Regression: padding silently upcast everything to float64."""
        a = rng.standard_normal((10, 10)).astype(dtype)
        b = rng.standard_normal(10).astype(dtype)
        a2, b2, pad = pad_to_tile_multiple(a, b, 4)
        assert pad == 2
        assert a2.dtype == dtype
        assert b2.dtype == dtype
        np.testing.assert_array_equal(a2[:10, :10], a)

    @pytest.mark.parametrize("n,nb", [(13, 8), (21, 8), (7, 4), (30, 16)])
    def test_round_trip_1d_rhs(self, rng, n, nb):
        """Solving a padded system returns the original 1-D solution."""
        a = rng.standard_normal((n, n)) + 4 * np.eye(n)
        x_true = rng.standard_normal(n)
        b = a @ x_true

        a2, b2, pad = pad_to_tile_multiple(a, b, nb)
        assert pad == (-n) % nb and pad > 0
        assert a2.shape == (n + pad, n + pad)
        # The 1-D rhs is carried as a padded column internally.
        assert b2.shape == (n + pad, 1)
        np.testing.assert_array_equal(b2[:n, 0], b)
        np.testing.assert_array_equal(b2[n:, 0], 0.0)

        # End-to-end through a solver: the unpadded solution matches.
        res = HybridLUQRSolver(nb, MaxCriterion(10.0)).solve(a, b)
        assert res.x.shape == (n,)
        np.testing.assert_allclose(res.x, x_true, atol=1e-8)

    @pytest.mark.parametrize("n,nb,nrhs", [(13, 8, 3), (21, 4, 2)])
    def test_round_trip_2d_rhs(self, rng, n, nb, nrhs):
        """Padding preserves every column of a 2-D right-hand side."""
        a = rng.standard_normal((n, n)) + 4 * np.eye(n)
        x_true = rng.standard_normal((n, nrhs))
        b = a @ x_true

        a2, b2, pad = pad_to_tile_multiple(a, b, nb)
        assert b2.shape == (n + pad, nrhs)
        np.testing.assert_array_equal(b2[:n], b)
        np.testing.assert_array_equal(b2[n:], 0.0)
        # The padded identity block leaves each column's solution unchanged.
        x2 = np.linalg.solve(a2, b2)
        np.testing.assert_allclose(x2[:n], x_true, atol=1e-8)
        np.testing.assert_allclose(x2[n:], 0.0, atol=1e-10)

        res = HybridLUQRSolver(nb, MaxCriterion(10.0)).solve(a, b)
        assert res.x.shape == (n, nrhs)
        np.testing.assert_allclose(res.x, x_true, atol=1e-8)


class TestStepRecord:
    def test_add_kernel_accumulates(self):
        r = StepRecord(k=0, kind="LU")
        r.add_kernel("gemm", 3)
        r.add_kernel("gemm")
        assert r.kernel_counts["gemm"] == 4
        assert r.is_lu and not r.is_qr


class TestSolveResult:
    def test_from_factorization(self, rng):
        n = 32
        a = rng.standard_normal((n, n)) + 4 * np.eye(n)
        x_true = rng.standard_normal(n)
        b = a @ x_true
        fact = HybridLUQRSolver(8, MaxCriterion(10.0)).factor(a, b)
        res = SolveResult.from_factorization(a, b, fact, x_true=x_true)
        assert res.hpl3 < 50
        assert res.stability.forward_error < 1e-8


class TestTreeConfigurations:
    @pytest.mark.parametrize("intra", [FlatTree(), GreedyTree(), BinaryTree(), FibonacciTree()])
    def test_hybrid_solves_with_any_intra_tree(self, rng, intra):
        n = 40
        a = rng.standard_normal((n, n))
        x_true = rng.standard_normal(n)
        solver = HybridLUQRSolver(
            8, MaxCriterion(0.0), grid=ProcessGrid(2, 2), intra_tree=intra,
        )
        res = solver.solve(a, a @ x_true)
        np.testing.assert_allclose(res.x, x_true, atol=1e-7)

    @pytest.mark.parametrize("inter", [FlatTree(), BinaryTree(), FibonacciTree()])
    def test_hybrid_solves_with_any_inter_tree(self, rng, inter):
        n = 40
        a = rng.standard_normal((n, n))
        x_true = rng.standard_normal(n)
        solver = HybridLUQRSolver(
            8, MaxCriterion(0.0), grid=ProcessGrid(4, 1), inter_tree=inter,
        )
        res = solver.solve(a, a @ x_true)
        np.testing.assert_allclose(res.x, x_true, atol=1e-7)
