"""Tests for the compact-WY Householder substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import apply_q, apply_q_transpose, build_q, geqrt, house, larft


class TestHouse:
    def test_annihilates_tail(self, rng):
        x = rng.standard_normal(7)
        v, tau, beta = house(x)
        h = np.eye(7) - tau * np.outer(v, v)
        y = h @ x
        assert y[0] == pytest.approx(beta, rel=1e-12)
        np.testing.assert_allclose(y[1:], 0.0, atol=1e-12)

    def test_reflector_is_orthogonal(self, rng):
        x = rng.standard_normal(5)
        v, tau, _ = house(x)
        h = np.eye(5) - tau * np.outer(v, v)
        np.testing.assert_allclose(h @ h.T, np.eye(5), atol=1e-12)

    def test_zero_tail_gives_identity(self):
        x = np.array([3.0, 0.0, 0.0])
        v, tau, beta = house(x)
        assert tau == 0.0
        assert beta == 3.0

    def test_length_one(self):
        v, tau, beta = house(np.array([2.5]))
        assert tau == 0.0
        assert beta == 2.5

    def test_norm_preserved(self, rng):
        x = rng.standard_normal(9)
        _, _, beta = house(x)
        assert abs(beta) == pytest.approx(np.linalg.norm(x), rel=1e-12)


class TestGeqrt:
    def test_square_reconstruction(self, rng):
        a = rng.standard_normal((8, 8))
        v, t, r = geqrt(a)
        q = build_q(v, t)
        np.testing.assert_allclose(q @ np.vstack([r]), a, atol=1e-10)

    def test_tall_reconstruction(self, rng):
        a = rng.standard_normal((12, 5))
        v, t, r = geqrt(a)
        q = build_q(v, t)
        full_r = np.vstack([r, np.zeros((7, 5))])
        np.testing.assert_allclose(q @ full_r, a, atol=1e-10)

    def test_q_is_orthogonal(self, rng):
        a = rng.standard_normal((10, 6))
        v, t, _ = geqrt(a)
        q = build_q(v, t)
        np.testing.assert_allclose(q.T @ q, np.eye(10), atol=1e-10)

    def test_r_upper_triangular(self, rng):
        a = rng.standard_normal((9, 9))
        _, _, r = geqrt(a)
        np.testing.assert_allclose(np.tril(r, -1), 0.0, atol=1e-14)

    def test_r_matches_numpy_up_to_signs(self, rng):
        a = rng.standard_normal((8, 8))
        _, _, r = geqrt(a)
        r_np = np.linalg.qr(a, mode="r")
        np.testing.assert_allclose(np.abs(np.diag(r)), np.abs(np.diag(r_np)), rtol=1e-10)

    def test_v_unit_lower_trapezoidal(self, rng):
        a = rng.standard_normal((10, 4))
        v, _, _ = geqrt(a)
        for j in range(4):
            assert v[j, j] == pytest.approx(1.0)
            np.testing.assert_allclose(v[:j, j], 0.0, atol=1e-14)

    def test_wide_matrix_rejected(self, rng):
        with pytest.raises(ValueError):
            geqrt(rng.standard_normal((3, 5)))

    def test_rank_deficient_column(self):
        a = np.zeros((6, 3))
        a[:, 0] = 1.0
        v, t, r = geqrt(a)
        q = build_q(v, t)
        np.testing.assert_allclose(q @ np.vstack([r, np.zeros((3, 3))]), a, atol=1e-12)


class TestApply:
    def test_apply_q_transpose_matches_explicit(self, rng):
        a = rng.standard_normal((10, 6))
        c = rng.standard_normal((10, 4))
        v, t, _ = geqrt(a)
        q = build_q(v, t)
        np.testing.assert_allclose(apply_q_transpose(v, t, c), q.T @ c, atol=1e-10)

    def test_apply_q_matches_explicit(self, rng):
        a = rng.standard_normal((7, 7))
        c = rng.standard_normal((7, 3))
        v, t, _ = geqrt(a)
        q = build_q(v, t)
        np.testing.assert_allclose(apply_q(v, t, c), q @ c, atol=1e-10)

    def test_apply_roundtrip(self, rng):
        a = rng.standard_normal((9, 5))
        c = rng.standard_normal((9, 2))
        v, t, _ = geqrt(a)
        back = apply_q(v, t, apply_q_transpose(v, t, c))
        np.testing.assert_allclose(back, c, atol=1e-10)

    def test_larft_consistency(self, rng):
        # Q built from (V, T) equals the product of individual reflectors.
        a = rng.standard_normal((6, 3))
        v, t, _ = geqrt(a)
        taus = np.diag(t)
        q_prod = np.eye(6)
        for j in range(3):
            h = np.eye(6) - taus[j] * np.outer(v[:, j], v[:, j])
            q_prod = q_prod @ h
        np.testing.assert_allclose(build_q(v, t), q_prod, atol=1e-10)

    def test_larft_zero_tau_column(self):
        v = np.zeros((4, 2))
        v[0, 0] = 1.0
        v[1, 1] = 1.0
        t = larft(v, np.array([0.0, 0.5]))
        assert t[0, 0] == 0.0
        assert t[1, 1] == 0.5

    @given(m=st.integers(2, 12), k=st.integers(1, 6), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_property_qr_reconstruction(self, m, k, seed):
        k = min(k, m)
        a = np.random.default_rng(seed).standard_normal((m, k))
        v, t, r = geqrt(a)
        q = build_q(v, t)
        np.testing.assert_allclose(q.T @ q, np.eye(m), atol=1e-9)
        np.testing.assert_allclose(q @ np.vstack([r, np.zeros((m - k, k))]), a, atol=1e-9)
