"""Tests for the experiment harnesses (Tables I-III, Figures 1-3, ablations).

These tests run each harness at a deliberately tiny scale and check (i) the
structure of the returned data and (ii) the qualitative relationships the
paper reports (stability ordering, QR/LU cost ratio, decision overhead).
"""

import math

import numpy as np
import pytest

from repro.experiments import ablations, figure1, figure2, figure3, table1, table2, table3
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_baseline,
    make_hybrid,
    resample_step_kinds,
    simulate_at_paper_scale,
)
from repro.tiles import ProcessGrid

TINY = ExperimentConfig(n_tiles=6, tile_size=4, paper_n_tiles=12, paper_tile_size=64,
                        grid=ProcessGrid(2, 2), samples=2, seed=7)


class TestCommonHelpers:
    def test_make_hybrid_all_criteria(self):
        for name in ("max", "sum", "mumps", "random"):
            solver = make_hybrid(name, 0.5, TINY, seed=0)
            assert solver.criterion.name == name
        with pytest.raises(ValueError):
            make_hybrid("unknown", 1.0, TINY)

    def test_make_baseline_all(self):
        for name in ("LU NoPiv", "LU IncPiv", "LUPP", "HQR"):
            assert make_baseline(name, TINY).algorithm == name
        with pytest.raises(ValueError):
            make_baseline("nope", TINY)

    def test_resample_step_kinds(self):
        kinds = ["LU", "LU", "QR", "QR"]
        up = resample_step_kinds(kinds, 8)
        assert len(up) == 8
        assert up.count("QR") == 4
        down = resample_step_kinds(kinds, 2)
        assert down == ["LU", "QR"]
        assert resample_step_kinds([], 3) == ["LU"] * 3

    def test_simulate_at_paper_scale(self, rng):
        solver = make_hybrid("max", 10.0, TINY)
        a = rng.standard_normal((TINY.n_order, TINY.n_order)) + 3 * np.eye(TINY.n_order)
        fact = solver.factor(a, np.ones(TINY.n_order))
        report = simulate_at_paper_scale(fact, TINY)
        assert report.n_tiles == TINY.paper_n_tiles
        assert report.fake_gflops > 0

    def test_format_table(self):
        out = format_table([{"a": 1, "b": 2.5}, {"a": 30, "b": 1e-9}])
        assert "a" in out and "30" in out
        assert format_table([]) == "(empty)"


class TestTable1:
    def test_rows_structure(self):
        rows = table1.table1_rows(remaining=4)
        assert len(rows) == 5
        total = rows[-1]
        assert total["qr_cost_nb3"] == pytest.approx(2 * total["lu_cost_nb3"], rel=0.1)

    def test_measured_counts_match_expected(self):
        counts = table1.measured_kernel_counts(n_tiles=4, nb=4)
        expected = counts["expected"]
        lu = counts["lu_first_step"]
        assert lu["getrf"] == expected["factor"]
        assert lu["trsm"] == expected["eliminate"]
        assert lu["gemm"] == expected["update"]
        qr = counts["qr_first_step"]
        qr_updates = sum(qr.get(k, 0) for k in ("tsmqr", "ttmqr", "unmqr"))
        assert qr_updates >= expected["update"]


class TestFigure1:
    def test_summary_counts(self):
        summary = figure1.figure1_summary(n_tiles=6, grid=ProcessGrid(2, 2))
        assert summary["lu_branch_tasks"] > 0
        assert summary["qr_branch_tasks"] > 0
        assert (
            summary["tasks_if_lu_selected"] + summary["qr_branch_tasks"]
            == summary["total_tasks_in_graph"]
        )

    def test_edges_format(self):
        edges = figure1.dataflow_edges(n_tiles=3, max_edges=10)
        assert edges and all("->" in e for e in edges)
        assert len(edges) <= 10


class TestFigure2:
    def test_rows_structure_and_shape(self):
        rows = figure2.figure2_rows(
            TINY, criteria=["max"], sizes=[4], include_baselines=True,
            simulate_performance=False,
        )
        labels = {r["label"] for r in rows}
        assert "LU NoPiv" in labels and "LUPP" in labels
        alphas = [r["alpha"] for r in rows if r["criterion"] == "max"]
        assert math.inf in alphas
        for row in rows:
            assert row["N"] == 4 * TINY.tile_size
            assert "relative_hpl3" in row and "lu_steps_pct" in row

    def test_alpha_inf_mostly_lu_and_alpha0_mostly_qr(self):
        rows = figure2.figure2_rows(
            TINY, criteria=["max"], sizes=[6], include_baselines=False,
            simulate_performance=False,
        )
        by_alpha = {r["alpha"]: r for r in rows}
        assert by_alpha[math.inf]["lu_steps_pct"] == pytest.approx(100.0)
        assert by_alpha[0.0]["lu_steps_pct"] < 50.0


class TestFigure3:
    def test_rows_on_subset(self):
        rows = figure3.figure3_rows(
            TINY, matrices=["ris", "orthog"], n_random=1, include_fiedler=True
        )
        names = {r["matrix"] for r in rows}
        assert {"random-1", "ris", "orthog", "fiedler"} <= names
        for row in rows:
            assert "LUQR Max" in row
        # LU NoPiv must be (much) worse than the Max-criterion hybrid on ris.
        ris = next(r for r in rows if r["matrix"] == "ris")
        assert ris["LU NoPiv"] > ris["LUQR Max"]


class TestTable2:
    def test_rows_and_orderings(self):
        cfg = ExperimentConfig(n_tiles=6, tile_size=4, paper_n_tiles=10, paper_tile_size=64,
                               grid=ProcessGrid(2, 2), samples=1, seed=3)
        rows = table2.table2_rows(cfg, alphas=[float("inf"), 5.0, 0.0])
        algos = [r["algorithm"] for r in rows]
        assert algos[:2] == ["LU NoPiv", "LU IncPiv"]
        assert algos[-2:] == ["HQR", "LUPP"]
        by_alpha = {r["alpha"]: r for r in rows if r["algorithm"] == "LUQR (MAX)"}
        assert by_alpha[float("inf")]["lu_steps_pct"] == pytest.approx(100.0)
        # fake GFLOP/s decreases as alpha decreases (more QR steps).
        assert by_alpha[float("inf")]["fake_gflops"] >= by_alpha[0.0]["fake_gflops"]
        nopiv = rows[0]
        assert nopiv["fake_gflops"] >= by_alpha[float("inf")]["fake_gflops"]


class TestTable3:
    def test_rows(self):
        rows = table3.table3_rows(n=16)
        assert len(rows) == 22  # 21 + fiedler
        hilb = next(r for r in rows if r["name"] == "hilb")
        assert hilb["symmetric"] is True
        assert hilb["cond_1"] > 1e8
        fiedler = next(r for r in rows if r["name"] == "fiedler")
        assert fiedler["zero_diagonal"] == 16


class TestAblations:
    def test_decision_overhead(self):
        out = ablations.decision_overhead_ablation(paper_n_tiles=10, paper_tile_size=64)
        assert 0.0 < out["overhead_pct"] < 60.0
        assert out["luqr_alpha0_time_s"] > out["hqr_time_s"]

    def test_tree_shape(self):
        rows = ablations.tree_shape_ablation(n_tiles=12, tile_size=64)
        by_name = {r["intra_tree"]: r for r in rows}
        assert by_name["flat"]["panel_depth"] > by_name["greedy"]["panel_depth"]

    def test_domain_pivoting(self):
        rows = ablations.domain_pivoting_ablation(TINY, samples=2)
        assert len(rows) == 2
        assert {r["pivot_search"] for r in rows} == {"diagonal tile only", "diagonal domain"}
