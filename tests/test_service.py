"""Tests for the asynchronous ``SolverService`` serving API."""

import asyncio
import threading

import numpy as np
import pytest

import repro
from repro.api.service import MatrixHandle, ServiceClosed, SolveFuture
from repro.api.session import matrix_fingerprint
from repro.linalg.pivoting import SingularPanelError

ALL_SOLVERS = [
    ("hybrid", dict(criterion="max(alpha=50)")),
    ("lupp", {}),
    ("lu_incpiv", {}),
    ("lu_nopiv", {}),
    ("hqr", {}),
]


def _system(rng, n=48):
    a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
    return a


@pytest.fixture
def service():
    svc = repro.SolverService(algorithm="lupp", tile_size=8)
    yield svc
    svc.shutdown(wait=False)


class TestRegister:
    def test_handle_key_is_the_fingerprint(self, rng):
        a = _system(rng)
        with repro.SolverService(algorithm="lupp", tile_size=8) as svc:
            h = svc.register(a)
        assert h.key == matrix_fingerprint(a)
        assert h.n == a.shape[0]
        assert h.shape == a.shape

    def test_handle_matrix_is_a_readonly_copy(self, rng, service):
        a = _system(rng)
        h = service.register(a)
        assert not h.matrix.flags.writeable
        with pytest.raises(ValueError):
            h.matrix[0, 0] = 1.0
        # mutating the caller's array cannot desynchronize the handle
        a[0, 0] += 100.0
        assert h.key == matrix_fingerprint(h.matrix)
        assert h.key != matrix_fingerprint(a)

    def test_handles_compare_by_key(self, rng, service):
        a = _system(rng)
        h1, h2 = service.register(a), service.register(a.copy())
        assert h1 == h2
        assert hash(h1) == hash(h2)

    def test_register_validates_like_the_session(self, service):
        with pytest.raises(ValueError, match="square"):
            service.register(np.ones((4, 5)))

    def test_register_warm_prefactors(self, rng, service):
        a = _system(rng)
        service.register(a, warm=True)
        assert service.session.stats.misses == 1
        assert service.session.cached_factorization(a) is not None


class TestSubmit:
    def test_future_resolves_to_solution(self, rng, service):
        a = _system(rng)
        x_true = rng.standard_normal(a.shape[0])
        fut = service.submit(a, a @ x_true)
        assert isinstance(fut, SolveFuture)
        result = fut.result(timeout=30)
        assert fut.done()
        np.testing.assert_allclose(result.x, x_true, atol=1e-8)

    def test_raw_matrix_registers_on_the_fly(self, rng, service):
        a = _system(rng)
        fut = service.submit(a, rng.standard_normal(a.shape[0]))
        assert fut.result(timeout=30).x.shape == (a.shape[0],)

    def test_two_dimensional_b_resolves_to_column_results(self, rng, service):
        a = _system(rng)
        n = a.shape[0]
        xs = rng.standard_normal((n, 3))
        fut = service.submit(service.register(a), a @ xs)
        results = fut.result(timeout=30)
        assert isinstance(results, list) and len(results) == 3
        for j, r in enumerate(results):
            np.testing.assert_allclose(r.x, xs[:, j], atol=1e-8)

    def test_shape_validation(self, rng, service):
        h = service.register(_system(rng))
        with pytest.raises(ValueError, match="rows"):
            service.submit(h, np.ones(h.n + 1))
        with pytest.raises(ValueError, match="1-D or 2-D"):
            service.submit(h, np.ones((h.n, 1, 1)))
        with pytest.raises(ValueError, match="at least one"):
            service.submit(h, np.ones((h.n, 0)))

    def test_submit_after_shutdown_raises(self, rng):
        svc = repro.SolverService(algorithm="lupp", tile_size=8)
        h = svc.register(_system(rng))
        svc.shutdown()
        with pytest.raises(ServiceClosed):
            svc.submit(h, np.ones(h.n))


class TestBitIdentical:
    """SolveFuture results are bit-identical to the synchronous serving path."""

    @pytest.mark.parametrize("algorithm,opts", ALL_SOLVERS)
    def test_singleton_submit_matches_session_solve(self, rng, algorithm, opts):
        a = _system(rng)
        b = rng.standard_normal(a.shape[0])
        session = repro.SolverSession(algorithm=algorithm, tile_size=8, **opts)
        sync = session.solve(a, b)
        with repro.SolverService(algorithm=algorithm, tile_size=8, **opts) as svc:
            served = svc.submit(svc.register(a), b).result(timeout=60)
        assert np.array_equal(served.x, sync.x)

    @pytest.mark.parametrize("algorithm,opts", ALL_SOLVERS)
    def test_coalesced_batch_matches_session_solve_many(self, rng, algorithm, opts):
        a = _system(rng)
        n = a.shape[0]
        bs = [rng.standard_normal(n) for _ in range(4)]
        session = repro.SolverSession(algorithm=algorithm, tile_size=8, **opts)
        sync = session.solve_many(a, bs)

        svc = repro.SolverService(algorithm=algorithm, tile_size=8, start=False, **opts)
        h = svc.register(a)
        futs = [svc.submit(h, b) for b in bs]  # queued before the dispatcher runs
        svc.start()
        svc.drain(timeout=60)
        svc.shutdown()
        assert svc.stats.batches == 1  # all four coalesced into one pass
        for fut, s in zip(futs, sync):
            assert np.array_equal(fut.result().x, s.x)


class TestCoalescing:
    def test_queued_requests_coalesce_into_one_batch(self, rng):
        svc = repro.SolverService(algorithm="lupp", tile_size=8, start=False)
        h = svc.register(_system(rng))
        futs = [svc.submit(h, rng.standard_normal(h.n)) for _ in range(6)]
        svc.start()
        svc.drain(timeout=60)
        assert all(f.done() for f in futs)
        assert svc.stats.submitted == 6
        assert svc.stats.completed == 6
        assert svc.stats.batches == 1
        assert svc.stats.coalesced_batches == 1
        assert svc.stats.coalesced_requests == 6
        assert svc.stats.max_batch_requests == 6
        # the whole batch was one cache access and one back-substitution
        assert svc.session.stats.misses == 1
        assert svc.session.stats.hits == 0
        assert svc.session.stats.solves == 1
        svc.shutdown()

    def test_mixed_column_counts_coalesce(self, rng):
        svc = repro.SolverService(algorithm="lupp", tile_size=8, start=False)
        h = svc.register(_system(rng))
        f1 = svc.submit(h, rng.standard_normal(h.n))
        f2 = svc.submit(h, rng.standard_normal((h.n, 3)))
        svc.start()
        svc.drain(timeout=60)
        assert svc.stats.batches == 1
        assert svc.stats.max_batch_columns == 4
        assert f1.result().x.shape == (h.n,)
        assert [r.x.shape for r in f2.result()] == [(h.n,)] * 3
        svc.shutdown()

    def test_different_matrices_do_not_coalesce(self, rng):
        svc = repro.SolverService(algorithm="lupp", tile_size=8, start=False)
        h1 = svc.register(_system(rng))
        h2 = svc.register(_system(rng))
        futs = [svc.submit(h, rng.standard_normal(h.n)) for h in (h1, h2, h1, h2)]
        svc.start()
        svc.drain(timeout=60)
        assert svc.stats.batches == 2
        assert svc.stats.coalesced_requests == 4
        assert all(f.done() for f in futs)
        assert svc.session.stats.misses == 2
        svc.shutdown()

    def test_priority_orders_batches(self, rng):
        order = []

        class RecordingSolver:
            def __init__(self, inner):
                self.inner = inner
                self.algorithm = inner.algorithm

            def factor(self, a, b=None):
                order.append(a.shape[0])
                return self.inner.factor(a, b)

            def solve(self, a, b, x_true=None):
                return self.inner.solve(a, b, x_true=x_true)

        solver = RecordingSolver(repro.make_solver("lupp", tile_size=8))
        svc = repro.SolverService(solver, start=False)
        low = svc.register(_system(rng, n=16))
        high = svc.register(_system(rng, n=32))
        f_low = svc.submit(low, rng.standard_normal(16), priority=0)
        f_high = svc.submit(high, rng.standard_normal(32), priority=5)
        svc.start()
        svc.drain(timeout=60)
        svc.shutdown()
        assert f_low.done() and f_high.done()
        # the priority-5 batch (order 32) was dispatched first
        assert order == [32, 16]


class TestConcurrency:
    def test_concurrent_submits_same_matrix(self, rng, service):
        a = _system(rng)
        h = service.register(a)
        xs = [rng.standard_normal(h.n) for _ in range(16)]
        futures = [None] * len(xs)

        def submit(i):
            futures[i] = service.submit(h, a @ xs[i])

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(len(xs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.drain(timeout=60)
        for i, fut in enumerate(futures):
            np.testing.assert_allclose(fut.result().x, xs[i], atol=1e-8)
        stats = service.stats
        assert stats.submitted == stats.completed == 16
        # coalescing happened: fewer dispatcher passes than requests, and
        # likewise fewer cache accesses than requests
        assert stats.batches < 16
        assert service.session.stats.requests < 16
        assert (
            stats.coalesced_requests
            + (stats.batches - stats.coalesced_batches)
            == 16
        )

    def test_concurrent_submits_different_matrices(self, rng, service):
        mats = [_system(rng, n=16), _system(rng, n=24), _system(rng, n=32)]
        handles = [service.register(a) for a in mats]
        results = {}
        lock = threading.Lock()

        def worker(idx):
            h = handles[idx % 3]
            a = mats[idx % 3]
            x = np.arange(1.0, h.n + 1.0)
            fut = service.submit(h, a @ x)
            with lock:
                results[idx] = (fut, x)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.drain(timeout=60)
        for fut, x in results.values():
            np.testing.assert_allclose(fut.result().x, x, atol=1e-8)
        assert service.stats.completed == 12
        assert service.session.stats.misses == 3

    def test_futures_resolve_after_clear_mid_flight(self, rng):
        """clear() while a batch is factoring: futures still resolve."""
        started = threading.Event()
        release = threading.Event()

        class StallingSolver:
            def __init__(self, inner):
                self.inner = inner
                self.algorithm = inner.algorithm

            def factor(self, a, b=None):
                started.set()
                assert release.wait(30.0), "clear() never ran"
                return self.inner.factor(a, b)

            def solve(self, a, b, x_true=None):
                return self.inner.solve(a, b, x_true=x_true)

        solver = StallingSolver(repro.make_solver("lupp", tile_size=8))
        svc = repro.SolverService(solver)
        a = _system(rng, n=16)
        h = svc.register(a)
        x = rng.standard_normal(16)
        fut = svc.submit(h, a @ x)
        assert started.wait(30.0)
        svc.clear()  # races the factorization serving the future
        release.set()
        np.testing.assert_allclose(fut.result(timeout=30).x, x, atol=1e-8)
        # the cleared cache was not resurrected by the in-flight miss
        assert len(svc.session) == 0
        assert svc.session.stats.misses == 0
        svc.shutdown()

    def test_shutdown_with_queued_work_serves_it(self, rng):
        svc = repro.SolverService(algorithm="lupp", tile_size=8, start=False)
        h = svc.register(_system(rng))
        futs = [svc.submit(h, rng.standard_normal(h.n)) for _ in range(5)]
        svc.shutdown(wait=True)  # never-started dispatcher drains the queue
        assert all(f.done() for f in futs)
        assert svc.stats.completed == 5
        assert all(f.exception() is None for f in futs)

    def test_shutdown_no_wait_fails_queued_futures(self, rng):
        svc = repro.SolverService(algorithm="lupp", tile_size=8, start=False)
        h = svc.register(_system(rng))
        futs = [svc.submit(h, rng.standard_normal(h.n)) for _ in range(3)]
        svc.shutdown(wait=False)
        for f in futs:
            assert isinstance(f.exception(timeout=5), ServiceClosed)
            with pytest.raises(ServiceClosed):
                f.result(timeout=5)
        assert svc.stats.failed == 3
        assert svc.stats.pending == 0

    def test_shutdown_is_idempotent(self, service):
        service.shutdown()
        service.shutdown()


class TestFailures:
    def test_breakdown_resolves_future_with_exception(self, rng):
        svc = repro.SolverService(algorithm="lu_nopiv", tile_size=2)
        bad = svc.submit(np.zeros((8, 8)), np.ones(8))
        assert isinstance(bad.exception(timeout=30), SingularPanelError)
        with pytest.raises(SingularPanelError):
            bad.result(timeout=30)
        # the dispatcher survives and keeps serving
        a = _system(rng, n=8)
        x = rng.standard_normal(8)
        good = svc.submit(a, a @ x)
        np.testing.assert_allclose(good.result(timeout=30).x, x, atol=1e-8)
        assert svc.stats.failed == 1
        assert svc.stats.completed == 1
        svc.shutdown()

    def test_failed_batch_fails_every_coalesced_future(self, rng):
        svc = repro.SolverService(algorithm="lu_nopiv", tile_size=2, start=False)
        h = svc.register(np.zeros((8, 8)))
        futs = [svc.submit(h, np.ones(8)) for _ in range(3)]
        svc.start()
        svc.drain(timeout=30)
        assert all(isinstance(f.exception(), SingularPanelError) for f in futs)
        assert svc.stats.failed == 3
        svc.shutdown()


class TestSolveFuture:
    def test_result_timeout(self, rng):
        fut = SolveFuture()
        with pytest.raises(TimeoutError):
            fut.result(timeout=0.01)
        with pytest.raises(TimeoutError):
            fut.exception(timeout=0.01)

    def test_done_callback_after_resolution_runs_immediately(self):
        fut = SolveFuture()
        fut._resolve(result=42)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == [42]

    def test_done_callback_before_resolution(self):
        fut = SolveFuture()
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == []
        fut._resolve(result=7)
        assert seen == [7]

    def test_resolves_exactly_once(self):
        fut = SolveFuture()
        fut._resolve(result=1)
        fut._resolve(result=2)
        fut._resolve(exception=RuntimeError("late"))
        assert fut.result() == 1
        assert fut.exception() is None

    def test_broken_callback_does_not_break_others(self):
        fut = SolveFuture()
        seen = []
        fut.add_done_callback(lambda f: 1 / 0)
        fut.add_done_callback(lambda f: seen.append(True))
        fut._resolve(result=0)
        assert seen == [True]


class TestAsyncio:
    def test_await_solve_future(self, rng, service):
        a = _system(rng)
        h = service.register(a)
        x = rng.standard_normal(h.n)

        async def main():
            return await service.submit(h, a @ x)

        result = asyncio.run(main())
        np.testing.assert_allclose(result.x, x, atol=1e-8)

    def test_await_propagates_exception(self):
        svc = repro.SolverService(algorithm="lu_nopiv", tile_size=2)

        async def main():
            await svc.submit(np.zeros((8, 8)), np.ones(8))

        with pytest.raises(SingularPanelError):
            asyncio.run(main())
        svc.shutdown()

    def test_asolve_with_explicit_service(self, rng, service):
        a = _system(rng)
        x = rng.standard_normal(a.shape[0])

        async def main():
            return await repro.asolve(a, a @ x, service=service)

        np.testing.assert_allclose(asyncio.run(main()).x, x, atol=1e-8)

    def test_asolve_rejects_constructed_spec_objects(self, rng):
        """A per-call constructed spec would leak one service per request."""
        a = _system(rng)

        async def main():
            await repro.asolve(a, np.ones(a.shape[0]),
                               executor=repro.SequentialExecutor())

        with pytest.raises(TypeError, match="declarative spec"):
            asyncio.run(main())

    def test_asolve_rejects_service_plus_spec(self, rng, service):
        a = _system(rng)

        async def main():
            await repro.asolve(a, np.ones(a.shape[0]), service=service,
                               algorithm="lupp")

        with pytest.raises(ValueError, match="explicit service"):
            asyncio.run(main())

    def test_gathered_asolves_share_the_default_service(self, rng):
        a = _system(rng)
        n = a.shape[0]
        xs = [rng.standard_normal(n) for _ in range(4)]

        async def main():
            return await asyncio.gather(
                *[repro.asolve(a, a @ x, algorithm="lupp", tile_size=8)
                  for x in xs]
            )

        results = asyncio.run(main())
        for r, x in zip(results, xs):
            np.testing.assert_allclose(r.x, x, atol=1e-8)
        # same spec → same process-wide service (and one cached matrix)
        from repro.api.service import _DEFAULT_SERVICES

        shared = [
            s for s in _DEFAULT_SERVICES.values()
            if s.session.cached_factorization(a) is not None
        ]
        assert len(shared) == 1


class TestLifecycle:
    def test_context_manager_starts_and_shuts_down(self, rng):
        a = _system(rng)
        with repro.SolverService(algorithm="lupp", tile_size=8, start=False) as svc:
            fut = svc.submit(svc.register(a), rng.standard_normal(a.shape[0]))
            # __enter__ started the dispatcher, so the future resolves
            assert fut.result(timeout=30) is not None
        with pytest.raises(ServiceClosed):
            svc.submit(a, np.ones(a.shape[0]))

    def test_wraps_existing_session(self, rng):
        session = repro.SolverSession(algorithm="lupp", tile_size=8)
        a = _system(rng)
        session.warm(a)
        with repro.SolverService(session) as svc:
            assert svc.session is session
            fut = svc.submit(a, np.ones(a.shape[0]))
            fut.result(timeout=30)
        assert session.stats.misses == 1  # reused the pre-warmed entry
        assert session.stats.hits == 1

    def test_rejects_session_plus_spec_kwargs(self):
        session = repro.SolverSession(algorithm="lupp", tile_size=8)
        with pytest.raises(ValueError):
            repro.SolverService(session, tile_size=16)

    def test_shutdown_closes_owned_executor(self):
        class ClosingExecutor:
            def __init__(self):
                self.closed = 0

            def run(self, graph, timeout=None):  # pragma: no cover - unused
                raise AssertionError("not executed in this test")

            def close(self):
                self.closed += 1

        executor = ClosingExecutor()
        svc = repro.SolverService(
            algorithm="lupp", tile_size=8, executor=executor
        )
        svc.shutdown()
        svc.shutdown()  # idempotent: closed exactly once
        assert executor.closed == 1

    def test_prebuilt_solver_keeps_its_executor(self):
        class ClosingExecutor:
            def __init__(self):
                self.closed = 0

            def run(self, graph, timeout=None):  # pragma: no cover - unused
                raise AssertionError("not executed in this test")

            def close(self):
                self.closed += 1

        executor = ClosingExecutor()
        solver = repro.make_solver("lupp", tile_size=8, executor=executor)
        svc = repro.SolverService(solver)
        svc.shutdown()
        assert executor.closed == 0

    def test_drain_timeout(self, rng):
        release = threading.Event()

        class StallingSolver:
            def __init__(self, inner):
                self.inner = inner
                self.algorithm = inner.algorithm

            def factor(self, a, b=None):
                assert release.wait(30.0)
                return self.inner.factor(a, b)

            def solve(self, a, b, x_true=None):
                return self.inner.solve(a, b, x_true=x_true)

        svc = repro.SolverService(StallingSolver(repro.make_solver("lupp", tile_size=8)))
        a = _system(rng, n=16)
        fut = svc.submit(a, np.ones(16))
        with pytest.raises(TimeoutError):
            svc.drain(timeout=0.05)
        release.set()
        fut.result(timeout=30)
        svc.shutdown()

    def test_repeated_drain_on_idle_service(self, service):
        service.drain(timeout=5)
        service.drain(timeout=5)


class TestStatsSnapshot:
    def test_snapshot_is_detached(self, rng, service):
        a = _system(rng)
        h = service.register(a)
        service.submit(h, np.ones(h.n)).result(timeout=30)
        service.drain(timeout=30)
        snap = service.stats.snapshot()
        service.submit(h, np.ones(h.n)).result(timeout=30)
        service.drain(timeout=30)
        assert snap.completed == 1
        assert service.stats.completed == 2
        assert isinstance(snap, type(service.stats))


def test_service_exported_at_top_level():
    assert repro.SolverService is not None
    assert repro.MatrixHandle is MatrixHandle
    assert repro.SolveFuture is SolveFuture
    assert callable(repro.asolve)
    assert "SolverService" in dir(repro.api)
