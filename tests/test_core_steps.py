"""Tests for panel analysis and the LU / QR elimination steps."""

import numpy as np
import pytest

from repro.core import analyze_panel, perform_lu_step, perform_qr_step
from repro.core.factorization import StepRecord
from repro.core.qr_step import qr_step_operations
from repro.linalg import inverse_norm1_exact
from repro.tiles import BlockCyclicDistribution, ProcessGrid, TileMatrix
from repro.trees import FlatTree, GreedyTree, HierarchicalTree


def make_tiles(rng, n_tiles=4, nb=4, rhs=True, diag_boost=0.0):
    n = n_tiles * nb
    a = rng.standard_normal((n, n)) + diag_boost * np.eye(n)
    b = rng.standard_normal(n) if rhs else None
    return TileMatrix.from_dense(a, nb, rhs=b), a, (None if b is None else b.copy())


class TestPanelAnalysis:
    def test_domain_rows_match_distribution(self, rng, grid22):
        tiles, _, _ = make_tiles(rng, 6, 4)
        dist = BlockCyclicDistribution(grid22, 6)
        for k in range(6):
            analysis = analyze_panel(tiles, dist, k)
            assert analysis.domain_rows == dist.diagonal_domain_rows(k)

    def test_tile_only_variant(self, rng, grid22):
        tiles, _, _ = make_tiles(rng, 4, 4)
        dist = BlockCyclicDistribution(grid22, 4)
        analysis = analyze_panel(tiles, dist, 0, domain_pivoting=False)
        assert analysis.domain_rows == [0]

    def test_offdiag_norms_are_panel_tile_norms(self, rng, grid22):
        tiles, _, _ = make_tiles(rng, 4, 4)
        dist = BlockCyclicDistribution(grid22, 4)
        analysis = analyze_panel(tiles, dist, 1)
        expected = [tiles.tile_norm(i, 1, 1) for i in range(2, 4)]
        assert analysis.info.offdiag_tile_norms == pytest.approx(expected)

    def test_local_away_max_partition(self, rng):
        tiles, a, _ = make_tiles(rng, 6, 3)
        dist = BlockCyclicDistribution(ProcessGrid(3, 1), 6)
        analysis = analyze_panel(tiles, dist, 0)
        info = analysis.info
        domain = dist.diagonal_domain_rows(0)
        off = dist.off_diagonal_domain_rows(0)
        panel_local = np.vstack([a[i * 3 : (i + 1) * 3, 0:3] for i in domain])
        panel_away = np.vstack([a[i * 3 : (i + 1) * 3, 0:3] for i in off])
        np.testing.assert_allclose(info.local_max, np.max(np.abs(panel_local), axis=0))
        np.testing.assert_allclose(info.away_max, np.max(np.abs(panel_away), axis=0))

    def test_diag_inv_norm_close_to_exact(self, rng):
        tiles, a, _ = make_tiles(rng, 3, 5, diag_boost=5.0)
        dist = BlockCyclicDistribution(ProcessGrid(1, 1), 3)
        analysis = analyze_panel(tiles, dist, 2)  # last panel: domain = single tile
        exact = 1.0 / inverse_norm1_exact(a[10:15, 10:15])
        assert analysis.info.diag_inv_norm_inv == pytest.approx(exact, rel=0.8)

    def test_does_not_modify_tiles(self, rng, grid22):
        tiles, a, b = make_tiles(rng, 4, 4)
        dist = BlockCyclicDistribution(grid22, 4)
        analyze_panel(tiles, dist, 0)
        np.testing.assert_array_equal(tiles.array, a)
        np.testing.assert_array_equal(tiles.rhs[:, 0], b)

    def test_pivots_are_positive_magnitudes(self, rng, grid22):
        tiles, _, _ = make_tiles(rng, 4, 4)
        dist = BlockCyclicDistribution(grid22, 4)
        info = analyze_panel(tiles, dist, 0).info
        assert np.all(info.pivots >= 0.0)
        assert info.pivots.shape == (4,)


def schur_reference(a, b, nb):
    """Reference: after one block elimination step, trailing Schur complement."""
    a11 = a[:nb, :nb]
    a1r = a[:nb, nb:]
    ar1 = a[nb:, :nb]
    arr = a[nb:, nb:]
    inv = np.linalg.inv(a11)
    schur = arr - ar1 @ inv @ a1r
    b1 = b[:nb]
    br = b[nb:] - ar1 @ inv @ b1
    return schur, br


class TestLUStep:
    @pytest.mark.parametrize("grid", [ProcessGrid(1, 1), ProcessGrid(2, 2), ProcessGrid(4, 1)])
    def test_trailing_matrix_is_schur_complement(self, rng, grid):
        tiles, a, b = make_tiles(rng, 4, 4, diag_boost=4.0)
        dist = BlockCyclicDistribution(grid, 4)
        record = StepRecord(k=0, kind="LU")
        analysis = analyze_panel(tiles, dist, 0)
        perform_lu_step(tiles, 0, analysis, record)

        schur, br = schur_reference(a, b, 4)
        np.testing.assert_allclose(tiles.array[4:, 4:], schur, atol=1e-9)
        np.testing.assert_allclose(tiles.rhs[4:, 0], br, atol=1e-9)

    def test_row_k_solves_original_system_block(self, rng, grid22):
        """Row k after the step holds U_0j such that U_00 x_0 + sum_j U_0j x_j = c_0."""
        tiles, a, b = make_tiles(rng, 3, 4, diag_boost=4.0)
        dist = BlockCyclicDistribution(grid22, 3)
        record = StepRecord(k=0, kind="LU")
        analysis = analyze_panel(tiles, dist, 0)
        perform_lu_step(tiles, 0, analysis, record)
        x_true = np.linalg.solve(a, b)
        lhs = np.triu(tiles.tile(0, 0)) @ x_true[:4]
        for j in (1, 2):
            lhs = lhs + tiles.tile(0, j) @ x_true[4 * j : 4 * (j + 1)]
        np.testing.assert_allclose(lhs, tiles.rhs_tile(0)[:, 0], atol=1e-9)

    def test_kernel_counts_match_table1(self, rng, grid22):
        n_tiles = 5
        tiles, _, _ = make_tiles(rng, n_tiles, 4, diag_boost=4.0)
        dist = BlockCyclicDistribution(grid22, n_tiles)
        record = StepRecord(k=0, kind="LU")
        perform_lu_step(tiles, 0, analyze_panel(tiles, dist, 0), record)
        r = n_tiles - 1
        assert record.kernel_counts["getrf"] == 1
        assert record.kernel_counts["trsm"] == r
        assert record.kernel_counts["swptrsm"] == r + 1  # +1 for the RHS column
        assert record.kernel_counts["gemm"] == r * r

    def test_full_elimination_by_repeated_steps(self, rng):
        """Applying LU steps for every panel yields a correct solve."""
        nb, n_tiles = 4, 4
        tiles, a, b = make_tiles(rng, n_tiles, nb, diag_boost=6.0)
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), n_tiles)
        for k in range(n_tiles):
            record = StepRecord(k=k, kind="LU")
            perform_lu_step(tiles, k, analyze_panel(tiles, dist, k), record)
        from repro.linalg import tiled_back_substitution

        x = tiled_back_substitution(tiles.array, tiles.rhs, nb)[:, 0]
        np.testing.assert_allclose(a @ x, b, atol=1e-8)


class TestQRStep:
    def test_panel_is_zeroed_below_diagonal(self, rng, grid22):
        tiles, _, _ = make_tiles(rng, 4, 4)
        dist = BlockCyclicDistribution(grid22, 4)
        tree = HierarchicalTree(distribution=dist, step=0)
        record = StepRecord(k=0, kind="QR")
        elims = tree.eliminations_for_step(0, list(range(4)))
        perform_qr_step(tiles, 0, elims, record)
        for i in range(1, 4):
            np.testing.assert_allclose(tiles.tile(i, 0), 0.0, atol=1e-12)
        np.testing.assert_allclose(np.tril(tiles.tile(0, 0), -1), 0.0, atol=1e-12)

    def test_orthogonal_invariance_of_column_norms(self, rng, grid22):
        """A QR step preserves the 2-norm of each full column of [A | b]."""
        tiles, a, b = make_tiles(rng, 3, 4)
        dist = BlockCyclicDistribution(grid22, 3)
        record = StepRecord(k=0, kind="QR")
        elims = FlatTree().eliminations(list(range(3)))
        before = np.linalg.norm(np.hstack([a, b.reshape(-1, 1)]), axis=0)
        perform_qr_step(tiles, 0, elims, record)
        after = np.linalg.norm(
            np.hstack([tiles.array, tiles.rhs]), axis=0
        )
        np.testing.assert_allclose(after, before, rtol=1e-10)

    @pytest.mark.parametrize("tree_cls", [FlatTree, GreedyTree])
    def test_solution_preserved_regardless_of_tree(self, rng, tree_cls):
        """Full QR elimination with any tree solves the original system."""
        nb, n_tiles = 4, 4
        tiles, a, b = make_tiles(rng, n_tiles, nb)
        dist = BlockCyclicDistribution(ProcessGrid(2, 2), n_tiles)
        for k in range(n_tiles):
            record = StepRecord(k=k, kind="QR")
            elims = tree_cls().eliminations(list(range(k, n_tiles)))
            perform_qr_step(tiles, k, elims, record)
        from repro.linalg import tiled_back_substitution

        x = tiled_back_substitution(tiles.array, tiles.rhs, nb)[:, 0]
        np.testing.assert_allclose(a @ x, b, atol=1e-8)

    def test_invalid_elimination_list_rejected(self, rng, grid22):
        tiles, _, _ = make_tiles(rng, 3, 4)
        record = StepRecord(k=0, kind="QR")
        with pytest.raises(ValueError):
            perform_qr_step(tiles, 0, [], record)  # 3 rows but nothing eliminated

    def test_single_tile_panel(self, rng, grid22):
        tiles, _, _ = make_tiles(rng, 2, 4)
        record = StepRecord(k=1, kind="QR")
        perform_qr_step(tiles, 1, [], record)
        np.testing.assert_allclose(np.tril(tiles.tile(1, 1), -1), 0.0, atol=1e-12)

    def test_operations_match_recorded_kernels(self, rng, grid22):
        """qr_step_operations and perform_qr_step agree on kernel counts."""
        n_tiles, nb = 5, 4
        tiles, _, _ = make_tiles(rng, n_tiles, nb)
        dist = BlockCyclicDistribution(grid22, n_tiles)
        tree = HierarchicalTree(distribution=dist, step=0)
        elims = tree.eliminations_for_step(0, list(range(n_tiles)))

        record = StepRecord(k=0, kind="QR")
        perform_qr_step(tiles, 0, elims, record)
        ops = qr_step_operations(0, n_tiles, elims)
        from collections import Counter

        op_counts = Counter(op[0] for op in ops)
        for name in ("geqrt", "unmqr", "tsqrt", "tsmqr", "ttqrt", "ttmqr"):
            assert record.kernel_counts.get(name, 0) == op_counts.get(name, 0), name
