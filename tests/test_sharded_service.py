"""Consistent-hash sharded serving front-end.

Covers the ring's minimal-movement guarantee, fingerprint routing,
first-pass/merge/second-pass stats aggregation, atomic stats snapshots,
and the structured failure of futures queued on a shard that is removed
mid-flight.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro.api.service import ServiceClosed, ServiceStats, SolverService
from repro.cluster import ConsistentHashRing, ShardedSolverService, ShardRemoved

NB = 8
N = 32
SPEC = {"algorithm": "lupp", "tile_size": NB}


def _matrix(rng, n=N):
    return rng.standard_normal((n, n)) + 8.0 * np.eye(n)


# --------------------------------------------------------------------- #
# Consistent-hash ring
# --------------------------------------------------------------------- #
def test_ring_routes_deterministically():
    ring = ConsistentHashRing(replicas=32)
    for name in ("a", "b", "c"):
        ring.add(name)
    keys = [f"key-{i}" for i in range(200)]
    first = {key: ring.node_for(key) for key in keys}
    assert {first[k] for k in keys} == {"a", "b", "c"}  # all members used
    assert all(ring.node_for(key) == first[key] for key in keys)


def test_ring_add_moves_only_to_new_member():
    ring = ConsistentHashRing(replicas=32)
    for name in ("a", "b", "c"):
        ring.add(name)
    keys = [f"key-{i}" for i in range(300)]
    before = {key: ring.node_for(key) for key in keys}
    ring.add("d")
    moved = 0
    for key in keys:
        after = ring.node_for(key)
        if after != before[key]:
            assert after == "d"  # minimal movement: only onto the new member
            moved += 1
    assert 0 < moved < len(keys)


def test_ring_remove_moves_only_its_keys():
    ring = ConsistentHashRing(replicas=32)
    for name in ("a", "b", "c"):
        ring.add(name)
    keys = [f"key-{i}" for i in range(300)]
    before = {key: ring.node_for(key) for key in keys}
    ring.remove("b")
    for key in keys:
        if before[key] != "b":
            assert ring.node_for(key) == before[key]
        else:
            assert ring.node_for(key) in ("a", "c")


def test_ring_validation():
    ring = ConsistentHashRing()
    with pytest.raises(LookupError):
        ring.node_for("anything")
    ring.add("a")
    with pytest.raises(ValueError):
        ring.add("a")
    with pytest.raises(KeyError):
        ring.remove("missing")
    with pytest.raises(ValueError):
        ConsistentHashRing(replicas=0)


# --------------------------------------------------------------------- #
# Routing and serving
# --------------------------------------------------------------------- #
def test_sharded_service_routes_and_solves(rng):
    with ShardedSolverService(shards=2, **SPEC) as service:
        handles = [service.register(_matrix(rng)) for _ in range(6)]
        futures, bs = [], []
        for handle in handles:
            b = rng.standard_normal(N)
            bs.append(b)
            # The shard chosen up front is the shard that serves it.
            assert service.shard_name_for(handle.key) in service.shard_names
            futures.append(service.submit(handle, b))
        for handle, b, future in zip(handles, bs, futures):
            x = future.result(timeout=120).x
            assert np.linalg.norm(handle.matrix @ x - b) < 1e-6
        routes = service.routes()
        assert set(routes) == {h.key for h in handles}
        service.drain(timeout=60)  # futures resolve before stats update
        stats = service.stats()
        assert stats.total.submitted == len(handles)
        assert stats.total.completed == len(handles)
        assert stats.total.pending == 0
        assert sum(s.submitted for s in stats.per_shard.values()) == len(handles)
        assert stats.shards == 2


def test_sharded_results_match_single_service(rng):
    a = _matrix(rng)
    b = rng.standard_normal(N)
    with SolverService(**SPEC) as single:
        expected = single.submit(single.register(a), b).result(timeout=120).x
    with ShardedSolverService(shards=3, **SPEC) as sharded:
        got = sharded.submit(sharded.register(a), b).result(timeout=120).x
    np.testing.assert_array_equal(got, expected)


def test_submit_raw_matrix_registers_on_the_fly(rng):
    with ShardedSolverService(shards=2, **SPEC) as service:
        a = _matrix(rng)
        b = rng.standard_normal(N)
        x = service.submit(a, b).result(timeout=120).x
        assert np.linalg.norm(a @ x - b) < 1e-6
        assert len(service.routes()) == 1


def test_add_shard_reports_rebalanced_keys(rng):
    service = ShardedSolverService(shards=2, start=False, **SPEC)
    try:
        handles = [service.register(_matrix(rng)) for _ in range(12)]
        before = service.routes()
        moved = service.add_shard("shard-extra")
        after = service.routes()
        assert set(moved) == {k for k in before if after[k] != before[k]}
        for key in moved:
            assert after[key] == "shard-extra"
        # Unmoved keys keep their shard: minimal movement end to end.
        for handle in handles:
            if handle.key not in moved:
                assert after[handle.key] == before[handle.key]
    finally:
        service.shutdown(wait=False)


# --------------------------------------------------------------------- #
# Shard removal mid-flight (satellite c)
# --------------------------------------------------------------------- #
def test_remove_shard_fails_only_its_queued_futures(rng):
    """Undispatched futures on a removed shard fail with ShardRemoved;
    futures on the surviving shards are untouched and still serve."""
    shards = {
        "left": SolverService(start=False, **SPEC),
        "right": SolverService(start=False, **SPEC),
    }
    service = ShardedSolverService(shards=shards)
    # Find handles on both sides of the ring.
    by_shard = {"left": [], "right": []}
    while not (by_shard["left"] and by_shard["right"]):
        handle = service.register(_matrix(rng))
        by_shard[service.shard_name_for(handle.key)].append(handle)

    doomed = [service.submit(h, rng.standard_normal(N)) for h in by_shard["left"]]
    safe_handle = by_shard["right"][0]
    safe_b = rng.standard_normal(N)
    safe = service.submit(safe_handle, safe_b)

    removed = service.remove_shard("left", drain=False)
    for future in doomed:
        err = future.exception(timeout=10)
        assert isinstance(err, ShardRemoved)
        assert err.shard == "left"
        assert isinstance(err, ServiceClosed)  # clients can catch either
    assert not safe.done()

    # The removed shard's keys re-route to the survivor and resubmission
    # succeeds; the untouched future resolves once dispatch starts.
    assert service.shard_name_for(by_shard["left"][0].key) == "right"
    retry = service.submit(by_shard["left"][0], rng.standard_normal(N))
    service.start()
    assert retry.result(timeout=120) is not None
    x = safe.result(timeout=120).x
    assert np.linalg.norm(safe_handle.matrix @ x - safe_b) < 1e-6
    assert removed.stats.failed == len(doomed)
    service.shutdown()


def test_cannot_remove_last_shard():
    service = ShardedSolverService(shards=1, start=False, **SPEC)
    try:
        with pytest.raises(ValueError, match="last shard"):
            service.remove_shard("shard-0")
    finally:
        service.shutdown(wait=False)


def test_submit_after_shutdown_rejected(rng):
    service = ShardedSolverService(shards=2, start=False, **SPEC)
    service.shutdown(wait=False)
    with pytest.raises(ServiceClosed):
        service.submit(_matrix(rng), np.ones(N))


# --------------------------------------------------------------------- #
# Stats: merge semantics and atomic snapshots (satellite b)
# --------------------------------------------------------------------- #
def test_stats_merge_sums_and_maxima():
    total = ServiceStats()
    total.merge(ServiceStats(submitted=3, completed=2, failed=1, batches=2,
                             max_batch_requests=4, max_batch_columns=7))
    total.merge(ServiceStats(submitted=5, completed=5, batches=1,
                             coalesced_batches=1, coalesced_requests=5,
                             max_batch_requests=5, max_batch_columns=5))
    assert total.submitted == 8
    assert total.completed == 7
    assert total.failed == 1
    assert total.batches == 3
    assert total.coalesced_requests == 5
    assert total.max_batch_requests == 5
    assert total.max_batch_columns == 7
    assert total.pending == 0


def test_stats_snapshot_is_atomic():
    """Counters mutated together under the lock never tear in a snapshot."""
    stats = ServiceStats()
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            with stats.lock:
                stats.submitted += 1
                stats.completed += 1

    thread = threading.Thread(target=hammer, daemon=True)
    thread.start()
    try:
        for _ in range(500):
            snap = stats.snapshot()
            # submitted and completed only ever move together under the
            # lock, so an atomic snapshot must observe them equal.
            assert snap.submitted == snap.completed
    finally:
        stop.set()
        thread.join(timeout=10)


def test_service_snapshot_reflects_served_requests(rng):
    with SolverService(**SPEC) as service:
        handle = service.register(_matrix(rng))
        futures = [service.submit(handle, rng.standard_normal(N)) for _ in range(4)]
        for future in futures:
            future.result(timeout=120)
        service.drain(timeout=60)  # futures resolve before stats update
        snap = service.stats_snapshot()
        assert snap.submitted == 4
        assert snap.completed == 4
        assert snap.pending == 0
        # The snapshot is a copy: later service activity does not mutate it.
        service.submit(handle, rng.standard_normal(N)).result(timeout=120)
        assert snap.submitted == 4


def test_cluster_backed_shards_serve(rng):
    """Shards can run on their own cluster executors end to end."""
    executors = [repro.ClusterExecutor(workers=1) for _ in range(2)]
    try:
        shards = {
            f"cluster-shard-{i}": SolverService(
                executor=executors[i], grid="1x1", **SPEC
            )
            for i in range(2)
        }
        with ShardedSolverService(shards=shards) as service:
            a = _matrix(rng)
            b = rng.standard_normal(N)
            x = service.submit(service.register(a), b).result(timeout=180).x
            assert np.linalg.norm(a @ x - b) < 1e-6
    finally:
        for executor in executors:
            executor.close()
