#!/usr/bin/env python
"""Run the *real* factorization through the dataflow runtime.

The hybrid LU-QR algorithm is a dynamic task graph: the per-step decision
(LU or QR) is taken at run time by the robustness criterion, but once the
branch is selected, all of its panel eliminations and trailing-matrix
updates are independent tile kernels.  This example factors the same
matrix twice —

1. with the sequential reference driver (kernels inline, program order);
2. with the kernels of every step materialised as a ``TaskGraph`` and
   dispatched on a ``ThreadedExecutor`` (numpy releases the GIL inside
   BLAS, so the updates genuinely overlap);
3. with the same task graphs shipped to a ``ProcessExecutor`` worker-process
   pool as picklable kernel descriptors, the tiles living in a
   ``multiprocessing.shared_memory`` segment — no GIL at all

— verifies the factorizations are numerically identical, and reports the
achieved task concurrency.  It finishes with the batched multi-RHS entry
point ``solve_many`` (one factorization, many solves).

Run with ``python examples/dataflow_factorization.py``.
"""

import time

import numpy as np

from repro import (
    HybridLUQRSolver,
    LUPPSolver,
    MaxCriterion,
    ProcessExecutor,
    ProcessGrid,
    ThreadedExecutor,
)
from repro.matrices.random_gen import random_matrix, random_rhs
from repro.runtime import merge_traces


def compare_paths(n: int = 256, nb: int = 32, workers: int = 4) -> None:
    print(f"1. Sequential vs dataflow execution (N={n}, nb={nb}, {workers} workers)")
    a = random_matrix(n, seed=1)
    b = random_rhs(n, seed=2)

    def build(executor):
        return HybridLUQRSolver(
            nb,
            MaxCriterion(alpha=4.0),
            grid=ProcessGrid(2, 2),
            track_growth=False,
            executor=executor,
        )

    seq = build(None)
    t0 = time.perf_counter()
    fact_seq = seq.factor(a, b)
    t_seq = time.perf_counter() - t0

    par = build(ThreadedExecutor(workers=workers))
    t0 = time.perf_counter()
    fact_par = par.factor(a, b)
    t_par = time.perf_counter() - t0

    proc = build(ProcessExecutor(workers=workers))
    proc.factor(a, b)  # warm the worker pool (forked once, reused after)
    t0 = time.perf_counter()
    fact_proc = proc.factor(a, b)
    t_proc = time.perf_counter() - t0

    identical = all(
        np.array_equal(fact_seq.tiles.array, f.tiles.array)
        and np.array_equal(fact_seq.tiles.rhs, f.tiles.rhs)
        for f in (fact_par, fact_proc)
    )
    merged = merge_traces(par.step_traces)
    print(f"   step kinds           : {''.join(k[0] for k in fact_par.step_kinds)}")
    print(f"   sequential wall time : {t_seq * 1e3:8.1f} ms")
    print(f"   threaded wall time   : {t_par * 1e3:8.1f} ms")
    print(f"   processes wall time  : {t_proc * 1e3:8.1f} ms   (shared-memory tiles, no GIL)")
    print(f"   numerically identical: {identical}")
    print(f"   tasks executed       : {merged.n_tasks}")
    print(f"   max task concurrency : {merged.max_concurrency}")
    print()


def batched_solves(n: int = 160, nb: int = 32, nrhs: int = 8) -> None:
    print(f"2. Batched multi-RHS solve_many (N={n}, {nrhs} right-hand sides)")
    a = random_matrix(n, seed=3)
    bs = np.column_stack([random_rhs(n, seed=10 + j) for j in range(nrhs)])

    solver = LUPPSolver(nb, track_growth=False, executor=ThreadedExecutor(workers=4))
    t0 = time.perf_counter()
    results = solver.solve_many(a, bs)
    t_batch = time.perf_counter() - t0

    worst = max(r.hpl3 for r in results)
    print(f"   one factorization, {nrhs} solves in {t_batch * 1e3:.1f} ms")
    print(f"   worst HPL3 over the batch: {worst:.3g}")
    print()


if __name__ == "__main__":
    compare_paths()
    batched_solves()
