#!/usr/bin/env python
"""Asynchronous serving: handles, non-blocking futures, request coalescing.

Where ``examples/serving_session.py`` serves requests one blocking call at
a time, the :class:`~repro.api.service.SolverService` mirrors the paper's
submit-tasks-then-progress model at the API layer:

* ``register(a)`` fingerprints the matrix **once** and returns a cheap
  ``MatrixHandle`` — the hot path stops paying an O(n^2) hash per request;
* ``submit(handle, b)`` returns a ``SolveFuture`` immediately; a background
  dispatcher coalesces every queued request against the same matrix into
  one multi-column back-substitution pass (the serving-layer analogue of
  ``solve_many``'s one-factorization-many-columns batching);
* futures are awaitable, so asyncio request handlers just
  ``await repro.asolve(...)``.

Run with ``python examples/serving_service.py``.
"""

import asyncio
import time

import numpy as np

import repro


def burst_of_futures() -> None:
    """Submit a burst, then collect: the dispatcher coalesces the queue."""
    rng = np.random.default_rng(11)
    n, nb, n_requests = 192, 16, 24
    a = rng.standard_normal((n, n))

    with repro.SolverService(
        algorithm="hybrid", tile_size=nb, criterion="max(alpha=50)"
    ) as service:
        handle = service.register(a, warm=True)  # hash + factor once, up front

        t0 = time.perf_counter()
        futures = [
            service.submit(handle, rng.standard_normal(n), priority=i % 2)
            for i in range(n_requests)
        ]
        submit_ms = 1e3 * (time.perf_counter() - t0)

        results = [f.result(timeout=60) for f in futures]
        total_ms = 1e3 * (time.perf_counter() - t0)

        stats = service.stats
        print(f"submitted {n_requests} requests in {submit_ms:.2f} ms "
              f"(non-blocking), all resolved after {total_ms:.2f} ms")
        print(f"dispatcher: {stats.batches} batches, largest coalesced "
              f"{stats.max_batch_requests} requests "
              f"({stats.coalesced_requests} rode in a shared pass)")
        print(f"cache: {service.session.stats.requests} accesses for "
              f"{n_requests} requests")
        print(f"worst HPL3 across the burst: "
              f"{max(r.hpl3 for r in results):.3e}")


async def async_handlers() -> None:
    """Concurrent asyncio handlers awaiting solves against one matrix."""
    rng = np.random.default_rng(13)
    n = 128
    a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)

    async def handle_request(i: int) -> float:
        result = await repro.asolve(a, rng.standard_normal(n),
                                    algorithm="hybrid", tile_size=16,
                                    criterion="max(alpha=50)")
        return result.hpl3

    hpl3s = await asyncio.gather(*[handle_request(i) for i in range(8)])
    print(f"\n8 concurrent asyncio handlers served, worst HPL3 = "
          f"{max(hpl3s):.3e}")


def main() -> None:
    burst_of_futures()
    asyncio.run(async_handlers())


if __name__ == "__main__":
    main()
