#!/usr/bin/env python
"""Stability on pathological matrices (a laptop-scale Figure 3).

LU with partial pivoting (LUPP) is stable for almost every matrix met in
practice, but the paper's special-matrix collection (Table III) contains
matrices on which cheap LU variants fail spectacularly — and one
(``fiedler``) on which even LUPP and LU NoPiv break down with a division by
zero.  This example runs a small selection of those matrices through

* LU NoPiv (no safety net),
* the hybrid solver with the Max criterion,
* the hybrid solver with the MUMPS criterion,
* HQR (the always-stable reference),

and prints the HPL3 backward error of each, illustrating why a robustness
criterion is needed (random LU/QR mixing is *not* enough).

Run with ``python examples/special_matrices_stability.py``.
"""

import numpy as np

from repro import (
    HQRSolver,
    HybridLUQRSolver,
    LUNoPivSolver,
    MaxCriterion,
    MumpsCriterion,
    ProcessGrid,
    RandomCriterion,
)
from repro.matrices import registry


MATRICES = ["ris", "orthog", "chebvand", "invhess", "wilkinson", "fiedler"]
N = 96
NB = 8


def solve_or_report(solver, a, b):
    """Return (hpl3, note) where note marks breakdowns."""
    try:
        res = solver.solve(a, b)
        return res.hpl3, ""
    except Exception as exc:
        return float("inf"), f"breakdown: {type(exc).__name__}"


def main() -> None:
    grid = ProcessGrid(4, 1)  # tall grid, as in the paper's Figure 3 runs
    solvers = {
        "LU NoPiv": LUNoPivSolver(tile_size=NB),
        "LUQR random": HybridLUQRSolver(NB, RandomCriterion(0.6, seed=0), grid=grid),
        "LUQR Max": HybridLUQRSolver(NB, MaxCriterion(alpha=50.0), grid=grid),
        "LUQR MUMPS": HybridLUQRSolver(NB, MumpsCriterion(alpha=2.1), grid=grid),
        "HQR": HQRSolver(tile_size=NB, grid=grid),
    }

    rng = np.random.default_rng(0)
    b = rng.standard_normal(N)

    header = f"{'matrix':<12}" + "".join(f"{name:>16}" for name in solvers)
    print("HPL3 backward error on special matrices (inf = breakdown)")
    print(header)
    print("-" * len(header))
    for name in MATRICES:
        a = registry.build(name, N)
        cells = []
        for solver in solvers.values():
            hpl3, note = solve_or_report(solver, a, b)
            cells.append(f"{hpl3:>16.2e}" if not note else f"{'FAIL':>16}")
        print(f"{name:<12}" + "".join(cells))

    print(
        "\nReading the table: LU NoPiv explodes (or fails outright on fiedler), the\n"
        "criterion-guided hybrids stay close to the always-stable HQR, and random\n"
        "LU/QR mixing is unreliable — exactly the message of the paper's Figure 3."
    )


if __name__ == "__main__":
    main()
