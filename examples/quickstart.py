#!/usr/bin/env python
"""Quickstart: solve a dense linear system with the hybrid LU-QR algorithm.

The hybrid solver factors ``[A | b]`` tile by tile, deciding at every panel
whether an LU elimination (cheap, conditionally stable) or a QR elimination
(twice the flops, always stable) is numerically safe, according to a
robustness criterion.  This example solves one random system, prints the
stability metrics and the fraction of LU steps, and compares against the
pure-LU and pure-QR baselines.

Run with ``python examples/quickstart.py``.
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(42)
    n = 256          # matrix order
    nb = 16          # tile size -> 16 x 16 tiles
    a = rng.standard_normal((n, n))
    x_true = rng.standard_normal(n)
    b = a @ x_true

    # The hybrid solver through the declarative facade: Max criterion,
    # threshold alpha = 50, on a virtual 2x2 process grid (the grid defines
    # the diagonal domains used for the node-local pivot search).  String
    # specs resolve through the plugin registries; the built solver is the
    # same object a hand-written constructor call would produce.
    solver = repro.make_solver(
        algorithm="hybrid",
        tile_size=nb,
        criterion="max(alpha=50)",
        grid=(2, 2),
    )
    result = solver.solve(a, b, x_true=x_true)
    fact = result.factorization

    print("Hybrid LU-QR solve")
    print(f"  matrix order              : {n} ({n // nb} x {n // nb} tiles of {nb})")
    print(f"  criterion                 : {fact.criterion_name} (alpha = {fact.alpha})")
    print(f"  LU steps                  : {fact.lu_steps}/{fact.n_steps} ({fact.lu_percentage:.1f}%)")
    print(f"  step kinds                : {''.join('L' if s == 'LU' else 'Q' for s in fact.step_kinds)}")
    print(f"  HPL3 accuracy             : {result.hpl3:.3e}   (values O(1) = backward stable)")
    print(f"  forward error             : {result.stability.forward_error:.3e}")
    print(f"  tile-norm growth factor   : {fact.growth_factor:.3e}")
    print(f"  theoretical growth bound  : {solver.criterion.growth_bound(fact.tiles.n):.3e}")

    # Compare against the two extremes through the one-call facade.
    print("\nComparison against the pure baselines")
    for label, spec in (
        ("LU NoPiv (all LU, tile pivoting)", dict(algorithm="lu_nopiv")),
        ("HQR      (all QR)", dict(algorithm="hqr", grid=(2, 2))),
    ):
        res = repro.solve(a, b, x_true=x_true, tile_size=nb, **spec)
        print(
            f"  {label:34s} HPL3 = {res.hpl3:9.3e}   forward error = "
            f"{res.stability.forward_error:9.3e}"
        )


if __name__ == "__main__":
    main()
