#!/usr/bin/env python
"""Dataflow runtime demo: dynamic task graphs and real threaded execution.

The paper's implementation contribution is an extension of the PaRSEC
dataflow runtime that supports *dynamic* task graphs: both the LU-step and
the QR-step tasks of a panel are present in the graph, and a layer of
propagate tasks forwards the data to whichever branch the robustness
criterion selects.  This example demonstrates the pure-Python substitute:

1. it builds the per-step dataflow (both branches) and shows how many tasks
   each decision outcome keeps;
2. it compiles the task graph of a full hybrid factorization and simulates
   it on the modelled 16-node platform (makespan, utilisation);
3. it executes a real tiled matrix-multiplication task graph with the
   threaded dataflow executor and reports the achieved concurrency.

Run with ``python examples/dataflow_runtime_demo.py``.
"""

import numpy as np

from repro import HybridLUQRSolver, MaxCriterion, ProcessGrid
from repro.core.dag_builder import spec_from_factorization, build_task_graph
from repro.matrices.random_gen import random_matrix, random_rhs
from repro.runtime import (
    StepDataflow,
    TaskGraph,
    ThreadedExecutor,
    dancer_platform,
    simulate,
)
from repro.tiles import BlockCyclicDistribution, TileMatrix


def show_dynamic_step_graph() -> None:
    print("1. Dynamic per-step dataflow (Figure 1)")
    dist = BlockCyclicDistribution(ProcessGrid(2, 2), 8)
    flow = StepDataflow(dist, k=0, nb=8)
    print(f"   stages          : {flow.summary()}")
    print(f"   tasks if LU     : {len(flow.resolve(use_lu=True))}")
    print(f"   tasks if QR     : {len(flow.resolve(use_lu=False))}")
    print()


def simulate_full_factorization() -> None:
    print("2. Simulated distributed execution of a hybrid factorization")
    nb, n_tiles = 8, 16
    n = nb * n_tiles
    a = random_matrix(n, seed=3)
    b = random_rhs(n, seed=4)
    grid = ProcessGrid(4, 4)
    solver = HybridLUQRSolver(nb, MaxCriterion(50.0), grid=grid)
    fact = solver.factor(a, b)

    platform = dancer_platform(grid)
    spec = spec_from_factorization(fact, grid=grid)
    graph = build_task_graph(spec, platform=platform)
    sim = simulate(graph, platform, nb)
    print(f"   steps (LU/QR)   : {fact.lu_steps}/{fact.qr_steps}")
    print(f"   tasks           : {len(graph)}")
    print(f"   makespan        : {sim.makespan * 1e3:.3f} ms (simulated)")
    print(f"   critical path   : {sim.critical_path_time * 1e3:.3f} ms")
    print(f"   core utilisation: {100 * sim.utilization(platform):.1f}%")
    print(f"   bytes on network: {sim.communication_bytes / 1e6:.2f} MB")
    print()


def threaded_tile_gemm() -> None:
    print("3. Real threaded dataflow execution (tiled C += A @ B)")
    nb, n_tiles = 64, 6
    n = nb * n_tiles
    rng = np.random.default_rng(0)
    a = TileMatrix(rng.standard_normal((n, n)), nb)
    bmat = TileMatrix(rng.standard_normal((n, n)), nb)
    c = TileMatrix(np.zeros((n, n)), nb)

    graph = TaskGraph()
    for i in range(n_tiles):
        for j in range(n_tiles):
            for k in range(n_tiles):
                def gemm(i=i, j=j, k=k):
                    c.tile(i, j)[...] += a.tile(i, k) @ bmat.tile(k, j)

                graph.add_task(
                    kernel="gemm",
                    step=k,
                    reads={(i, k), (k, j), (i, j)},
                    writes={(i, j)},
                    fn=gemm,
                )

    trace = ThreadedExecutor(workers=4).run(graph)
    error = np.linalg.norm(c.array - a.array @ bmat.array) / np.linalg.norm(a.array @ bmat.array)
    print(f"   tasks executed  : {trace.n_tasks}")
    print(f"   wall time       : {trace.wall_time * 1e3:.1f} ms on 4 worker threads")
    print(f"   max concurrency : {trace.max_concurrency}")
    print(f"   relative error  : {error:.2e}")


def main() -> None:
    show_dynamic_step_graph()
    simulate_full_factorization()
    threaded_tile_gemm()


if __name__ == "__main__":
    main()
