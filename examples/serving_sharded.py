#!/usr/bin/env python
"""Sharded serving: consistent-hash routing across independent services.

``examples/serving_service.py`` scales one dispatcher with request
coalescing; this example scales *past one dispatcher*: a
:class:`~repro.cluster.ShardedSolverService` places every registered
matrix on one of N independent :class:`~repro.api.service.SolverService`
shards by consistent hashing on the fingerprint, so

* each shard keeps its own factorization cache and dispatcher thread
  (optionally its own ``cluster(...)`` executor — a multi-node serving
  tier in one line);
* requests route by handle with no cross-shard coordination;
* adding a shard re-homes only ``~K/N`` of the keys (the ring's
  minimal-movement guarantee), and removing one fails only *its* queued
  futures with a structured ``ShardRemoved``.

Run with ``python examples/serving_sharded.py``.
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(7)
    n, nb, n_matrices, n_requests = 96, 16, 6, 24

    with repro.ShardedSolverService(
        shards=2, algorithm="hybrid", tile_size=nb, criterion="max(alpha=50)"
    ) as service:
        # Register once per matrix: one fingerprint, a cheap handle, and a
        # home shard chosen on the ring.
        matrices = [
            rng.standard_normal((n, n)) + 4.0 * np.eye(n)
            for _ in range(n_matrices)
        ]
        handles = [service.register(a, warm=True) for a in matrices]
        routes = service.routes()
        by_shard = {
            name: sum(1 for shard in routes.values() if shard == name)
            for name in service.shard_names
        }
        print(f"{n_matrices} matrices registered across shards: {by_shard}")

        # Route a burst: every request lands on its matrix's home shard,
        # where the per-shard dispatcher coalesces same-matrix requests.
        futures = [
            (i % n_matrices, rng.standard_normal(n))
            for i in range(n_requests)
        ]
        resolved = [
            (service.submit(handles[idx], b), idx, b) for idx, b in futures
        ]
        worst = 0.0
        for future, idx, b in resolved:
            x = future.result(timeout=120).x
            worst = max(worst, float(np.linalg.norm(matrices[idx] @ x - b)))
        print(f"{n_requests} requests served, worst residual {worst:.3e}")

        # Aggregated statistics: per-shard atomic snapshots merged into one
        # total (first pass -> merge -> derived metrics).
        stats = service.stats()
        print(
            f"total: {stats.total.submitted} submitted, "
            f"{stats.total.batches} batches, pending {stats.total.pending}"
        )
        for name, snap in sorted(stats.per_shard.items()):
            print(f"  {name}: {snap.submitted} requests in {snap.batches} batches")

        # Elastic rebalancing: a third shard takes over only the keys that
        # hash onto its arcs; everything else stays where it was.
        moved = service.add_shard("shard-2")
        print(f"added shard-2: {len(moved)}/{len(routes)} keys re-homed")
        x = service.submit(handles[0], rng.standard_normal(n)).result(timeout=120).x
        print(f"post-rebalance serve ok ({x.shape[0]} unknowns)")


if __name__ == "__main__":
    main()
