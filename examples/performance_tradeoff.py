#!/usr/bin/env python
"""Stability/performance trade-off of the threshold ``alpha`` (mini Table II).

The threshold ``alpha`` of a robustness criterion tunes how eagerly the
hybrid algorithm takes LU steps: ``alpha = inf`` never takes a QR step
(fast, risky), ``alpha = 0`` always does (safe, slow).  This example sweeps
``alpha`` for the Max criterion on a random matrix, measures the stability
and the fraction of LU steps numerically, and replays each run on the
simulated 16-node "Dancer" platform at the paper's tile size to estimate
the normalised GFLOP/s — reproducing the trade-off curve of Table II /
Figure 2 at laptop scale.

Run with ``python examples/performance_tradeoff.py``.
"""

import numpy as np

from repro import HybridLUQRSolver, MaxCriterion, ProcessGrid
from repro.experiments.common import ExperimentConfig, simulate_at_paper_scale
from repro.matrices.random_gen import random_matrix, random_rhs

ALPHAS = [float("inf"), 200.0, 50.0, 20.0, 10.0, 5.0, 2.0, 0.0]


def main() -> None:
    config = ExperimentConfig(n_tiles=16, paper_n_tiles=42)
    n = config.n_order
    a = random_matrix(n, seed=7)
    b = random_rhs(n, seed=8)

    print(
        f"Max-criterion alpha sweep on a random {n}x{n} matrix "
        f"({config.n_tiles} tiles of {config.tile_size});\n"
        f"performance simulated at nb=240, {config.paper_n_tiles} tiles on a 4x4-node platform.\n"
    )
    print(f"{'alpha':>8} {'%LU steps':>10} {'HPL3':>12} {'growth':>12} {'fake GF/s':>10} {'%peak':>7}")
    for alpha in ALPHAS:
        solver = HybridLUQRSolver(
            tile_size=config.tile_size,
            criterion=MaxCriterion(alpha=alpha),
            grid=ProcessGrid(4, 4),
        )
        result = solver.solve(a, b)
        fact = result.factorization
        report = simulate_at_paper_scale(fact, config)
        alpha_str = "inf" if np.isinf(alpha) else f"{alpha:g}"
        print(
            f"{alpha_str:>8} {fact.lu_percentage:>10.1f} {result.hpl3:>12.3e} "
            f"{fact.growth_factor:>12.3e} {report.fake_gflops:>10.1f} "
            f"{100 * report.fake_peak_fraction:>7.1f}"
        )

    print(
        "\nSmaller alpha -> more QR steps -> better stability but lower normalised\n"
        "GFLOP/s; larger alpha approaches LU-NoPiv speed while the criterion still\n"
        "guards against dangerous panels."
    )


if __name__ == "__main__":
    main()
