#!/usr/bin/env python
"""Serving layer: amortize one factorization across many solve requests.

A ``SolverSession`` holds one configured solver plus an LRU cache of
factorizations keyed by matrix fingerprint.  The first request for a matrix
factors ``[A | I]`` — riding the identity along the elimination
materializes the operator that maps *any* right-hand side to its
transformed image — and every further request against the same matrix is
one small matmul plus the tiled back-substitution.  This is the
across-requests analogue of ``solve_many`` (which amortizes one
factorization across a batch of right-hand sides, Section II-D1).

Run with ``python examples/serving_session.py``.
"""

import time

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(7)
    n, nb = 192, 16
    n_requests = 12

    # Two "hot" matrices that requests keep coming back to.
    matrices = [rng.standard_normal((n, n)) for _ in range(2)]

    session = repro.SolverSession(
        algorithm="hybrid",
        tile_size=nb,
        criterion="max(alpha=50)",
        capacity=4,
    )

    print(f"Serving {n_requests} requests against {len(matrices)} matrices "
          f"(order {n}, tiles of {nb})\n")
    for i in range(n_requests):
        a = matrices[i % len(matrices)]
        b = rng.standard_normal(n)
        t0 = time.perf_counter()
        result = session.solve(a, b)
        ms = 1e3 * (time.perf_counter() - t0)
        kind = "MISS (factored)" if i < len(matrices) else "hit"
        print(f"  request {i:2d}: {ms:8.2f} ms   {kind:15s} "
              f"HPL3 = {result.hpl3:.3e}")

    stats = session.stats
    print(f"\ncache: {stats.misses} misses, {stats.hits} hits "
          f"(hit rate {100 * stats.hit_rate:.0f}%), "
          f"{stats.evictions} evictions")
    print(f"time spent factoring: {stats.factor_seconds:.2f} s "
          f"amortized over {stats.solves} solves")

    # Batched right-hand sides ride the cached factorization too.
    results = session.solve_many(matrices[0], rng.standard_normal((n, 3)))
    print(f"\nsolve_many on the cached matrix: {len(results)} solutions, "
          f"worst HPL3 = {max(r.hpl3 for r in results):.3e}")


if __name__ == "__main__":
    main()
