"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that legacy editable installs (``pip install -e . --no-use-pep517``
or ``python setup.py develop``) work on machines without the ``wheel``
package or network access to build isolation dependencies.
"""

from setuptools import setup

setup()
