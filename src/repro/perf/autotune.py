"""Autotuned solver configuration from the calibrated performance model.

``make_solver(..., tile_size="auto", executor="auto")`` lands here: given
the order of the matrix about to be factored, the autotuner predicts the
makespan of candidate configurations with the discrete-event simulator
running on this host's :class:`~repro.perf.calibrate.Calibration`, and
returns the best one.  This closes the loop the perf stack was built for:
measured kernel durations feed a model, and the model chooses how the next
real factorization runs.

Candidates are constrained by the tiled storage format: the tile size must
divide the matrix order exactly (:class:`~repro.tiles.tile_matrix.TileMatrix`
rejects ragged tilings), so the candidate set is the divisors of ``n`` in a
practical range, merged with any tile sizes the calibration has actually
observed (those predictions are exact table lookups rather than cubic
extrapolations).

Deterministic fallback
----------------------
Without a calibration (fresh host, ``REPRO_CALIBRATION`` pointing at a
missing file) the choice degrades to a documented rule rather than a
prediction:

* ``tile_size="auto"`` picks the divisor of ``n`` closest to the facade
  default of 32 (ties break toward the smaller divisor);
* ``executor="auto"`` picks a threaded executor when ``n >= 256`` and the
  host has at least 2 CPUs, else the inline kernel path.

The same rule also applies when no candidate can be formed (e.g. ``n``
prime) — the autotuner never raises for lack of data.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.dag_builder import FactorizationSpec, build_task_graph
from ..runtime.simulator import simulate
from .calibrate import Calibration, calibrated_platform, default_calibration

__all__ = [
    "TunedConfig",
    "candidate_tile_sizes",
    "predicted_makespan",
    "autotune_config",
]

#: The facade's default tile size; the fallback rule centres on it.
_DEFAULT_TILE_SIZE = 32

#: Practical tile-size range considered by the tuner.
_MIN_NB = 8
_MAX_NB = 256

#: Keep graphs tractable: at most this many tile rows/columns.
_MAX_TILES = 64

#: Matrices below this order are not worth a parallel executor (fallback
#: rule; the calibrated path decides from predicted makespans instead).
_SERIAL_CUTOFF = 256

#: Predicted parallel speedup required before "auto" commits to a
#: threaded executor — thread startup and GIL overheads are not modelled,
#: so a marginal predicted win is treated as a loss.
_SPEEDUP_MARGIN = 1.15

_UNSET = object()


#: Backend candidates tried for ``kernel_backend="auto"``, best-first for
#: tie-breaking: the fused sweep wins ties against the per-tile reference
#: (fewer dispatches for the same predicted time), and when no calibration
#: exists the fallback picks it outright.
_AUTO_BACKENDS = ("fused", "numpy")


@dataclass
class TunedConfig:
    """The autotuner's answer for one matrix order.

    ``executor`` is a registry spec string (``"threaded(workers=4)"``) or
    ``None`` for the inline kernel path — exactly what
    :func:`repro.api.facade.make_executor` accepts.  ``kernel_backend`` is
    a kernel-backend registry name, or ``None`` when backend tuning was
    not requested.  ``source`` records how the choice was made:
    ``"calibrated"`` (simulated makespans under a measured cost model) or
    ``"fallback"`` (the deterministic rule).
    """

    n: int
    tile_size: int
    executor: Optional[str]
    source: str
    predicted_makespans: Dict[int, float] = field(default_factory=dict)
    kernel_backend: Optional[str] = None


def _divisors_in_range(n: int, lo: int, hi: int) -> List[int]:
    return [d for d in range(lo, min(hi, n) + 1) if n % d == 0]


def _fallback_tile_size(n: int) -> int:
    """Divisor of ``n`` closest to the default of 32 (ties toward smaller)."""
    if n <= 0:
        return _DEFAULT_TILE_SIZE
    divisors = _divisors_in_range(n, 1, n)
    return min(divisors, key=lambda d: (abs(d - _DEFAULT_TILE_SIZE), d))


def _worker_count(workers: Optional[int]) -> int:
    if workers is not None:
        return max(1, int(workers))
    return max(1, os.cpu_count() or 1)


def candidate_tile_sizes(
    n: int, calibration: Optional[Calibration] = None
) -> List[int]:
    """Tile sizes worth predicting for a matrix of order ``n``, ascending.

    Divisors of ``n`` within ``[8, 256]`` that keep the tile grid at or
    under 64x64, plus any calibrated-and-dividing sizes outside that
    range.  Empty when ``n`` has no practical divisor (the caller falls
    back to :func:`_fallback_tile_size`).
    """
    if n <= 0:
        return []
    candidates = {
        d
        for d in _divisors_in_range(n, _MIN_NB, _MAX_NB)
        if n // d <= _MAX_TILES
    }
    if calibration is not None:
        candidates.update(
            nb
            for nb in calibration.observed_tile_sizes()
            if 0 < nb <= n and n % nb == 0 and n // nb <= _MAX_TILES
        )
    return sorted(candidates)


def predicted_makespan(
    n: int,
    tile_size: int,
    calibration: Calibration,
    cores: int = 1,
    kernel_backend: Optional[str] = None,
) -> float:
    """Predicted wall time of factoring an order-``n`` matrix at ``nb``.

    Builds the task graph of an all-LU factorization (the kernel mix of
    the common case; the relative ranking across tile sizes carries over
    to QR-heavy runs since every kernel scales as ``nb^3``), prices it
    with the calibration, and list-schedules it on ``cores`` identical
    workers of one node.  ``kernel_backend`` prices the graph with that
    backend's per-logical-kernel cost table
    (:meth:`~repro.perf.calibrate.Calibration.view`) — fused backends
    record per-logical-kernel samples, so the per-tile graph priced with
    their table predicts the fused run.
    """
    nb = int(tile_size)
    n_tiles = n // nb
    spec = FactorizationSpec(
        n_tiles=n_tiles,
        tile_size=nb,
        step_kinds=["LU"] * n_tiles,
        algorithm="LUPP",
    )
    priced = calibration.view(kernel_backend)
    platform = calibrated_platform(priced, cores=int(cores), nb=nb)
    graph = build_task_graph(spec, platform=platform)
    sim = simulate(graph, platform, nb, record_schedule=False, calibration=priced)
    return float(sim.makespan)


def _backend_candidates(
    kernel_backends, calibration: Optional[Calibration]
) -> Optional[List[str]]:
    """Kernel-backend candidates, tie-break order first; ``None`` = no tuning.

    ``"auto"`` expands to the built-in preference list plus every backend
    the calibration has samples for; an explicit sequence passes through.
    """
    if kernel_backends is None:
        return None
    if isinstance(kernel_backends, str):
        if kernel_backends.strip().lower() != "auto":
            return [kernel_backends.strip().lower()]
        names = list(_AUTO_BACKENDS)
        if calibration is not None:
            names += [
                b for b in calibration.calibrated_backends() if b not in names
            ]
        return names
    return [str(b).strip().lower() for b in kernel_backends]


def _tune_for_backend(
    n: int,
    calibration: Calibration,
    candidates: List[int],
    w: int,
    backend: Optional[str],
) -> Tuple[TunedConfig, float]:
    """Best (tile size, executor) for one backend, plus its predicted time."""
    serial: Dict[int, float] = {}
    parallel: Dict[int, float] = {}
    for nb in candidates:
        serial[nb] = predicted_makespan(
            n, nb, calibration, cores=1, kernel_backend=backend
        )
        parallel[nb] = (
            predicted_makespan(n, nb, calibration, cores=w, kernel_backend=backend)
            if w >= 2
            else serial[nb]
        )

    def best(table: Dict[int, float]) -> Tuple[int, float]:
        nb = min(table, key=lambda k: (table[k], k))
        return nb, table[nb]

    serial_nb, serial_time = best(serial)
    parallel_nb, parallel_time = best(parallel)
    if w >= 2 and parallel_time * _SPEEDUP_MARGIN < serial_time:
        config = TunedConfig(
            n=n,
            tile_size=parallel_nb,
            executor=f"threaded(workers={w})",
            source="calibrated",
            predicted_makespans=parallel,
            kernel_backend=backend,
        )
        return config, parallel_time
    config = TunedConfig(
        n=n,
        tile_size=serial_nb,
        executor=None,
        source="calibrated",
        predicted_makespans=serial,
        kernel_backend=backend,
    )
    return config, serial_time


def autotune_config(
    n: Optional[int],
    calibration=_UNSET,
    workers: Optional[int] = None,
    kernel_backends=None,
) -> TunedConfig:
    """Choose ``(tile_size, executor[, kernel_backend])`` for order ``n``.

    With a calibration (the host's persisted one by default), candidate
    tile sizes are ranked by simulated makespan, once on a single core
    and once on ``workers`` cores; a threaded executor is chosen only
    when the best parallel prediction beats the best serial one by a
    clear margin.  Without one, the documented deterministic fallback
    applies (see the module docstring).  ``n=None`` (size unknown at
    :func:`~repro.api.facade.make_solver` time) always takes the
    fallback with the facade's default tile size.

    ``kernel_backends`` opts into kernel-backend tuning: ``"auto"`` (or an
    explicit candidate sequence) ranks each backend by its own best
    predicted configuration, priced with that backend's calibrated cost
    table; ties break toward the earlier candidate, so the fused sweep
    beats the per-tile reference at equal predictions.  The fallback
    (no calibration) picks the first candidate — ``"fused"`` under
    ``"auto"``, whose per-column batching is the safe default when nothing
    has been measured.  ``None`` (default) skips backend tuning entirely
    and the returned ``kernel_backend`` is ``None``.
    """
    if calibration is _UNSET:
        calibration = default_calibration()
    w = _worker_count(workers)
    backends = _backend_candidates(kernel_backends, calibration)
    fallback_backend = backends[0] if backends else None

    if n is None or int(n) <= 0:
        executor = f"threaded(workers={w})" if w >= 2 else None
        return TunedConfig(
            n=0,
            tile_size=_DEFAULT_TILE_SIZE,
            executor=executor,
            source="fallback",
            kernel_backend=fallback_backend,
        )
    n = int(n)

    fallback_exec = (
        f"threaded(workers={w})" if n >= _SERIAL_CUTOFF and w >= 2 else None
    )
    candidates = candidate_tile_sizes(n, calibration)
    if calibration is None or calibration.n_samples == 0 or not candidates:
        return TunedConfig(
            n=n,
            tile_size=_fallback_tile_size(n),
            executor=fallback_exec,
            source="fallback",
            kernel_backend=fallback_backend,
        )

    if backends is None:
        config, _ = _tune_for_backend(n, calibration, candidates, w, None)
        return config

    best_config: Optional[TunedConfig] = None
    best_key: Optional[Tuple[float, int]] = None
    for rank, backend in enumerate(backends):
        config, time = _tune_for_backend(n, calibration, candidates, w, backend)
        key = (time, rank)
        if best_key is None or key < best_key:
            best_config, best_key = config, key
    return best_config
