"""Performance model: from a step trace to the GFLOP/s numbers of the paper.

Performance in the paper is reported as *normalised* GFLOP/s:

    GFLOP/s = (2/3 N^3) / execution time

i.e. every algorithm is credited the flop count of an LU factorization —
the "fake" rate — so an algorithm that performs QR steps shows a lower rate
even at equal hardware efficiency.  Table II additionally reports the
"true" rate where the numerator is the number of flops actually performed,
``(2/3 f_LU + 4/3 (1 - f_LU)) N^3``.

:class:`PerformanceModel` glues the pieces together: it builds the task
graph of a run (from a numerical factorization or from an explicit spec),
schedules it on a modelled platform with the discrete-event simulator, and
converts the makespan into the fake/true GFLOP/s and %-of-peak columns.

The model is no longer purely analytic.  Pass a
:class:`~repro.perf.calibrate.Calibration` (fitted from real execution
traces by :mod:`repro.perf.calibrate`) and every kernel the calibration
has observed is priced at its *measured* per-core duration instead of the
platform's paper-derived rates — the same predictions the autotuner and
the critical-path scheduler consume online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.dag_builder import FactorizationSpec, build_task_graph, spec_from_factorization
from ..core.factorization import Factorization
from ..kernels.flops import fake_flops, true_flops
from ..runtime.platform import Platform, dancer_platform
from ..runtime.simulator import SimulationResult, simulate
from ..tiles.distribution import ProcessGrid

__all__ = ["PerformanceReport", "PerformanceModel"]


@dataclass
class PerformanceReport:
    """Performance of one simulated run (one row of Table II)."""

    algorithm: str
    n_order: int
    n_tiles: int
    tile_size: int
    lu_fraction: float
    execution_time: float
    fake_gflops: float
    true_gflops: float
    fake_peak_fraction: float
    true_peak_fraction: float
    n_tasks: int
    communication_bytes: float
    critical_path_time: float
    platform_peak_gflops: float
    per_kernel_time: Dict[str, float]

    @property
    def lu_percentage(self) -> float:
        return 100.0 * self.lu_fraction

    def as_row(self) -> Dict[str, float]:
        """Flat dict representation, convenient for printing tables."""
        return {
            "algorithm": self.algorithm,
            "N": self.n_order,
            "time_s": self.execution_time,
            "lu_steps_pct": self.lu_percentage,
            "fake_gflops": self.fake_gflops,
            "true_gflops": self.true_gflops,
            "fake_peak_pct": 100.0 * self.fake_peak_fraction,
            "true_peak_pct": 100.0 * self.true_peak_fraction,
        }


class PerformanceModel:
    """Simulate runs on a modelled platform and report normalised GFLOP/s.

    Parameters
    ----------
    platform:
        The platform model; defaults to the paper's Dancer cluster
        (16 nodes x 8 cores, 1091 GFLOP/s peak) on a 4x4 grid.
    calibration:
        Optional :class:`~repro.perf.calibrate.Calibration`; kernels it
        has observed use their measured durations, the rest fall back to
        the platform's analytic rates.
    """

    def __init__(
        self, platform: Optional[Platform] = None, calibration=None
    ) -> None:
        self.platform = platform if platform is not None else dancer_platform()
        self.calibration = calibration

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def simulate_spec(self, spec: FactorizationSpec) -> PerformanceReport:
        """Simulate a run described by an explicit spec."""
        graph = build_task_graph(spec, platform=self.platform)
        sim = simulate(
            graph,
            self.platform,
            spec.tile_size,
            record_schedule=False,
            calibration=self.calibration,
        )
        return self._report(spec, graph_task_count=len(graph), sim=sim)

    def simulate_factorization(
        self, fact: Factorization, grid: Optional[ProcessGrid] = None
    ) -> PerformanceReport:
        """Simulate the platform execution of an actual numerical run."""
        spec = spec_from_factorization(fact, grid=grid if grid is not None else self.platform.grid)
        return self.simulate_spec(spec)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _report(
        self, spec: FactorizationSpec, graph_task_count: int, sim: SimulationResult
    ) -> PerformanceReport:
        n_order = spec.n_tiles * spec.tile_size
        time_s = max(sim.makespan, 1e-12)
        fake = fake_flops(n_order) / time_s / 1.0e9
        true = true_flops(n_order, spec.lu_fraction) / time_s / 1.0e9
        peak = self.platform.peak_gflops
        return PerformanceReport(
            algorithm=spec.algorithm,
            n_order=n_order,
            n_tiles=spec.n_tiles,
            tile_size=spec.tile_size,
            lu_fraction=spec.lu_fraction,
            execution_time=time_s,
            fake_gflops=fake,
            true_gflops=true,
            fake_peak_fraction=fake / peak,
            true_peak_fraction=true / peak,
            n_tasks=graph_task_count,
            communication_bytes=sim.communication_bytes,
            critical_path_time=sim.critical_path_time,
            platform_peak_gflops=peak,
            per_kernel_time=dict(sim.per_kernel_time),
        )
