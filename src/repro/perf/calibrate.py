"""Online per-kernel cost calibration from real execution traces.

The perf stack originally priced kernels with hard-coded platform
constants (the Dancer rates of Table II).  This module closes the loop
instead: every executor records which kernel each task ran
(``ExecutionTrace.kernel_of_task``) and when, so the measured durations of
a real factorization can be fitted into a per-kernel cost model

* an exact per-``(kernel, nb)`` mean for tile sizes that have been
  observed, and
* a cubic coefficient ``duration ~ c * nb^3`` (least squares over all
  observed sizes) to extrapolate to unobserved tile sizes — every tile
  kernel is ``Theta(nb^3)`` at leading order (Table I).

The fitted :class:`Calibration` drives three consumers:

* the critical-path scheduler (b-level priorities weigh each task by its
  calibrated duration, see :func:`repro.runtime.schedule.kernel_cost_fn`);
* the discrete-event simulator (``simulate(..., calibration=...)``
  replaces the analytic platform rates with measured per-core costs, so a
  simulated makespan predicts a measured one);
* the autotuner (:mod:`repro.perf.autotune` compares predicted makespans
  across tile sizes and backends at ``make_solver(tile_size="auto")``
  time).

Calibrations persist per host at ``~/.cache/repro/calibration.json``
(override with the ``REPRO_CALIBRATION`` environment variable) and are
loaded lazily and cached by modification time, so solvers pick up a new
calibration without re-importing anything.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernels.flops import KernelFlops
from ..runtime.executor import ExecutionTrace, SequentialExecutor
from ..runtime.platform import Platform
from ..tiles.distribution import ProcessGrid

__all__ = [
    "KernelCost",
    "Calibration",
    "calibration_path",
    "default_calibration",
    "clear_calibration_cache",
    "collect_samples",
    "calibrate_from_traces",
    "run_calibration",
    "calibrated_platform",
]

#: Environment variable overriding the calibration file location.
CALIBRATION_ENV = "REPRO_CALIBRATION"

#: Version 2 added per-kernel-backend cost tables (the ``backends`` key);
#: version-1 files load unchanged (their table is the ``numpy`` reference).
_FORMAT_VERSION = 2


def calibration_path() -> Path:
    """Location of the per-host calibration file.

    ``$REPRO_CALIBRATION`` when set, else ``~/.cache/repro/calibration.json``
    (``$XDG_CACHE_HOME`` is honoured when present).
    """
    env = os.environ.get(CALIBRATION_ENV, "").strip()
    if env:
        return Path(env).expanduser()
    cache_root = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(cache_root).expanduser() if cache_root else Path.home() / ".cache"
    return base / "repro" / "calibration.json"


@dataclass
class KernelCost:
    """Measured cost of one kernel across observed tile sizes.

    ``by_nb`` maps a tile size to ``(mean duration seconds, sample
    count)``.  The cubic coefficient is derived from those aggregates, so
    merging two calibrations only needs the table.
    """

    by_nb: Dict[int, Tuple[float, int]] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return sum(c for _, c in self.by_nb.values())

    @property
    def coeff(self) -> float:
        """Least-squares fit of ``duration = coeff * nb^3`` (0 if unfittable)."""
        num = sum(c * mean * nb**3 for nb, (mean, c) in self.by_nb.items())
        den = sum(c * float(nb) ** 6 for nb, (mean, c) in self.by_nb.items())
        return num / den if den > 0 else 0.0

    def duration(self, nb: int) -> Optional[float]:
        """Predicted duration at tile size ``nb`` (exact mean, else cubic fit)."""
        entry = self.by_nb.get(int(nb))
        if entry is not None:
            return entry[0]
        coeff = self.coeff
        return coeff * int(nb) ** 3 if coeff > 0 else None

    def add(self, nb: int, durations: Sequence[float]) -> None:
        """Fold new duration samples at tile size ``nb`` into the table."""
        values = [float(d) for d in durations if d > 0.0]
        if not values:
            return
        nb = int(nb)
        mean, count = self.by_nb.get(nb, (0.0, 0))
        total = mean * count + sum(values)
        count += len(values)
        self.by_nb[nb] = (total / count, count)


#: Backend whose samples live in the primary ``kernels`` table (the
#: bit-exact per-tile reference every solver uses by default).
_REFERENCE_BACKEND = "numpy"


@dataclass
class Calibration:
    """Per-kernel cost model fitted from real execution traces.

    ``kernels`` is the cost table of the ``numpy`` reference backend;
    ``backends`` holds one additional table per non-reference kernel
    backend (``"fused"``, ``"jit"``, ...).  Lookups for a backend fall
    back to the reference table for kernels that backend has no samples
    of, so a partially calibrated backend stays usable.
    """

    kernels: Dict[str, KernelCost] = field(default_factory=dict)
    host: str = ""
    backends: Dict[str, Dict[str, KernelCost]] = field(default_factory=dict)

    def _table(self, backend: Optional[str]) -> Dict[str, KernelCost]:
        if backend is None or backend == _REFERENCE_BACKEND:
            return self.kernels
        return self.backends.setdefault(str(backend), {})

    @property
    def n_samples(self) -> int:
        total = sum(k.count for k in self.kernels.values())
        for table in self.backends.values():
            total += sum(k.count for k in table.values())
        return total

    def calibrated_backends(self) -> List[str]:
        """Backends with at least one sample, reference first."""
        names = [
            name
            for name, table in sorted(self.backends.items())
            if any(cost.count for cost in table.values())
        ]
        has_ref = any(cost.count for cost in self.kernels.values())
        return ([_REFERENCE_BACKEND] if has_ref else []) + names

    def kernel_duration(
        self, kernel: str, nb: int, backend: Optional[str] = None
    ) -> Optional[float]:
        """Calibrated duration of ``kernel`` at tile size ``nb``, if known.

        ``backend`` selects a per-backend table, falling back to the
        ``numpy`` reference table for kernels that backend never observed.
        Returns ``None`` for kernels never observed at all; callers fall
        back to their static cost model (Table-I flops at an analytic
        rate).
        """
        if backend is not None and backend != _REFERENCE_BACKEND:
            cost = self.backends.get(str(backend), {}).get(kernel)
            if cost is not None:
                duration = cost.duration(nb)
                if duration is not None:
                    return duration
        cost = self.kernels.get(kernel)
        return None if cost is None else cost.duration(nb)

    def flops_per_second(
        self, nb: int, backend: Optional[str] = None
    ) -> Optional[float]:
        """Effective per-core rate implied by the calibration at ``nb``.

        Preferred from GEMM (the dominant, best-understood kernel), else
        from the most-sampled kernel with a Table-I flop count.  Used to
        convert static flop counts of *uncalibrated* kernels into seconds
        so they remain comparable with calibrated ones.
        """
        flops = KernelFlops(int(nb))
        ranked: Dict[str, int] = {
            name: cost.count for name, cost in self.kernels.items()
        }
        if backend is not None and backend != _REFERENCE_BACKEND:
            for name, cost in self.backends.get(str(backend), {}).items():
                ranked[name] = ranked.get(name, 0) + cost.count
        candidates = ["gemm"] + sorted(ranked, key=lambda k: -ranked[k])
        for kernel in candidates:
            duration = self.kernel_duration(kernel, nb, backend=backend)
            if duration is None or duration <= 0.0:
                continue
            base = kernel[:-4] if kernel.endswith("_rhs") else kernel
            try:
                return flops.of(base) / duration
            except KeyError:
                continue
        return None

    def observed_tile_sizes(self) -> List[int]:
        """Every tile size any kernel has samples for, ascending."""
        sizes = set()
        for cost in self.kernels.values():
            sizes.update(cost.by_nb)
        for table in self.backends.values():
            for cost in table.values():
                sizes.update(cost.by_nb)
        return sorted(sizes)

    def add_samples(
        self,
        samples: Dict[Tuple[str, int], List[float]],
        backend: Optional[str] = None,
    ) -> "Calibration":
        """Fold ``(kernel, nb) -> durations`` samples in; returns self.

        ``backend`` routes the samples to that backend's table (default:
        the ``numpy`` reference table).
        """
        table = self._table(backend)
        for (kernel, nb), durations in samples.items():
            table.setdefault(kernel, KernelCost()).add(nb, durations)
        return self

    def view(self, backend: Optional[str] = None):
        """A Calibration-compatible adapter bound to one backend.

        The view exposes the same read API (``kernel_duration``,
        ``flops_per_second``, ``observed_tile_sizes``, ``n_samples``) with
        the backend pre-applied, so consumers that know nothing about
        backends — the simulator, ``kernel_cost_fn`` — price tasks with
        that backend's measured costs.  ``view("numpy")`` (or ``None``)
        returns the calibration itself.
        """
        if backend is None or backend == _REFERENCE_BACKEND:
            return self
        return _BackendView(self, str(backend))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @staticmethod
    def _table_to_dict(table: Dict[str, KernelCost]) -> Dict:
        return {
            name: {
                str(nb): {"mean": mean, "count": count}
                for nb, (mean, count) in sorted(cost.by_nb.items())
            }
            for name, cost in sorted(table.items())
        }

    @staticmethod
    def _table_from_dict(data: Dict) -> Dict[str, KernelCost]:
        table: Dict[str, KernelCost] = {}
        for name, entries in data.items():
            by_nb = {
                int(nb): (float(entry["mean"]), int(entry["count"]))
                for nb, entry in entries.items()
            }
            table[name] = KernelCost(by_nb=by_nb)
        return table

    def to_dict(self) -> Dict:
        return {
            "version": _FORMAT_VERSION,
            "host": self.host,
            "kernels": self._table_to_dict(self.kernels),
            "backends": {
                backend: self._table_to_dict(table)
                for backend, table in sorted(self.backends.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Calibration":
        # Version 1 is version 2 without per-backend tables; anything newer
        # (or unversioned) is rejected rather than silently misread.
        version = int(data.get("version", 0))
        if version not in (1, _FORMAT_VERSION):
            raise ValueError(
                f"unsupported calibration format version {data.get('version')!r}"
            )
        return cls(
            kernels=cls._table_from_dict(data.get("kernels", {})),
            host=str(data.get("host", "")),
            backends={
                str(backend): cls._table_from_dict(table)
                for backend, table in data.get("backends", {}).items()
            },
        )

    def save(self, path: Optional[Path] = None) -> Path:
        """Write the calibration file (creating parent directories)."""
        path = Path(path) if path is not None else calibration_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        tmp.replace(path)  # atomic: readers never see a torn file
        return path

    @classmethod
    def load(cls, path: Optional[Path] = None) -> "Calibration":
        path = Path(path) if path is not None else calibration_path()
        return cls.from_dict(json.loads(path.read_text()))


class _BackendView:
    """Read-only Calibration adapter with a kernel backend pre-applied.

    Duck-types the read API consumers use (the simulator's
    ``kernel_duration``, ``kernel_cost_fn``'s ``flops_per_second``, the
    autotuner's ``observed_tile_sizes``/``n_samples``); lookups consult
    the backend's table first and fall back to the reference table.
    """

    def __init__(self, calibration: Calibration, backend: str) -> None:
        self._calibration = calibration
        self.backend = backend

    @property
    def host(self) -> str:
        return self._calibration.host

    @property
    def n_samples(self) -> int:
        return self._calibration.n_samples

    def kernel_duration(self, kernel: str, nb: int) -> Optional[float]:
        return self._calibration.kernel_duration(kernel, nb, backend=self.backend)

    def flops_per_second(self, nb: int) -> Optional[float]:
        return self._calibration.flops_per_second(nb, backend=self.backend)

    def observed_tile_sizes(self) -> List[int]:
        return self._calibration.observed_tile_sizes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_BackendView(backend={self.backend!r})"


# --------------------------------------------------------------------------- #
# Fitting from traces
# --------------------------------------------------------------------------- #
def collect_samples(
    traces: Sequence[ExecutionTrace], tile_size: int
) -> Dict[Tuple[str, int], List[float]]:
    """Extract per-kernel duration samples from execution traces.

    Robust to partial traces: tasks missing their start or finish
    timestamp (errored or timed-out runs), tasks without a recorded kernel
    name (traces predating calibration), and non-positive durations
    (timer-resolution artifacts) are all skipped rather than crashing or
    skewing the fit.

    Fused tasks (``ExecutionTrace.fused_of_task``) batch ``m`` logical
    per-tile kernels in one measurement; their duration is split into
    ``m`` equal per-kernel samples so the fitted table stays per *logical*
    kernel and remains comparable across backends.
    """
    nb = int(tile_size)
    samples: Dict[Tuple[str, int], List[float]] = {}
    for trace in traces:
        fused_of_task = getattr(trace, "fused_of_task", {})
        for uid, kernel in trace.kernel_of_task.items():
            start = trace.start_times.get(uid)
            finish = trace.finish_times.get(uid)
            if start is None or finish is None:
                continue
            duration = finish - start
            if duration <= 0.0:
                continue
            m = max(int(fused_of_task.get(uid, 1)), 1)
            samples.setdefault((kernel, nb), []).extend([duration / m] * m)
    return samples


def calibrate_from_traces(
    traces: Sequence[ExecutionTrace],
    tile_size: int,
    host: Optional[str] = None,
) -> Calibration:
    """Fit a :class:`Calibration` from the traces of one tile size."""
    calibration = Calibration(
        host=host if host is not None else socket.gethostname()
    )
    return calibration.add_samples(collect_samples(traces, tile_size))


def run_calibration(
    n: int = 192,
    tile_sizes: Sequence[int] = (16, 32),
    algorithms: Sequence[str] = ("lupp", "hqr"),
    seed: int = 20140401,
    executor=None,
    save: bool = True,
    path: Optional[Path] = None,
    kernel_backends: Sequence[str] = (_REFERENCE_BACKEND,),
) -> Calibration:
    """Measure this host: factor seeded matrices and fit a calibration.

    One factorization per ``(backend, algorithm, tile size)`` triple; the
    default algorithms cover both the LU and the QR kernel families.  The
    default executor is a
    :class:`~repro.runtime.executor.SequentialExecutor` so every duration
    is an uncontended single-core measurement — exactly the per-core cost
    the simulator and the priority scheduler want.

    ``kernel_backends`` names the kernel backends to measure; each is
    warmed (triggering any JIT compilation) *before* its timed
    factorizations, so first-call compile time never leaks into the cost
    tables.  Non-reference backends land in per-backend tables the
    autotuner compares when picking ``kernel_backend="auto"``.
    """
    import numpy as np

    from ..api.facade import make_solver
    from ..kernels.backends import resolve_backend

    if executor is None:
        executor = SequentialExecutor()
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + 4.0 * np.eye(n)
    calibration = Calibration(host=socket.gethostname())
    for backend_name in kernel_backends:
        backend = resolve_backend(backend_name)
        # Compile-time firewall: prime the backend for every tile size
        # outside the timed window (satellite requirement — JIT compile
        # time must never poison the calibration).
        for nb in tile_sizes:
            backend.warm(int(nb), a.dtype)
        for nb in tile_sizes:
            for algorithm in algorithms:
                solver = make_solver(
                    algorithm,
                    tile_size=int(nb),
                    executor=executor,
                    track_growth=False,
                    kernel_backend=backend,
                )
                solver.factor(a.copy())
                calibration.add_samples(
                    collect_samples(solver.step_traces, nb),
                    backend=backend.name,
                )
    if save:
        calibration.save(path)
        clear_calibration_cache()
    return calibration


# --------------------------------------------------------------------------- #
# Lazy per-host default
# --------------------------------------------------------------------------- #
_CACHE: Dict[str, Tuple[Optional[int], Optional[Calibration]]] = {}
_CACHE_LOCK = threading.Lock()


def default_calibration() -> Optional[Calibration]:
    """The host's persisted calibration, or ``None`` when there is none.

    Cached by file modification time, so the cost of calling this per
    factorization is one ``stat``; a corrupt or unreadable file degrades
    to ``None`` (static cost models) rather than raising.
    """
    path = calibration_path()
    key = str(path)
    try:
        mtime: Optional[int] = path.stat().st_mtime_ns
    except OSError:
        mtime = None
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None and cached[0] == mtime:
            return cached[1]
    calibration: Optional[Calibration] = None
    if mtime is not None:
        try:
            calibration = Calibration.load(path)
        except (OSError, ValueError, KeyError, TypeError):
            calibration = None
    with _CACHE_LOCK:
        _CACHE[key] = (mtime, calibration)
    return calibration


def clear_calibration_cache() -> None:
    """Drop the lazy-load cache (tests, or after writing a new file)."""
    with _CACHE_LOCK:
        _CACHE.clear()


# --------------------------------------------------------------------------- #
# Calibrated platform for the simulator
# --------------------------------------------------------------------------- #
def calibrated_platform(
    calibration: Calibration, cores: int = 1, nb: int = 32
) -> Platform:
    """A single-node platform whose rates come from the calibration.

    Pass this together with ``calibration=...`` to
    :func:`repro.runtime.simulator.simulate`: calibrated kernels use their
    measured durations directly; anything never observed falls back to the
    platform's analytic rates, anchored at the calibration's effective
    GEMM rate at ``nb``.
    """
    rate = calibration.flops_per_second(nb)
    gemm_gflops = rate / 1.0e9 if rate else 1.0
    return Platform(
        grid=ProcessGrid(1, 1),
        cores=int(cores),
        gemm_gflops=gemm_gflops,
        latency=0.0,
        bandwidth=1.0e12,
        name="calibrated",
    )
