"""Performance modelling: normalised GFLOP/s on a simulated Dancer platform."""

from ..runtime.platform import Platform, dancer_platform, laptop_platform
from .model import PerformanceModel, PerformanceReport

__all__ = [
    "Platform",
    "dancer_platform",
    "laptop_platform",
    "PerformanceModel",
    "PerformanceReport",
]
