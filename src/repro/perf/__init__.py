"""Performance modelling, online calibration, and autotuning.

Three layers that close the loop between model and machine:

* :mod:`repro.perf.model` — the paper's analytic layer: simulate a run on
  a modelled platform and report normalised GFLOP/s (Figure 2, Table II);
* :mod:`repro.perf.calibrate` — fit per-kernel cost models from the
  execution traces of real factorizations on *this* host, persisted at
  ``~/.cache/repro/calibration.json``;
* :mod:`repro.perf.autotune` — use the calibrated model to pick tile size
  and executor for the next factorization
  (``make_solver(tile_size="auto", executor="auto")``).
"""

from ..runtime.platform import Platform, dancer_platform, laptop_platform
from .autotune import TunedConfig, autotune_config, predicted_makespan
from .calibrate import (
    Calibration,
    KernelCost,
    calibrate_from_traces,
    calibrated_platform,
    calibration_path,
    clear_calibration_cache,
    collect_samples,
    default_calibration,
    run_calibration,
)
from .model import PerformanceModel, PerformanceReport

__all__ = [
    "Platform",
    "dancer_platform",
    "laptop_platform",
    "PerformanceModel",
    "PerformanceReport",
    "Calibration",
    "KernelCost",
    "calibrate_from_traces",
    "calibrated_platform",
    "calibration_path",
    "clear_calibration_cache",
    "collect_samples",
    "default_calibration",
    "run_calibration",
    "TunedConfig",
    "autotune_config",
    "predicted_makespan",
]
