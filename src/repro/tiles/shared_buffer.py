"""Shared-memory backing store for tile matrices.

The multi-process executor (:class:`~repro.runtime.process_executor.ProcessExecutor`)
runs kernel tasks in worker *processes*, so the tiles of the factorization
cannot live in ordinary heap memory: every worker needs to read and write
the same ``(N, N)`` array (and the attached right-hand side) without
copying tiles through pickles.  :class:`SharedTileBuffer` places both
arrays in one :class:`multiprocessing.shared_memory.SharedMemory` segment;
the owning process fills it from dense arrays, workers attach by name and
view the exact same bytes.

Layout: the segment holds the ``(order, order)`` float64 matrix first,
immediately followed by the ``(order, nrhs)`` right-hand-side block (when
``nrhs > 0``).  Both blocks are C-contiguous, so a
:class:`~repro.tiles.tile_matrix.TileMatrix` constructed over the views
(``copy=False``) aliases the shared segment and every ``tile(i, j)`` view
reads/writes shared bytes directly.

Lifecycle: the creating process is the owner — it must call :meth:`close`
and :meth:`unlink` when the factorization is done (the tiled drivers copy
the factors out of the segment first, so the returned
:class:`~repro.core.factorization.Factorization` owns plain arrays).
Workers only :meth:`close` their attachment; attaching also *unregisters*
the segment from the worker's resource tracker so a worker exiting does
not tear a live segment away from its siblings (Python < 3.13 registers
attachments too).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from .tile_matrix import TileMatrix

__all__ = ["SharedBufferMeta", "SharedTileBuffer"]

_ITEMSIZE = np.dtype(np.float64).itemsize


@dataclass(frozen=True)
class SharedBufferMeta:
    """Picklable handle of a :class:`SharedTileBuffer`.

    This is what travels to worker processes inside task descriptors: the
    segment name plus the geometry needed to rebuild the numpy views.
    """

    name: str
    order: int
    tile_size: int
    nrhs: int

    @property
    def nbytes(self) -> int:
        return (self.order * self.order + self.order * self.nrhs) * _ITEMSIZE


class SharedTileBuffer:
    """One shared-memory segment holding a tile matrix (and optional RHS).

    Construct through :meth:`allocate` (owner side) or :meth:`attach`
    (worker side); the raw constructor wires an existing segment.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        meta: SharedBufferMeta,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.meta = meta
        self.owner = owner
        order, nrhs = meta.order, meta.nrhs
        self._array: Optional[np.ndarray] = np.ndarray(
            (order, order), dtype=np.float64, buffer=shm.buf
        )
        self._rhs: Optional[np.ndarray] = None
        if nrhs > 0:
            self._rhs = np.ndarray(
                (order, nrhs),
                dtype=np.float64,
                buffer=shm.buf,
                offset=order * order * _ITEMSIZE,
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def allocate(
        cls,
        a: np.ndarray,
        tile_size: int,
        rhs: Optional[np.ndarray] = None,
    ) -> "SharedTileBuffer":
        """Create a segment and copy ``a`` (and ``rhs``) into it (owner side)."""
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"shared tile buffer requires a square matrix, got {a.shape}")
        order = a.shape[0]
        if order % tile_size != 0:
            raise ValueError(
                f"matrix order {order} is not a multiple of tile_size {tile_size}"
            )
        nrhs = 0
        if rhs is not None:
            rhs = np.asarray(rhs, dtype=np.float64)
            if rhs.ndim == 1:
                rhs = rhs.reshape(-1, 1)
            if rhs.shape[0] != order:
                raise ValueError(f"rhs has {rhs.shape[0]} rows, expected {order}")
            nrhs = rhs.shape[1]
        size = (order * order + order * nrhs) * _ITEMSIZE
        shm = shared_memory.SharedMemory(create=True, size=size)
        meta = SharedBufferMeta(
            name=shm.name, order=order, tile_size=int(tile_size), nrhs=nrhs
        )
        buf = cls(shm, meta, owner=True)
        buf._array[...] = a
        if nrhs:
            buf._rhs[...] = rhs
        return buf

    @classmethod
    def attach(cls, meta: SharedBufferMeta) -> "SharedTileBuffer":
        """Attach to an existing segment by its metadata (worker side)."""
        try:
            shm = shared_memory.SharedMemory(name=meta.name, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            # Suppress the attach-side resource-tracker registration: only
            # the owner may track the segment.  A forked worker shares the
            # owner's tracker (a later unregister would strip the owner's
            # entry); a spawned worker has its own tracker (which would
            # unlink the live segment when the worker exits).
            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=meta.name)
            finally:
                resource_tracker.register = original_register
        return cls(shm, meta, owner=False)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def array(self) -> np.ndarray:
        """The shared ``(order, order)`` matrix view."""
        if self._array is None:
            raise ValueError("shared tile buffer is closed")
        return self._array

    @property
    def rhs(self) -> Optional[np.ndarray]:
        """The shared ``(order, nrhs)`` right-hand-side view (or ``None``)."""
        if self._array is None:
            raise ValueError("shared tile buffer is closed")
        return self._rhs

    def tile_matrix(self) -> TileMatrix:
        """A :class:`TileMatrix` aliasing the shared segment (no copies)."""
        return TileMatrix(self.array, self.meta.tile_size, rhs=self.rhs, copy=False)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's mapping (owner must also :meth:`unlink`).

        Callers must drop every :class:`TileMatrix` / array referencing the
        buffer first; a still-exported view keeps the mapping alive until
        it is garbage collected.
        """
        self._array = None
        self._rhs = None
        try:
            self._shm.close()
        except BufferError:
            # A numpy view on the segment is still alive somewhere; the
            # mapping is released when the last view is collected.
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner side; idempotent)."""
        if not self.owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedTileBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()
