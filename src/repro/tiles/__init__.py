"""Tiled-matrix containers and 2D block-cyclic data distribution."""

from .distribution import BlockCyclicDistribution, ProcessGrid
from .tile_matrix import TileMatrix

__all__ = ["TileMatrix", "ProcessGrid", "BlockCyclicDistribution"]
