"""Tiled-matrix containers, shared-memory backing, block-cyclic distribution."""

from .distribution import BlockCyclicDistribution, ProcessGrid
from .shared_buffer import SharedBufferMeta, SharedTileBuffer
from .tile_matrix import TileMatrix

__all__ = [
    "TileMatrix",
    "ProcessGrid",
    "BlockCyclicDistribution",
    "SharedBufferMeta",
    "SharedTileBuffer",
]
