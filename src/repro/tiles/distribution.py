"""Data distribution of a tiled matrix over a virtual process grid.

The paper distributes the ``n``-by-``n`` tile matrix over a ``p``-by-``q``
virtual process grid using the standard 2D block-cyclic mapping: tile
``(i, j)`` lives on process ``(i mod p, j mod q)``.  At elimination step
``k`` the tiles of the panel (column ``k``, rows ``k..n-1``) are partitioned
into *domains*, one per process row that owns tiles of that panel column.
The *diagonal domain* is the set of panel tiles owned by the node that owns
the diagonal tile ``(k, k)``; pivoting inside the LU step is restricted to
that domain, so that it never requires inter-node communication.

This module implements the grid, the block-cyclic mapping and the domain
queries needed by the hybrid algorithm, the criteria, and the performance
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = [
    "ProcessGrid",
    "BlockCyclicDistribution",
]


@dataclass(frozen=True)
class ProcessGrid:
    """A virtual ``p``-by-``q`` grid of processes (nodes).

    Parameters
    ----------
    p:
        Number of process rows.
    q:
        Number of process columns.

    The paper's default platform is a 4-by-4 grid of 16 nodes (Figure 2,
    Table II) and a 16-by-1 grid for the special-matrix experiments
    (Figure 3).
    """

    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p < 1 or self.q < 1:
            raise ValueError(f"process grid must be at least 1x1, got {self.p}x{self.q}")

    @property
    def size(self) -> int:
        """Total number of processes in the grid."""
        return self.p * self.q

    def rank_of(self, prow: int, pcol: int) -> int:
        """Linear rank (row-major) of grid coordinate ``(prow, pcol)``."""
        if not (0 <= prow < self.p and 0 <= pcol < self.q):
            raise ValueError(f"({prow}, {pcol}) outside {self.p}x{self.q} grid")
        return prow * self.q + pcol

    def coords_of(self, rank: int) -> Tuple[int, int]:
        """Grid coordinates ``(prow, pcol)`` of a linear rank."""
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} outside grid of size {self.size}")
        return divmod(rank, self.q)

    def ranks(self) -> Iterator[int]:
        """Iterate over all linear ranks."""
        return iter(range(self.size))


@dataclass(frozen=True)
class BlockCyclicDistribution:
    """2D block-cyclic ownership of an ``n``-by-``n`` tile matrix.

    Tile ``(i, j)`` is owned by process ``(i mod p, j mod q)``.  This is
    the distribution used throughout the paper; it balances the load of
    both LU and QR steps.

    Parameters
    ----------
    grid:
        The virtual process grid.
    n:
        Number of tile rows (= tile columns) of the matrix.
    """

    grid: ProcessGrid
    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"tile count must be positive, got {self.n}")
        if self.grid.p > self.n or self.grid.q > self.n:
            # A grid dimension exceeding the tile count leaves processes
            # that own nothing: every panel/domain query for them silently
            # returns an empty (degenerate) domain, which downstream
            # placement analysis would misread as "no work, no messages".
            raise ValueError(
                f"process grid {self.grid.p}x{self.grid.q} is larger than the "
                f"{self.n}x{self.n} tile matrix; every process must own at "
                "least one tile row and column"
            )

    # ------------------------------------------------------------------ #
    # Ownership queries
    # ------------------------------------------------------------------ #
    def owner_coords(self, i: int, j: int) -> Tuple[int, int]:
        """Grid coordinates of the process owning tile ``(i, j)``."""
        self._check_tile(i, j)
        return (i % self.grid.p, j % self.grid.q)

    def owner(self, i: int, j: int) -> int:
        """Linear rank of the process owning tile ``(i, j)``."""
        prow, pcol = self.owner_coords(i, j)
        return self.grid.rank_of(prow, pcol)

    def is_local(self, i: int, j: int, rank: int) -> bool:
        """Whether tile ``(i, j)`` lives on process ``rank``."""
        self.grid.coords_of(rank)  # reject out-of-range ranks loudly
        return self.owner(i, j) == rank

    def rhs_owner(self, i: int) -> int:
        """Rank owning the right-hand-side tile of tile row ``i``.

        The RHS is distributed as one extra block column appended after the
        matrix (column index ``n``), so RHS tiles cycle over process rows
        exactly like their matrix row while all landing in the process
        column ``n mod q``.
        """
        if not (0 <= i < self.n):
            raise IndexError(f"RHS tile row {i} outside 0..{self.n - 1}")
        return self.grid.rank_of(i % self.grid.p, self.n % self.grid.q)

    def local_tiles(self, rank: int) -> List[Tuple[int, int]]:
        """All tiles owned by process ``rank`` (row-major order)."""
        prow, pcol = self.grid.coords_of(rank)
        return [
            (i, j)
            for i in range(prow, self.n, self.grid.p)
            for j in range(pcol, self.n, self.grid.q)
        ]

    def local_tile_count(self, rank: int) -> int:
        """Number of tiles owned by process ``rank``."""
        prow, pcol = self.grid.coords_of(rank)
        rows = len(range(prow, self.n, self.grid.p))
        cols = len(range(pcol, self.n, self.grid.q))
        return rows * cols

    # ------------------------------------------------------------------ #
    # Panel / domain queries (Section II of the paper)
    # ------------------------------------------------------------------ #
    def panel_rows(self, k: int) -> List[int]:
        """Tile-row indices of the elimination panel at step ``k``."""
        self._check_step(k)
        return list(range(k, self.n))

    def panel_owners(self, k: int) -> List[int]:
        """Ranks owning at least one tile of panel ``k`` (sorted, unique)."""
        return sorted({self.owner(i, k) for i in self.panel_rows(k)})

    def diagonal_owner(self, k: int) -> int:
        """Rank of the node owning the diagonal tile ``(k, k)``."""
        return self.owner(k, k)

    def domain_rows(self, k: int, rank: int) -> List[int]:
        """Panel rows of step ``k`` owned by ``rank`` (a *domain*)."""
        self.grid.coords_of(rank)  # reject out-of-range ranks loudly
        return [i for i in self.panel_rows(k) if self.owner(i, k) == rank]

    def diagonal_domain_rows(self, k: int) -> List[int]:
        """Panel rows of step ``k`` in the *diagonal domain*.

        These are the rows of the panel owned by the same node as the
        diagonal tile; the LU step restricts its pivot search to them
        (Section II-A), which keeps the search purely node-local.
        """
        return self.domain_rows(k, self.diagonal_owner(k))

    def off_diagonal_domain_rows(self, k: int) -> List[int]:
        """Panel rows of step ``k`` *outside* the diagonal domain."""
        diag = set(self.diagonal_domain_rows(k))
        return [i for i in self.panel_rows(k) if i not in diag]

    def domains(self, k: int) -> List[Tuple[int, List[int]]]:
        """All ``(rank, rows)`` domains of panel ``k``, diagonal domain first."""
        diag_rank = self.diagonal_owner(k)
        out = [(diag_rank, self.domain_rows(k, diag_rank))]
        for rank in self.panel_owners(k):
            if rank != diag_rank:
                out.append((rank, self.domain_rows(k, rank)))
        return out

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _check_tile(self, i: int, j: int) -> None:
        if not (0 <= i < self.n and 0 <= j < self.n):
            raise IndexError(f"tile ({i}, {j}) outside {self.n}x{self.n} tile matrix")

    def _check_step(self, k: int) -> None:
        if not (0 <= k < self.n):
            raise IndexError(f"step {k} outside 0..{self.n - 1}")
