"""Tiled matrix container.

The paper works on a square matrix ``A`` of order ``N = n * nb`` viewed as an
``n``-by-``n`` matrix of ``nb``-by-``nb`` tiles.  :class:`TileMatrix` wraps a
contiguous numpy array and exposes tile views (no copies), panel views, and
tile-wise norms.  An extra, narrower tile column can be attached to hold the
right-hand side ``b`` so that all transformations of the factorization are
applied to the augmented matrix ``[A | b]`` exactly as in Section II-D1 of
the paper.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["TileMatrix"]


class TileMatrix:
    """A square matrix stored as an ``n``-by-``n`` grid of ``nb``-by-``nb`` tiles.

    Parameters
    ----------
    data:
        A 2-D array of shape ``(n*nb, n*nb)``.  The array is used in place
        (not copied) unless ``copy=True``.
    tile_size:
        The tile order ``nb``.
    rhs:
        Optional right-hand side of shape ``(n*nb,)`` or ``(n*nb, nrhs)``;
        it is carried along as an extra (narrow) tile column so the hybrid
        factorization can transform ``[A | b]`` in one pass.
    copy:
        Copy ``data`` (and ``rhs``) instead of aliasing them.
    """

    def __init__(
        self,
        data: np.ndarray,
        tile_size: int,
        rhs: Optional[np.ndarray] = None,
        copy: bool = False,
    ) -> None:
        data = np.array(data, dtype=np.float64, copy=copy)
        if data.ndim != 2 or data.shape[0] != data.shape[1]:
            raise ValueError(f"TileMatrix requires a square 2-D array, got shape {data.shape}")
        if tile_size < 1:
            raise ValueError(f"tile_size must be positive, got {tile_size}")
        if data.shape[0] % tile_size != 0:
            raise ValueError(
                f"matrix order {data.shape[0]} is not a multiple of tile_size {tile_size}"
            )
        self._data = np.ascontiguousarray(data)
        self._nb = int(tile_size)
        self._n = data.shape[0] // tile_size

        self._rhs: Optional[np.ndarray] = None
        if rhs is not None:
            rhs = np.array(rhs, dtype=np.float64, copy=copy)
            if rhs.ndim == 1:
                rhs = rhs.reshape(-1, 1)
            if rhs.shape[0] != data.shape[0]:
                raise ValueError(
                    f"rhs has {rhs.shape[0]} rows, expected {data.shape[0]}"
                )
            self._rhs = np.ascontiguousarray(rhs)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of tile rows (= tile columns)."""
        return self._n

    @property
    def nb(self) -> int:
        """Tile order ``nb``."""
        return self._nb

    @property
    def order(self) -> int:
        """Matrix order ``N = n * nb``."""
        return self._n * self._nb

    @property
    def array(self) -> np.ndarray:
        """The underlying ``(N, N)`` array (a view, not a copy)."""
        return self._data

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the tile storage."""
        return self._data.dtype

    @property
    def rhs(self) -> Optional[np.ndarray]:
        """The attached right-hand side block (``(N, nrhs)``), if any."""
        return self._rhs

    @property
    def has_rhs(self) -> bool:
        return self._rhs is not None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(
        cls,
        a: np.ndarray,
        tile_size: int,
        rhs: Optional[np.ndarray] = None,
    ) -> "TileMatrix":
        """Create a tile matrix by *copying* a dense array."""
        return cls(a, tile_size, rhs=rhs, copy=True)

    def copy(self) -> "TileMatrix":
        """Deep copy of the tile matrix (and its RHS)."""
        return TileMatrix(self._data, self._nb, rhs=self._rhs, copy=True)

    def to_dense(self) -> np.ndarray:
        """A dense copy of the matrix."""
        return self._data.copy()

    # ------------------------------------------------------------------ #
    # Tile access (views)
    # ------------------------------------------------------------------ #
    def tile(self, i: int, j: int) -> np.ndarray:
        """The ``nb``-by-``nb`` view of tile ``(i, j)``."""
        self._check(i, j)
        nb = self._nb
        return self._data[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb]

    def set_tile(self, i: int, j: int, value: np.ndarray) -> None:
        """Overwrite tile ``(i, j)`` with ``value``."""
        self.tile(i, j)[...] = value

    def rhs_tile(self, i: int) -> np.ndarray:
        """The ``nb``-by-``nrhs`` view of RHS tile row ``i``."""
        if self._rhs is None:
            raise ValueError("this TileMatrix has no attached right-hand side")
        if not (0 <= i < self._n):
            raise IndexError(f"tile row {i} outside 0..{self._n - 1}")
        nb = self._nb
        return self._rhs[i * nb : (i + 1) * nb, :]

    def block(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        """View of the rectangular tile block ``[i0:i1, j0:j1)`` (no copy).

        The returned array has shape ``((i1-i0)*nb, (j1-j0)*nb)`` and
        aliases the underlying storage, so a contiguous run of tile rows in
        one tile column can be updated with a single stacked GEMM — the
        fused trailing-update sweep of the batched kernel backends.
        """
        if not (0 <= i0 <= i1 <= self._n and 0 <= j0 <= j1 <= self._n):
            raise IndexError(
                f"tile block [{i0}:{i1}, {j0}:{j1}] outside {self._n}x{self._n} tile matrix"
            )
        nb = self._nb
        return self._data[i0 * nb : i1 * nb, j0 * nb : j1 * nb]

    def rhs_block(self, i0: int, i1: int) -> np.ndarray:
        """View of RHS tile rows ``[i0, i1)`` stacked (no copy)."""
        if self._rhs is None:
            raise ValueError("this TileMatrix has no attached right-hand side")
        if not (0 <= i0 <= i1 <= self._n):
            raise IndexError(
                f"rhs tile rows [{i0}:{i1}] outside 0..{self._n - 1}"
            )
        nb = self._nb
        return self._rhs[i0 * nb : i1 * nb, :]

    def row_block(self, i: int, j_start: int, j_stop: Optional[int] = None) -> np.ndarray:
        """View of tile row ``i`` restricted to tile columns ``[j_start, j_stop)``."""
        if j_stop is None:
            j_stop = self._n
        self._check(i, max(j_start, 0))
        nb = self._nb
        return self._data[i * nb : (i + 1) * nb, j_start * nb : j_stop * nb]

    def panel(self, k: int, rows: Optional[List[int]] = None) -> np.ndarray:
        """A *copy* of panel column ``k`` stacked over the given tile rows.

        When ``rows`` is omitted the full panel ``k..n-1`` is returned.  The
        stacking order follows ``rows``.
        """
        if rows is None:
            rows = list(range(k, self._n))
        return np.vstack([self.tile(i, k) for i in rows])

    def scatter_panel(self, k: int, rows: List[int], panel: np.ndarray) -> None:
        """Write a stacked panel back into the tiles listed in ``rows``."""
        nb = self._nb
        if panel.shape != (len(rows) * nb, nb):
            raise ValueError(
                f"panel shape {panel.shape} does not match {len(rows)} tiles of order {nb}"
            )
        for idx, i in enumerate(rows):
            self.set_tile(i, k, panel[idx * nb : (idx + 1) * nb, :])

    def tiles(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Iterate over ``(i, j, tile_view)`` in row-major order."""
        for i in range(self._n):
            for j in range(self._n):
                yield i, j, self.tile(i, j)

    # ------------------------------------------------------------------ #
    # Norms and diagnostics
    # ------------------------------------------------------------------ #
    def tile_norm(self, i: int, j: int, ord: object = 1) -> float:
        """Norm of tile ``(i, j)`` (1-norm by default, as in the paper)."""
        return float(np.linalg.norm(self.tile(i, j), ord=ord))

    def tile_norms(self, ord: object = 1) -> np.ndarray:
        """``(n, n)`` array of tile norms."""
        out = np.empty((self._n, self._n))
        for i in range(self._n):
            for j in range(self._n):
                out[i, j] = self.tile_norm(i, j, ord=ord)
        return out

    def region_tile_norms(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        """Tile 1-norms of the rectangular tile region in one vectorized pass.

        Returns the ``(i1 - i0, j1 - j0)`` array of 1-norms of the tiles
        ``(i, j)`` with ``i0 <= i < i1`` and ``j0 <= j < j1``.  The 1-norm
        of a tile is its largest column absolute sum — computed here with a
        single reshape/sum/max over the region instead of one
        ``np.linalg.norm`` call per tile, which is what makes incremental
        growth tracking cheap.
        """
        if not (0 <= i0 <= i1 <= self._n and 0 <= j0 <= j1 <= self._n):
            raise IndexError(
                f"tile region [{i0}:{i1}, {j0}:{j1}] outside {self._n}x{self._n} tile matrix"
            )
        rows, cols = i1 - i0, j1 - j0
        if rows == 0 or cols == 0:
            return np.zeros((rows, cols))
        nb = self._nb
        sub = self._data[i0 * nb : i1 * nb, j0 * nb : j1 * nb]
        return np.abs(sub).reshape(rows, nb, cols, nb).sum(axis=1).max(axis=2)

    def max_tile_norm(self, ord: object = 1) -> float:
        """Largest tile norm of the whole matrix."""
        if ord == 1:
            return float(self.region_tile_norms(0, self._n, 0, self._n).max())
        return float(self.tile_norms(ord=ord).max())

    def norm(self, ord: object = np.inf) -> float:
        """Norm of the full matrix (infinity norm by default, as HPL uses)."""
        return float(np.linalg.norm(self._data, ord=ord))

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rhs = f", rhs={self._rhs.shape}" if self._rhs is not None else ""
        return f"TileMatrix(n={self._n}, nb={self._nb}{rhs})"

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise IndexError(f"tile ({i}, {j}) outside {self._n}x{self._n} tile matrix")
