"""Distributed execution and sharded serving.

Two layers scale the reproduction past one box:

- :mod:`repro.cluster.executor` — :class:`ClusterExecutor`, an
  owner-computes multi-node executor (``cluster(workers=N)`` locally,
  ``cluster(hosts=[...])`` against ``repro-cluster-worker`` TCP
  endpoints) whose placement, message counting, pivot protocol, and
  admission control come straight from the static analyses of
  :mod:`repro.analysis`;
- :mod:`repro.cluster.sharded` — :class:`ShardedSolverService`, a
  consistent-hash front-end routing registered matrices across
  independent :class:`~repro.api.service.SolverService` shards with
  minimal-movement rebalancing and merged statistics.

Importing this package registers the ``cluster`` executor spec.
"""

from .executor import (
    ClusterError,
    ClusterExecutor,
    CommStats,
    MemoryAdmissionError,
    PivotProtocolError,
)
from .sharded import (
    ConsistentHashRing,
    ShardedSolverService,
    ShardedStats,
    ShardRemoved,
)

__all__ = [
    "ClusterError",
    "ClusterExecutor",
    "CommStats",
    "MemoryAdmissionError",
    "PivotProtocolError",
    "ConsistentHashRing",
    "ShardedSolverService",
    "ShardedStats",
    "ShardRemoved",
]
