"""Cluster worker: one node of the distributed owner-computes executor.

A worker is a plain process (spawned locally by
:class:`~repro.cluster.executor.ClusterExecutor` or started out-of-band on
a remote host via the ``repro-cluster-worker`` console script) that holds
the *local* tile store of one cluster node and executes the kernel tasks
the host dispatches to it.

The wire protocol is a sequence of picklable tuples over a
:mod:`multiprocessing.connection` channel (a pipe-backed socket locally,
an authenticated TCP socket in ``hosts=`` mode):

Host → worker
    ``("bind", n, nb, nrhs, tiles)``
        Allocate a full-size zero tile store of ``n`` tiles of order
        ``nb`` (plus an ``n*nb x nrhs`` RHS block when ``nrhs > 0``) and
        scatter the listed owned tiles into it.  Answered by
        ``("ack", "bind")``.
    ``("task", uid, call, tiles, products, want_writes)``
        Refresh the listed tiles/products (cross-owner fetches, buffered
        write-forwards and recovery state ride together here), execute
        ``call`` against the local store, and reply ``done`` with the
        tiles of ``want_writes`` read back out.
    ``("unbind",)``
        Drop the tile store and the product cache.  Answered by
        ``("ack", "unbind")``.
    ``("shutdown",)``
        Acknowledge and return from the serve loop.

Worker → host
    ``("hello", worker_id, name, memory_budget, pid)`` once on connect
    (the advertised ``memory_budget`` drives the host's admission
    control), ``("hb",)`` heartbeats from a daemon thread, and per task
    either ``("done", uid, result, norms, writes, start, finish, name)``
    or ``("error", uid, exception)``.

Tile payload entries are ``(i, j, ndarray)`` with ``j ==``
:data:`~repro.runtime.task.RHS_COLUMN` meaning the RHS tile of row
``i``.  Norm sampling mirrors
:func:`repro.kernels.dispatch.execute_kernel_call` — computed *after*
the finish timestamp via ``region_tile_norms`` so lookahead growth
tracking stays bit-identical to the inline drivers without skewing
kernel timings.

Fault injection: ``fail_after_tasks=N`` makes the worker call
``os._exit`` upon *receiving* its N-th task message, before executing
it.  Dying pre-execution (instead of racing a ``terminate()`` against
the done reply) makes the host's retry path deterministic to test.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from multiprocessing.connection import Client, Connection, Listener
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels.dispatch import KERNELS
from ..runtime.task import RHS_COLUMN
from ..tiles.tile_matrix import TileMatrix

__all__ = ["serve", "serve_listener", "main"]

TilePayload = Sequence[Tuple[int, int, np.ndarray]]


def _apply_tiles(tiles: TileMatrix, payload: TilePayload) -> None:
    """Install shipped tile values into the local store."""
    for i, j, value in payload:
        if j == RHS_COLUMN:
            tiles.rhs_tile(i)[...] = value
        else:
            tiles.set_tile(i, j, value)


def _read_writes(
    tiles: TileMatrix, refs: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int, np.ndarray]]:
    """Copy the post-kernel values of the written tiles for the reply."""
    out: List[Tuple[int, int, np.ndarray]] = []
    for i, j in refs:
        if j == RHS_COLUMN:
            out.append((i, j, np.array(tiles.rhs_tile(i))))
        else:
            out.append((i, j, np.array(tiles.tile(i, j))))
    return out


def serve(
    conn: Connection,
    *,
    worker_id: int = 0,
    memory_budget: Optional[int] = None,
    heartbeat_interval: float = 0.25,
    fail_after_tasks: Optional[int] = None,
) -> None:
    """Serve one host connection until ``shutdown`` or EOF.

    Single-threaded with respect to kernel execution; a daemon thread
    emits heartbeats under a send lock so ``done`` replies and ``hb``
    messages never interleave mid-pickle on the wire.
    """
    name = f"cluster-w{worker_id}"
    send_lock = threading.Lock()
    stop = threading.Event()

    def send(msg: Any) -> None:
        with send_lock:
            conn.send(msg)

    def heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                send(("hb",))
            except (OSError, ValueError):
                return

    send(("hello", worker_id, name, memory_budget, os.getpid()))
    hb_thread = threading.Thread(target=heartbeat, name=f"{name}-hb", daemon=True)
    hb_thread.start()

    tiles: Optional[TileMatrix] = None
    products: Dict[Any, Any] = {}
    tasks_seen = 0
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            kind = msg[0]
            if kind == "bind":
                _, n, nb, nrhs, payload = msg
                rhs = np.zeros((n * nb, nrhs)) if nrhs else None
                tiles = TileMatrix(np.zeros((n * nb, n * nb)), nb, rhs=rhs)
                products = {}
                _apply_tiles(tiles, payload)
                send(("ack", "bind"))
            elif kind == "unbind":
                tiles = None
                products = {}
                send(("ack", "unbind"))
            elif kind == "shutdown":
                send(("ack", "shutdown"))
                return
            elif kind == "task":
                _, uid, call, tile_payload, product_payload, want_writes = msg
                tasks_seen += 1
                if fail_after_tasks is not None and tasks_seen >= fail_after_tasks:
                    # Simulated crash: die before executing, so the host's
                    # mirror still holds the exact pre-task state and the
                    # retry on a survivor is bit-identical by construction.
                    os._exit(17)
                if tiles is None:
                    send(("error", uid, RuntimeError("worker received a task while unbound")))
                    continue
                try:
                    _apply_tiles(tiles, tile_payload)
                    for key, value in product_payload:
                        products[key] = value
                    op = KERNELS[call.kernel]
                    inputs = tuple(products[key] for key in call.consumes)
                    start = time.perf_counter()
                    result = op(tiles, inputs, *call.args)
                    finish = time.perf_counter()
                    if call.produces is not None:
                        products[call.produces] = result
                    norms: Optional[Tuple[float, ...]] = None
                    if call.norm_tiles:
                        # Same 1x1-region path as the inline drivers' norm
                        # cache, sampled after `finish`: bit-identical
                        # growth bookkeeping, unskewed timings.
                        norms = tuple(
                            float(tiles.region_tile_norms(i, i + 1, j, j + 1)[0, 0])
                            for (i, j) in call.norm_tiles
                        )
                    writes = _read_writes(tiles, want_writes)
                    reply = result if call.produces is not None else None
                    send(("done", uid, reply, norms, writes, start, finish, name))
                except Exception as exc:  # noqa: BLE001 - forwarded to the host
                    try:
                        send(("error", uid, exc))
                    except Exception:
                        # The exception itself failed to pickle; ship a
                        # plain summary instead of dying silently.
                        send(("error", uid, RuntimeError(f"{type(exc).__name__}: {exc}")))
            else:
                send(("error", None, RuntimeError(f"unknown cluster message {kind!r}")))
    finally:
        stop.set()


def serve_listener(
    listener: Listener,
    *,
    worker_id: int = 0,
    memory_budget: Optional[int] = None,
    heartbeat_interval: float = 0.25,
) -> None:
    """Accept one host connection on ``listener`` and serve it to completion.

    This is the ``hosts=`` mode entry point: the worker is started first
    (out-of-band), listens on a TCP endpoint, and the
    :class:`~repro.cluster.executor.ClusterExecutor` connects in.
    """
    conn = listener.accept()
    try:
        serve(
            conn,
            worker_id=worker_id,
            memory_budget=memory_budget,
            heartbeat_interval=heartbeat_interval,
        )
    finally:
        conn.close()


def _spawned_main(
    address: Any,
    authkey: bytes,
    worker_id: int,
    memory_budget: Optional[int],
    heartbeat_interval: float,
    fail_after_tasks: Optional[int],
) -> None:
    """Entry point of locally spawned workers: connect back to the host."""
    conn = Client(address, authkey=authkey)
    try:
        serve(
            conn,
            worker_id=worker_id,
            memory_budget=memory_budget,
            heartbeat_interval=heartbeat_interval,
            fail_after_tasks=fail_after_tasks,
        )
    finally:
        conn.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI of the ``repro-cluster-worker`` console script.

    Starts a worker that listens on ``--listen host:port`` for one
    ClusterExecutor connection, serves it, and exits.  Point the
    executor at it with ``cluster(hosts=["host:port", ...])`` and the
    matching ``--authkey``.
    """
    parser = argparse.ArgumentParser(
        prog="repro-cluster-worker",
        description="Serve one node of the repro distributed cluster executor.",
    )
    parser.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="TCP endpoint to listen on (port 0 picks a free port and prints it)",
    )
    parser.add_argument(
        "--authkey",
        default="repro-cluster",
        help="shared connection secret; must match the executor's authkey",
    )
    parser.add_argument("--worker-id", type=int, default=0, help="advertised worker id")
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="advertised tile-store budget used by the host's admission control",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=0.25, metavar="SECONDS"
    )
    args = parser.parse_args(argv)

    host, _, port = args.listen.rpartition(":")
    if not host or not port:
        parser.error(f"--listen must be HOST:PORT, got {args.listen!r}")
    listener = Listener((host, int(port)), authkey=args.authkey.encode())
    try:
        bound = listener.address
        print(f"repro-cluster-worker {args.worker_id} listening on {bound[0]}:{bound[1]}")
        serve_listener(
            listener,
            worker_id=args.worker_id,
            memory_budget=args.memory_budget,
            heartbeat_interval=args.heartbeat_interval,
        )
    except KeyboardInterrupt:
        pass
    finally:
        listener.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
