"""Consistent-hash sharded serving across independent solver services.

:class:`ShardedSolverService` scales the serving layer past one
dispatcher: registered :class:`~repro.api.service.MatrixHandle`\\ s are
placed on independent :class:`~repro.api.service.SolverService` shards
(each with its own factorization cache, dispatcher thread, and —
optionally — its own cluster-backed executor) by consistent hashing on
the handle fingerprint, so

* ``submit()`` routes by handle with no shared lock between shards,
* adding or removing a shard moves only ``~K/N`` of the registered keys
  (the :class:`ConsistentHashRing` guarantee) instead of re-homing
  everything, and the moved keys simply warm the next shard's cache on
  first touch — results never change, only locality does;
* removing a shard mid-flight fails *only that shard's* queued futures,
  with a structured :class:`ShardRemoved` clients can distinguish from a
  plain close.

Statistics aggregate in the first-pass/merge/second-pass shape of the
resolver pipelines this design borrows from: per-shard atomic
:meth:`~repro.api.service.ServiceStats.snapshot`\\ s (first pass) fold
into one total via :meth:`~repro.api.service.ServiceStats.merge`
(sums and maxima), and derived metrics recompute from the merged
counters (second pass, free).
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..api.service import (
    MatrixHandle,
    ServiceClosed,
    ServiceStats,
    SolveFuture,
    SolverService,
)
from ..api.session import SolverSession, matrix_fingerprint

__all__ = [
    "ConsistentHashRing",
    "ShardRemoved",
    "ShardedStats",
    "ShardedSolverService",
]


class ShardRemoved(ServiceClosed):
    """Set on the futures a shard removal dropped mid-flight.

    Carries the shard name, so a routing client can distinguish "this
    shard went away, resubmit and you will be re-routed" from a plain
    service shutdown.
    """

    def __init__(self, shard: str) -> None:
        super().__init__(f"shard {shard!r} was removed from the sharded service")
        self.shard = shard


class ConsistentHashRing:
    """SHA-256 consistent-hash ring with virtual nodes.

    Each member is hashed at ``replicas`` virtual positions; a key routes
    to the first member clockwise from its own hash.  Adding or removing
    a member only re-routes the keys whose arc it owned — the minimal-
    movement property the sharded service's rebalancing relies on.
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._ring: List[Tuple[int, str]] = []  # sorted (position, member)
        self._members: Dict[str, List[int]] = {}

    @staticmethod
    def _position(token: str) -> int:
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        if member in self._members:
            raise ValueError(f"ring already contains {member!r}")
        positions = [
            self._position(f"{member}#{replica}") for replica in range(self.replicas)
        ]
        self._members[member] = positions
        for pos in positions:
            bisect.insort(self._ring, (pos, member))

    def remove(self, member: str) -> None:
        try:
            positions = self._members.pop(member)
        except KeyError:
            raise KeyError(f"ring does not contain {member!r}") from None
        remove_set = {(pos, member) for pos in positions}
        self._ring = [entry for entry in self._ring if entry not in remove_set]

    def node_for(self, key: str) -> str:
        """The member owning ``key``'s arc (clockwise successor)."""
        if not self._ring:
            raise LookupError("consistent-hash ring is empty")
        pos = self._position(key)
        index = bisect.bisect_left(self._ring, (pos, ""))
        if index == len(self._ring):
            index = 0  # wrap around the top of the ring
        return self._ring[index][1]


@dataclass
class ShardedStats:
    """Aggregated dispatch statistics of a sharded service."""

    total: ServiceStats
    per_shard: Dict[str, ServiceStats]

    @property
    def shards(self) -> int:
        return len(self.per_shard)


class ShardedSolverService:
    """Route solve requests across consistent-hash ``SolverService`` shards.

    Parameters
    ----------
    shards:
        Either a shard count (that many ``SolverService`` shards are
        built from ``**spec_kwargs``, named ``shard-0..N-1``) or a
        mapping ``{name: SolverService}`` of pre-built shards — e.g.
        each backed by its own ``cluster(...)`` executor.
    replicas:
        Virtual nodes per shard on the hash ring.
    capacity / start / spec_kwargs:
        Forwarded to every shard the front-end builds itself (including
        shards added later via :meth:`add_shard` without an explicit
        service).

    Examples
    --------
    >>> import numpy as np, repro
    >>> rng = np.random.default_rng(0)
    >>> svc = repro.ShardedSolverService(shards=2, algorithm="lupp", tile_size=8)
    >>> a = rng.standard_normal((32, 32)) + 8.0 * np.eye(32)
    >>> with svc:
    ...     h = svc.register(a)
    ...     x = svc.submit(h, rng.standard_normal(32)).result(timeout=60).x
    >>> x.shape
    (32,)
    """

    def __init__(
        self,
        shards: Union[int, Mapping[str, SolverService]] = 2,
        *,
        replicas: int = 64,
        capacity: Optional[int] = 8,
        start: bool = True,
        **spec_kwargs: Any,
    ) -> None:
        self._lock = threading.RLock()
        self._ring = ConsistentHashRing(replicas=replicas)
        self._shards: Dict[str, SolverService] = {}
        self._handles: Dict[str, MatrixHandle] = {}
        self._capacity = capacity
        self._start = start
        self._spec_kwargs = dict(spec_kwargs)
        self._open = True
        if isinstance(shards, int):
            if shards < 1:
                raise ValueError(f"need at least one shard, got {shards}")
            members: Iterable[Tuple[str, Optional[SolverService]]] = (
                (f"shard-{i}", None) for i in range(shards)
            )
        else:
            if not shards:
                raise ValueError("need at least one shard")
            members = shards.items()
        for name, service in members:
            self.add_shard(name, service)

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def shard_names(self) -> List[str]:
        with self._lock:
            return self._ring.members

    def shard_name_for(self, key: str) -> str:
        """The shard a fingerprint currently routes to."""
        with self._lock:
            return self._ring.node_for(key)

    def shard_for(self, handle: Union[MatrixHandle, str]) -> SolverService:
        key = handle.key if isinstance(handle, MatrixHandle) else str(handle)
        with self._lock:
            return self._shards[self._ring.node_for(key)]

    def routes(self) -> Dict[str, str]:
        """Current ``{fingerprint: shard name}`` of every registered handle."""
        with self._lock:
            return {key: self._ring.node_for(key) for key in self._handles}

    def add_shard(
        self, name: Optional[str] = None, service: Optional[SolverService] = None
    ) -> List[str]:
        """Add a shard; return the registered keys that re-routed onto it.

        Rebalancing is implicit: the ring moves only the keys on the new
        shard's arcs, and a moved key's next submit simply factors (or
        cache-hits) on the new shard — results are identical wherever a
        key lands, so no state migration is needed beyond cache warmth.
        """
        with self._lock:
            if not self._open:
                raise ServiceClosed("cannot add a shard to a shut-down service")
            if name is None:
                counter = len(self._shards)
                while f"shard-{counter}" in self._shards:
                    counter += 1
                name = f"shard-{counter}"
            if name in self._shards:
                raise ValueError(f"shard {name!r} already exists")
            before = (
                {key: self._ring.node_for(key) for key in self._handles}
                if len(self._ring)
                else {}
            )
            if service is None:
                service = SolverService(
                    capacity=self._capacity, start=self._start, **self._spec_kwargs
                )
            self._shards[name] = service
            self._ring.add(name)
            return sorted(
                key
                for key in self._handles
                if before.get(key) != self._ring.node_for(key)
            )

    def remove_shard(self, name: str, *, drain: bool = True) -> SolverService:
        """Remove a shard and return it (shut down).

        ``drain=True`` serves the shard's queued requests before it goes;
        ``drain=False`` fails them immediately with a structured
        :class:`ShardRemoved`.  Keys that routed to the shard re-route to
        the survivors automatically (minimal movement), so resubmissions
        of failed futures land on a live shard.
        """
        with self._lock:
            if len(self._shards) <= 1:
                raise ValueError("cannot remove the last shard")
            try:
                service = self._shards.pop(name)
            except KeyError:
                raise KeyError(f"unknown shard {name!r}") from None
            self._ring.remove(name)
        if drain:
            service.shutdown(wait=True)
        else:
            service.shutdown(wait=False, error=ShardRemoved(name))
        return service

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def register(self, a: np.ndarray, *, warm: bool = False) -> MatrixHandle:
        """Fingerprint ``a`` once; optionally pre-factor on its home shard."""
        a = SolverSession._check_matrix(a).copy()
        a.setflags(write=False)
        handle = MatrixHandle(key=matrix_fingerprint(a), matrix=a)
        with self._lock:
            if not self._open:
                raise ServiceClosed("cannot register on a shut-down service")
            self._handles[handle.key] = handle
        if warm:
            self.shard_for(handle).session.warm(handle.matrix, key=handle.key)
        return handle

    def submit(self, a: Any, b: np.ndarray, *, priority: int = 0) -> SolveFuture:
        """Route ``Ax = b`` to the owning shard; return its future."""
        if not self._open:
            raise ServiceClosed("cannot submit to a shut-down sharded service")
        handle = a if isinstance(a, MatrixHandle) else self.register(a)
        with self._lock:
            self._handles.setdefault(handle.key, handle)
            shard = self._shards[self._ring.node_for(handle.key)]
        return shard.submit(handle, b, priority=priority)

    # ------------------------------------------------------------------ #
    # Aggregation and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> ShardedStats:
        """Aggregate per-shard stats: snapshot → merge → derive.

        First pass takes an *atomic* snapshot per shard (each under that
        shard's dispatch lock), the merge folds them into one total with
        :meth:`ServiceStats.merge`, and derived metrics (``pending``)
        recompute from the merged counters.
        """
        with self._lock:
            shards = dict(self._shards)
        per_shard = {name: svc.stats_snapshot() for name, svc in shards.items()}
        total = ServiceStats()
        for snap in per_shard.values():
            total.merge(snap)
        return ShardedStats(total=total, per_shard=per_shard)

    def drain(self, timeout: Optional[float] = None) -> None:
        with self._lock:
            shards = list(self._shards.values())
        for service in shards:
            service.drain(timeout)

    def start(self) -> "ShardedSolverService":
        with self._lock:
            shards = list(self._shards.values())
        for service in shards:
            service.start()
        return self

    def shutdown(self, wait: bool = True, timeout: Optional[float] = None) -> None:
        with self._lock:
            self._open = False
            shards = list(self._shards.values())
        for service in shards:
            service.shutdown(wait=wait, timeout=timeout)

    def __enter__(self) -> "ShardedSolverService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self._open else "closed"
        return (
            f"<ShardedSolverService {state} shards={self.shard_names} "
            f"handles={len(self._handles)}>"
        )
