"""Owner-computes distributed executor over message-passing worker nodes.

:class:`ClusterExecutor` is the multi-node counterpart of
:class:`~repro.runtime.process_executor.ProcessExecutor`: instead of one
shared-memory tile store, every worker node owns the tiles
:meth:`~repro.tiles.distribution.BlockCyclicDistribution.local_tiles`
assigns to its logical ranks, and the host ships exactly the cross-owner
traffic the static placement analyzer predicts.

Placement is *literally* the analyzer's: tasks are placed by
:func:`repro.analysis.placement.assign_owners` (owner-computes on the
signature anchor), cross-owner tile reads are enumerated per constituent
unit via :func:`~repro.analysis.placement.constituent_units` with the
same per-``(ref, dest)`` dedup, products ship once per ``(key, rank)``,
and both are priced in the same :func:`~repro.analysis.placement.ref_bytes`
currency — so the executor's measured :class:`CommStats` are directly
comparable (and, for pure per-tile plans, equal) to the
:class:`~repro.analysis.placement.PlacementSummary` of the same graphs.

The host keeps an authoritative **mirror** of the tile matrix (the
solver's own planning copy): worker ``done`` replies carry the written
tiles back, the mirror is updated immediately, and writes landing on
tiles owned by *another* node are buffered per destination and delivered
with that node's next task message (``forward_*`` counters — physical
traffic the owner-computes model does not charge, reported separately).
Pivot exchanges are gated by the certified diagonal-domain protocol: an
``lu.scatter_factor`` whose rows sit on one non-diagonal rank raises
:class:`PivotProtocolError`; full-panel LUPP exchanges are allowed and
counted.

Fault tolerance: workers heartbeat; on a worker death (EOF or a stale
heartbeat under an in-flight task) its logical ranks are remapped to the
least-loaded survivors, the mirror state they own is re-scattered
(``recovery_*`` counters), and the in-flight task is re-dispatched —
bit-identically, because the mirror still holds the exact pre-task state
and the kernels are deterministic.

Admission control: binding a system is rejected with
:class:`MemoryAdmissionError` when the full-size worker tile store would
exceed any participating worker's advertised ``memory_budget`` —
the same budget :func:`repro.analysis.audit` gates statically via
``max_memory=executor.min_budget()``.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import Client, Connection, Listener, wait as conn_wait
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis.abstract import signature_effect, task_label
from ..analysis.placement import (
    assign_owners,
    constituent_units,
    owner_of_ref,
    ref_bytes,
)
from ..api.registry import register_executor
from ..kernels.dispatch import SigContext
from ..runtime.executor import ExecutionTrace
from ..runtime.graph import TaskGraph
from ..runtime.task import RHS_COLUMN
from ..tiles.distribution import BlockCyclicDistribution
from ..tiles.tile_matrix import TileMatrix
from . import worker as worker_mod

__all__ = [
    "ClusterExecutor",
    "ClusterError",
    "CommStats",
    "MemoryAdmissionError",
    "PivotProtocolError",
]

TileRef = Tuple[int, int]


class ClusterError(RuntimeError):
    """A cluster-level failure (protocol breach, total worker loss, ...)."""


class MemoryAdmissionError(ClusterError):
    """A system was rejected by admission control.

    Structured: carries the offending worker's name, the bytes the bind
    would require, and the worker's advertised budget.
    """

    def __init__(self, worker: str, required: int, budget: int) -> None:
        super().__init__(
            f"admission control rejected the system: worker {worker!r} advertises "
            f"a budget of {budget} bytes but binding requires {required} bytes"
        )
        self.worker = worker
        self.required = required
        self.budget = budget


class PivotProtocolError(ClusterError):
    """A pivot chain violated the certified diagonal-domain protocol."""

    def __init__(self, message: str, *, step: int, ranks: Sequence[int]) -> None:
        super().__init__(message)
        self.step = step
        self.ranks = tuple(ranks)


@dataclass
class CommStats:
    """Measured communication of one bind/unbind window.

    ``cross_*``/``product_*``/``edge_messages``/``*_pivot_steps`` follow
    the exact counting rules of
    :class:`~repro.analysis.placement.PlacementSummary` (payload items are
    counted as they are serialized, so "predicted == measured" is a real
    wire-level statement).  ``forward_*`` is the write-forwarding traffic
    that keeps owner nodes fresh (kernels writing tiles of other ranks),
    ``recovery_*`` the state re-scattered after a worker death.
    """

    cross_messages: int = 0
    cross_bytes: int = 0
    product_messages: int = 0
    product_bytes: int = 0
    forward_messages: int = 0
    forward_bytes: int = 0
    recovery_messages: int = 0
    recovery_bytes: int = 0
    diagonal_pivot_steps: int = 0
    panel_wide_pivot_steps: int = 0
    retried_tasks: int = 0
    edge_messages: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record_edge(self, src: int, dst: int) -> None:
        self.edge_messages[(src, dst)] = self.edge_messages.get((src, dst), 0) + 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cross_messages": self.cross_messages,
            "cross_bytes": self.cross_bytes,
            "product_messages": self.product_messages,
            "product_bytes": self.product_bytes,
            "forward_messages": self.forward_messages,
            "forward_bytes": self.forward_bytes,
            "recovery_messages": self.recovery_messages,
            "recovery_bytes": self.recovery_bytes,
            "diagonal_pivot_steps": self.diagonal_pivot_steps,
            "panel_wide_pivot_steps": self.panel_wide_pivot_steps,
            "retried_tasks": self.retried_tasks,
            "edge_messages": {
                f"{src}->{dst}": count
                for (src, dst), count in sorted(self.edge_messages.items())
            },
        }


@dataclass
class _Node:
    """Host-side view of one worker node."""

    index: int
    conn: Connection
    name: str
    budget: Optional[int]
    process: Any = None  # multiprocessing.Process for locally spawned workers
    alive: bool = True
    last_heartbeat: float = 0.0
    in_flight: Optional[int] = None  # task uid currently executing
    dispatched: int = 0
    #: Buffered tile updates (write-forwards, recovery state) delivered
    #: with this node's next task message; latest value per ref wins.
    pending_tiles: Dict[TileRef, np.ndarray] = field(default_factory=dict)
    #: Buffered product values (recovery adoption only).
    pending_products: Dict[Any, Any] = field(default_factory=dict)


def _parse_host(spec: str) -> Tuple[str, int]:
    host, _, port = str(spec).rpartition(":")
    if not host or not port:
        raise ValueError(f"cluster host must be 'HOST:PORT', got {spec!r}")
    return host, int(port)


@register_executor("cluster")
class ClusterExecutor:
    """Distributed owner-computes executor over message-passing workers.

    Parameters
    ----------
    workers:
        Number of worker nodes to spawn locally (ignored when ``hosts``
        is given).  Workers start lazily on first use, so constructing
        the executor — e.g. from the registry lint — costs nothing.
    hosts:
        TCP endpoints (``"host:port"``) of pre-started
        ``repro-cluster-worker`` processes; connects instead of spawning.
    authkey:
        Connection secret for ``hosts`` mode (must match the workers'
        ``--authkey``).  Locally spawned workers use a random per-executor
        key.
    memory_budget:
        Tile-store budget (bytes) advertised by locally spawned workers;
        drives admission control.  Remote workers advertise their own.
    heartbeat_interval / heartbeat_timeout:
        Worker heartbeat period, and the staleness after which a worker
        with an in-flight task is declared dead and its work retried.
    start_method:
        ``multiprocessing`` start method for local spawns (default:
        forkserver > fork > platform default, matching ProcessExecutor).
    fail_worker_after:
        Fault-injection hook: ``(worker_index, n)`` makes that local
        worker die upon receiving its n-th task, before executing it.
    """

    #: Workers hold (distributed) tile state: the pipeline must route norm
    #: sampling through KernelCall.norm_tiles exactly as for ProcessExecutor.
    distributes_tiles = True

    def __init__(
        self,
        workers: int = 2,
        *,
        hosts: Optional[Sequence[str]] = None,
        authkey: bytes = b"repro-cluster",
        memory_budget: Optional[int] = None,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 10.0,
        start_method: Optional[str] = None,
        fail_worker_after: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.hosts = [str(h) for h in hosts] if hosts else None
        if self.hosts:
            self.workers = len(self.hosts)
        else:
            workers = int(workers)
            if workers < 1:
                raise ValueError(f"cluster needs at least 1 worker, got {workers}")
            self.workers = workers
        self.authkey = bytes(authkey)
        self.memory_budget = memory_budget
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.start_method = start_method
        self.fail_worker_after = fail_worker_after

        self._nodes: List[_Node] = []
        self._started = False
        self._closed = False
        self._bind_lock = threading.Lock()
        self._bound = False
        self._mirror: Optional[TileMatrix] = None
        self._dist: Optional[BlockCyclicDistribution] = None
        self._ctx: Optional[SigContext] = None
        self._rank_node: Dict[int, _Node] = {}
        self._products: Dict[Any, Any] = {}
        self._product_owner: Dict[Any, int] = {}
        self._product_nbytes: Dict[Any, int] = {}
        self._product_shipped: Set[Tuple[Any, int]] = set()
        self.comm = CommStats()
        #: CommStats of the last completed bind/unbind window.
        self.last_comm: Optional[CommStats] = None
        self.last_trace: Optional[ExecutionTrace] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _default_start_method(self) -> str:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        for preferred in ("forkserver", "fork"):
            if preferred in methods:
                return preferred
        return multiprocessing.get_start_method()

    def _ensure_started(self) -> None:
        if self._closed:
            raise ClusterError("ClusterExecutor is closed")
        if self._started:
            return
        if self.hosts:
            for index, spec in enumerate(self.hosts):
                address = _parse_host(spec)
                conn = Client(address, authkey=self.authkey)
                self._nodes.append(self._handshake(index, conn, process=None))
        else:
            authkey = os.urandom(16)
            listener = Listener(("127.0.0.1", 0), authkey=authkey)
            ctx = get_context(self.start_method or self._default_start_method())
            procs = []
            for index in range(self.workers):
                fail_after = None
                if self.fail_worker_after is not None and index == self.fail_worker_after[0]:
                    fail_after = int(self.fail_worker_after[1])
                proc = ctx.Process(
                    target=worker_mod._spawned_main,
                    args=(
                        listener.address,
                        authkey,
                        index,
                        self.memory_budget,
                        self.heartbeat_interval,
                        fail_after,
                    ),
                    daemon=True,
                    name=f"cluster-w{index}",
                )
                proc.start()
                procs.append(proc)
            try:
                nodes: Dict[int, _Node] = {}
                for _ in range(self.workers):
                    conn = listener.accept()
                    node = self._handshake(len(nodes), conn, process=None)
                    nodes[node.index] = node
                # Hello order follows connect order, not spawn order: pair
                # each node with its process by the worker id it announced.
                for node in nodes.values():
                    node.process = procs[node.index]
                self._nodes = [nodes[i] for i in sorted(nodes)]
            finally:
                listener.close()
        self._started = True

    def _handshake(self, fallback_index: int, conn: Connection, process: Any) -> _Node:
        if not conn.poll(60.0):
            raise ClusterError("cluster worker did not say hello within 60s")
        msg = conn.recv()
        if not (isinstance(msg, tuple) and msg and msg[0] == "hello"):
            raise ClusterError(f"expected a hello from the worker, got {msg!r}")
        _, worker_id, name, budget, _pid = msg
        index = int(worker_id) if self.hosts is None else fallback_index
        return _Node(
            index=index,
            conn=conn,
            name=name if self.hosts is None else f"{name}@{self.hosts[fallback_index]}",
            budget=budget,
            process=process,
            last_heartbeat=time.monotonic(),
        )

    def _live_nodes(self) -> List[_Node]:
        return [node for node in self._nodes if node.alive]

    def min_budget(self) -> Optional[int]:
        """Smallest advertised worker budget, or ``None`` when unlimited.

        Feed this to ``audit(..., max_memory=executor.min_budget())`` to
        gate plans statically with the same bytes admission checks at
        bind time.
        """
        self._ensure_started()
        budgets = [node.budget for node in self._live_nodes() if node.budget is not None]
        return min(budgets) if budgets else None

    def kill_worker(self, index: int) -> None:
        """Terminate a locally spawned worker (fault-injection helper)."""
        self._ensure_started()
        node = self._nodes[index]
        if node.process is None:
            raise ClusterError(
                "kill_worker requires locally spawned workers; remote hosts "
                "must be killed out-of-band"
            )
        node.process.terminate()
        # Join so the death is observable immediately: the next bind's
        # liveness sweep (or the run loop's EOF) sees a dead process, not
        # a SIGTERM still in flight.
        node.process.join(timeout=10.0)

    def close(self) -> None:
        """Shut every worker down and drop the connections.  Idempotent."""
        if self._started:
            for node in self._live_nodes():
                try:
                    node.conn.send(("shutdown",))
                except (OSError, ValueError):
                    pass
            for node in self._nodes:
                try:
                    node.conn.close()
                except OSError:
                    pass
                if node.process is not None:
                    node.process.join(timeout=5.0)
                    if node.process.is_alive():
                        node.process.terminate()
                        node.process.join(timeout=1.0)
                node.alive = False
            self._nodes = []
            self._started = False
        self._closed = True

    def __enter__(self) -> "ClusterExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Binding (scatter + admission control)
    # ------------------------------------------------------------------ #
    def bind_tiles(self, tiles: TileMatrix, dist: BlockCyclicDistribution) -> None:
        """Admit the system, scatter owned tiles, and open a comm window.

        Holds an exclusive bind lock until :meth:`unbind_tiles` so
        concurrent factorizations serialize instead of corrupting each
        other's distributed state (the in-memory executors interleave
        freely; a cluster's tile stores cannot).
        """
        self._bind_lock.acquire()
        try:
            self._ensure_started()
            # Liveness sweep: a locally spawned worker killed between runs
            # (kill_worker, OOM, ...) is culled here so the system binds to
            # the survivors instead of timing out on a dead node's ack.
            for node in self._live_nodes():
                if node.process is not None and not node.process.is_alive():
                    node.alive = False
                    try:
                        node.conn.close()
                    except OSError:
                        pass
            live = self._live_nodes()
            if not live:
                raise ClusterError("no live cluster workers to bind to")
            nrhs = int(tiles.rhs.shape[1]) if tiles.has_rhs else 0
            order = tiles.n * tiles.nb
            required = order * order * 8 + order * nrhs * 8
            rank_node = {
                rank: live[rank % len(live)] for rank in range(dist.grid.size)
            }
            used = {node.index: node for node in rank_node.values()}
            for node in used.values():
                if node.budget is not None and required > node.budget:
                    raise MemoryAdmissionError(node.name, required, node.budget)

            for node in used.values():
                payload = self._owned_payload(
                    tiles, dist, [r for r, nd in rank_node.items() if nd is node]
                )
                node.conn.send(("bind", tiles.n, tiles.nb, nrhs, payload))
            for node in used.values():
                self._expect_ack(node, "bind")

            self._mirror = tiles
            self._dist = dist
            self._ctx = SigContext(n=tiles.n, nb=tiles.nb, nrhs=nrhs, dtype=np.float64)
            self._rank_node = rank_node
            self._products = {}
            self._product_owner = {}
            self._product_nbytes = {}
            self._product_shipped = set()
            self.comm = CommStats()
            for node in self._nodes:
                node.pending_tiles = {}
                node.pending_products = {}
                node.in_flight = None
            self._bound = True
        except BaseException:
            self._bind_lock.release()
            raise

    def unbind_tiles(self) -> None:
        """Close the comm window and drop worker-side state."""
        try:
            for node in self._live_nodes():
                try:
                    node.conn.send(("unbind",))
                except (OSError, ValueError):
                    node.alive = False
            for node in self._live_nodes():
                try:
                    self._expect_ack(node, "unbind")
                except ClusterError:
                    node.alive = False
        finally:
            self.last_comm = self.comm
            self._mirror = None
            self._dist = None
            self._ctx = None
            self._rank_node = {}
            self._products = {}
            self._product_owner = {}
            self._product_nbytes = {}
            self._product_shipped = set()
            self._bound = False
            self._bind_lock.release()

    def _owned_payload(
        self, tiles: TileMatrix, dist: BlockCyclicDistribution, ranks: Sequence[int]
    ) -> List[Tuple[int, int, np.ndarray]]:
        payload: List[Tuple[int, int, np.ndarray]] = []
        for rank in ranks:
            for (i, j) in dist.local_tiles(rank):
                payload.append((i, j, tiles.tile(i, j)))
            if tiles.has_rhs:
                for i in range(tiles.n):
                    if dist.rhs_owner(i) == rank:
                        payload.append((i, RHS_COLUMN, tiles.rhs_tile(i)))
        return payload

    def _expect_ack(self, node: _Node, what: str) -> None:
        deadline = time.monotonic() + 60.0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not node.conn.poll(remaining):
                raise ClusterError(f"worker {node.name} did not ack {what!r}")
            try:
                msg = node.conn.recv()
            except (EOFError, OSError):
                raise ClusterError(
                    f"worker {node.name} died while acking {what!r}"
                ) from None
            if msg[0] == "hb":
                node.last_heartbeat = time.monotonic()
                continue
            if msg == ("ack", what):
                return
            raise ClusterError(f"worker {node.name}: expected ack {what!r}, got {msg!r}")

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, graph: TaskGraph, timeout: Optional[float] = None) -> ExecutionTrace:
        """Execute one flushed task graph across the worker nodes."""
        trace = ExecutionTrace()
        self.last_trace = trace
        tasks = graph.tasks
        if not tasks:
            return trace
        if not self._bound:
            raise RuntimeError(
                "ClusterExecutor is not bound to a tile matrix; the solver "
                "pipeline calls bind_tiles() before running task graphs"
            )
        missing = sorted({t.kernel for t in tasks if t.call is None})
        if missing:
            raise RuntimeError(
                "ClusterExecutor needs picklable kernel descriptors "
                f"(KernelTask.call); closure-only tasks found for: {', '.join(missing)}"
            )
        ctx = self._ctx
        dist = self._dist
        effects: Dict[int, Any] = {}
        for task in tasks:
            _sig, effect, _violation = signature_effect(task, ctx)
            if effect is None:
                raise ClusterError(
                    f"{task_label(task)} has no kernel signature; distributed "
                    "placement needs a declared effect for every task"
                )
            effects[task.uid] = effect
        assign_owners([graph], dist, ctx)

        successors = graph.successors()
        remaining = {t.uid: len(t.deps) for t in tasks}
        heaps: Dict[int, List[Tuple[float, int]]] = {}
        errors: List[BaseException] = []
        t_begin = time.perf_counter()
        deadline = time.monotonic() + timeout if timeout is not None else None

        def push_ready(uid: int) -> None:
            node = self._rank_node[tasks[uid].owner]
            heaps.setdefault(node.index, [])
            heapq.heappush(heaps[node.index], (-tasks[uid].priority, uid))

        def in_flight() -> List[_Node]:
            return [n for n in self._live_nodes() if n.in_flight is not None]

        def pump() -> None:
            for node in self._live_nodes():
                heap = heaps.get(node.index)
                while node.in_flight is None and heap:
                    _, uid = heapq.heappop(heap)
                    try:
                        self._dispatch(node, tasks[uid], effects[uid])
                    except (OSError, ValueError, BrokenPipeError):
                        # The worker died mid-send: declare it dead (which
                        # requeues uid's ranks onto survivors) and retry.
                        self._handle_death(node, tasks, heaps, push_ready)
                        push_ready(uid)
                        self.comm.retried_tasks += 1
                        break

        for task in tasks:
            if remaining[task.uid] == 0:
                push_ready(task.uid)
        if not any(heaps.values()):
            raise ValueError("task graph has no source tasks (dependency cycle?)")
        pump()

        while True:
            flying = in_flight()
            if errors and not flying:
                break
            if not flying:
                if not any(heaps.values()):
                    break
                if not self._live_nodes():
                    raise ClusterError("all cluster workers died")
                pump()
                if not in_flight():
                    break  # ready tasks exist but none dispatchable: cycle
                continue
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"cluster execution exceeded the {timeout}s timeout with "
                    f"{len(trace.finish_times)}/{len(tasks)} tasks finished"
                )
            conns = {node.conn: node for node in flying}
            for ready_conn in conn_wait(list(conns), timeout=0.2):
                node = conns[ready_conn]
                try:
                    msg = node.conn.recv()
                except (EOFError, OSError):
                    self._handle_death(node, tasks, heaps, push_ready)
                    continue
                kind = msg[0]
                if kind == "hb":
                    node.last_heartbeat = time.monotonic()
                elif kind == "done":
                    released = self._finish(node, msg, tasks, effects, trace, successors, remaining)
                    if not errors:
                        for uid in released:
                            push_ready(uid)
                elif kind == "error":
                    node.in_flight = None
                    errors.append(msg[2])
                else:
                    node.in_flight = None
                    errors.append(ClusterError(f"unexpected worker message {msg!r}"))
            now = time.monotonic()
            for node in in_flight():
                if now - node.last_heartbeat > self.heartbeat_timeout:
                    self._handle_death(node, tasks, heaps, push_ready)
            if not errors:
                pump()

        trace.wall_time = time.perf_counter() - t_begin
        if errors:
            raise errors[0]
        if len(trace.finish_times) != len(tasks):
            stuck = sorted(uid for uid, n in remaining.items() if uid not in trace.finish_times)
            raise ValueError(
                f"tasks {stuck} never became ready (cycle below the sources?)"
            )
        return trace

    # ------------------------------------------------------------------ #
    # Dispatch / completion / recovery
    # ------------------------------------------------------------------ #
    def _mirror_value(self, ref: TileRef) -> np.ndarray:
        if ref[1] == RHS_COLUMN:
            return self._mirror.rhs_tile(ref[0])
        return self._mirror.tile(*ref)

    def _dispatch(self, node: _Node, task, effect) -> None:
        """Ship one task: buffered updates, cross reads, products, run it."""
        ctx = self._ctx
        dist = self._dist
        call = task.call
        exec_rank = task.owner
        if call.kernel == "lu.scatter_factor":
            self._check_pivot_protocol(task, call)

        # Logical cross-owner tile messages — the analyzer's exact rules:
        # per constituent unit, deduplicated per (ref, dest) within the task.
        fetched: Set[Tuple[TileRef, int]] = set()
        payload_refs: List[TileRef] = []
        for unit_reads, unit_anchor in constituent_units(effect):
            dest = owner_of_ref(unit_anchor, dist)
            for ref in unit_reads:
                if ref == unit_anchor:
                    continue
                src = owner_of_ref(ref, dist)
                if src == dest or (ref, dest) in fetched:
                    continue
                fetched.add((ref, dest))
                payload_refs.append(ref)
                self.comm.cross_messages += 1
                self.comm.cross_bytes += ref_bytes(ref, ctx)
                self.comm.record_edge(src, dest)

        # Physical completeness: a fused multi-owner task executes wholly on
        # `node`, so reads the placement model charged to *other* units'
        # owners must still physically reach this node (forward traffic).
        shipped = set(payload_refs)
        extra_refs: List[TileRef] = []
        for ref in sorted(effect.reads):
            if ref in shipped:
                continue
            if self._rank_node[owner_of_ref(ref, dist)] is node:
                continue
            extra_refs.append(ref)
            self.comm.forward_messages += 1
            self.comm.forward_bytes += ref_bytes(ref, ctx)

        # Buffered write-forwards/recovery state ride first so fresher
        # mirror values shipped below win on overlap.
        payload: List[Tuple[int, int, np.ndarray]] = [
            (ref[0], ref[1], value) for ref, value in node.pending_tiles.items()
        ]
        node.pending_tiles = {}
        for ref in itertools.chain(payload_refs, extra_refs):
            payload.append((ref[0], ref[1], np.array(self._mirror_value(ref))))

        # Product flow: one ship per (key, consuming rank), like the analyzer.
        products: List[Tuple[Any, Any]] = [
            (key, value) for key, value in node.pending_products.items()
        ]
        node.pending_products = {}
        for key in call.consumes:
            src = self._product_owner.get(key)
            if src is None:
                raise ClusterError(
                    f"{task_label(task)} consumes {key!r} before any task produced it"
                )
            if src == exec_rank or (key, exec_rank) in self._product_shipped:
                continue
            self._product_shipped.add((key, exec_rank))
            products.append((key, self._products[key]))
            self.comm.product_messages += 1
            self.comm.product_bytes += self._product_nbytes.get(key, 0)
            self.comm.record_edge(src, exec_rank)

        want_writes = tuple(sorted(effect.writes))
        node.conn.send(("task", task.uid, call, payload, products, want_writes))
        node.in_flight = task.uid
        node.dispatched += 1

    def _finish(
        self,
        node: _Node,
        msg: Tuple[Any, ...],
        tasks,
        effects,
        trace: ExecutionTrace,
        successors,
        remaining,
    ) -> List[int]:
        """Apply one ``done`` reply; return the newly released task uids."""
        _, uid, product, norms, writes, start, finish, worker_name = msg
        node.in_flight = None
        task = tasks[uid]
        call = task.call
        trace.start_times[uid] = start
        trace.finish_times[uid] = finish
        trace.worker_of_task[uid] = worker_name
        trace.kernel_of_task[uid] = task.kernel
        trace.rank_of_task[uid] = task.owner
        if task.fused > 1:
            trace.fused_of_task[uid] = task.fused
        if norms is not None and call.norm_tiles:
            trace.tile_norms[uid] = dict(zip(call.norm_tiles, norms))

        # The mirror is authoritative: install the written tiles, and buffer
        # forwards for tiles owned by ranks living on other nodes.
        for i, j, value in writes:
            self._mirror_value((i, j))[...] = value
            owner_node = self._rank_node[owner_of_ref((i, j), self._dist)]
            if owner_node is not node and owner_node.alive:
                owner_node.pending_tiles[(i, j)] = value
                self.comm.forward_messages += 1
                self.comm.forward_bytes += ref_bytes((i, j), self._ctx)

        if call.produces is not None:
            self._products[call.produces] = product
            self._product_owner[call.produces] = task.owner
            self._product_nbytes[call.produces] = effects[uid].product_bytes

        released: List[int] = []
        for succ in successors.get(uid, ()):
            remaining[succ] -= 1
            if remaining[succ] == 0:
                released.append(succ)
        return released

    def _check_pivot_protocol(self, task, call) -> None:
        """Gate pivot exchanges by the certified diagonal-domain protocol."""
        dist = self._dist
        k, rows, _factor = call.args
        rows = list(rows)
        owners = {dist.owner(i, k) for i in rows}
        if len(owners) == 1:
            if owners == {dist.diagonal_owner(k)}:
                self.comm.diagonal_pivot_steps += 1
                return
            raise PivotProtocolError(
                f"{task_label(task)}: pivot chain of step {k} runs on rank "
                f"{next(iter(owners))}, not the diagonal owner {dist.diagonal_owner(k)}",
                step=k,
                ranks=sorted(owners),
            )
        if rows == dist.panel_rows(k):
            # Deliberate panel-wide LUPP exchange: allowed, counted.
            self.comm.panel_wide_pivot_steps += 1
            return
        raise PivotProtocolError(
            f"{task_label(task)}: pivot chain of step {k} spans rows {rows} owned "
            f"by ranks {sorted(owners)} — neither diagonal-domain nor full-panel",
            step=k,
            ranks=sorted(owners),
        )

    def _handle_death(self, node: _Node, tasks, heaps, push_ready) -> None:
        """Declare a node dead; remap its ranks and requeue its work."""
        if not node.alive:
            return
        node.alive = False
        try:
            node.conn.close()
        except OSError:
            pass
        if node.process is not None:
            node.process.terminate()
            node.process.join(timeout=5.0)
        survivors = self._live_nodes()
        if not survivors:
            raise ClusterError(
                "all cluster workers died; nothing left to retry tasks on"
            )

        moved = [rank for rank, nd in self._rank_node.items() if nd is node]
        for rank in moved:
            target = min(
                survivors,
                key=lambda nd: sum(1 for x in self._rank_node.values() if x is nd),
            )
            self._rank_node[rank] = target
        moved_set = set(moved)
        # Products shipped *to* a moved rank lived on the dead node: forget,
        # so the next consume re-ships them to the adopting node.
        self._product_shipped = {
            (key, dst) for (key, dst) in self._product_shipped if dst not in moved_set
        }

        # Adoption: re-scatter the mirror state the moved ranks own (plus
        # the products they produced) to their new homes, buffered onto the
        # next task message like any other forward.
        if self._bound and self._mirror is not None:
            mirror = self._mirror
            for rank in moved:
                target = self._rank_node[rank]
                for ref in self._dist.local_tiles(rank):
                    target.pending_tiles[ref] = np.array(self._mirror_value(ref))
                    self.comm.recovery_messages += 1
                    self.comm.recovery_bytes += ref_bytes(ref, self._ctx)
                if mirror.has_rhs:
                    for i in range(mirror.n):
                        if self._dist.rhs_owner(i) == rank:
                            ref = (i, RHS_COLUMN)
                            target.pending_tiles[ref] = np.array(self._mirror_value(ref))
                            self.comm.recovery_messages += 1
                            self.comm.recovery_bytes += ref_bytes(ref, self._ctx)
                for key, owner in self._product_owner.items():
                    if owner == rank:
                        target.pending_products[key] = self._products[key]
                        self.comm.recovery_messages += 1
                        self.comm.recovery_bytes += self._product_nbytes.get(key, 0)

        # The in-flight task never executed against the mirror (writes apply
        # on `done` only), so re-dispatching it on a survivor is bit-identical.
        if node.in_flight is not None:
            uid = node.in_flight
            node.in_flight = None
            self.comm.retried_tasks += 1
            push_ready(uid)
        # Ready tasks queued on the dead node re-home to the adopted ranks.
        for _, uid in heaps.pop(node.index, []):
            push_ready(uid)
