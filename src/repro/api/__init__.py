"""Public API subsystem: plugin registries, declarative solver specs, the
``repro.solve`` / ``repro.factor`` facades, the ``SolverSession`` serving
layer, and the asynchronous ``SolverService`` on top of it.

The registry module is imported eagerly (it is a stdlib-only leaf that the
built-in criterion/tree/solver/executor modules import at class-definition
time to self-register).  The facade, session, and service modules import
those built-ins back, so they are loaded lazily through module
``__getattr__`` — this keeps ``repro.api.registry`` importable from
anywhere inside the package without a cycle.
"""

from .registry import (
    CRITERIA,
    EXECUTORS,
    KERNEL_BACKENDS,
    SOLVERS,
    TREES,
    Registry,
    SpecError,
    parse_spec,
    register_criterion,
    register_executor,
    register_kernel_backend,
    register_solver,
    register_tree,
)

__all__ = [
    "Registry",
    "SpecError",
    "parse_spec",
    "SOLVERS",
    "CRITERIA",
    "TREES",
    "EXECUTORS",
    "KERNEL_BACKENDS",
    "register_solver",
    "register_criterion",
    "register_tree",
    "register_executor",
    "register_kernel_backend",
    "SolverSpec",
    "make_solver",
    "make_criterion",
    "make_tree",
    "make_executor",
    "make_kernel_backend",
    "make_grid",
    "solve",
    "factor",
    "SolverSession",
    "CacheStats",
    "matrix_fingerprint",
    "SolverService",
    "MatrixHandle",
    "SolveFuture",
    "ServiceStats",
    "ServiceClosed",
    "asolve",
]

_FACADE_NAMES = {
    "SolverSpec",
    "make_solver",
    "make_criterion",
    "make_tree",
    "make_executor",
    "make_kernel_backend",
    "make_grid",
    "solve",
    "factor",
}
_SESSION_NAMES = {"SolverSession", "CacheStats", "matrix_fingerprint"}
_SERVICE_NAMES = {
    "SolverService",
    "MatrixHandle",
    "SolveFuture",
    "ServiceStats",
    "ServiceClosed",
    "asolve",
}


def __getattr__(name: str):
    if name in _FACADE_NAMES:
        from . import facade

        return getattr(facade, name)
    if name in _SESSION_NAMES:
        from . import session

        return getattr(session, name)
    if name in _SERVICE_NAMES:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(
        set(globals()) | _FACADE_NAMES | _SESSION_NAMES | _SERVICE_NAMES
    )
