"""Declarative construction of solvers: ``SolverSpec``, ``make_solver``,
and the top-level ``repro.solve`` / ``repro.factor`` facades.

Callers describe *what* they want — an algorithm name, a criterion spec, a
tree spec, an executor spec — and the facade resolves every part through
the plugin registries and assembles the exact same solver object a caller
would hand-construct:

>>> import numpy as np
>>> import repro
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal((64, 64)); b = rng.standard_normal(64)
>>> result = repro.solve(a, b, algorithm="hybrid", tile_size=8,
...                      criterion="max(alpha=50)")
>>> result.x.shape
(64,)

Because resolution only ever builds the registered classes with the parsed
keyword arguments, ``repro.solve(...)`` is bit-identical to constructing
the solver by hand with the same configuration.
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional

import numpy as np

from ..tiles.distribution import ProcessGrid
from .registry import (
    CRITERIA,
    EXECUTORS,
    KERNEL_BACKENDS,
    SOLVERS,
    TREES,
    parse_spec,
)

__all__ = [
    "SolverSpec",
    "make_solver",
    "make_criterion",
    "make_tree",
    "make_executor",
    "make_kernel_backend",
    "make_grid",
    "solve",
    "factor",
]

#: Default tile size of the facade (the README quick-start value).
DEFAULT_TILE_SIZE = 32

#: Executor specs that mean "run kernels inline, no dataflow executor".
_INLINE_EXECUTORS = {"none", "inline", "off"}

#: Environment variable supplying the default executor spec for solvers
#: built without an explicit executor (``REPRO_EXECUTOR=processes`` runs
#: the whole suite on the multi-process backend, as the CI matrix does).
_EXECUTOR_ENV = "REPRO_EXECUTOR"

#: The facade resolves ``"auto"`` itself (through the autotuner) before
#: the executor registry is consulted; reserving the name keeps plugins
#: from shadowing it and makes ``EXECUTORS.get("auto")`` self-explanatory.
EXECUTORS.reserve(
    "auto",
    "resolved by the facade from the calibrated performance model; pass "
    "executor='auto' to make_solver/solve/factor instead of creating it "
    "from the registry",
)
KERNEL_BACKENDS.reserve(
    "auto",
    "resolved by the facade from the calibrated performance model; pass "
    "kernel_backend='auto' to make_solver/solve/factor instead of creating "
    "it from the registry",
)


@dataclass
class SolverSpec:
    """Declarative description of a configured solver.

    Every field accepts either an already-constructed object or a string
    spec resolved through the registries (``"max(alpha=50)"``,
    ``"fibonacci"``, ``"threaded(workers=4)"``).  ``grid`` additionally
    accepts a ``(p, q)`` tuple or a ``"PxQ"`` string.  Fields left at
    ``None`` keep the algorithm's own defaults, so a spec carrying only an
    algorithm name builds the same solver as the bare constructor call.

    ``options`` holds algorithm-specific keyword arguments (for example
    ``domain_pivoting=False`` for the hybrid solver); they are validated
    against the algorithm's constructor signature when the solver is built.

    ``kernel_backend`` selects how tile-kernel sweeps execute (a
    :data:`~repro.api.registry.KERNEL_BACKENDS` name such as ``"numpy"``,
    ``"fused"`` or ``"jit"``, or a ready backend instance); ``None`` keeps
    the bit-exact per-tile reference.

    ``tile_size``, ``executor`` and ``kernel_backend`` additionally accept
    the string ``"auto"``: the facade then consults the autotuner
    (:func:`repro.perf.autotune.autotune_config`), which predicts
    makespans under this host's calibrated cost model — or applies its
    documented deterministic fallback when no calibration exists.
    ``size_hint`` is the matrix order those predictions are made for;
    :func:`solve` and :func:`factor` fill it in from the matrix itself,
    so it only needs to be passed when calling :func:`make_solver`
    directly with ``"auto"`` fields.
    """

    algorithm: Any = "hybrid"
    tile_size: Any = DEFAULT_TILE_SIZE
    criterion: Any = None
    intra_tree: Any = None
    inter_tree: Any = None
    grid: Any = None
    executor: Any = None
    track_growth: bool = True
    size_hint: Optional[int] = None
    kernel_backend: Any = None
    options: Dict[str, Any] = field(default_factory=dict)


_SPEC_FIELDS = {f.name for f in fields(SolverSpec)}


# --------------------------------------------------------------------------- #
# Component resolvers
# --------------------------------------------------------------------------- #
def make_criterion(spec: Any, **overrides: Any) -> Any:
    """Resolve a criterion spec (``"max(alpha=50)"``) or pass through."""
    return CRITERIA.create(spec, **overrides)


def make_tree(spec: Any) -> Any:
    """Resolve a reduction-tree spec (``"fibonacci"``) or pass through."""
    return TREES.create(spec)


def _is_inline_executor_spec(spec: Any) -> bool:
    """True when a spec means "no executor" (``None``, ``"none"``, ...)."""
    return spec is None or (
        isinstance(spec, str) and spec.strip().lower() in _INLINE_EXECUTORS
    )


def make_executor(spec: Any) -> Any:
    """Resolve an executor spec (``"threaded(workers=4)"``) or pass through.

    ``None`` and the strings ``"none"`` / ``"inline"`` / ``"off"`` resolve
    to ``None`` — the sequential in-program-order kernel path.
    """
    if _is_inline_executor_spec(spec):
        return None
    return EXECUTORS.create(spec)


def make_kernel_backend(spec: Any) -> Any:
    """Resolve a kernel-backend spec (``"fused"``) or pass through.

    ``None`` resolves to the bit-exact per-tile ``numpy`` reference;
    unknown names raise a :class:`ValueError` listing the registered
    backends.
    """
    from ..kernels.backends import resolve_backend  # lazy: pulls in numpy

    return resolve_backend(spec)


def make_grid(spec: Any) -> Optional[ProcessGrid]:
    """Resolve a process-grid spec: ``ProcessGrid``, ``(p, q)``, ``"PxQ"``."""
    if spec is None or isinstance(spec, ProcessGrid):
        return spec
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return ProcessGrid(int(spec[0]), int(spec[1]))
    if isinstance(spec, str):
        text = spec.strip().lower()
        parts = text.split("x")
        if len(parts) == 2 and all(p.strip().isdigit() for p in parts):
            return ProcessGrid(int(parts[0]), int(parts[1]))
    raise ValueError(
        f"cannot interpret process grid spec {spec!r}; expected a "
        f"ProcessGrid, a (p, q) pair, or a 'PxQ' string"
    )


def _is_auto(value: Any) -> bool:
    return isinstance(value, str) and value.strip().lower() == "auto"


def _resolve_auto(spec: "SolverSpec") -> "SolverSpec":
    """Replace ``"auto"`` fields with the autotuner's choice.

    One :func:`~repro.perf.autotune.autotune_config` call serves tile
    size, executor and kernel backend so the triple is consistent (the
    tile size that wins is the one predicted under the executor and
    backend that win).  An auto-resolved inline executor becomes the
    explicit ``"none"`` spec rather than ``None`` — the autotuner made a
    decision, so the ``REPRO_EXECUTOR`` environment fallback must not
    override it.
    """
    tile_auto = _is_auto(spec.tile_size)
    exec_auto = _is_auto(spec.executor)
    backend_auto = _is_auto(spec.kernel_backend)
    if not (tile_auto or exec_auto or backend_auto):
        return spec
    from ..perf.autotune import autotune_config  # lazy: perf pulls in numpy

    tuned = autotune_config(
        spec.size_hint, kernel_backends="auto" if backend_auto else None
    )
    changes: Dict[str, Any] = {}
    if tile_auto:
        changes["tile_size"] = tuned.tile_size
    if exec_auto:
        changes["executor"] = tuned.executor if tuned.executor is not None else "none"
    if backend_auto:
        changes["kernel_backend"] = tuned.kernel_backend
    return replace(spec, **changes)


# --------------------------------------------------------------------------- #
# Solver assembly
# --------------------------------------------------------------------------- #
def _normalize_spec(spec: Any, kwargs: Dict[str, Any]) -> SolverSpec:
    """Merge a spec-or-None with keyword overrides into one ``SolverSpec``.

    Keyword arguments that are not ``SolverSpec`` fields are routed into
    ``options`` (algorithm-specific constructor arguments).
    """
    field_kwargs = {k: v for k, v in kwargs.items() if k in _SPEC_FIELDS}
    option_kwargs = {k: v for k, v in kwargs.items() if k not in _SPEC_FIELDS}
    if spec is None:
        spec = SolverSpec(**field_kwargs)
    elif isinstance(spec, SolverSpec):
        if field_kwargs:
            spec = replace(spec, **field_kwargs)
    elif isinstance(spec, dict):
        merged = dict(spec)
        merged.update(kwargs)
        return _normalize_spec(None, merged)
    elif isinstance(spec, str):
        # A bare algorithm spec: make_solver("hybrid", tile_size=8).
        field_kwargs["algorithm"] = spec
        spec = SolverSpec(**field_kwargs)
    else:
        raise TypeError(
            f"spec must be a SolverSpec, dict, algorithm name, or None; "
            f"got {type(spec).__name__}"
        )
    if option_kwargs:
        spec = replace(spec, options={**spec.options, **option_kwargs})
    return spec


def make_solver(spec: Any = None, **kwargs: Any):
    """Build a configured solver from a :class:`SolverSpec` (or kwargs).

    Accepts a ``SolverSpec``, a plain dict of its fields, a bare algorithm
    name, or nothing plus keyword arguments.  Examples::

        make_solver(algorithm="hybrid", tile_size=8, criterion="max(alpha=50)")
        make_solver("lupp", tile_size=16)
        make_solver(SolverSpec(algorithm="hqr", inter_tree="binary"))

    Raises :class:`ValueError` when the algorithm name is unknown (listing
    the registered names) or when a component is specified that the chosen
    algorithm does not accept (e.g. a criterion for a pure baseline).

    ``tile_size="auto"`` / ``executor="auto"`` delegate the choice to the
    autotuner (see :class:`SolverSpec`); pass ``size_hint=<matrix order>``
    so the prediction targets the matrix you are about to factor.
    """
    spec = _normalize_spec(spec, kwargs)
    spec = _resolve_auto(spec)

    algorithm = spec.algorithm
    extra_options: Dict[str, Any] = dict(spec.options)
    if isinstance(algorithm, str):
        name, args, algo_kwargs = parse_spec(algorithm)
        if args:
            raise ValueError(
                f"algorithm spec {algorithm!r} takes keyword arguments only"
            )
        solver_cls = SOLVERS.get(name)
        extra_options.update(algo_kwargs)
    else:
        solver_cls = algorithm
    algo_label = getattr(solver_cls, "algorithm", solver_cls.__name__)

    # An executor left unspecified falls back to the REPRO_EXECUTOR
    # environment variable (the seam the CI matrix uses to exercise the
    # multi-process backend under the whole suite); an env-supplied spec is
    # silently dropped for solvers that do not take an executor, whereas an
    # explicitly configured one still raises below.
    executor_spec = spec.executor
    if executor_spec is None:
        env_spec = os.environ.get(_EXECUTOR_ENV, "").strip()
        if env_spec:
            executor_spec = env_spec

    params = inspect.signature(solver_cls.__init__).parameters
    build_kwargs: Dict[str, Any] = {}
    # ``tile_size=None`` means "the algorithm's own default", mirroring how
    # ``criterion``/``intra_tree`` treat ``None``: omit the argument when
    # the constructor declares a default, and fall back to the facade
    # default for the built-ins (whose tile_size is required).
    if "tile_size" in params:
        if spec.tile_size is not None:
            build_kwargs["tile_size"] = int(spec.tile_size)
        elif params["tile_size"].default is inspect.Parameter.empty:
            build_kwargs["tile_size"] = DEFAULT_TILE_SIZE
    # Base arguments every built-in accepts; a user-registered solver with
    # a narrower signature only gets the ones it declares, and explicitly
    # configuring one it lacks is a spec error rather than a TypeError.
    for key, value, default in (
        ("grid", make_grid(spec.grid), None),
        ("track_growth", bool(spec.track_growth), True),
    ):
        if key in params:
            build_kwargs[key] = value
        elif value != default:
            raise ValueError(
                f"algorithm {algo_label!r} does not accept {key!r}"
            )
    if "executor" in params:
        build_kwargs["executor"] = make_executor(executor_spec)
    elif not _is_inline_executor_spec(spec.executor):
        # Explicitly configured (not env-supplied) executor on a solver
        # that takes none; checked without constructing a throwaway one.
        raise ValueError(
            f"algorithm {algo_label!r} does not accept 'executor'"
        )
    if spec.kernel_backend is not None:
        if "kernel_backend" not in params:
            raise ValueError(
                f"algorithm {algo_label!r} does not accept a kernel_backend"
            )
        build_kwargs["kernel_backend"] = make_kernel_backend(spec.kernel_backend)
    for key, value in (
        ("criterion", make_criterion(spec.criterion) if spec.criterion is not None else None),
        ("intra_tree", make_tree(spec.intra_tree) if spec.intra_tree is not None else None),
        ("inter_tree", make_tree(spec.inter_tree) if spec.inter_tree is not None else None),
    ):
        if value is None:
            continue
        if key not in params:
            raise ValueError(
                f"algorithm {algo_label!r} does not accept a {key}"
            )
        build_kwargs[key] = value
    for key, value in extra_options.items():
        if key not in params:
            accepted = sorted(p for p in params if p != "self")
            raise ValueError(
                f"algorithm {algo_label!r} does not accept option "
                f"{key!r}; accepted: {', '.join(accepted)}"
            )
        build_kwargs[key] = value
    return solver_cls(**build_kwargs)


# --------------------------------------------------------------------------- #
# Top-level facades
# --------------------------------------------------------------------------- #
def _default_size_hint(spec: Any, kwargs: Dict[str, Any], a: np.ndarray) -> None:
    """Default the autotuner's ``size_hint`` to the order of ``a``.

    An explicit hint — in ``kwargs`` or carried by a ``SolverSpec``/dict —
    wins; the matrix the caller handed over is only the default.
    """
    if isinstance(spec, SolverSpec) and spec.size_hint is not None:
        return
    if isinstance(spec, dict) and spec.get("size_hint") is not None:
        return
    kwargs.setdefault("size_hint", int(a.shape[0]))
def solve(
    a: np.ndarray,
    b: np.ndarray,
    *,
    x_true: Optional[np.ndarray] = None,
    spec: Any = None,
    **kwargs: Any,
):
    """Solve ``Ax = b`` with a declaratively configured solver.

    ``repro.solve(a, b, algorithm="hybrid", criterion="max(alpha=50)")``
    builds the registered solver with the parsed configuration and calls
    its :meth:`~repro.core.solver_base.TiledSolverBase.solve` — the result
    is bit-identical to hand-constructing the same solver.  Returns a
    :class:`~repro.core.factorization.SolveResult`.

    The matrix order is passed to the autotuner as the ``size_hint``, so
    ``tile_size="auto"`` / ``executor="auto"`` tune for this very matrix.
    """
    _default_size_hint(spec, kwargs, a)
    return make_solver(spec, **kwargs).solve(a, b, x_true=x_true)


def factor(
    a: np.ndarray,
    b: Optional[np.ndarray] = None,
    *,
    spec: Any = None,
    **kwargs: Any,
):
    """Factor ``[A | b]`` with a declaratively configured solver.

    Returns the :class:`~repro.core.factorization.Factorization`.  Like
    :func:`solve`, fills the autotuner's ``size_hint`` from the matrix.
    """
    _default_size_hint(spec, kwargs, a)
    return make_solver(spec, **kwargs).factor(a, b)
