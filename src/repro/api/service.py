"""``SolverService`` — the asynchronous, handle-based serving API.

The synchronous :class:`~repro.api.session.SolverSession` amortizes
factorizations across requests, but it still blocks the caller for every
solve and re-hashes the matrix on every request.  The service layer mirrors
the paper's submit-tasks-then-progress execution model at the API surface:

* :meth:`SolverService.register` fingerprints a matrix **once** and returns
  a cheap :class:`MatrixHandle`, so the hot path stops paying an O(n^2)
  SHA-256 per request;
* :meth:`SolverService.submit` is non-blocking — it enqueues the request
  and returns a :class:`SolveFuture`.  A background dispatcher thread
  drains the queue and **coalesces every pending request against the same
  matrix into one multi-column back-substitution pass** (the serving-layer
  analogue of the one-factorization-many-columns ``solve_many`` of
  Section II-D1), then resolves the per-request futures;
* :class:`SolveFuture` bridges both worlds: blocking ``result()`` for
  threads and ``__await__`` for asyncio, with :func:`asolve` as the
  coroutine-shaped top-level facade.

Coalesced results are **bit-identical** to the synchronous serving path:
the dispatcher serves every batch — including singletons — through
:meth:`SolverSession.solve_many`, stacking the pending right-hand sides in
submission order, so a coalesced column is byte-for-byte the column
``SolverSession`` itself would produce for the same batch.

Lifecycle: the service is a context manager; :meth:`drain` blocks until
the queue is empty, :meth:`shutdown` (also invoked by ``__exit__``) stops
accepting work, serves or fails what is queued, joins the dispatcher, and
closes the solver's executor when the service built it (duck-typed —
the built-in executors hold no per-instance resources, but a registered
executor with a persistent pool exposing ``close()``/``shutdown()`` is
released here).
"""

from __future__ import annotations

import asyncio
import atexit
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.factorization import SolveResult
from .session import SolverSession, matrix_fingerprint

__all__ = [
    "MatrixHandle",
    "ServiceClosed",
    "ServiceStats",
    "SolveFuture",
    "SolverService",
    "asolve",
]


@dataclass(frozen=True)
class MatrixHandle:
    """A registered matrix: its fingerprint plus a private validated copy.

    Handles are cheap to pass around — equality and hashing use only the
    fingerprint — and decouple the service from caller-side mutation: the
    stored matrix is a read-only copy taken at registration time, so the
    fingerprint can never drift out of sync with the data it describes.
    """

    key: str
    matrix: np.ndarray = field(repr=False, compare=False)

    @property
    def n(self) -> int:
        """Order of the registered (square) matrix."""
        return self.matrix.shape[0]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.matrix.shape


class SolveFuture:
    """Result of a submitted solve: thread-blocking *and* awaitable.

    ``result()`` / ``exception()`` block like
    :class:`concurrent.futures.Future`; ``await future`` suspends the
    calling coroutine instead (the resolution is transferred onto the
    awaiting event loop with ``call_soon_threadsafe``).  A future resolves
    exactly once — to one :class:`~repro.core.factorization.SolveResult`
    for a 1-D right-hand side, to a list of them (one per column) for a
    2-D block, or to the exception the batch raised.
    """

    __slots__ = ("_event", "_lock", "_result", "_exception", "_callbacks")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["SolveFuture"], None]] = []

    def done(self) -> bool:
        """True once the future is resolved (result or exception)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until resolved; return the result or raise its exception."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"solve future not resolved within {timeout}s")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """Block until resolved; return the exception (or ``None``)."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"solve future not resolved within {timeout}s")
        return self._exception

    def add_done_callback(self, fn: Callable[["SolveFuture"], None]) -> None:
        """Run ``fn(self)`` on resolution (immediately if already resolved)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def _resolve(
        self, result: Any = None, exception: Optional[BaseException] = None
    ) -> None:
        with self._lock:
            if self._event.is_set():  # resolved exactly once
                return
            self._result = result
            self._exception = exception
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            try:
                fn(self)
            except Exception:
                # A broken callback must not take down the dispatcher (or
                # starve the remaining callbacks), matching the tolerance
                # of concurrent.futures.
                pass

    def __await__(self):
        loop = asyncio.get_running_loop()
        afut: "asyncio.Future[Any]" = loop.create_future()

        def transfer(f: "SolveFuture") -> None:
            def apply() -> None:
                if afut.cancelled():
                    return
                if f._exception is not None:
                    afut.set_exception(f._exception)
                else:
                    afut.set_result(f._result)

            try:
                loop.call_soon_threadsafe(apply)
            except RuntimeError:
                # The loop closed before the solve finished; there is no
                # coroutine left to deliver to.
                pass

        self.add_done_callback(transfer)
        return afut.__await__()


@dataclass
class ServiceStats:
    """Dispatch counters of a :class:`SolverService`.

    ``batches`` counts dispatcher passes; a batch that served more than one
    request is a *coalesced* batch, and ``coalesced_requests`` counts the
    requests that rode in one (``submitted - coalesced_requests`` went
    through alone).  The cache-level picture (hits/misses per batch) lives
    on ``service.session.stats``.

    :meth:`snapshot` is *atomic*: the service installs its own dispatch
    lock as ``lock``, so a snapshot can never interleave with a dispatcher
    update and observe, say, ``completed`` incremented but ``batches`` not
    yet (every mutation site holds the same lock).  Reading individual
    counters without the lock stays possible but is only individually —
    not mutually — consistent.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    coalesced_batches: int = 0
    coalesced_requests: int = 0
    max_batch_requests: int = 0
    max_batch_columns: int = 0
    #: Lock (or Condition) guarding every mutation of the counters above.
    #: Standalone ServiceStats get a private lock; SolverService replaces it
    #: with the dispatch condition so updates and snapshots serialize.
    lock: Any = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def merge(self, other: "ServiceStats") -> None:
        """Fold another stats object into this one (sums and maxima).

        First pass of the sharded-service aggregation: additive counters
        sum, per-batch maxima take the max.  Derived metrics (``pending``)
        recompute from the merged counters — the second pass is free.
        """
        self.submitted += other.submitted
        self.completed += other.completed
        self.failed += other.failed
        self.batches += other.batches
        self.coalesced_batches += other.coalesced_batches
        self.coalesced_requests += other.coalesced_requests
        self.max_batch_requests = max(
            self.max_batch_requests, other.max_batch_requests
        )
        self.max_batch_columns = max(
            self.max_batch_columns, other.max_batch_columns
        )

    @property
    def pending(self) -> int:
        return self.submitted - self.completed - self.failed

    def snapshot(self) -> "ServiceStats":
        """A mutually consistent copy, taken under the stats lock."""
        with self.lock:
            return ServiceStats(
                submitted=self.submitted,
                completed=self.completed,
                failed=self.failed,
                batches=self.batches,
                coalesced_batches=self.coalesced_batches,
                coalesced_requests=self.coalesced_requests,
                max_batch_requests=self.max_batch_requests,
                max_batch_columns=self.max_batch_columns,
            )


@dataclass
class _Request:
    """One queued solve: where it goes, what it carries, who is waiting."""

    seq: int
    priority: int
    handle: MatrixHandle
    b: np.ndarray
    ncols: int
    future: SolveFuture


class ServiceClosed(RuntimeError):
    """Raised by ``submit`` after shutdown, and set on futures it dropped."""


class SolverService:
    """Serve ``Ax = b`` requests asynchronously with request coalescing.

    Parameters
    ----------
    solver:
        Anything :class:`~repro.api.session.SolverSession` accepts — a
        constructed solver, a :class:`~repro.api.facade.SolverSpec`, an
        algorithm name, or ``None`` plus ``**spec_kwargs`` — **or** an
        existing ``SolverSession`` to wrap (sharing its cache and stats).
    capacity:
        Factorization-cache capacity of the wrapped session (ignored when
        an existing session is passed).
    start:
        Start the dispatcher thread immediately (default).  ``start=False``
        delays it until :meth:`start` — useful for deterministic batch
        composition in tests and benchmarks.

    Examples
    --------
    >>> import numpy as np, repro
    >>> rng = np.random.default_rng(0)
    >>> a = rng.standard_normal((64, 64)) + 8.0 * np.eye(64)
    >>> with repro.SolverService(algorithm="lupp", tile_size=8) as svc:
    ...     h = svc.register(a)                       # hash once
    ...     futs = [svc.submit(h, rng.standard_normal(64)) for _ in range(4)]
    ...     xs = [f.result().x for f in futs]         # resolved by dispatcher
    >>> len(xs)
    4
    """

    def __init__(
        self,
        solver: Any = None,
        *,
        capacity: Optional[int] = 8,
        start: bool = True,
        **spec_kwargs: Any,
    ) -> None:
        if isinstance(solver, SolverSession):
            if spec_kwargs:
                raise ValueError(
                    "cannot combine an existing SolverSession with spec "
                    f"keyword arguments {sorted(spec_kwargs)}"
                )
            self.session = solver
            self._owns_solver = False
        else:
            self.session = SolverSession(solver, capacity=capacity, **spec_kwargs)
            # The service owns the executor only when make_solver built the
            # solver here (a prebuilt solver keeps its caller's executor).
            self._owns_solver = not (
                hasattr(solver, "factor") and hasattr(solver, "solve")
            )
        self._cv = threading.Condition()
        # Every stats mutation happens under _cv, so installing it as the
        # stats lock makes ServiceStats.snapshot() atomic w.r.t. dispatch.
        self.stats = ServiceStats(lock=self._cv)
        self._pending: List[_Request] = []
        self._seq = itertools.count()
        self._unfinished = 0
        self._open = True
        self._started = False
        self._stop = False
        self._executor_closed = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatcher", daemon=True
        )
        if start:
            self.start()

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, a: np.ndarray, *, warm: bool = False) -> MatrixHandle:
        """Validate and fingerprint ``a`` once; return a cheap handle.

        The handle stores a read-only copy of the validated matrix, so
        later mutation of the caller's array cannot desynchronize the
        fingerprint.  ``warm=True`` additionally pre-factors the matrix
        (a cache miss now instead of on the first submit).
        """
        a = SolverSession._check_matrix(a).copy()
        a.setflags(write=False)
        handle = MatrixHandle(key=matrix_fingerprint(a), matrix=a)
        if warm:
            self.session.warm(handle.matrix, key=handle.key)
        return handle

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        a: Any,
        b: np.ndarray,
        *,
        priority: int = 0,
    ) -> SolveFuture:
        """Enqueue ``Ax = b`` and return a :class:`SolveFuture` immediately.

        ``a`` is a :class:`MatrixHandle` (the fast path) or a raw matrix,
        which is registered on the fly — paying the one-off O(n^2)
        fingerprint this API exists to avoid, so hot callers should
        :meth:`register` first.  ``b`` is one right-hand side (1-D, the
        future resolves to a single ``SolveResult``) or a column block
        (2-D, the future resolves to a list with one result per column).
        Higher ``priority`` requests are dispatched first; the dispatcher
        coalesces *all* queued requests against the chosen matrix —
        whatever their priority — into one back-substitution pass.
        """
        if not self._open:
            # Fast-fail before the O(n^2) copy/fingerprint of an on-the-fly
            # registration; the authoritative check happens under the lock.
            raise ServiceClosed("cannot submit to a shut-down SolverService")
        handle = a if isinstance(a, MatrixHandle) else self.register(a)
        b = np.asarray(b, dtype=np.float64)
        if b.ndim not in (1, 2):
            raise ValueError(f"b must be 1-D or 2-D, got ndim={b.ndim}")
        if b.shape[0] != handle.n:
            raise ValueError(
                f"b has {b.shape[0]} rows but the matrix has order {handle.n}"
            )
        ncols = 1 if b.ndim == 1 else b.shape[1]
        if ncols == 0:
            raise ValueError("b must carry at least one right-hand side column")
        future = SolveFuture()
        with self._cv:
            if not self._open:
                raise ServiceClosed("cannot submit to a shut-down SolverService")
            self._pending.append(
                _Request(
                    seq=next(self._seq),
                    priority=priority,
                    handle=handle,
                    b=b,
                    ncols=ncols,
                    future=future,
                )
            )
            self.stats.submitted += 1
            self._unfinished += 1
            self._cv.notify_all()
        return future

    # ------------------------------------------------------------------ #
    # Dispatcher
    # ------------------------------------------------------------------ #
    def start(self) -> "SolverService":
        """Start the dispatcher thread (idempotent)."""
        with self._cv:
            if self._started:
                return self
            if not self._open:
                raise ServiceClosed("cannot restart a shut-down SolverService")
            # Started under the lock so anyone who observes _started=True is
            # guaranteed the thread really started (a concurrent shutdown
            # must never join a never-started thread).  Thread.start only
            # waits for bootstrap, not for the target to make progress, so
            # holding the condition here cannot deadlock.
            self._thread.start()
            self._started = True
        return self

    def _take_batch_locked(self) -> List[_Request]:
        """Pop the next batch: highest-priority head, plus every pending
        request against the same matrix (in submission order)."""
        head = min(self._pending, key=lambda r: (-r.priority, r.seq))
        key = head.handle.key
        batch = [r for r in self._pending if r.handle.key == key]
        self._pending = [r for r in self._pending if r.handle.key != key]
        return batch

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._stop:
                    self._cv.wait()
                if not self._pending:  # stopping and fully drained
                    return
                batch = self._take_batch_locked()
            self._serve(batch)

    def _serve(self, batch: List[_Request]) -> None:
        """One coalesced pass: stack the batch, solve, split, resolve."""
        handle = batch[0].handle
        try:
            b_mat = np.hstack([r.b.reshape(handle.n, -1) for r in batch])
            results = self.session.solve_many(
                handle.matrix, b_mat, key=handle.key
            )
        except BaseException as exc:
            for r in batch:
                r.future._resolve(exception=exc)
            with self._cv:
                self.stats.failed += len(batch)
                self._record_batch_locked(batch)
                self._unfinished -= len(batch)
                self._cv.notify_all()
            return
        values: List[Any] = []
        offset = 0
        for r in batch:
            chunk = results[offset : offset + r.ncols]
            offset += r.ncols
            values.append(chunk[0] if r.b.ndim == 1 else list(chunk))
        for r, value in zip(batch, values):
            r.future._resolve(result=value)
        with self._cv:
            self.stats.completed += len(batch)
            self._record_batch_locked(batch)
            self._unfinished -= len(batch)
            self._cv.notify_all()

    def _record_batch_locked(self, batch: List[_Request]) -> None:
        ncols = sum(r.ncols for r in batch)
        self.stats.batches += 1
        self.stats.max_batch_requests = max(
            self.stats.max_batch_requests, len(batch)
        )
        self.stats.max_batch_columns = max(self.stats.max_batch_columns, ncols)
        if len(batch) > 1:
            self.stats.coalesced_batches += 1
            self.stats.coalesced_requests += len(batch)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted request has resolved its future."""
        with self._cv:
            if not self._cv.wait_for(lambda: self._unfinished == 0, timeout):
                raise TimeoutError(
                    f"{self._unfinished} request(s) still unfinished after {timeout}s"
                )

    def clear(self) -> None:
        """Drop the wrapped session's factorization cache (see
        :meth:`SolverSession.clear`); in-flight requests still resolve."""
        self.session.clear()

    def stats_snapshot(self) -> ServiceStats:
        """Atomic copy of the dispatch counters (see
        :meth:`ServiceStats.snapshot`): taken under the dispatch lock, so
        no counter update can interleave with the copy."""
        return self.stats.snapshot()

    def shutdown(
        self,
        wait: bool = True,
        timeout: Optional[float] = None,
        *,
        error: Optional[BaseException] = None,
    ) -> None:
        """Stop the service (idempotent).

        ``wait=True`` (default) serves everything already queued before the
        dispatcher exits; ``wait=False`` fails the queued futures with
        :class:`ServiceClosed` instead — or with ``error`` when the caller
        supplies a more specific exception (the sharded front-end passes a
        structured ``ShardRemoved`` so clients can tell a removed shard
        from a plain close).  Either way no new submissions are accepted
        afterwards, and an executor the service built (including one
        supplied via ``REPRO_EXECUTOR``) is closed if it exposes
        ``close()`` or ``shutdown()``.
        """
        with self._cv:
            self._open = False
            self._stop = True
            if not wait:
                dropped, self._pending = self._pending, []
                self.stats.failed += len(dropped)
                self._unfinished -= len(dropped)
            else:
                dropped = []
            # A never-started service shutting down with queued work runs
            # the dispatcher just long enough to drain it (the loop exits
            # once the queue is empty and the stop flag is up).
            if wait and not self._started and self._pending:
                self._thread.start()
                self._started = True
            started = self._started
            self._cv.notify_all()
        drop_error: BaseException = (
            error if error is not None else ServiceClosed("SolverService shut down")
        )
        for r in dropped:
            r.future._resolve(exception=drop_error)
        if started:
            self._thread.join(timeout)
            if self._thread.is_alive():
                # join timed out with a batch still in flight: closing the
                # executor now would tear it down under that batch, so the
                # close is left for a later (fully drained) shutdown call.
                return
        with self._cv:
            close_executor = self._owns_solver and not self._executor_closed
            self._executor_closed = True
        if close_executor:
            executor = getattr(self.session.solver, "executor", None)
            close = getattr(executor, "close", None) or getattr(
                executor, "shutdown", None
            )
            if callable(close):
                close()

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self._open else "closed"
        return (
            f"<SolverService {state} pending={self.stats.pending} "
            f"batches={self.stats.batches} solver={self.session.solver.algorithm!r}>"
        )


# --------------------------------------------------------------------------- #
# asyncio facade
# --------------------------------------------------------------------------- #
_DEFAULT_SERVICES: Dict[Any, SolverService] = {}
_DEFAULT_SERVICES_LOCK = threading.Lock()


def _spec_cache_key(value: Any) -> Any:
    """A value-based cache key for a declarative spec, or ``TypeError``.

    Only declarative pieces (strings, numbers, and containers of them) key
    the process-wide default-service cache.  Constructed objects are
    rejected: their ``repr`` is typically identity-based, so a handler
    building one per request would silently leak a new service (and
    dispatcher thread) per call instead of coalescing.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_spec_cache_key(v) for v in value)
    if isinstance(value, dict):
        return tuple(
            (k, _spec_cache_key(v)) for k, v in sorted(value.items())
        )
    raise TypeError(
        f"asolve without an explicit service needs a declarative spec "
        f"(strings/numbers), got {type(value).__name__}; construct a "
        f"SolverService yourself and pass service=..."
    )


def _default_service(spec: Any, kwargs: Dict[str, Any]) -> SolverService:
    """Process-wide service per solver configuration (so concurrent
    ``asolve`` calls with the same spec share one queue and coalesce)."""
    cache_key = (_spec_cache_key(spec), _spec_cache_key(kwargs))
    with _DEFAULT_SERVICES_LOCK:
        service = _DEFAULT_SERVICES.get(cache_key)
        if service is None:
            service = SolverService(spec, **kwargs)
            _DEFAULT_SERVICES[cache_key] = service
        return service


@atexit.register
def _shutdown_default_services() -> None:
    with _DEFAULT_SERVICES_LOCK:
        services = list(_DEFAULT_SERVICES.values())
        _DEFAULT_SERVICES.clear()
    for service in services:
        service.shutdown(wait=False)


async def asolve(
    a: Any,
    b: np.ndarray,
    *,
    service: Optional[SolverService] = None,
    priority: int = 0,
    spec: Any = None,
    **spec_kwargs: Any,
) -> SolveResult:
    """Asynchronously solve ``Ax = b``: ``x = await repro.asolve(a, b)``.

    Submits to ``service`` when given; otherwise to a lazily created
    process-wide default service for the requested solver configuration
    (``spec`` / ``**spec_kwargs`` exactly as :func:`repro.make_solver`
    takes them), so concurrent ``asolve`` callers against the same matrix
    coalesce into one back-substitution pass.  ``a`` may be a
    :class:`MatrixHandle` to skip the per-call fingerprint.
    """
    if service is None:
        service = _default_service(spec, spec_kwargs)
    elif spec is not None or spec_kwargs:
        raise ValueError(
            "cannot combine an explicit service with solver spec arguments"
        )
    return await service.submit(a, b, priority=priority)
