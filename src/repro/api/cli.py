"""``repro-analyze`` console entry: audit solver plans from the shell.

Runs the correctness-analysis subsystem (:mod:`repro.analysis`) over one
or more solver algorithms: registry lint, static plan verification,
dynamic access tracing, executor-backed graph verification, and — on
request — the schedule-perturbation determinism check.  Exits non-zero
when any violation is found, so CI can gate on it directly::

    repro-analyze                          # all five solvers, inline
    repro-analyze --algorithm hybrid --executor "threaded(workers=4)"
    repro-analyze --determinism --n 64 --tile-size 8
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

__all__ = ["main"]

#: Algorithms audited by default: the five solvers of the paper.
DEFAULT_ALGORITHMS = ("lu_nopiv", "lupp", "lu_incpiv", "hqr", "hybrid")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Audit solver task plans: registry lint, static plan "
            "verification, dynamic race tracing, and (optionally) the "
            "schedule-perturbation determinism check."
        ),
    )
    parser.add_argument(
        "--algorithm",
        "-a",
        action="append",
        dest="algorithms",
        metavar="NAME",
        help=(
            "solver algorithm to audit (repeatable; default: all five — "
            f"{', '.join(DEFAULT_ALGORITHMS)})"
        ),
    )
    parser.add_argument(
        "--n", type=int, default=None, help="matrix order (default: 4*tile-size)"
    )
    parser.add_argument(
        "--tile-size", type=int, default=8, help="tile order nb (default: 8)"
    )
    parser.add_argument(
        "--kernel-backend",
        default=None,
        metavar="SPEC",
        help="kernel backend to plan with (numpy, fused, jit; default numpy)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        metavar="SPEC",
        help=(
            "executor spec for the executed-graph verification pass, e.g. "
            "'threaded(workers=4)' (default: inline only)"
        ),
    )
    parser.add_argument(
        "--lookahead", type=int, default=1, help="pipeline lookahead depth"
    )
    parser.add_argument(
        "--grid",
        default=None,
        metavar="PxQ",
        help="process grid for the placement analysis, e.g. 2x2 (default 1x1)",
    )
    parser.add_argument(
        "--max-memory",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "admission limit: fail the audit when the certified peak-memory "
            "bound exceeds this many bytes"
        ),
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help=(
            "write the machine-readable audit report to PATH as JSON "
            "('-' for stdout); one object keyed by algorithm"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for the audited system"
    )
    parser.add_argument(
        "--skip-lint", action="store_true", help="skip the registry lint"
    )
    parser.add_argument(
        "--skip-dynamic",
        action="store_true",
        help="skip the dynamic access-tracing pass (static verification only)",
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help=(
            "also factor each system under randomized threaded schedules "
            "and require bit-identical results"
        ),
    )
    parser.add_argument(
        "--determinism-rounds",
        type=int,
        default=3,
        metavar="R",
        help="perturbed schedule rounds per algorithm (default: 3)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    from .. import analysis
    from .facade import make_solver

    algorithms: List[str] = list(args.algorithms or DEFAULT_ALGORITHMS)
    failures = 0
    reports = {}
    for index, algorithm in enumerate(algorithms):

        def build(executor=None, algorithm=algorithm):
            return make_solver(
                algorithm,
                tile_size=args.tile_size,
                executor=executor,
                kernel_backend=args.kernel_backend,
                lookahead=args.lookahead,
                grid=args.grid,
            )

        solver = build(args.executor)
        report = analysis.audit(
            solver,
            dynamic=not args.skip_dynamic,
            # One registry lint covers every algorithm; run it once.
            lint=not args.skip_lint and index == 0,
            seed=args.seed,
            n=args.n,
            max_memory=args.max_memory,
        )
        if args.determinism:
            a, b = analysis.default_audit_system(solver, seed=args.seed, n=args.n)
            report.add(
                "determinism",
                analysis.determinism_check(
                    build, a, b, rounds=args.determinism_rounds, seed=args.seed
                ),
            )
        reports[algorithm] = report.as_dict()
        print(f"== {algorithm} ==")
        print(report.summary())
        if not report.ok:
            failures += 1
    if args.json is not None:
        import json
        import sys

        payload = json.dumps(reports, indent=2, default=str)
        if args.json == "-":
            sys.stdout.write(payload + "\n")
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
    if failures:
        print(f"{failures}/{len(algorithms)} algorithm audit(s) FAILED")
        return 1
    print(f"all {len(algorithms)} algorithm audit(s) passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
