"""``SolverSession`` — the serving layer of the public API.

A session holds one configured solver and an LRU cache of factorizations
keyed by matrix fingerprint, so repeated ``session.solve(a, b)`` requests
against the same ``A`` skip the O(n^3) factorization and go straight to the
O(n^2) back-substitution.  This amortizes factorizations *across requests*
the same way the batched ``solve_many`` (one factorization, many trailing
columns, Section II-D1 of the paper) amortizes them across right-hand
sides.

To serve right-hand sides that were unknown at factorization time, a cache
miss factors ``[A | I]``: every transformation the elimination steps apply
to the right-hand side is a linear row operation, so riding the identity
along the factorization materializes the combined operator ``M`` with
``M @ b`` equal to the transformed right-hand side for *any* ``b``.  A
request is then one small matmul plus the tiled back-substitution.  The
extra ``n`` trailing columns make the miss factorization costlier than a
single direct solve, which is the explicit trade of a serving layer: the
cost is paid once per matrix and every subsequent hit is cheap.

Hit/miss/eviction statistics are exposed on ``session.stats`` so
benchmarks (``benchmarks/test_bench_session_cache.py``) can measure the
amortization.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.factorization import Factorization, SolveResult
from ..linalg.pivoting import SingularPanelError
from ..linalg.triangular import tiled_back_substitution
from ..stability.metrics import stability_report
from .facade import make_solver

__all__ = ["CacheStats", "SolverSession", "matrix_fingerprint"]


def matrix_fingerprint(a: np.ndarray) -> str:
    """Content fingerprint of a matrix (shape + dtype + SHA-256 of bytes)."""
    a = np.ascontiguousarray(a)
    digest = hashlib.sha256()
    digest.update(str(a.shape).encode())
    digest.update(str(a.dtype).encode())
    digest.update(a.tobytes())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Counters of the session's factorization cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    solves: int = 0
    factor_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache (0.0 when empty)."""
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            solves=self.solves,
            factor_seconds=self.factor_seconds,
        )


@dataclass
class _CacheEntry:
    """One cached factorization: the factors plus the RHS operator ``M``."""

    factorization: Factorization
    transform: np.ndarray  # (n + pad, n): transformed-rhs operator
    n: int
    pad: int
    serves: int = field(default=0)


class SolverSession:
    """Serve many ``Ax = b`` requests from one solver and a factorization cache.

    Parameters
    ----------
    solver:
        A constructed solver, a :class:`~repro.api.facade.SolverSpec`, an
        algorithm name, or ``None`` — anything that is not already a solver
        is resolved through :func:`~repro.api.facade.make_solver` together
        with ``**spec_kwargs``.
    capacity:
        Maximum number of cached factorizations (LRU eviction); ``None``
        means unbounded.

    Examples
    --------
    >>> import numpy as np, repro
    >>> rng = np.random.default_rng(0)
    >>> a = rng.standard_normal((64, 64))
    >>> session = repro.SolverSession(algorithm="hybrid", tile_size=8,
    ...                               criterion="max(alpha=50)")
    >>> x1 = session.solve(a, rng.standard_normal(64))   # factors [A | I]
    >>> x2 = session.solve(a, rng.standard_normal(64))   # back-substitution only
    >>> (session.stats.misses, session.stats.hits)
    (1, 1)
    """

    def __init__(
        self,
        solver: Any = None,
        *,
        capacity: Optional[int] = 8,
        **spec_kwargs: Any,
    ) -> None:
        if hasattr(solver, "factor") and hasattr(solver, "solve"):
            if spec_kwargs:
                raise ValueError(
                    "cannot combine an already-constructed solver with "
                    f"spec keyword arguments {sorted(spec_kwargs)}"
                )
            self.solver = solver
        else:
            self.solver = make_solver(solver, **spec_kwargs)
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._cache: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        #: Per-key ``[lock, waiters]`` pairs serializing concurrent misses
        #: on the same matrix, so one factorization is shared instead of
        #: raced.  The refcount keeps the lock alive until the *last*
        #: in-flight miss finishes: if the winner dropped it eagerly, a
        #: request arriving after a clear() could mint a fresh lock while a
        #: queued waiter still factors, racing the same matrix twice.
        self._inflight: Dict[str, list] = {}
        #: Bumped by :meth:`clear` so an in-flight factorization that
        #: started before the clear cannot resurrect itself into the
        #: freshly cleared cache (or pollute the reset statistics).
        self._generation = 0

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop every cached factorization and reset the statistics.

        Safe against in-flight misses: the per-key locks in ``_inflight``
        are deliberately *not* dropped (a concurrent request must keep
        serializing on the same lock as the factorization already running,
        or the same matrix would factor twice in parallel), and bumping the
        generation counter prevents the in-flight winner from re-inserting
        its pre-clear entry into the freshly cleared cache.
        """
        with self._lock:
            self._cache.clear()
            self.stats = CacheStats()
            self._generation += 1

    def cached_factorization(
        self, a: Optional[np.ndarray] = None, *, key: Optional[str] = None
    ) -> Optional[Factorization]:
        """The cached factorization for ``A``, or ``None`` (no stats impact).

        Accepts either the matrix itself (validated and fingerprinted like
        :meth:`solve`) or a precomputed ``key`` — e.g. from a
        :class:`~repro.api.service.MatrixHandle` — which skips both.
        """
        if key is None:
            if a is None:
                raise ValueError("cached_factorization needs a matrix or a key")
            key = matrix_fingerprint(self._check_matrix(a))
        with self._lock:
            entry = self._cache.get(key)
        return entry.factorization if entry is not None else None

    def _lookup_hit(self, key: str) -> Optional[_CacheEntry]:
        """Return the cached entry and count a hit, or ``None`` (no count)."""
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self.stats.hits += 1
        return entry

    def _get_or_factor(self, a: np.ndarray, key: str) -> _CacheEntry:
        """Cached entry for ``key``, factoring on a miss.

        Concurrent misses on the same matrix serialize on a per-key lock,
        so the factorization runs exactly once and the losers of the race
        are counted as hits (they are served from the winner's entry).
        Misses on *different* matrices do not block each other here, but
        they serialize inside the shared solver instance (whose ``factor``
        carries per-factorization state); cache hits never wait on either.
        """
        entry = self._lookup_hit(key)
        if entry is not None:
            return entry
        with self._lock:
            slot = self._inflight.setdefault(key, [threading.Lock(), 0])
            slot[1] += 1
        try:
            with slot[0]:
                entry = self._lookup_hit(key)
                if entry is not None:
                    return entry
                with self._lock:
                    self.stats.misses += 1
                    generation = self._generation
                return self._factor_entry(a, key, generation)
        finally:
            with self._lock:
                slot[1] -= 1
                if slot[1] == 0:
                    self._inflight.pop(key, None)

    def _insert(
        self, key: str, entry: _CacheEntry, factor_seconds: float, generation: int
    ) -> None:
        with self._lock:
            if generation != self._generation:
                # The cache was cleared while this factorization ran: the
                # caller still gets its entry, but inserting it would
                # resurrect a cleared entry (and charge the reset stats).
                return
            self._cache[key] = entry
            self._cache.move_to_end(key)
            self.stats.factor_seconds += factor_seconds
            if self.capacity is not None:
                while len(self._cache) > self.capacity:
                    self._cache.popitem(last=False)
                    self.stats.evictions += 1

    # ------------------------------------------------------------------ #
    # Factorization
    # ------------------------------------------------------------------ #
    def _factor_entry(self, a: np.ndarray, key: str, generation: int) -> _CacheEntry:
        """Cache miss: factor ``[A | I]`` and materialize the RHS operator."""
        n = a.shape[0]
        t0 = time.perf_counter()
        fact = self.solver.factor(a, np.eye(n))
        elapsed = time.perf_counter() - t0
        if not fact.succeeded:
            raise SingularPanelError(
                f"{self.solver.algorithm} broke down during factorization: "
                f"{fact.breakdown}"
            )
        entry = _CacheEntry(
            factorization=fact,
            transform=np.asarray(fact.tiles.rhs),
            n=n,
            pad=fact.padding,
        )
        self._insert(key, entry, elapsed, generation)
        return entry

    def warm(self, a: np.ndarray, *, key: Optional[str] = None) -> Factorization:
        """Pre-factor ``A`` (counting a miss if absent) and return the factors."""
        a = self._check_matrix(a)
        if key is None:
            key = matrix_fingerprint(a)
        return self._get_or_factor(a, key).factorization

    @staticmethod
    def _check_matrix(a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"A must be square, got shape {a.shape}")
        return a

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        a: np.ndarray,
        b: np.ndarray,
        x_true: Optional[np.ndarray] = None,
        *,
        key: Optional[str] = None,
    ) -> SolveResult:
        """Solve ``Ax = b``, reusing the cached factorization of ``A``.

        The first request for a given ``A`` factors ``[A | I]`` (a cache
        miss); every further request applies the cached right-hand-side
        operator and back-substitutes.  Shapes mirror
        :meth:`TiledSolverBase.solve`: a 1-D ``b`` yields a 1-D solution.

        ``key`` is a precomputed :func:`matrix_fingerprint` of ``a``
        (callers vouch for the correspondence — a
        :class:`~repro.api.service.MatrixHandle` carries exactly this
        pair); passing it skips the per-request O(n^2) re-hash, which is
        the dominant cost of a cache hit on large matrices.
        """
        a = self._check_matrix(a)
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != a.shape[0]:
            raise ValueError(f"b has {b.shape[0]} rows but A has order {a.shape[0]}")
        entry = self._get_or_factor(a, key if key is not None else matrix_fingerprint(a))

        b2 = b.reshape(a.shape[0], -1)
        x2 = self._back_substitute(entry, b2)
        x = x2[:, 0] if b.ndim == 1 else x2
        with self._lock:
            entry.serves += 1
            self.stats.solves += 1
        report = stability_report(a, x, b, x_true=x_true)
        return SolveResult(x=x, factorization=entry.factorization, stability=report)

    def solve_many(
        self,
        a: np.ndarray,
        bs: Union[np.ndarray, Sequence[np.ndarray]],
        x_true: Optional[np.ndarray] = None,
        *,
        key: Optional[str] = None,
    ) -> List[SolveResult]:
        """Batched variant: one cache lookup, one back-substitution pass.

        This is the entry point the :class:`~repro.api.service.SolverService`
        dispatcher uses to serve a coalesced batch: ``key`` (the handle's
        precomputed fingerprint) skips the O(n^2) re-hash, and the whole
        batch is one cache lookup plus one multi-column back-substitution.
        """
        a = self._check_matrix(a)
        if isinstance(bs, np.ndarray):
            b_mat = np.asarray(bs, dtype=np.float64)
            if b_mat.ndim == 1:
                b_mat = b_mat.reshape(-1, 1)
            elif b_mat.ndim != 2:
                raise ValueError(
                    f"right-hand sides must form a 1-D or 2-D array, got ndim={b_mat.ndim}"
                )
        else:
            b_mat = np.column_stack(
                [np.asarray(b, dtype=np.float64).reshape(-1) for b in bs]
            )
        if b_mat.shape[0] != a.shape[0]:
            raise ValueError(
                f"right-hand sides have {b_mat.shape[0]} rows but A has "
                f"order {a.shape[0]}"
            )
        xt_mat: Optional[np.ndarray] = None
        if x_true is not None:
            # Accept the same forms as ``bs`` (array or sequence of
            # vectors), mirroring TiledSolverBase.solve_many: a sequence
            # must be *column*-stacked, or it would land as (nrhs, n) and
            # the per-column slicing below would read the wrong axis.
            if isinstance(x_true, np.ndarray):
                xt_mat = np.asarray(x_true, dtype=np.float64)
                if xt_mat.ndim == 1:
                    xt_mat = xt_mat.reshape(-1, 1)
            else:
                xt_mat = np.column_stack(
                    [np.asarray(x, dtype=np.float64).reshape(-1) for x in x_true]
                )
            if xt_mat.shape != b_mat.shape:
                raise ValueError(
                    f"x_true has shape {xt_mat.shape} but the right-hand sides "
                    f"have shape {b_mat.shape}"
                )

        entry = self._get_or_factor(a, key if key is not None else matrix_fingerprint(a))
        x = self._back_substitute(entry, b_mat)
        fact = entry.factorization
        with self._lock:
            entry.serves += 1
            self.stats.solves += 1
        out: List[SolveResult] = []
        for j in range(b_mat.shape[1]):
            report = stability_report(
                a,
                x[:, j],
                b_mat[:, j],
                x_true=None if xt_mat is None else xt_mat[:, j],
            )
            out.append(SolveResult(x=x[:, j], factorization=fact, stability=report))
        return out

    def _back_substitute(self, entry: _CacheEntry, b2: np.ndarray) -> np.ndarray:
        """Apply the cached RHS operator to ``b`` and back-substitute."""
        tiles = entry.factorization.tiles
        transformed = entry.transform @ b2  # (n + pad, nrhs)
        x_padded = tiled_back_substitution(tiles.array, transformed, tiles.nb)
        return x_padded[: entry.n, :]
