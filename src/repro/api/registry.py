"""Plugin registries and the string-spec mini-language of the public API.

The paper's framework hosts many interchangeable policies — robustness
criteria, reduction trees, execution backends, whole algorithms — behind
one tiled driver.  This module gives each of those extension points a
:class:`Registry` that built-ins (and user plugins) register into by
decorating their class:

>>> from repro.api.registry import register_criterion
>>> @register_criterion("shiny")
... class ShinyCriterion:
...     def __init__(self, alpha=1.0):
...         self.alpha = alpha

Registered names are then resolvable from declarative string specs with an
optional call-style argument list::

    "max"                -> MaxCriterion()
    "max(alpha=50)"      -> MaxCriterion(alpha=50)
    "threaded(workers=4)" -> ThreadedExecutor(workers=4)
    "fibonacci"          -> FibonacciTree()

Unknown names raise a :class:`ValueError` that lists every available
option, so typos are self-explanatory.  The module is intentionally a leaf
(stdlib imports only): every built-in module imports it at definition time
to self-register, so it must never import back into the package.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Callable, Dict, Iterable, List, Tuple

__all__ = [
    "Registry",
    "SpecError",
    "parse_spec",
    "SOLVERS",
    "CRITERIA",
    "TREES",
    "EXECUTORS",
    "KERNEL_BACKENDS",
    "register_solver",
    "register_criterion",
    "register_tree",
    "register_executor",
    "register_kernel_backend",
]


class SpecError(ValueError):
    """A string spec could not be parsed or resolved."""


_SPEC_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_\-]*)\s*(?:\((?P<args>.*)\))?\s*$",
    re.DOTALL,
)


def _parse_value(text: str) -> Any:
    """Parse one argument value: a Python literal, or a bare string."""
    text = text.strip()
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        # Bare words ("fibonacci") are taken as strings so nested names do
        # not need quoting.
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_\-]*", text):
            return text
        raise SpecError(f"cannot parse argument value {text!r}") from None


def _split_args(text: str) -> List[str]:
    """Split a call argument list on top-level commas (brackets nest)."""
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current)
    return [p for p in parts if p.strip()]


def parse_spec(spec: str) -> Tuple[str, Tuple[Any, ...], Dict[str, Any]]:
    """Parse ``"name"`` or ``"name(arg, key=value, ...)"``.

    Returns ``(name, positional_args, keyword_args)``.  Values are Python
    literals (``50``, ``1e-3``, ``True``, ``'s'``) or bare identifiers,
    which parse as strings.

    >>> parse_spec("max(alpha=50)")
    ('max', (), {'alpha': 50})
    >>> parse_spec("threaded(workers=4)")
    ('threaded', (), {'workers': 4})
    >>> parse_spec("fibonacci")
    ('fibonacci', (), {})
    """
    if not isinstance(spec, str):
        raise SpecError(f"spec must be a string, got {type(spec).__name__}")
    m = _SPEC_RE.match(spec)
    if m is None:
        raise SpecError(
            f"malformed spec {spec!r}; expected 'name' or 'name(key=value, ...)'"
        )
    name = m.group("name")
    arg_text = m.group("args")
    args: List[Any] = []
    kwargs: Dict[str, Any] = {}
    if arg_text:
        for part in _split_args(arg_text):
            part = part.strip()
            kv = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.+)$", part, re.DOTALL)
            if kv:
                kwargs[kv.group(1)] = _parse_value(kv.group(2))
            else:
                if kwargs:
                    raise SpecError(
                        f"positional argument {part!r} follows keyword arguments "
                        f"in spec {spec!r}"
                    )
                args.append(_parse_value(part))
    return name, tuple(args), kwargs


class Registry:
    """A named collection of factories for one extension point.

    Lookup is case-insensitive and alias-aware; creation resolves string
    specs through :func:`parse_spec`.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable[..., Any]] = {}
        self._aliases: Dict[str, str] = {}
        self._reserved: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self, name: str, *, aliases: Iterable[str] = ()
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Class/function decorator registering a factory under ``name``."""
        canonical = name.lower()

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            for key in (canonical, *(a.lower() for a in aliases)):
                if key in self._reserved:
                    raise ValueError(
                        f"{self.kind} name {key!r} is reserved: "
                        f"{self._reserved[key]}"
                    )
            existing = self._factories.get(canonical)
            if existing is not None and existing is not factory:
                raise ValueError(
                    f"{self.kind} name {canonical!r} is already registered "
                    f"to {existing!r}"
                )
            if canonical in self._aliases:
                raise ValueError(
                    f"{self.kind} name {canonical!r} is already registered "
                    f"as an alias of {self._aliases[canonical]!r}"
                )
            for alias in aliases:
                key = alias.lower()
                taken = key in self._factories or (
                    key in self._aliases and self._aliases[key] != canonical
                )
                if taken:
                    raise ValueError(
                        f"cannot alias {key!r} to {canonical!r}: the "
                        f"{self.kind} name is already registered"
                    )
            self._factories[canonical] = factory
            for alias in aliases:
                self._aliases[alias.lower()] = canonical
            return factory

        return decorator

    def unregister(self, name: str) -> None:
        """Remove a registered factory and every alias pointing at it.

        Intended for plugin teardown (tests, hot reload); unknown names
        raise the same listing :class:`ValueError` as :meth:`get`.
        """
        canonical = str(name).lower()
        canonical = self._aliases.get(canonical, canonical)
        if canonical not in self._factories:
            raise ValueError(
                f"unknown {self.kind} {name!r}; available: "
                f"{', '.join(self.names())}"
            )
        del self._factories[canonical]
        for alias in [a for a, c in self._aliases.items() if c == canonical]:
            del self._aliases[alias]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Sorted canonical names (aliases excluded)."""
        return sorted(self._factories)

    def aliases(self) -> Dict[str, str]:
        """Alias -> canonical name mapping."""
        return dict(self._aliases)

    def __contains__(self, name: str) -> bool:
        key = str(name).lower()
        return key in self._factories or key in self._aliases

    def reserve(self, name: str, message: str) -> None:
        """Reserve ``name`` so nothing can register it and lookups explain why.

        Used for names with special meaning to a layer above the registry
        (the facade resolves ``executor="auto"`` itself before the
        registry is ever consulted); :meth:`get` on a reserved name raises
        ``message`` instead of the generic unknown-name listing.
        """
        key = str(name).lower()
        if key in self._factories or key in self._aliases:
            raise ValueError(
                f"cannot reserve {key!r}: the {self.kind} name is already "
                f"registered"
            )
        self._reserved[key] = str(message)

    def get(self, name: str) -> Callable[..., Any]:
        """Return the factory registered under ``name`` (or an alias)."""
        key = str(name).lower()
        if key in self._reserved:
            raise ValueError(
                f"{self.kind} name {key!r} is reserved: {self._reserved[key]}"
            )
        key = self._aliases.get(key, key)
        try:
            return self._factories[key]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; available: "
                f"{', '.join(self.names())}"
            ) from None

    def create(self, spec: Any, **overrides: Any) -> Any:
        """Instantiate from a string spec, or pass a ready instance through.

        ``"max(alpha=50)"`` resolves the factory registered as ``max`` and
        calls it with ``alpha=50``; anything that is not a string is assumed
        to be an already-configured instance and returned unchanged
        (``overrides`` are rejected in that case — they cannot be applied
        retroactively).
        """
        if not isinstance(spec, str):
            if overrides:
                raise ValueError(
                    f"cannot apply overrides {sorted(overrides)} to an "
                    f"already-constructed {self.kind} instance"
                )
            return spec
        name, args, kwargs = parse_spec(spec)
        factory = self.get(name)
        kwargs.update(overrides)
        return factory(*args, **kwargs)


#: The five extension points of the framework.
SOLVERS = Registry("algorithm")
CRITERIA = Registry("criterion")
TREES = Registry("reduction tree")
EXECUTORS = Registry("executor")
KERNEL_BACKENDS = Registry("kernel backend")

#: Decorators used by the built-ins (and available to user plugins).
register_solver = SOLVERS.register
register_criterion = CRITERIA.register
register_tree = TREES.register
register_executor = EXECUTORS.register
register_kernel_backend = KERNEL_BACKENDS.register
