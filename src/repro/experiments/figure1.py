"""Figure 1 — dataflow of one elimination step of the hybrid algorithm.

Figure 1 of the paper is a diagram of the per-step dataflow that the
PaRSEC extension executes: BACKUP PANEL tasks feed LU ON PANEL tasks, the
criterion decision is all-reduced, PROPAGATE tasks gate the two potential
branches (the LU step and the QR step), and the unselected branch is
discarded.  This harness rebuilds that structure with
:class:`repro.runtime.dataflow.StepDataflow` and prints:

* the number of tasks per stage,
* the size of the two branches and of the pruned graphs for both outcomes,
* a textual edge listing (a DOT-like description) of the control skeleton.

Run with ``python -m repro.experiments.figure1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..runtime.dataflow import StepDataflow
from ..tiles.distribution import BlockCyclicDistribution, ProcessGrid
from .common import format_table

__all__ = ["figure1_summary", "dataflow_edges", "main"]


def figure1_summary(
    n_tiles: int = 8,
    tile_size: int = 8,
    grid: Optional[ProcessGrid] = None,
    step: int = 0,
) -> Dict[str, object]:
    """Task counts of the per-step dataflow and of both resolved graphs."""
    grid = grid if grid is not None else ProcessGrid(2, 2)
    dist = BlockCyclicDistribution(grid, n_tiles)
    flow = StepDataflow(dist, step, tile_size)
    return {
        "n_tiles": n_tiles,
        "step": step,
        "stage_task_counts": flow.summary(),
        "total_tasks_in_graph": len(flow.graph),
        "lu_branch_tasks": len(flow.lu_branch),
        "qr_branch_tasks": len(flow.qr_branch),
        "control_tasks": len(flow.control_tasks()),
        "tasks_if_lu_selected": len(flow.resolve(use_lu=True)),
        "tasks_if_qr_selected": len(flow.resolve(use_lu=False)),
    }


def dataflow_edges(
    n_tiles: int = 4,
    tile_size: int = 8,
    grid: Optional[ProcessGrid] = None,
    step: int = 0,
    max_edges: int = 200,
) -> List[str]:
    """A DOT-like edge list ``"task_a -> task_b"`` of the step dataflow."""
    grid = grid if grid is not None else ProcessGrid(2, 2)
    dist = BlockCyclicDistribution(grid, n_tiles)
    flow = StepDataflow(dist, step, tile_size)
    edges: List[str] = []
    for task in flow.graph.tasks:
        for dep in sorted(task.deps):
            pred = flow.graph.task(dep)
            edges.append(f"{pred.kernel}#{pred.uid} -> {task.kernel}#{task.uid}")
            if len(edges) >= max_edges:
                return edges
    return edges


def main() -> None:  # pragma: no cover - CLI entry point
    summary = figure1_summary()
    print("Figure 1 — dataflow of one elimination step (both branches materialised)")
    rows = [{"quantity": key, "value": str(val)} for key, val in summary.items()]
    print(format_table(rows, ["quantity", "value"]))
    print("\nControl-skeleton edges (4-tile example):")
    for edge in dataflow_edges(n_tiles=4, max_edges=60):
        print(f"  {edge}")


if __name__ == "__main__":  # pragma: no cover
    main()
