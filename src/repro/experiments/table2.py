"""Table II — detailed performance of the Max criterion at N = 20,000.

The paper's Table II lists, for the hybrid algorithm with the Max criterion
and a sweep of ``alpha`` (plus the LU NoPiv, LU IncPiv, HQR and LUPP
baselines): the execution time, the percentage of LU steps, the fake and
true GFLOP/s, and the corresponding fractions of the 1091 GFLOP/s peak.

Reproduction strategy (documented in DESIGN.md): the %LU-step trace of each
``alpha`` is measured with a full numerical factorization on a random
matrix at laptop scale, then replayed at the paper's problem size
(84 tiles of order 240, N = 20,160 ≈ 20,000) on the simulated Dancer
platform, which yields the time and GFLOP/s columns.

Run with ``python -m repro.experiments.table2``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.dag_builder import FactorizationSpec
from ..matrices.random_gen import random_matrix, random_rhs
from ..perf.model import PerformanceModel
from ..runtime.platform import dancer_platform
from ..tiles.distribution import ProcessGrid
from .common import ExperimentConfig, format_table, make_baseline, make_hybrid, resample_step_kinds

__all__ = ["TABLE2_ALPHAS", "table2_rows", "main"]

#: Alpha sweep of Table II (the paper's values span 100% down to 0% LU steps;
#: the scaled-down matrices reach the same range with smaller thresholds).
TABLE2_ALPHAS: List[float] = [float("inf"), 200.0, 50.0, 20.0, 10.0, 5.0, 2.0, 0.0]


def table2_rows(
    config: Optional[ExperimentConfig] = None,
    alphas: Optional[Sequence[float]] = None,
) -> List[Dict[str, object]]:
    """Regenerate the rows of Table II (Max criterion + baselines)."""
    config = config if config is not None else ExperimentConfig(n_tiles=16)
    alphas = list(alphas) if alphas is not None else TABLE2_ALPHAS

    grid = ProcessGrid(4, 4)
    platform = dancer_platform(grid)
    model = PerformanceModel(platform)

    n = config.n_order
    a = random_matrix(n, seed=config.seed)
    b = random_rhs(n, seed=config.seed + 1)

    def paper_scale_report(step_kinds: List[str], algorithm: str, overhead: bool):
        spec = FactorizationSpec(
            n_tiles=config.paper_n_tiles,
            tile_size=config.paper_tile_size,
            step_kinds=resample_step_kinds(step_kinds, config.paper_n_tiles),
            algorithm=algorithm,
            decision_overhead=overhead,
            grid=grid,
        )
        return model.simulate_spec(spec)

    rows: List[Dict[str, object]] = []

    def add_row(label: str, alpha: object, fact, algorithm: str, overhead: bool) -> None:
        report = paper_scale_report(fact.step_kinds, algorithm, overhead)
        rows.append(
            {
                "algorithm": label,
                "alpha": alpha,
                "time_s": report.execution_time,
                "lu_steps_pct": fact.lu_percentage,
                "fake_gflops": report.fake_gflops,
                "true_gflops": report.true_gflops,
                "fake_peak_pct": 100.0 * report.fake_peak_fraction,
                "true_peak_pct": 100.0 * report.true_peak_fraction,
            }
        )

    # Baselines first, as in the paper's table.
    for base, overhead in (("LU NoPiv", False), ("LU IncPiv", False)):
        solver = make_baseline(base, config)
        fact = solver.factor(a, b)
        add_row(base, "", fact, solver.algorithm, overhead)

    for alpha in alphas:
        solver = make_hybrid("max", alpha, config)
        fact = solver.factor(a, b)
        add_row("LUQR (MAX)", alpha, fact, "LUQR", True)

    for base in ("HQR", "LUPP"):
        solver = make_baseline(base, config)
        fact = solver.factor(a, b)
        add_row(base, "", fact, solver.algorithm, False)

    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    config = ExperimentConfig(n_tiles=16)
    rows = table2_rows(config)
    print(
        "Table II — performance at paper scale (N = "
        f"{config.paper_n_tiles * config.paper_tile_size}, 4x4 grid, simulated Dancer platform)"
    )
    print(
        format_table(
            rows,
            [
                "algorithm",
                "alpha",
                "time_s",
                "lu_steps_pct",
                "fake_gflops",
                "true_gflops",
                "fake_peak_pct",
                "true_peak_pct",
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
