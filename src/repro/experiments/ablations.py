"""Ablation studies on the design choices discussed in the paper.

Three ablations back the qualitative claims of Sections II, IV and V:

1. **Decision-making overhead** (Section V-B): the hybrid algorithm with
   ``alpha = 0`` performs exactly the same eliminations as HQR plus the
   backup / criterion / propagate machinery; the paper measures ~10-13%
   overhead.  We simulate both at paper scale and report the ratio.

2. **Reduction-tree shape** (Section IV): the QR steps may use different
   intra/inter-node trees; the paper selects GREEDY + FIBONACCI.  We report
   the critical-path length of one panel reduction and the simulated
   makespan of a full HQR run for several tree combinations.

3. **Diagonal-domain vs diagonal-tile pivoting** (Sections II-A and V-B):
   with ``alpha = inf`` (every step LU), searching pivots across the whole
   diagonal domain is dramatically more stable than searching only in the
   diagonal tile on random matrices.  We measure both HPL3 values.

Run with ``python -m repro.experiments.ablations``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..baselines import LUNoPivSolver
from ..core.dag_builder import FactorizationSpec
from ..matrices.random_gen import random_matrix, random_rhs
from ..perf.model import PerformanceModel
from ..runtime.platform import dancer_platform
from ..tiles.distribution import ProcessGrid
from ..trees import BinaryTree, FibonacciTree, FlatTree, GreedyTree
from .common import ExperimentConfig, format_table

__all__ = [
    "decision_overhead_ablation",
    "tree_shape_ablation",
    "domain_pivoting_ablation",
    "main",
]


def decision_overhead_ablation(
    paper_n_tiles: int = 84, paper_tile_size: int = 240
) -> Dict[str, float]:
    """Simulated overhead of the decision machinery when every step is QR."""
    grid = ProcessGrid(4, 4)
    model = PerformanceModel(dancer_platform(grid))
    hqr_spec = FactorizationSpec(
        n_tiles=paper_n_tiles,
        tile_size=paper_tile_size,
        step_kinds=["QR"] * paper_n_tiles,
        algorithm="HQR",
        decision_overhead=False,
        grid=grid,
    )
    luqr_spec = FactorizationSpec(
        n_tiles=paper_n_tiles,
        tile_size=paper_tile_size,
        step_kinds=["QR"] * paper_n_tiles,
        algorithm="LUQR",
        decision_overhead=True,
        grid=grid,
    )
    hqr = model.simulate_spec(hqr_spec)
    luqr = model.simulate_spec(luqr_spec)
    return {
        "hqr_time_s": hqr.execution_time,
        "luqr_alpha0_time_s": luqr.execution_time,
        "overhead_pct": 100.0 * (luqr.execution_time / hqr.execution_time - 1.0),
        "hqr_gflops": hqr.fake_gflops,
        "luqr_alpha0_gflops": luqr.fake_gflops,
    }


def tree_shape_ablation(
    n_tiles: int = 32, tile_size: int = 240
) -> List[Dict[str, object]]:
    """Critical path and simulated makespan of HQR for several tree shapes."""
    grid = ProcessGrid(4, 4)
    model = PerformanceModel(dancer_platform(grid))
    trees = {
        "flat": FlatTree(),
        "binary": BinaryTree(),
        "greedy": GreedyTree(),
        "fibonacci": FibonacciTree(),
    }
    rows: List[Dict[str, object]] = []
    panel_rows = list(range(n_tiles))
    for intra_name, intra in trees.items():
        spec = FactorizationSpec(
            n_tiles=n_tiles,
            tile_size=tile_size,
            step_kinds=["QR"] * n_tiles,
            algorithm="HQR",
            decision_overhead=False,
            grid=grid,
            intra_tree=intra,
            inter_tree=FibonacciTree(),
        )
        report = model.simulate_spec(spec)
        rows.append(
            {
                "intra_tree": intra_name,
                "inter_tree": "fibonacci",
                "panel_depth": intra.depth(panel_rows),
                "simulated_time_s": report.execution_time,
                "fake_gflops": report.fake_gflops,
            }
        )
    return rows


def domain_pivoting_ablation(
    config: Optional[ExperimentConfig] = None, samples: int = 3
) -> List[Dict[str, object]]:
    """HPL3 of all-LU runs with tile-only vs domain-wide pivot search."""
    config = config if config is not None else ExperimentConfig(n_tiles=12)
    n = config.n_order
    rows: List[Dict[str, object]] = []
    rng = np.random.default_rng(config.seed)
    for variant, domain in (("diagonal tile only", False), ("diagonal domain", True)):
        values = []
        for _ in range(samples):
            a = random_matrix(n, seed=int(rng.integers(2**31)))
            b = random_rhs(n, seed=int(rng.integers(2**31)))
            solver = LUNoPivSolver(
                tile_size=config.tile_size, grid=config.grid, domain_pivoting=domain
            )
            try:
                values.append(solver.solve(a, b).hpl3)
            except Exception:
                values.append(float("inf"))
        rows.append(
            {
                "pivot_search": variant,
                "median_hpl3": float(np.median(values)),
                "max_hpl3": float(np.max(values)),
            }
        )
    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    print("Ablation 1 — decision-making overhead (alpha = 0 vs HQR, simulated):")
    print(format_table([decision_overhead_ablation()]))
    print("\nAblation 2 — reduction-tree shape (HQR, simulated):")
    print(format_table(tree_shape_ablation()))
    print("\nAblation 3 — diagonal-tile vs diagonal-domain pivoting (all-LU, measured):")
    print(format_table(domain_pivoting_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
