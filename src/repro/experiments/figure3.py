"""Figure 3 — stability on the special-matrix collection (Table III).

The paper evaluates LU NoPiv, the hybrid algorithm with random choices,
with the Max criterion (``alpha = 6000`` at N = 40,000), with the MUMPS
criterion (``alpha = 2.1``), and HQR, on 5 random matrices and on the
Table III special matrices, reporting the HPL3 value relative to LUPP.
Key observations to reproduce:

* random choices are *unstable* on the special matrices (unlike on random
  matrices),
* the Max criterion stays within a small factor of LUPP on every matrix,
* the MUMPS criterion is good on most matrices but misses some
  pathological ones,
* LU NoPiv and LUPP *break down* on the ``fiedler`` matrix while the
  criteria-guided hybrid survives.

Run with ``python -m repro.experiments.figure3``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..matrices import registry
from ..matrices.random_gen import random_matrix, random_rhs
from .common import ExperimentConfig, format_table, make_baseline, make_hybrid

__all__ = ["FIGURE3_ALGORITHMS", "figure3_rows", "main"]

#: The algorithm line-up of Figure 3 with the alphas used at laptop scale.
#: (The paper uses alpha = 6000 for Max and 50 for random at N = 40,000; the
#: scaled-down equivalents below produce a comparable %LU-step range.)
FIGURE3_ALGORITHMS: List[Dict[str, object]] = [
    {"label": "LU NoPiv", "kind": "baseline", "name": "LU NoPiv"},
    {"label": "LUQR random", "kind": "hybrid", "criterion": "random", "alpha": 0.6},
    {"label": "LUQR Max", "kind": "hybrid", "criterion": "max", "alpha": 50.0},
    {"label": "LUQR MUMPS", "kind": "hybrid", "criterion": "mumps", "alpha": 2.1},
    {"label": "HQR", "kind": "baseline", "name": "HQR"},
]


def _solve_or_breakdown(solver, a: np.ndarray, b: np.ndarray) -> float:
    """HPL3 of a solve, or ``inf`` when the algorithm breaks down."""
    try:
        return solver.solve(a, b).hpl3
    except Exception:
        return float("inf")


def figure3_rows(
    config: Optional[ExperimentConfig] = None,
    matrices: Optional[Sequence[str]] = None,
    n_random: int = 5,
    include_fiedler: bool = True,
) -> List[Dict[str, object]]:
    """Relative HPL3 (vs LUPP) of every Figure 3 algorithm on every matrix.

    Each returned row corresponds to one matrix and carries one column per
    algorithm; values are ``HPL3 / HPL3(LUPP)`` and ``inf`` marks a
    breakdown of that algorithm (or of LUPP itself).
    """
    config = config if config is not None else ExperimentConfig(n_tiles=12, grid=None)
    n = config.n_order

    names = list(matrices) if matrices is not None else registry.names()
    if include_fiedler and "fiedler" not in names:
        names = names + ["fiedler"]

    cases: List[Dict[str, object]] = []
    rng = np.random.default_rng(config.seed)
    for i in range(n_random):
        cases.append(
            {
                "matrix": f"random-{i + 1}",
                "a": random_matrix(n, seed=int(rng.integers(2**31))),
            }
        )
    for name in names:
        try:
            a = registry.build(name, n)
        except Exception as exc:  # pragma: no cover - defensive
            cases.append({"matrix": name, "error": str(exc)})
            continue
        cases.append({"matrix": name, "a": a})

    lupp = make_baseline("lupp", config)
    rows: List[Dict[str, object]] = []
    for case in cases:
        row: Dict[str, object] = {"matrix": case["matrix"]}
        if "a" not in case:
            row["error"] = case.get("error", "generation failed")
            rows.append(row)
            continue
        a = case["a"]
        b = random_rhs(n, seed=config.seed)
        ref = _solve_or_breakdown(lupp, a, b)
        row["lupp_hpl3"] = ref
        for algo in FIGURE3_ALGORITHMS:
            if algo["kind"] == "baseline":
                solver = make_baseline(str(algo["name"]), config)
            else:
                solver = make_hybrid(
                    str(algo["criterion"]), float(algo["alpha"]), config, seed=config.seed
                )
            value = _solve_or_breakdown(solver, a, b)
            if np.isfinite(ref) and ref > 0 and np.isfinite(value):
                row[str(algo["label"])] = value / ref
            elif np.isfinite(value):
                # LUPP broke down but this algorithm survived: report the
                # absolute HPL3 (finite means it solved the system).
                row[str(algo["label"])] = value
            else:
                row[str(algo["label"])] = float("inf")
        rows.append(row)
    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    config = ExperimentConfig(n_tiles=12)
    rows = figure3_rows(config)
    columns = ["matrix", "lupp_hpl3"] + [str(a["label"]) for a in FIGURE3_ALGORITHMS]
    print(
        "Figure 3 — relative HPL3 (vs LUPP) on random + special matrices "
        f"(N = {config.n_order}); inf marks a breakdown"
    )
    print(format_table(rows, columns))


if __name__ == "__main__":  # pragma: no cover
    main()
