"""Experiment harnesses regenerating every table and figure of the paper."""

from . import ablations, common, figure1, figure2, figure3, table1, table2, table3
from .common import ExperimentConfig, format_table

__all__ = [
    "ExperimentConfig",
    "format_table",
    "common",
    "table1",
    "table2",
    "table3",
    "figure1",
    "figure2",
    "figure3",
    "ablations",
]
