"""Table I — computational cost of each kernel (units of ``nb^3`` flops).

The harness reproduces the two columns of Table I analytically (from the
flop model) and cross-checks them against the kernel invocation counts
recorded by actual LU and QR steps of the numerical drivers: the number of
factor / eliminate / apply / update kernels of a step with ``r`` remaining
tiles must be ``1 / (r-1) / (r-1) / (r-1)^2`` respectively.

Run with ``python -m repro.experiments.table1``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..baselines import HQRSolver, LUNoPivSolver
from ..kernels.flops import lu_step_flops, qr_step_flops, step_flops_table
from ..matrices.random_gen import random_matrix
from .common import format_table

__all__ = ["table1_rows", "measured_kernel_counts", "main"]


def table1_rows(nb: int = 240, remaining: int = None) -> List[Dict[str, object]]:
    """The rows of Table I, in units of ``nb^3``, for a generic step.

    ``remaining`` is the number of tiles left at the step (``n`` for the
    first step); the paper writes the counts with ``n - 1`` factors, which
    corresponds to ``remaining - 1`` here.
    """
    remaining = remaining if remaining is not None else 2  # symbolic (n-1) = 1
    table = step_flops_table(nb, remaining)
    r = remaining - 1
    rows = []
    for phase, lu_kernel, qr_kernel in [
        ("factor A", "GETRF", "GEQRT"),
        ("eliminate B", "TRSM", "TSQRT"),
        ("apply C", "TRSM (SWPTRSM)", "TSMQR"),
        ("update D", "GEMM", "UNMQR/TSMQR"),
    ]:
        key = phase.split()[0]
        rows.append(
            {
                "phase": phase,
                "lu_cost_nb3": table["lu"][key],
                "lu_kernel": lu_kernel,
                "qr_cost_nb3": table["qr"][key],
                "qr_kernel": qr_kernel,
                "multiplicity": {"factor": 1, "eliminate": r, "apply": r, "update": r * r}[key],
            }
        )
    rows.append(
        {
            "phase": "total",
            "lu_cost_nb3": table["lu"]["total"],
            "lu_kernel": "",
            "qr_cost_nb3": table["qr"]["total"],
            "qr_kernel": "",
            "multiplicity": "",
        }
    )
    return rows


def measured_kernel_counts(n_tiles: int = 6, nb: int = 8, seed: int = 0) -> Dict[str, Dict[str, int]]:
    """Kernel counts of the *first* LU step and the *first* QR step of real runs.

    Uses LU NoPiv (all-LU) and HQR (all-QR) on a random matrix and returns
    the kernel invocation counts of their first elimination step, which the
    test-suite (and the printed output) compares against the ``1 / (n-1) /
    (n-1) / (n-1)^2`` multiplicities of Table I.
    """
    a = random_matrix(n_tiles * nb, seed=seed)
    b = np.ones(n_tiles * nb)

    lu_fact = LUNoPivSolver(tile_size=nb).factor(a, b)
    qr_fact = HQRSolver(tile_size=nb).factor(a, b)
    return {
        "lu_first_step": dict(lu_fact.steps[0].kernel_counts),
        "qr_first_step": dict(qr_fact.steps[0].kernel_counts),
        "expected": {
            "factor": 1,
            "eliminate": n_tiles - 1,
            "apply": n_tiles - 1,
            "update": (n_tiles - 1) ** 2,
        },
    }


def main() -> None:  # pragma: no cover - CLI entry point
    print("Table I — cost of one elimination step (units of nb^3 flops, first step of n tiles)")
    for remaining in (2, 4, 8):
        print(f"\nremaining tiles = {remaining} (i.e. n-1 = {remaining - 1}):")
        print(format_table(table1_rows(remaining=remaining)))
    print("\nPer-step flop totals (absolute), nb = 240:")
    print(
        format_table(
            [
                {
                    "remaining": r,
                    "lu_step_flops": lu_step_flops(240, r)["total"],
                    "qr_step_flops": qr_step_flops(240, r)["total"],
                    "ratio_qr_over_lu": qr_step_flops(240, r)["total"]
                    / lu_step_flops(240, r)["total"],
                }
                for r in (2, 8, 32, 84)
            ]
        )
    )
    print("\nMeasured kernel counts of the first step (n = 6 tiles):")
    counts = measured_kernel_counts()
    for key, val in counts.items():
        print(f"  {key}: {val}")


if __name__ == "__main__":  # pragma: no cover
    main()
