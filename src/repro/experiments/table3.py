"""Table III — the special-matrix collection.

The harness regenerates the table (number, name, description) and, for each
matrix at a small order, reports a few diagnostic quantities (condition
number estimate, symmetry, zero-diagonal entries) so a reader can verify
that the generators produce the matrices the paper describes.

Run with ``python -m repro.experiments.table3``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..matrices import registry
from .common import format_table

__all__ = ["table3_rows", "main"]


def table3_rows(n: int = 64, include_extra: bool = True) -> List[Dict[str, object]]:
    """One row per special matrix with diagnostics at order ``n``."""
    rows: List[Dict[str, object]] = []
    entries = list(registry.TABLE_III) + (list(registry.EXTRA) if include_extra else [])
    for entry in entries:
        row: Dict[str, object] = {
            "no": entry.number,
            "name": entry.name,
            "description": entry.description,
        }
        try:
            a = entry.build(n)
            with np.errstate(all="ignore"):
                cond = float(np.linalg.cond(a, 1))
            row["order"] = a.shape[0]
            row["cond_1"] = cond
            row["symmetric"] = bool(np.allclose(a, a.T, atol=1e-12))
            row["zero_diagonal"] = int(np.sum(np.abs(np.diag(a)) == 0.0))
        except Exception as exc:  # pragma: no cover - defensive
            row["error"] = str(exc)
        rows.append(row)
    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    rows = table3_rows()
    print("Table III — special matrices of the experiment set (diagnostics at n = 64)")
    print(format_table(rows, ["no", "name", "cond_1", "symmetric", "zero_diagonal", "description"]))


if __name__ == "__main__":  # pragma: no cover
    main()
