"""Figure 2 — stability, performance and %LU steps on random matrices.

Figure 2 of the paper has one row per criterion (Max, Sum, MUMPS, plus a
random-choice policy) and three columns:

1. relative stability: HPL3 divided by the HPL3 of LUPP on the same matrix,
2. normalised GFLOP/s,
3. percentage of LU steps,

as functions of the matrix size, for several values of the threshold
``alpha``, together with the LU NoPiv, LU IncPiv, HQR and LUPP baselines.

This harness reproduces the same series at laptop scale: the stability and
%LU-step columns come from full numerical factorizations on random
matrices (averaged over ``config.samples`` matrices), and the GFLOP/s
column is obtained by replaying each run's step-kind trace on the simulated
Dancer platform at the paper's tile size.

Run with ``python -m repro.experiments.figure2``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..matrices.random_gen import random_matrix, random_rhs
from .common import ExperimentConfig, format_table, make_baseline, make_hybrid, simulate_at_paper_scale

__all__ = ["ALPHA_SWEEPS", "figure2_rows", "main"]

#: Representative ``alpha`` sweeps per criterion.  The paper's useful ranges
#: differ per criterion (Section V-B); these values span 0% to 100% LU steps
#: at the scaled-down sizes used here.
ALPHA_SWEEPS: Dict[str, List[float]] = {
    "max": [0.0, 2.0, 10.0, 50.0, 200.0, float("inf")],
    "sum": [0.0, 2.0, 10.0, 50.0, 200.0, float("inf")],
    "mumps": [0.0, 0.5, 1.0, 2.1, 10.0, float("inf")],
    # For the random policy the knob is directly the probability of LU.
    "random": [0.0, 0.25, 0.5, 0.75, 1.0],
}


def _average(values: Sequence[float]) -> float:
    finite = [v for v in values if np.isfinite(v)]
    return float(np.mean(finite)) if finite else float("inf")


def figure2_rows(
    config: Optional[ExperimentConfig] = None,
    criteria: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
    include_baselines: bool = True,
    simulate_performance: bool = True,
) -> List[Dict[str, object]]:
    """Produce the Figure 2 data points.

    Each returned row carries: criterion, alpha, number of tiles, matrix
    order N, relative HPL3 (vs LUPP), %LU steps, and (optionally) the
    simulated fake GFLOP/s at paper scale.
    """
    config = config if config is not None else ExperimentConfig()
    criteria = list(criteria) if criteria is not None else ["max", "sum", "mumps", "random"]
    sizes = list(sizes) if sizes is not None else [config.n_tiles]

    rows: List[Dict[str, object]] = []
    rng = np.random.default_rng(config.seed)

    for n_tiles in sizes:
        cfg = ExperimentConfig(
            n_tiles=n_tiles,
            tile_size=config.tile_size,
            paper_n_tiles=config.paper_n_tiles,
            paper_tile_size=config.paper_tile_size,
            grid=config.grid,
            samples=config.samples,
            seed=config.seed,
        )
        n = n_tiles * cfg.tile_size
        matrices = [random_matrix(n, seed=int(rng.integers(2**31))) for _ in range(cfg.samples)]
        rhss = [random_rhs(n, seed=int(rng.integers(2**31))) for _ in range(cfg.samples)]

        # LUPP reference HPL3 per sample matrix.
        lupp = make_baseline("lupp", cfg)
        lupp_results = [lupp.solve(a, b) for a, b in zip(matrices, rhss)]
        lupp_hpl3 = [r.hpl3 for r in lupp_results]

        def run_and_summarize(
            solver,
            label: str,
            criterion: str,
            alpha: float,
            # Bind the per-size state so the closure does not capture loop
            # variables late (flake8-bugbear B023).
            n_tiles=n_tiles,
            n=n,
            cfg=cfg,
            matrices=matrices,
            rhss=rhss,
            lupp_hpl3=lupp_hpl3,
        ) -> Dict[str, object]:
            rel, lu_pct, reports = [], [], []
            last_fact = None
            for (a, b), ref in zip(zip(matrices, rhss), lupp_hpl3):
                try:
                    res = solver.solve(a, b)
                except Exception:
                    rel.append(float("inf"))
                    lu_pct.append(float("nan"))
                    continue
                rel.append(res.hpl3 / ref if ref > 0 else float("inf"))
                lu_pct.append(res.factorization.lu_percentage)
                last_fact = res.factorization
            row: Dict[str, object] = {
                "criterion": criterion,
                "alpha": alpha,
                "n_tiles": n_tiles,
                "N": n,
                "relative_hpl3": _average(rel),
                "lu_steps_pct": _average([v for v in lu_pct if np.isfinite(v)]),
                "label": label,
            }
            if simulate_performance and last_fact is not None:
                report = simulate_at_paper_scale(last_fact, cfg)
                row["gflops"] = report.fake_gflops
                row["peak_pct"] = 100.0 * report.fake_peak_fraction
            return row

        for criterion in criteria:
            for alpha in ALPHA_SWEEPS[criterion]:
                solver = make_hybrid(criterion, alpha, cfg, seed=config.seed)
                rows.append(
                    run_and_summarize(solver, f"LUQR-{criterion}(alpha={alpha})", criterion, alpha)
                )

        if include_baselines:
            for base in ("LU NoPiv", "LU IncPiv", "HQR", "LUPP"):
                solver = make_baseline(base, cfg)
                rows.append(run_and_summarize(solver, base, base, float("nan")))

    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    config = ExperimentConfig()
    rows = figure2_rows(config)
    columns = ["label", "n_tiles", "N", "relative_hpl3", "lu_steps_pct", "gflops", "peak_pct"]
    print("Figure 2 — random matrices, relative HPL3 (vs LUPP), %LU steps, simulated GFLOP/s")
    print(format_table(rows, columns))


if __name__ == "__main__":  # pragma: no cover
    main()
