"""Shared helpers for the experiment harnesses (Figures 1-3, Tables I-III).

The harnesses in this package regenerate the paper's tables and figures at
laptop scale: the *numerical* runs (stability, %LU steps) use small tile
sizes so a full factorization in pure Python finishes in seconds, while the
*performance* numbers are obtained by replaying the measured step-kind
trace on the simulated Dancer platform at the paper's tile size
(``nb = 240``).  The helpers below implement that replay, the solver
constructors shared by several experiments, and plain-text table printing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..api.facade import make_criterion, make_solver
from ..core.dag_builder import FactorizationSpec
from ..core.factorization import Factorization
from ..core.hybrid import HybridLUQRSolver
from ..perf.model import PerformanceModel, PerformanceReport
from ..runtime.platform import Platform, dancer_platform
from ..tiles.distribution import ProcessGrid

__all__ = [
    "DEFAULT_TILE_SIZE",
    "PAPER_TILE_SIZE",
    "ExperimentConfig",
    "make_hybrid",
    "make_baseline",
    "resample_step_kinds",
    "simulate_at_paper_scale",
    "format_table",
]

#: Tile size used by the numerical (stability) runs of the harnesses.
DEFAULT_TILE_SIZE = 8

#: Tile size of the paper's experiments, used by the performance simulation.
PAPER_TILE_SIZE = 240


@dataclass
class ExperimentConfig:
    """Knobs shared by the experiment harnesses.

    ``n_tiles`` controls the numerical runs (matrix order is
    ``n_tiles * tile_size``); ``paper_n_tiles`` controls the size at which
    the performance simulation replays the run (84 tiles of 240 ≈ the
    paper's N = 20,000).  ``samples`` is the number of random matrices per
    data point (the paper averages 100; a handful is enough to get a stable
    average at laptop scale).
    """

    n_tiles: int = 12
    tile_size: int = DEFAULT_TILE_SIZE
    paper_n_tiles: int = 84
    paper_tile_size: int = PAPER_TILE_SIZE
    grid: ProcessGrid = None  # type: ignore[assignment]
    samples: int = 3
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.grid is None:
            self.grid = ProcessGrid(4, 4) if self.n_tiles >= 8 else ProcessGrid(2, 2)

    @property
    def n_order(self) -> int:
        return self.n_tiles * self.tile_size


# --------------------------------------------------------------------------- #
# Solver constructors
# --------------------------------------------------------------------------- #
def make_hybrid(
    criterion_name: str,
    alpha: float,
    config: ExperimentConfig,
    seed: Optional[int] = None,
) -> HybridLUQRSolver:
    """Build a hybrid solver for one of the paper's criteria.

    ``criterion_name`` is one of ``"max"``, ``"sum"``, ``"mumps"``,
    ``"random"``.  For the random policy, ``alpha`` is interpreted as the
    probability of an LU step (the paper sweeps an equivalent knob).

    Resolution goes through the public plugin registries
    (:mod:`repro.api`): an unregistered criterion name raises a
    :class:`ValueError` listing the available options.
    """
    name = criterion_name.lower()
    if name == "random":
        criterion = make_criterion("random", lu_probability=alpha, seed=seed)
    else:
        criterion = make_criterion(name, alpha=alpha)
    return make_solver(
        algorithm="hybrid",
        tile_size=config.tile_size,
        criterion=criterion,
        grid=config.grid,
    )


def make_baseline(name: str, config: ExperimentConfig):
    """Build one of the baseline solvers by registry name.

    Accepts the paper's table spellings (``"LU NoPiv"``, ``"LU IncPiv"``,
    ``"LUPP"``, ``"HQR"``) as well as the registry names/aliases.
    """
    return make_solver(
        algorithm=name.lower().replace(" ", "").replace("-", "_"),
        tile_size=config.tile_size,
        grid=config.grid,
    )


# --------------------------------------------------------------------------- #
# Performance replay at paper scale
# --------------------------------------------------------------------------- #
def resample_step_kinds(kinds: Sequence[str], target_steps: int) -> List[str]:
    """Stretch/shrink a step-kind trace to ``target_steps`` steps.

    Nearest-neighbour resampling preserves both the LU fraction and the
    position of the QR steps along the factorization (QR steps tend to
    cluster towards the end, where the diagonal tiles become small).
    """
    if not kinds:
        return ["LU"] * target_steps
    src = len(kinds)
    return [kinds[min(src - 1, int(i * src / target_steps))] for i in range(target_steps)]


def simulate_at_paper_scale(
    fact: Factorization,
    config: ExperimentConfig,
    platform: Optional[Platform] = None,
    algorithm: Optional[str] = None,
) -> PerformanceReport:
    """Replay a numerical run on the simulated Dancer platform at ``nb = 240``.

    The measured step-kind trace of ``fact`` is resampled to
    ``config.paper_n_tiles`` steps and compiled into a task graph at the
    paper's tile size; the discrete-event simulator then produces the
    normalised GFLOP/s that Figure 2 / Table II report.
    """
    platform = platform if platform is not None else dancer_platform(ProcessGrid(4, 4))
    spec = FactorizationSpec(
        n_tiles=config.paper_n_tiles,
        tile_size=config.paper_tile_size,
        step_kinds=resample_step_kinds(fact.step_kinds, config.paper_n_tiles),
        algorithm=algorithm if algorithm is not None else fact.algorithm,
        decision_overhead=any(s.decision_overhead for s in fact.steps),
        grid=platform.grid,
    )
    return PerformanceModel(platform).simulate_spec(spec)


# --------------------------------------------------------------------------- #
# Plain-text tables
# --------------------------------------------------------------------------- #
def format_table(rows: List[Dict[str, object]], columns: Optional[List[str]] = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(empty)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0.0:
                return "0"
            if abs(value) >= 1e5 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.3f}"
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in table)) for i, col in enumerate(columns)]
    lines = [
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    lines.extend("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in table)
    return "\n".join(lines)
