"""Tile/product liveness and certified peak-live-memory bounds.

Tiled factorizations have two memory populations.  The *tile storage*
(matrix + RHS) is allocated once and stays live for the whole run — its
size is a closed form of ``(n, nb, nrhs)``.  The *products* (compact-WY
factors from GEQRT/TSQRT/TTQRT, pairwise-pivot factors from
GETRF/TSTRF) are born when a producing task publishes them under a
``produces`` key and die after the last ``consumes`` of that key — their
overlap is what lookahead actually buys memory-wise, and the thing worth
certifying per ``(solver, n, nb, lookahead)``.

Intervals are computed from first-def/last-use over the pipeline-flushed
step graphs at two granularities:

``sequential``
    Position-granular along the topological program order.  Sound for the
    inline reference path, which executes exactly in that order.

``window``
    Flush-granular: a product is counted live in every flushed graph from
    the one that produces it through the one holding its last consumer.
    Flushes run to completion before the next begins, while tasks *within*
    a flush run concurrently — so any set of products simultaneously live
    at a wall-clock instant is covered by a single flush window, and the
    window bound structurally dominates every executor's true high-water
    mark.  This is the certified bound.

The cross-check against reality prices the trace with the *same* static
per-product byte estimator and asks whether the timed overlap (producer
finish to last-consumer finish) ever exceeds the certified bound; at equal
timestamps releases are processed before acquires, matching the fact that
a consumer finishing when another starts cannot overlap it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..kernels.dispatch import SigContext
from ..runtime.graph import TaskGraph
from .abstract import signature_effect
from .report import Violation

__all__ = [
    "ProductInterval",
    "MemoryCertificate",
    "tile_storage_bytes",
    "collect_product_intervals",
    "certify_peak_memory",
    "traced_product_peak",
    "analyze_liveness",
]


@dataclass
class ProductInterval:
    """Live interval of one produces/consumes product."""

    key: Any
    nbytes: int
    birth_pos: int
    last_pos: int
    birth_graph: int
    producer: Tuple[int, int]  # (graph index, uid)
    last_graph: int
    consumers: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class MemoryCertificate:
    """Certified peak-live-bytes bound of one plan."""

    mode: str
    base_bytes: int
    product_peak_bytes: int
    products: int
    graphs: int
    tiles_live: int
    max_steps_in_flight: int

    @property
    def peak_bytes(self) -> int:
        return self.base_bytes + self.product_peak_bytes

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "base_bytes": self.base_bytes,
            "product_peak_bytes": self.product_peak_bytes,
            "peak_bytes": self.peak_bytes,
            "products": self.products,
            "graphs": self.graphs,
            "tiles_live": self.tiles_live,
            "max_steps_in_flight": self.max_steps_in_flight,
        }


def tile_storage_bytes(ctx: SigContext, itemsize: Optional[int] = None) -> int:
    """Bytes of the always-live tile storage (matrix + RHS).

    ``itemsize`` overrides the context's (the concrete ``TileMatrix``
    normalises storage to float64, so certifying a real run must price
    tiles at the storage width, not the input width).
    """
    item = ctx.itemsize if itemsize is None else int(itemsize)
    matrix = ctx.n * ctx.n * ctx.nb * ctx.nb * item
    rhs = ctx.n * ctx.nb * ctx.nrhs * item
    return matrix + rhs


def collect_product_intervals(
    graphs: Sequence[TaskGraph], ctx: SigContext
) -> List[ProductInterval]:
    """First-def/last-use interval of every product across the graphs.

    Byte sizes come from the kernel signatures (the same estimator the
    traced cross-check uses).  Products nothing consumes die at their
    producer; ``consumes`` keys with no known producer are the verifier's
    problem, not ours, and are skipped here.
    """
    records: Dict[Any, ProductInterval] = {}
    pos = 0
    for g_idx, graph in enumerate(graphs):
        for uid in graph.topological_order():
            task = graph.tasks[uid]
            call = getattr(task, "call", None)
            if call is None:
                pos += 1
                continue
            for key in call.consumes:
                interval = records.get(key)
                if interval is not None:
                    interval.last_pos = pos
                    interval.last_graph = g_idx
                    interval.consumers.append((g_idx, uid))
            if call.produces is not None:
                _sig, effect, _violation = signature_effect(task, ctx)
                nbytes = effect.product_bytes if effect is not None else 0
                records[call.produces] = ProductInterval(
                    key=call.produces,
                    nbytes=nbytes,
                    birth_pos=pos,
                    last_pos=pos,
                    birth_graph=g_idx,
                    last_graph=g_idx,
                    producer=(g_idx, uid),
                )
            pos += 1
    return list(records.values())


def _max_steps_in_flight(graphs: Sequence[TaskGraph]) -> int:
    spans = []
    for graph in graphs:
        steps = [t.step for t in graph.tasks]
        if steps:
            spans.append(max(steps) - min(steps) + 1)
    return max(spans, default=0)


def certify_peak_memory(
    graphs: Sequence[TaskGraph],
    ctx: SigContext,
    *,
    mode: str = "window",
    base_bytes: Optional[int] = None,
    intervals: Optional[List[ProductInterval]] = None,
) -> MemoryCertificate:
    """Certify a peak-live-bytes bound for the plan (see module docstring)."""
    if mode not in ("sequential", "window"):
        raise ValueError(f"unknown liveness mode {mode!r}")
    if intervals is None:
        intervals = collect_product_intervals(graphs, ctx)
    if base_bytes is None:
        base_bytes = tile_storage_bytes(ctx)

    if mode == "sequential":
        # Position-granular event sweep along program order.
        deltas: Dict[int, int] = {}
        for iv in intervals:
            deltas[iv.birth_pos] = deltas.get(iv.birth_pos, 0) + iv.nbytes
            deltas[iv.last_pos + 1] = deltas.get(iv.last_pos + 1, 0) - iv.nbytes
        live = peak = 0
        for pos in sorted(deltas):
            live += deltas[pos]
            peak = max(peak, live)
    else:
        # Flush-granular: a product is live in every graph its interval
        # covers; graphs run one after another, so the per-graph sums bound
        # any concurrent schedule of the tasks inside each flush.
        per_graph = [0] * len(graphs)
        for iv in intervals:
            for g in range(iv.birth_graph, iv.last_graph + 1):
                per_graph[g] += iv.nbytes
        peak = max(per_graph, default=0)

    tiles_live = len(
        {t for graph in graphs for task in graph.tasks for t in task.touches()}
    )
    return MemoryCertificate(
        mode=mode,
        base_bytes=int(base_bytes),
        product_peak_bytes=int(peak),
        products=len(intervals),
        graphs=len(graphs),
        tiles_live=tiles_live,
        max_steps_in_flight=_max_steps_in_flight(graphs),
    )


def traced_product_peak(
    traces: Sequence[Any], intervals: Sequence[ProductInterval]
) -> Optional[int]:
    """Peak product bytes actually overlapping in time, per the traces.

    ``traces[g]`` must be the :class:`ExecutionTrace` of ``graphs[g]`` (the
    pipeline appends them 1:1).  Products whose producer has no finish
    timestamp (errored/partial traces) are skipped — that only ever lowers
    the traced value, so the bound comparison stays conservative.  Returns
    ``None`` when no trace data is usable.
    """
    events: List[Tuple[float, int, int]] = []
    usable = False
    for iv in intervals:
        g, uid = iv.producer
        if g >= len(traces) or traces[g] is None:
            continue
        t0 = traces[g].finish_times.get(uid)
        if t0 is None:
            continue
        t1 = t0
        for cg, cuid in iv.consumers:
            if cg < len(traces) and traces[cg] is not None:
                tc = traces[cg].finish_times.get(cuid)
                if tc is not None:
                    t1 = max(t1, tc)
        usable = True
        # Releases sort before acquires at equal timestamps.
        events.append((t0, 1, iv.nbytes))
        events.append((t1, 0, -iv.nbytes))
    if not usable:
        return None
    live = peak = 0
    for _t, _order, delta in sorted(events):
        live += delta
        peak = max(peak, live)
    return peak


def analyze_liveness(
    graphs: Sequence[TaskGraph],
    ctx: SigContext,
    *,
    mode: str = "window",
    base_bytes: Optional[int] = None,
    traces: Optional[Sequence[Any]] = None,
    max_memory: Optional[int] = None,
) -> Tuple[List[Violation], MemoryCertificate]:
    """Full liveness pass: certify the bound, cross-check, admit.

    Returns the violations (``peak-bound-violated`` when the traced product
    overlap exceeds the certified one; ``memory-admission`` when the bound
    exceeds ``max_memory``) and the certificate.
    """
    violations: List[Violation] = []
    intervals = collect_product_intervals(graphs, ctx)
    cert = certify_peak_memory(
        graphs, ctx, mode=mode, base_bytes=base_bytes, intervals=intervals
    )
    if traces is not None and len(traces) == len(graphs):
        traced = traced_product_peak(traces, intervals)
        if traced is not None and traced > cert.product_peak_bytes:
            violations.append(
                Violation(
                    kind="peak-bound-violated",
                    message=(
                        f"traced product high-water mark ({traced} B) exceeds "
                        f"the certified bound ({cert.product_peak_bytes} B, "
                        f"mode={cert.mode})"
                    ),
                )
            )
    if max_memory is not None and cert.peak_bytes > int(max_memory):
        violations.append(
            Violation(
                kind="memory-admission",
                message=(
                    f"certified peak memory {cert.peak_bytes} B exceeds the "
                    f"admission limit {int(max_memory)} B "
                    f"(base {cert.base_bytes} B + products "
                    f"{cert.product_peak_bytes} B)"
                ),
            )
        )
    return violations, cert
