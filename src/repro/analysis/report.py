"""Structured findings of the correctness-analysis engines.

Every engine (plan verifier, access tracer, registry lint, determinism
check) reduces its findings to :class:`Violation` records so one
:class:`AuditReport` can aggregate them; the dynamic tracer additionally
raises :class:`RaceReport` — an exception carrying the same structure —
at the exact access that breaks a task's declared read/write sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Violation", "RaceReport", "AuditReport"]


@dataclass(frozen=True)
class Violation:
    """One correctness finding.

    ``kind`` is a stable machine-readable tag (``"cycle"``,
    ``"write-write-conflict"``, ``"fused-union-mismatch"``, ...);
    ``message`` is the human-readable diagnosis.  ``tasks`` names the
    offending task uids (when the finding is about graph tasks) and
    ``tile`` the tile reference (when it is about one tile).
    """

    kind: str
    message: str
    tasks: Tuple[int, ...] = ()
    tile: Optional[Tuple[int, int]] = None
    subject: Optional[str] = None

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


class RaceReport(RuntimeError):
    """A kernel touched a tile outside its declared read/write sets.

    Raised by the tracing backend at the offending access.  Carries the
    task uid (when known), the kernel name, the tile reference, and the
    declared sets, so the report pinpoints exactly which declaration in
    which step planner is wrong.
    """

    def __init__(
        self,
        message: str,
        *,
        task_uid: Optional[int] = None,
        kernel: str = "?",
        step: Optional[int] = None,
        tile: Optional[Tuple[int, int]] = None,
        access: str = "read",
        declared_reads: Tuple[Tuple[int, int], ...] = (),
        declared_writes: Tuple[Tuple[int, int], ...] = (),
    ) -> None:
        super().__init__(message)
        self.task_uid = task_uid
        self.kernel = kernel
        self.step = step
        self.tile = tile
        self.access = access
        self.declared_reads = tuple(sorted(declared_reads))
        self.declared_writes = tuple(sorted(declared_writes))

    def as_violation(self) -> Violation:
        tasks = () if self.task_uid is None else (self.task_uid,)
        return Violation(
            kind=f"undeclared-{self.access}",
            message=str(self),
            tasks=tasks,
            tile=self.tile,
            subject=self.kernel,
        )


@dataclass
class AuditReport:
    """Aggregated findings of one :func:`repro.analysis.audit` run.

    ``sections`` maps an engine name (``"registry"``, ``"verifier"``,
    ``"tracer"``, ``"determinism"``) to its findings; ``violations``
    flattens them in engine order.  ``checked`` counts what each engine
    actually covered (graphs, tasks, registry entries) so an empty
    report can be told apart from an engine that never ran.
    """

    sections: Dict[str, List[Violation]] = field(default_factory=dict)
    checked: Dict[str, int] = field(default_factory=dict)
    #: Resource certifications (peak memory, comm volume, pivot stats)
    #: keyed by analysis pass — quantities, not findings, so they live
    #: outside ``sections``.
    resources: Dict[str, Any] = field(default_factory=dict)

    @property
    def violations(self) -> List[Violation]:
        out: List[Violation] = []
        for findings in self.sections.values():
            out.extend(findings)
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, section: str, findings: List[Violation]) -> None:
        self.sections.setdefault(section, []).extend(findings)

    def count(self, what: str, n: int = 1) -> None:
        self.checked[what] = self.checked.get(what, 0) + n

    def summary(self) -> str:
        """Multi-line human-readable summary (the CLI prints this)."""
        lines: List[str] = []
        for section, findings in self.sections.items():
            status = "ok" if not findings else f"{len(findings)} violation(s)"
            lines.append(f"{section}: {status}")
            for v in findings:
                lines.append(f"  - {v}")
        for key, value in sorted(self.resources.items()):
            if isinstance(value, dict):
                inner = ", ".join(
                    f"{k}={v}" for k, v in value.items() if not isinstance(v, dict)
                )
                lines.append(f"{key}: {inner}")
            else:
                lines.append(f"{key}: {value}")
        coverage = ", ".join(f"{k}={v}" for k, v in sorted(self.checked.items()))
        if coverage:
            lines.append(f"checked: {coverage}")
        lines.append("AUDIT PASSED" if self.ok else "AUDIT FAILED")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the whole report (``repro-analyze --json``)."""

        def violation_dict(v: Violation) -> Dict[str, Any]:
            out: Dict[str, Any] = {"kind": v.kind, "message": v.message}
            if v.tasks:
                out["tasks"] = list(v.tasks)
            if v.tile is not None:
                out["tile"] = list(v.tile)
            if v.subject is not None:
                out["subject"] = v.subject
            return out

        return {
            "ok": self.ok,
            "sections": {
                name: [violation_dict(v) for v in findings]
                for name, findings in self.sections.items()
            },
            "checked": dict(self.checked),
            "resources": self.resources,
        }
