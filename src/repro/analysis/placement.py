"""Owner placement and communication analysis under a block-cyclic grid.

The paper's distributed runs place every task *owner-computes*: a task runs
on the process that owns the tile it writes, so the only communication is
(a) remote tiles read by a task, (b) panel factors flowing along
produces/consumes edges to another owner, and (c) the panel-wide pivot
exchanges of LUPP.  This pass maps every task of an emitted plan to its
owner under a :class:`~repro.tiles.distribution.BlockCyclicDistribution`,
verifies the declared ``Task.owner`` fields agree, statically certifies the
paper's pivoting invariant — an LU panel's pivot chain
(``lu.scatter_factor``) never crosses nodes unless it is a deliberate
panel-wide LUPP exchange — and prices the cross-owner traffic with a
:class:`~repro.runtime.platform.Platform`.

Fused sweeps are decomposed into their signature-declared constituents, so
a sweep whose written tiles span several owners is priced per logical
kernel (and reported as a ``multi-owner`` statistic — a fusion boundary a
distributed executor must split, not a correctness violation).

Message counting is deduplicated per destination: a tile fetched by many
constituents of one task, or a factor consumed by many tasks on one node,
ships once.  The critical-path communication volume is the longest
comm-weighted dependency chain, accumulated across the pipeline-flushed
graphs (flushes are sequential, so their critical paths add).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..kernels.dispatch import SigContext
from ..runtime.graph import TaskGraph
from ..runtime.task import RHS_COLUMN, Task
from ..tiles.distribution import BlockCyclicDistribution
from .abstract import signature_effect, task_label
from .report import Violation

__all__ = [
    "PlacementSummary",
    "owner_of_ref",
    "ref_bytes",
    "constituent_units",
    "task_anchor",
    "assign_owners",
    "analyze_placement",
]


@dataclass
class PlacementSummary:
    """Communication/placement statistics of one analyzed plan."""

    tasks: int = 0
    opaque_tasks: int = 0
    units: int = 0
    local_units: int = 0
    cross_messages: int = 0
    cross_bytes: int = 0
    product_messages: int = 0
    product_bytes: int = 0
    multi_owner_tasks: int = 0
    diagonal_pivot_steps: int = 0
    panel_wide_pivot_steps: int = 0
    comm_seconds: Optional[float] = None
    pivot_exchange_seconds: Optional[float] = None
    critical_path_comm_seconds: Optional[float] = None
    edge_messages: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "tasks": self.tasks,
            "opaque_tasks": self.opaque_tasks,
            "units": self.units,
            "local_units": self.local_units,
            "cross_messages": self.cross_messages,
            "cross_bytes": self.cross_bytes,
            "product_messages": self.product_messages,
            "product_bytes": self.product_bytes,
            "multi_owner_tasks": self.multi_owner_tasks,
            "diagonal_pivot_steps": self.diagonal_pivot_steps,
            "panel_wide_pivot_steps": self.panel_wide_pivot_steps,
            "edge_messages": {
                f"{src}->{dst}": count
                for (src, dst), count in sorted(self.edge_messages.items())
            },
        }
        if self.comm_seconds is not None:
            out["comm_seconds"] = self.comm_seconds
        if self.pivot_exchange_seconds is not None:
            out["pivot_exchange_seconds"] = self.pivot_exchange_seconds
        if self.critical_path_comm_seconds is not None:
            out["critical_path_comm_seconds"] = self.critical_path_comm_seconds
        return out


def owner_of_ref(
    ref: Tuple[int, int], dist: BlockCyclicDistribution
) -> int:
    """Owner rank of a tile reference (RHS pseudo-column included)."""
    i, j = ref
    if j == RHS_COLUMN:
        return dist.rhs_owner(i)
    return dist.owner(i, j)


def ref_bytes(ref: Tuple[int, int], ctx: SigContext) -> int:
    """Model size in bytes of one tile reference under ``ctx``.

    This is the byte currency of every communication prediction (and of the
    cluster executor's measured counters, so predicted and measured traffic
    stay directly comparable): matrix tiles are ``nb x nb``, RHS pseudo-
    column tiles are ``nb x nrhs``, both at the context's itemsize.
    """
    if ref[1] == RHS_COLUMN:
        return ctx.nb * ctx.nrhs * ctx.itemsize
    return ctx.nb * ctx.nb * ctx.itemsize


_ref_bytes = ref_bytes


def constituent_units(effect) -> Tuple[Tuple[Tuple[Any, ...], Any], ...]:
    """Decompose an effect into ``((read_refs, ...), anchor_ref)`` units.

    Fused sweeps decompose into their signature-declared constituents; a
    plain per-tile kernel is a single unit anchored at its owner tile.
    Shared between this analyzer and the cluster executor so both count
    messages per logical kernel with identical semantics.
    """
    if effect.constituents:
        return effect.constituents
    anchor = effect.owner_tile
    if anchor is None:
        anchor = min(effect.writes) if effect.writes else min(effect.reads, default=None)
    if anchor is None:
        return ()
    return ((tuple(effect.reads), anchor),)


_constituents = constituent_units


def task_anchor(task: Task, ctx: SigContext) -> Optional[Tuple[int, int]]:
    """The tile anchoring ``task``'s owner (owner-computes), or ``None``."""
    _sig, effect, _violation = signature_effect(task, ctx)
    if effect is None:
        return None
    if effect.owner_tile is not None:
        return effect.owner_tile
    units = _constituents(effect)
    return units[0][1] if units else None


def assign_owners(
    graphs: Sequence[TaskGraph], dist: BlockCyclicDistribution, ctx: SigContext
) -> int:
    """Set every task's ``owner`` to its owner-computes rank.

    This is the placement a distributed executor will schedule by; the
    planners leave ``Task.owner`` at 0, so audit assigns before verifying.
    Returns the number of tasks assigned (tasks without a signature anchor
    are left untouched).
    """
    assigned = 0
    for graph in graphs:
        for task in graph.tasks:
            anchor = task_anchor(task, ctx)
            if anchor is not None:
                task.owner = owner_of_ref(anchor, dist)
                assigned += 1
    return assigned


def _check_pivot_chain(
    task: Task,
    call: Any,
    dist: BlockCyclicDistribution,
    ctx: SigContext,
    platform,
    summary: PlacementSummary,
    violations: List[Violation],
) -> None:
    """Statically verify the LU pivoting domain invariant for one panel."""
    k, rows, _factor = call.args
    rows = list(rows)
    owners = {dist.owner(i, k) for i in rows}
    panel = dist.panel_rows(k)
    if len(owners) == 1:
        # Node-local chain.  The paper's invariant additionally wants it on
        # the *diagonal domain* (the node owning (k, k)); a single-owner
        # chain elsewhere would mean the panel factor was computed on a node
        # that then ships every result tile home.
        if owners == {dist.diagonal_owner(k)}:
            summary.diagonal_pivot_steps += 1
        else:
            violations.append(
                Violation(
                    kind="cross-domain-pivot",
                    message=(
                        f"{task_label(task)}: pivot chain of step {k} runs on rank "
                        f"{next(iter(owners))}, not the diagonal owner "
                        f"{dist.diagonal_owner(k)}"
                    ),
                    tasks=(task.uid,),
                    tile=(k, k),
                )
            )
    elif rows == panel:
        # Deliberate panel-wide pivoting (LUPP): allowed, but priced.
        summary.panel_wide_pivot_steps += 1
        if platform is not None:
            summary.pivot_exchange_seconds = (
                summary.pivot_exchange_seconds or 0.0
            ) + platform.pivot_exchange_time(len(owners), ctx.nb)
    else:
        violations.append(
            Violation(
                kind="cross-domain-pivot",
                message=(
                    f"{task_label(task)}: pivot chain of step {k} spans rows {rows} "
                    f"owned by ranks {sorted(owners)} — neither node-local "
                    "(diagonal domain) nor a full-panel LUPP exchange"
                ),
                tasks=(task.uid,),
                tile=(k, k),
            )
        )


def analyze_placement(
    graphs: Sequence[TaskGraph],
    dist: BlockCyclicDistribution,
    ctx: SigContext,
    *,
    platform=None,
    check_declared: bool = True,
) -> Tuple[List[Violation], PlacementSummary]:
    """Verify owner placement and price the communication of a plan.

    ``check_declared`` compares each ``Task.owner`` against the
    owner-computes rank (run :func:`assign_owners` first — or let a future
    distributed planner set them — and any drift is a ``wrong-owner``
    violation).
    """
    violations: List[Violation] = []
    summary = PlacementSummary()
    product_owner: Dict[Any, int] = {}
    product_nbytes: Dict[Any, int] = {}
    product_shipped: Set[Tuple[Any, int]] = set()
    cp_total = 0.0

    for g_idx, graph in enumerate(graphs):
        cp: Dict[int, float] = {}
        owner_cache: Dict[int, Optional[int]] = {}
        product_uid: Dict[Any, Tuple[int, int]] = {}
        for uid in graph.topological_order():
            task = graph.tasks[uid]
            call = getattr(task, "call", None)
            summary.tasks += 1
            _sig, effect, _violation = signature_effect(task, ctx)
            if effect is None:
                summary.opaque_tasks += 1
                owner_cache[uid] = None
                cp[uid] = max((cp.get(d, 0.0) for d in task.deps), default=0.0)
                continue

            anchor = effect.owner_tile
            units = _constituents(effect)
            if anchor is None and units:
                anchor = units[0][1]
            expected = owner_of_ref(anchor, dist) if anchor is not None else None
            owner_cache[uid] = expected
            if check_declared and expected is not None and task.owner != expected:
                violations.append(
                    Violation(
                        kind="wrong-owner",
                        message=(
                            f"{task_label(task)}: declared owner {task.owner}, but "
                            f"owner-computes on {anchor} places it on rank "
                            f"{expected}"
                        ),
                        tasks=(uid,),
                        tile=anchor,
                    )
                )

            # Per-unit tile traffic, deduplicated per destination within the
            # task (a fused sweep fetches a shared tile once per node).
            fetched: Set[Tuple[Tuple[int, int], int]] = set()
            unit_owners: Set[int] = set()
            for unit_reads, unit_anchor in units:
                dest = owner_of_ref(unit_anchor, dist)
                unit_owners.add(dest)
                summary.units += 1
                remote = False
                for ref in unit_reads:
                    if ref == unit_anchor:
                        continue
                    src = owner_of_ref(ref, dist)
                    if src == dest:
                        continue
                    remote = True
                    if (ref, dest) in fetched:
                        continue
                    fetched.add((ref, dest))
                    summary.cross_messages += 1
                    summary.cross_bytes += _ref_bytes(ref, ctx)
                    edge = (src, dest)
                    summary.edge_messages[edge] = summary.edge_messages.get(edge, 0) + 1
                if not remote:
                    summary.local_units += 1
            if len(unit_owners) > 1:
                summary.multi_owner_tasks += 1

            # Product flow along produces/consumes edges.  Bytes flowing in
            # from a same-graph producer are remembered per producer uid so
            # the critical-path weights below can price that edge.
            product_in: Dict[int, int] = {}
            if call is not None:
                for key in call.consumes:
                    src = product_owner.get(key)
                    if src is None or expected is None or src == expected:
                        continue
                    origin = product_uid.get(key)
                    if origin is not None and origin[0] == g_idx:
                        product_in[origin[1]] = (
                            product_in.get(origin[1], 0) + product_nbytes.get(key, 0)
                        )
                    if (key, expected) in product_shipped:
                        continue
                    product_shipped.add((key, expected))
                    summary.product_messages += 1
                    summary.product_bytes += product_nbytes.get(key, 0)
                    edge = (src, expected)
                    summary.edge_messages[edge] = summary.edge_messages.get(edge, 0) + 1
                if call.produces is not None and expected is not None:
                    product_owner[call.produces] = expected
                    product_nbytes[call.produces] = effect.product_bytes
                    product_uid[call.produces] = (g_idx, uid)
                if call.kernel == "lu.scatter_factor":
                    _check_pivot_chain(
                        task, call, dist, ctx, platform, summary, violations
                    )

            # Critical-path comm: the longest comm-weighted dependency chain.
            best = 0.0
            for d in task.deps:
                weight = 0.0
                if platform is not None and expected is not None:
                    dep_owner = owner_cache.get(d)
                    if dep_owner is not None and dep_owner != expected:
                        dep_task = graph.tasks[d]
                        edge_bytes = sum(
                            _ref_bytes(ref, ctx)
                            for ref in dep_task.writes
                            if ref in task.touches()
                        )
                        edge_bytes += product_in.get(d, 0)
                        if edge_bytes > 0:
                            weight = platform.transfer_time(edge_bytes)
                best = max(best, cp.get(d, 0.0) + weight)
            cp[uid] = best
        cp_total += max(cp.values(), default=0.0)

    if platform is not None:
        # Total comm time: one transfer per counted message, priced from the
        # aggregates (latency per message + bytes/bandwidth).
        total_messages = summary.cross_messages + summary.product_messages
        total_bytes = summary.cross_bytes + summary.product_bytes
        summary.comm_seconds = (
            total_messages * platform.latency + total_bytes / platform.bandwidth
        )
        summary.critical_path_comm_seconds = cp_total
    return violations, summary
