"""Schedule-perturbation determinism check.

The paper's asynchrony argument is that any dependency-respecting
execution order produces the same factors.  The runtime inherits that
claim: task priorities only reorder *ready* tasks, never dependencies,
so randomizing them must leave the results bit-identical.  This module
enforces it: :class:`PerturbedThreadedExecutor` overwrites every task
priority with seeded random noise before running the graph, and
:func:`determinism_check` factors the same system under several
perturbed schedules, comparing factors (and transformed RHS) bit for
bit against the inline in-program-order reference.  Any difference is
an undeclared dependency — a real race — reported as a violation.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..runtime.executor import ThreadedExecutor
from .report import Violation

__all__ = ["PerturbedThreadedExecutor", "determinism_check"]


class PerturbedThreadedExecutor(ThreadedExecutor):
    """Threaded executor that randomizes ready-queue priorities per graph.

    Every submitted graph has its task priorities overwritten with
    seeded random values before dispatch, so the priority heap pops
    ready tasks in an adversarial (but reproducible) order.  Dependency
    edges still gate readiness, so a correctly-declared plan must
    produce bit-identical results under any seed.
    """

    def __init__(self, workers: int = 4, seed: int = 0) -> None:
        super().__init__(workers=workers)
        self._rng = np.random.default_rng(seed)

    def run(self, graph, timeout: Optional[float] = None):
        for task in graph.tasks:
            task.priority = float(self._rng.random())
        return super().run(graph, timeout=timeout)


def determinism_check(
    make_solver: Callable,
    a: np.ndarray,
    b: Optional[np.ndarray] = None,
    *,
    rounds: int = 3,
    workers: int = 3,
    seed: int = 0,
) -> List[Violation]:
    """Factor under perturbed schedules; flag any deviation from inline.

    ``make_solver(executor)`` must return a fresh configured solver using
    the given executor (``None`` selects the inline in-program-order
    path).  Runs ``rounds`` perturbed threaded factorizations with
    distinct seeds and compares tile storage, transformed RHS, and
    breakdown status bit-for-bit against the inline reference.
    """
    violations: List[Violation] = []
    reference = make_solver(None).factor(a, b)
    ref_tiles = reference.tiles.array.copy()
    ref_rhs = None if reference.tiles.rhs is None else reference.tiles.rhs.copy()
    ref_breakdown = getattr(reference, "breakdown", None)

    for r in range(rounds):
        executor = PerturbedThreadedExecutor(workers=workers, seed=seed + r)
        fact = make_solver(executor).factor(a, b)
        label = f"perturbed schedule round {r} (seed {seed + r})"
        if getattr(fact, "breakdown", None) != ref_breakdown:
            violations.append(
                Violation(
                    kind="nondeterminism",
                    message=(
                        f"{label}: breakdown status "
                        f"{getattr(fact, 'breakdown', None)!r} differs from "
                        f"inline reference {ref_breakdown!r}"
                    ),
                )
            )
            continue
        if not np.array_equal(fact.tiles.array, ref_tiles):
            diff = int(np.count_nonzero(fact.tiles.array != ref_tiles))
            violations.append(
                Violation(
                    kind="nondeterminism",
                    message=(
                        f"{label}: factor storage differs from the inline "
                        f"reference in {diff} element(s) — an undeclared "
                        "dependency let tasks race"
                    ),
                )
            )
        rhs = fact.tiles.rhs
        if (rhs is None) != (ref_rhs is None) or (
            rhs is not None and not np.array_equal(rhs, ref_rhs)
        ):
            violations.append(
                Violation(
                    kind="nondeterminism",
                    message=f"{label}: transformed RHS differs from inline",
                )
            )
    return violations
