"""``python -m repro.analysis`` — delegate to the audit CLI."""

from ..api.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
