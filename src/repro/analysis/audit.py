"""`repro.analysis.audit` — one entry point over all analysis engines.

``audit(plan_or_solver)`` accepts either a ready
:class:`~repro.runtime.graph.TaskGraph` (static verification only) or a
configured solver.  For a solver it runs, in order:

1. **registry lint** over SOLVERS/EXECUTORS/KERNEL_BACKENDS/KERNELS;
2. a **combined plan + trace pass**: the solver's ``_plan_step`` is
   driven step by step through an in-process harness that accumulates
   every planned task into one cumulative task graph (verified
   statically) while executing the kernels under the access tracer
   (planning of step ``k+1`` depends on the numerical results of step
   ``k``, so planning and execution must interleave);
3. when the solver has an executor configured, a **real factorization**
   with step-graph collection enabled, verifying every graph the
   lookahead pipeline actually flushed (``produces`` keys from earlier
   flushes legitimately satisfy later ones and are threaded through as
   external products).

The result is an :class:`~repro.analysis.report.AuditReport`; the audit
never raises on findings — races detected dynamically are converted to
violations (and stop the dynamic pass, since the factorization state is
corrupt beyond the first undeclared access).
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from ..linalg.pivoting import SingularPanelError
from ..runtime.graph import TaskGraph
from ..runtime.schedule import build_step_graph
from ..tiles.distribution import BlockCyclicDistribution
from ..tiles.tile_matrix import TileMatrix
from .report import AuditReport, RaceReport, Violation
from .tracing import TracingBackend
from .verifier import verify_graph

__all__ = ["audit", "default_audit_system"]


def default_audit_system(solver, seed: int = 0, n: Optional[int] = None):
    """A well-conditioned random system sized for the solver's tiles.

    Diagonally dominant so every solver (including LU without pivoting)
    factors it without breakdown, with an attached RHS so the RHS task
    paths are audited too.
    """
    if n is None:
        n = 4 * solver.tile_size
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a += n * np.eye(n)
    b = rng.standard_normal(n)
    return a, b


def _trace_and_verify(
    solver,
    a: np.ndarray,
    b: Optional[np.ndarray],
    *,
    dynamic: bool,
    report: AuditReport,
) -> None:
    """Plan every step in-process, execute under the tracer, verify."""
    from ..core.solver_base import pad_to_tile_multiple

    tracer = (
        solver.kernel_backend
        if isinstance(solver.kernel_backend, TracingBackend)
        else TracingBackend(solver.kernel_backend)
    )
    violations: List[Violation] = []
    with solver._factor_lock:
        previous_backend = solver.kernel_backend
        solver.kernel_backend = tracer  # planners batch/fuse through it
        try:
            a_work, b_work, _ = pad_to_tile_multiple(a, b, solver.tile_size)
            tracer.warm(solver.tile_size, a_work.dtype)
            tiles = TileMatrix.from_dense(a_work, solver.tile_size, rhs=b_work)
            if dynamic:
                tiles = tracer.prepare_tiles(tiles)
            dist = BlockCyclicDistribution(solver.grid, tiles.n)
            solver._reset()
            graph = TaskGraph()
            for k in range(tiles.n):
                try:
                    _, tasks = solver._plan_step(tiles, dist, k)
                except SingularPanelError:
                    break
                build_step_graph(tasks, step=k, graph=graph)
                report.count("tasks", len(tasks))
                # Step k+1's plan depends on step k's numbers: execute
                # the kernels now, traced when the dynamic pass is on.
                if dynamic:
                    tasks = [tracer.wrap_task(t, k) for t in tasks]
                try:
                    for task in tasks:
                        if task.fn is not None:
                            task.fn()
                except RaceReport as race:
                    violations.append(race.as_violation())
                    break
                report.count("steps")
        finally:
            solver.kernel_backend = previous_backend
    report.count("graphs")
    violations.extend(verify_graph(graph))
    report.add("verifier", [v for v in violations if not v.kind.startswith("undeclared")])
    if dynamic:
        report.add(
            "tracer", [v for v in violations if v.kind.startswith("undeclared")]
        )


def _verify_executed_graphs(
    solver, a: np.ndarray, b: Optional[np.ndarray], report: AuditReport
) -> None:
    """Run the real (executor-backed) factorization; verify flushed graphs."""
    violations: List[Violation] = []
    previous = solver.collect_step_graphs
    solver.collect_step_graphs = True
    try:
        solver.factor(a, b)
    finally:
        solver.collect_step_graphs = previous
    produced: Set[object] = set()
    for graph in solver.step_graphs:
        report.count("graphs")
        report.count("tasks", len(graph))
        violations.extend(
            verify_graph(graph, external_products=frozenset(produced))
        )
        for task in graph.tasks:
            if task.call is not None and task.call.produces is not None:
                produced.add(task.call.produces)
    report.add("verifier", violations)


def audit(
    plan_or_solver,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    *,
    dynamic: bool = True,
    lint: bool = True,
    seed: int = 0,
    n: Optional[int] = None,
) -> AuditReport:
    """Audit a task graph or a configured solver; return an AuditReport.

    For a :class:`TaskGraph`, runs the static plan verifier only.  For a
    solver, runs the registry lint (``lint=False`` to skip), the combined
    plan+trace pass (``dynamic=False`` for plan-only), and — when the
    solver has an executor configured — verifies the task graphs of a
    real executor-backed factorization.  ``a``/``b`` default to a
    well-conditioned random system (``seed``, order ``n``).
    """
    report = AuditReport()
    if isinstance(plan_or_solver, TaskGraph):
        report.count("graphs")
        report.count("tasks", len(plan_or_solver))
        report.add("verifier", verify_graph(plan_or_solver))
        return report

    solver = plan_or_solver
    if lint:
        from .registry_lint import lint_registries_with_coverage

        found, coverage = lint_registries_with_coverage()
        report.add("registry", found)
        for key, count in coverage.items():
            report.count(f"registry.{key}", count)
    if a is None:
        a, b = default_audit_system(solver, seed=seed, n=n)
    _trace_and_verify(solver, a, b, dynamic=dynamic, report=report)
    if solver.executor is not None:
        _verify_executed_graphs(solver, a, b, report)
    return report
