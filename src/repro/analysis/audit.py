"""`repro.analysis.audit` — one entry point over all analysis engines.

``audit(plan_or_solver)`` accepts either a ready
:class:`~repro.runtime.graph.TaskGraph` (static verification only) or a
configured solver.  For a solver it runs, in order:

1. **registry lint** over SOLVERS/EXECUTORS/KERNEL_BACKENDS/KERNELS;
2. a **combined plan + trace pass**: the solver's ``_plan_step`` is
   driven step by step through an in-process harness that accumulates
   every planned task into one cumulative task graph (verified
   statically) while executing the kernels under the access tracer
   (planning of step ``k+1`` depends on the numerical results of step
   ``k``, so planning and execution must interleave);
3. when the solver has an executor configured, a **real factorization**
   with step-graph collection enabled, verifying every graph the
   lookahead pipeline actually flushed (``produces`` keys from earlier
   flushes legitimately satisfy later ones and are threaded through as
   external products).

Both solver passes additionally run the **static resource analyzer**
(:mod:`repro.analysis.abstract`, :mod:`repro.analysis.liveness`,
:mod:`repro.analysis.placement`): shape/dtype abstract interpretation,
a certified peak-memory bound (cross-checked against the execution
traces and optionally admission-gated via ``max_memory``), and
owner-computes placement with priced communication volume.

The result is an :class:`~repro.analysis.report.AuditReport`; the audit
never raises on findings — races detected dynamically are converted to
violations (and stop the dynamic pass, since the factorization state is
corrupt beyond the first undeclared access).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..linalg.pivoting import SingularPanelError
from ..runtime.graph import TaskGraph
from ..runtime.schedule import build_step_graph
from ..tiles.distribution import BlockCyclicDistribution
from ..tiles.tile_matrix import TileMatrix
from .abstract import SigContext, interpret_graphs, make_context
from .liveness import analyze_liveness
from .placement import analyze_placement, assign_owners
from .report import AuditReport, RaceReport, Violation
from .tracing import TracingBackend
from .verifier import verify_graph

__all__ = ["audit", "capture_plan", "default_audit_system"]


def default_audit_system(solver, seed: int = 0, n: Optional[int] = None):
    """A well-conditioned random system sized for the solver's tiles.

    Diagonally dominant so every solver (including LU without pivoting)
    factors it without breakdown, with an attached RHS so the RHS task
    paths are audited too.
    """
    if n is None:
        n = 4 * solver.tile_size
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a += n * np.eye(n)
    b = rng.standard_normal(n)
    return a, b


def _system_context(
    solver, a: np.ndarray, b: Optional[np.ndarray]
) -> Tuple[SigContext, BlockCyclicDistribution, int]:
    """Signature context, distribution, and base storage bytes of a system.

    The context carries the *input* dtype (so dtype-preservation is judged
    against what the caller supplied); the base storage is priced at the
    tile store's own dtype (:class:`TileMatrix` holds float64).
    """
    from ..core.solver_base import pad_to_tile_multiple

    a_work, b_work, _ = pad_to_tile_multiple(np.asarray(a), b, solver.tile_size)
    n_tiles = a_work.shape[0] // solver.tile_size
    nrhs = 0
    if b_work is not None:
        b_arr = np.asarray(b_work)
        nrhs = 1 if b_arr.ndim == 1 else int(b_arr.shape[1])
    ctx = make_context(n_tiles, solver.tile_size, nrhs, np.asarray(a).dtype)
    dist = BlockCyclicDistribution(solver.grid, n_tiles)
    storage_item = 8  # TileMatrix stores float64 regardless of input dtype
    base_bytes = a_work.shape[0] * a_work.shape[0] * storage_item
    base_bytes += a_work.shape[0] * nrhs * storage_item
    return ctx, dist, base_bytes


def _resource_passes(
    report: AuditReport,
    graphs: Sequence[TaskGraph],
    ctx: SigContext,
    dist: BlockCyclicDistribution,
    *,
    platform=None,
    base_bytes: Optional[int] = None,
    mode: str = "window",
    traces=None,
    max_memory: Optional[int] = None,
    key: str = "plan",
) -> None:
    """Run the three resource analyses over ``graphs`` into ``report``."""
    if platform is None:
        from ..runtime.platform import dancer_platform

        platform = dancer_platform(dist.grid)
    result = interpret_graphs(list(graphs), ctx)
    report.add("abstract", result.violations)
    report.count("kernels", result.kernels_checked)
    live_violations, cert = analyze_liveness(
        graphs,
        ctx,
        mode=mode,
        base_bytes=base_bytes,
        traces=traces,
        max_memory=max_memory,
    )
    report.add("liveness", live_violations)
    report.resources[f"memory[{key}]"] = cert.as_dict()
    assign_owners(graphs, dist, ctx)
    place_violations, summary = analyze_placement(
        graphs, dist, ctx, platform=platform
    )
    report.add("placement", place_violations)
    report.resources[f"placement[{key}]"] = summary.as_dict()


def capture_plan(solver, a=None, b=None, *, seed: int = 0, n: Optional[int] = None):
    """Plan (and inline-execute) a full factorization; return its artifacts.

    Returns ``(graph, ctx, dist)`` — the cumulative task graph of every
    planned step, the signature context, and the block-cyclic distribution.
    Used by the corruption fixtures and tests that need a real plan to
    mutate or analyze without going through a full :func:`audit`.
    """
    from ..core.solver_base import pad_to_tile_multiple

    if a is None:
        a, b = default_audit_system(solver, seed=seed, n=n)
    ctx, dist, _ = _system_context(solver, a, b)
    with solver._factor_lock:
        a_work, b_work, _ = pad_to_tile_multiple(np.asarray(a), b, solver.tile_size)
        solver.kernel_backend.warm(solver.tile_size, a_work.dtype)
        tiles = TileMatrix.from_dense(a_work, solver.tile_size, rhs=b_work)
        solver._reset()
        graph = TaskGraph()
        for k in range(tiles.n):
            try:
                _, tasks = solver._plan_step(tiles, dist, k)
            except SingularPanelError:
                break
            build_step_graph(tasks, step=k, graph=graph)
            # Planning of step k+1 reads step k's numbers: execute inline.
            for task in tasks:
                if task.fn is not None:
                    task.fn()
    return graph, ctx, dist


def _trace_and_verify(
    solver,
    a: np.ndarray,
    b: Optional[np.ndarray],
    *,
    dynamic: bool,
    report: AuditReport,
    platform=None,
    max_memory: Optional[int] = None,
) -> None:
    """Plan every step in-process, execute under the tracer, verify."""
    from ..core.solver_base import pad_to_tile_multiple

    tracer = (
        solver.kernel_backend
        if isinstance(solver.kernel_backend, TracingBackend)
        else TracingBackend(solver.kernel_backend)
    )
    violations: List[Violation] = []
    with solver._factor_lock:
        previous_backend = solver.kernel_backend
        solver.kernel_backend = tracer  # planners batch/fuse through it
        try:
            a_work, b_work, _ = pad_to_tile_multiple(a, b, solver.tile_size)
            tracer.warm(solver.tile_size, a_work.dtype)
            tiles = TileMatrix.from_dense(a_work, solver.tile_size, rhs=b_work)
            if dynamic:
                tiles = tracer.prepare_tiles(tiles)
            dist = BlockCyclicDistribution(solver.grid, tiles.n)
            solver._reset()
            graph = TaskGraph()
            for k in range(tiles.n):
                try:
                    _, tasks = solver._plan_step(tiles, dist, k)
                except SingularPanelError:
                    break
                build_step_graph(tasks, step=k, graph=graph)
                report.count("tasks", len(tasks))
                # Step k+1's plan depends on step k's numbers: execute
                # the kernels now, traced when the dynamic pass is on.
                if dynamic:
                    tasks = [tracer.wrap_task(t, k) for t in tasks]
                try:
                    for task in tasks:
                        if task.fn is not None:
                            task.fn()
                except RaceReport as race:
                    violations.append(race.as_violation())
                    break
                report.count("steps")
        finally:
            solver.kernel_backend = previous_backend
    report.count("graphs")
    violations.extend(verify_graph(graph))
    report.add("verifier", [v for v in violations if not v.kind.startswith("undeclared")])
    if dynamic:
        report.add(
            "tracer", [v for v in violations if v.kind.startswith("undeclared")]
        )
    ctx, _dist_unused, base_bytes = _system_context(solver, a, b)
    if dynamic and getattr(tracer, "storage_bytes", 0):
        # Cross-check: the bound's base term must cover what the tracing
        # backend actually saw allocated for the tile store.
        base_bytes = max(base_bytes, int(tracer.storage_bytes))
    _resource_passes(
        report,
        [graph],
        ctx,
        dist,
        platform=platform,
        base_bytes=base_bytes,
        # One cumulative graph, executed inline step by step: the
        # position-granular sequential bound is sound here.
        mode="sequential",
        max_memory=max_memory,
        key="plan",
    )


def _verify_executed_graphs(
    solver,
    a: np.ndarray,
    b: Optional[np.ndarray],
    report: AuditReport,
    *,
    platform=None,
    max_memory: Optional[int] = None,
) -> None:
    """Run the real (executor-backed) factorization; verify flushed graphs."""
    violations: List[Violation] = []
    previous = solver.collect_step_graphs
    solver.collect_step_graphs = True
    try:
        solver.factor(a, b)
    finally:
        solver.collect_step_graphs = previous
    produced: Set[object] = set()
    for graph in solver.step_graphs:
        report.count("graphs")
        report.count("tasks", len(graph))
        violations.extend(
            verify_graph(graph, external_products=frozenset(produced))
        )
        for task in graph.tasks:
            if task.call is not None and task.call.produces is not None:
                produced.add(task.call.produces)
    report.add("verifier", violations)
    ctx, dist, base_bytes = _system_context(solver, a, b)
    traces = solver.step_traces if solver.step_traces else None
    _resource_passes(
        report,
        solver.step_graphs,
        ctx,
        dist,
        platform=platform,
        base_bytes=base_bytes,
        # Flush-granular window bound: dominates any executor's true
        # concurrent overlap because flushes run sequentially.
        mode="window",
        traces=traces,
        max_memory=max_memory,
        key="executed",
    )


def audit(
    plan_or_solver,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    *,
    dynamic: bool = True,
    lint: bool = True,
    seed: int = 0,
    n: Optional[int] = None,
    platform=None,
    max_memory: Optional[int] = None,
) -> AuditReport:
    """Audit a task graph or a configured solver; return an AuditReport.

    For a :class:`TaskGraph`, runs the static plan verifier only.  For a
    solver, runs the registry lint (``lint=False`` to skip), the combined
    plan+trace pass (``dynamic=False`` for plan-only), and — when the
    solver has an executor configured — verifies the task graphs of a
    real executor-backed factorization.  ``a``/``b`` default to a
    well-conditioned random system (``seed``, order ``n``).

    Both solver passes also run the resource analyzer: abstract
    shape/dtype interpretation, a certified peak-memory bound (admission
    checked against ``max_memory`` bytes when given), and owner-computes
    placement with communication volume priced by ``platform`` (default:
    the Dancer calibration on the solver's grid).
    """
    report = AuditReport()
    if isinstance(plan_or_solver, TaskGraph):
        report.count("graphs")
        report.count("tasks", len(plan_or_solver))
        report.add("verifier", verify_graph(plan_or_solver))
        return report

    solver = plan_or_solver
    if lint:
        from .registry_lint import lint_registries_with_coverage

        found, coverage = lint_registries_with_coverage()
        report.add("registry", found)
        for key, count in coverage.items():
            report.count(f"registry.{key}", count)
    if a is None:
        a, b = default_audit_system(solver, seed=seed, n=n)
    _trace_and_verify(
        solver,
        a,
        b,
        dynamic=dynamic,
        report=report,
        platform=platform,
        max_memory=max_memory,
    )
    if solver.executor is not None:
        _verify_executed_graphs(
            solver, a, b, report, platform=platform, max_memory=max_memory
        )
    return report
