"""Correctness-analysis subsystem for the dataflow runtime.

Three engines behind one entry point, :func:`audit`:

- the **static plan verifier** (:mod:`repro.analysis.verifier`) proves a
  :class:`~repro.runtime.graph.TaskGraph` is an acyclic, conflict-free,
  well-typed dataflow plan;
- the **dynamic race detector** (:mod:`repro.analysis.tracing`) is a
  ``tracing`` kernel backend that write-guards tile views and raises a
  structured :class:`RaceReport` on any access a kernel performs outside
  its declared read/write sets;
- the **registry lint** (:mod:`repro.analysis.registry_lint`) catches
  plugin drift (unpicklable kernel calls, unpriceable kernel names,
  protocol-violating solvers/executors/backends) at import time instead
  of inside a worker process.

A schedule-perturbation determinism check
(:mod:`repro.analysis.determinism`) rounds the set out: randomized
ready-queue orders on the threaded executor must stay bit-identical to
the inline reference.

On top of those, the **static resource analyzer** certifies resource
behaviour of a plan:

- :mod:`repro.analysis.abstract` — abstract interpretation over (tile
  shape, dtype): conformability of every kernel, end-to-end dtype
  preservation, fused-sweep shape consistency;
- :mod:`repro.analysis.liveness` — tile/product liveness intervals and a
  certified peak-memory bound, cross-checked against execution traces;
- :mod:`repro.analysis.placement` — owner-computes placement under the
  block-cyclic distribution, the LU diagonal-domain pivoting invariant,
  and per-edge communication volume priced by the platform model.

Run it from the command line with ``repro-analyze`` (or
``python -m repro.analysis``).
"""

from .abstract import (
    AbstractResult,
    AbstractTile,
    initial_state,
    interpret_graph,
    interpret_graphs,
    make_context,
    signature_effect,
)
from .audit import audit, capture_plan, default_audit_system
from .corruption import run_corruption_suite
from .determinism import PerturbedThreadedExecutor, determinism_check
from .liveness import (
    MemoryCertificate,
    ProductInterval,
    analyze_liveness,
    certify_peak_memory,
    collect_product_intervals,
    tile_storage_bytes,
    traced_product_peak,
)
from .placement import (
    PlacementSummary,
    analyze_placement,
    assign_owners,
    owner_of_ref,
    task_anchor,
)
from .registry_lint import lint_registries
from .report import AuditReport, RaceReport, Violation
from .tracing import AccessRecorder, TracingBackend, TracingTileMatrix
from .verifier import expected_fused_sets, verify_graph

__all__ = [
    "audit",
    "capture_plan",
    "default_audit_system",
    "verify_graph",
    "expected_fused_sets",
    "lint_registries",
    "determinism_check",
    "PerturbedThreadedExecutor",
    "AccessRecorder",
    "TracingBackend",
    "TracingTileMatrix",
    "AuditReport",
    "RaceReport",
    "Violation",
    # static resource analyzer
    "AbstractResult",
    "AbstractTile",
    "initial_state",
    "interpret_graph",
    "interpret_graphs",
    "make_context",
    "signature_effect",
    "MemoryCertificate",
    "ProductInterval",
    "analyze_liveness",
    "certify_peak_memory",
    "collect_product_intervals",
    "tile_storage_bytes",
    "traced_product_peak",
    "PlacementSummary",
    "analyze_placement",
    "assign_owners",
    "owner_of_ref",
    "task_anchor",
    "run_corruption_suite",
]
