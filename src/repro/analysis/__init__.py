"""Correctness-analysis subsystem for the dataflow runtime.

Three engines behind one entry point, :func:`audit`:

- the **static plan verifier** (:mod:`repro.analysis.verifier`) proves a
  :class:`~repro.runtime.graph.TaskGraph` is an acyclic, conflict-free,
  well-typed dataflow plan;
- the **dynamic race detector** (:mod:`repro.analysis.tracing`) is a
  ``tracing`` kernel backend that write-guards tile views and raises a
  structured :class:`RaceReport` on any access a kernel performs outside
  its declared read/write sets;
- the **registry lint** (:mod:`repro.analysis.registry_lint`) catches
  plugin drift (unpicklable kernel calls, unpriceable kernel names,
  protocol-violating solvers/executors/backends) at import time instead
  of inside a worker process.

A schedule-perturbation determinism check
(:mod:`repro.analysis.determinism`) rounds the set out: randomized
ready-queue orders on the threaded executor must stay bit-identical to
the inline reference.

Run it from the command line with ``repro-analyze`` (or
``python -m repro.analysis``).
"""

from .audit import audit, default_audit_system
from .determinism import PerturbedThreadedExecutor, determinism_check
from .registry_lint import lint_registries
from .report import AuditReport, RaceReport, Violation
from .tracing import AccessRecorder, TracingBackend, TracingTileMatrix
from .verifier import expected_fused_sets, verify_graph

__all__ = [
    "audit",
    "default_audit_system",
    "verify_graph",
    "expected_fused_sets",
    "lint_registries",
    "determinism_check",
    "PerturbedThreadedExecutor",
    "AccessRecorder",
    "TracingBackend",
    "TracingTileMatrix",
    "AuditReport",
    "RaceReport",
    "Violation",
]
