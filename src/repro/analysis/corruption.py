"""Seeded corruption fixtures for the static resource analyzer.

Each fixture takes a *real* emitted plan, corrupts it in one specific,
realistic way (a mis-placed task, a pivot chain escaping its domain, a
kernel that silently drops precision, a fused sweep whose argument range
disagrees with its declared tile sets), and asserts the analyzer flags
it.  They serve two purposes: regression tests that the analyses have
teeth, and executable documentation of what each violation kind means.

Every fixture returns the list of violations the corrupted artifact
produced; callers check the expected ``kind`` is present.
``run_corruption_suite()`` runs them all and reports detection per
fixture — CI fails if any corruption goes unnoticed.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Any, Dict, List, Tuple

import numpy as np

from ..kernels.dispatch import (
    KERNEL_SIGNATURES,
    KERNELS,
    KernelCall,
    KernelSignature,
    OpEffect,
)
from ..runtime.graph import TaskGraph
from .abstract import interpret_graph, make_context
from .audit import capture_plan
from .placement import analyze_placement, assign_owners
from .report import Violation

__all__ = [
    "corrupt_wrong_owner",
    "corrupt_cross_domain_pivot",
    "corrupt_dtype_dropping_kernel",
    "corrupt_fused_sweep_range",
    "corrupt_factor_shape",
    "run_corruption_suite",
]


def _solver(algorithm: str = "hybrid", grid: str = "2x2"):
    from ..api.facade import make_solver

    return make_solver(algorithm, tile_size=4, grid=grid)


def corrupt_wrong_owner(algorithm: str = "hybrid") -> List[Violation]:
    """A task scheduled on a rank that does not own its written tile.

    Models a distributed planner bug: owners are assigned correctly, then
    one task is flipped to a different rank.  ``analyze_placement`` must
    report ``wrong-owner`` for exactly that task.
    """
    graph, ctx, dist = capture_plan(_solver(algorithm))
    assign_owners([graph], dist, ctx)
    victim = next(t for t in graph.tasks if t.call is not None and t.writes)
    victim.owner = (victim.owner + 1) % dist.grid.size
    violations, _summary = analyze_placement([graph], dist, ctx)
    return violations


def corrupt_cross_domain_pivot(algorithm: str = "lu_nopiv") -> List[Violation]:
    """A pivot chain spanning two nodes without being panel-wide.

    Rewrites one ``lu.scatter_factor``'s row set to a proper multi-owner
    subset of the panel — pivoting that would require inter-node
    communication without being a declared LUPP exchange.  The diagonal
    -domain invariant check must flag ``cross-domain-pivot``.
    """
    graph, ctx, dist = capture_plan(_solver(algorithm))
    victim = next(
        t
        for t in graph.tasks
        if t.call is not None and t.call.kernel == "lu.scatter_factor"
    )
    k, rows, factor = victim.call.args
    panel = dist.panel_rows(k)
    bad_rows: Tuple[int, ...] = ()
    for candidate in (tuple(panel[:2]), tuple(panel[::2])):
        owners = {dist.owner(i, k) for i in candidate}
        if len(owners) > 1 and list(candidate) != panel:
            bad_rows = candidate
            break
    if not bad_rows:  # pragma: no cover - needs a >1-rank panel
        raise RuntimeError("fixture needs a panel spanning at least two ranks")
    victim.call = dataclasses.replace(victim.call, args=(k, bad_rows, factor))
    assign_owners([graph], dist, ctx)
    violations, _summary = analyze_placement([graph], dist, ctx, check_declared=False)
    return violations


@contextlib.contextmanager
def _temporary_kernel(name: str, fn, signature: KernelSignature):
    """Register a kernel + signature for the duration of the block."""
    if name in KERNELS or name in KERNEL_SIGNATURES:
        raise ValueError(f"fixture kernel {name!r} collides with a real op")
    KERNELS[name] = fn
    KERNEL_SIGNATURES[name] = signature
    try:
        yield
    finally:
        KERNELS.pop(name, None)
        KERNEL_SIGNATURES.pop(name, None)


def corrupt_dtype_dropping_kernel() -> List[Violation]:
    """A kernel stub whose signature declares it hard-casts to float64.

    Under a float32 problem the abstract interpreter must flag every tile
    such a kernel writes as ``dtype-mismatch`` — the static analogue of a
    kernel calling an implicitly-double LAPACK routine on single-precision
    input.
    """

    def _effect(call: KernelCall, step: int, ctx) -> OpEffect:
        (i, j) = call.args
        return OpEffect(reads=frozenset({(i, j)}), writes=frozenset({(i, j)}))

    signature = KernelSignature(effect=_effect, dtype_rule="float64")
    with _temporary_kernel("fixture.dtype_drop", lambda *a: None, signature):
        graph = TaskGraph()
        call = KernelCall(kernel="fixture.dtype_drop", args=(0, 0))
        graph.add_task(
            "dtype_drop",
            step=0,
            reads={(0, 0)},
            writes={(0, 0)},
            call=call,
        )
        ctx = make_context(2, 4, 0, np.float32)
        result = interpret_graph(graph, ctx)
    return result.violations


def corrupt_fused_sweep_range(algorithm: str = "lu_nopiv") -> List[Violation]:
    """A fused GEMM sweep whose argument range outruns its declared tiles.

    Extends one ``fused.lu_gemm_sweep``'s row range by one: the signature
    now implies reads/writes (and a trailing tile) the planner never
    declared — possibly beyond the matrix.  The interpreter must report
    set mismatches (and ``unknown-tile`` when the range walks off the
    edge).
    """
    from ..api.facade import make_solver

    solver = make_solver(algorithm, tile_size=4, grid="2x2", kernel_backend="fused")
    graph, ctx, dist = capture_plan(solver)
    victim = next(
        t
        for t in graph.tasks
        if t.call is not None and t.call.kernel == "fused.lu_gemm_sweep"
    )
    backend, k, j, i0, i1 = victim.call.args
    victim.call = dataclasses.replace(victim.call, args=(backend, k, j, i0, i1 + 1))
    result = interpret_graph(graph, ctx)
    return result.violations


def corrupt_factor_shape(algorithm: str = "lu_nopiv") -> List[Violation]:
    """A scatter task carrying a truncated panel factor.

    Drops the last tile row of one ``lu.scatter_factor``'s LU factor; the
    concrete-shape check (factor rows = len(rows) * nb) must report
    ``shape-mismatch``.
    """
    graph, ctx, dist = capture_plan(_solver(algorithm))
    victim = next(
        t
        for t in graph.tasks
        if t.call is not None and t.call.kernel == "lu.scatter_factor"
    )
    k, rows, factor = victim.call.args
    truncated = dataclasses.replace(factor, lu=factor.lu[: -ctx.nb, :])
    victim.call = dataclasses.replace(victim.call, args=(k, rows, truncated))
    result = interpret_graph(graph, ctx)
    return result.violations


#: Fixture name -> (builder, violation kind that must be present).
_SUITE = {
    "wrong-owner": (corrupt_wrong_owner, "wrong-owner"),
    "cross-domain-pivot": (corrupt_cross_domain_pivot, "cross-domain-pivot"),
    "dtype-drop": (corrupt_dtype_dropping_kernel, "dtype-mismatch"),
    "fused-range": (corrupt_fused_sweep_range, "read-set-mismatch"),
    "factor-shape": (corrupt_factor_shape, "shape-mismatch"),
}


def run_corruption_suite() -> Dict[str, Dict[str, Any]]:
    """Run every fixture; report whether its corruption was detected."""
    out: Dict[str, Dict[str, Any]] = {}
    for name, (builder, expected_kind) in _SUITE.items():
        violations = builder()
        kinds = sorted({v.kind for v in violations})
        out[name] = {
            "expected": expected_kind,
            "detected": expected_kind in kinds,
            "kinds": kinds,
            "violations": len(violations),
        }
    return out
