"""Abstract interpretation of task plans over (tile shape, dtype).

The analyzer symbolically executes every emitted :class:`TaskGraph` over an
abstract domain where each tile is a ``(rows, cols, dtype)`` triple.  Each
:class:`~repro.kernels.dispatch.KernelCall` is given a *transfer rule* — the
:data:`~repro.kernels.dispatch.KERNEL_SIGNATURES` entry registered next to
its op in :data:`~repro.kernels.dispatch.KERNELS` — which yields the tile
sets the kernel reads and writes, conformability checks over its operands,
and a dtype rule.  Walking the graph in topological order then proves, for
the whole plan and without running a single kernel:

- every kernel application conforms (matrix products, stacked panels, and
  the concrete panel-factor arrays carried inside calls all have the shapes
  the plan geometry implies);
- dtypes are preserved end to end (an operation that silently forces
  float64 on a float32 problem — the class of bug PR 7 fixed dynamically in
  ``qr.couple`` — is flagged at every write it contaminates);
- the signature-declared access sets equal the sets the planner declared on
  the task, so fused sweeps are shape- and access-consistent with their
  constituent kernels;
- every referenced tile exists (out-of-range fused unions surface as
  ``unknown-tile``).

Interpretation is parametric in the dtype: the context carries the dtype of
the *input* matrix, so float32 coverage is real even though the concrete
``TileMatrix`` storage normalises to float64.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..kernels.dispatch import KERNEL_SIGNATURES, SigContext
from ..runtime.graph import TaskGraph
from ..runtime.task import RHS_COLUMN, Task
from .report import Violation

__all__ = [
    "task_label",
    "AbstractTile",
    "AbstractResult",
    "make_context",
    "initial_state",
    "signature_effect",
    "interpret_graph",
    "interpret_graphs",
]


def task_label(task: Task) -> str:
    """Human-readable handle for a task in violation messages."""
    return f"task {task.uid} ({task.kernel}@{task.step})"


@dataclass(frozen=True)
class AbstractTile:
    """Abstract value of one tile: its shape and dtype."""

    rows: int
    cols: int
    dtype: Any

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)


@dataclass
class AbstractResult:
    """Outcome of interpreting one or more graphs."""

    violations: List[Violation] = field(default_factory=list)
    state: Dict[Tuple[int, int], AbstractTile] = field(default_factory=dict)
    products: Dict[Any, Dict[str, Any]] = field(default_factory=dict)
    tasks_checked: int = 0
    kernels_checked: int = 0


def make_context(n: int, nb: int, nrhs: int, dtype: Any = np.float64) -> SigContext:
    """Build the signature-evaluation context for an ``n``-tile problem."""
    return SigContext(n=n, nb=nb, nrhs=nrhs, dtype=np.dtype(dtype))


def initial_state(ctx: SigContext) -> Dict[Tuple[int, int], AbstractTile]:
    """Abstract tiles of the freshly prepared problem.

    Matrix tiles are ``nb``-square; the RHS pseudo-column holds one
    ``nb x nrhs`` tile per tile row when a right-hand side is present.
    """
    state: Dict[Tuple[int, int], AbstractTile] = {}
    for i in range(ctx.n):
        for j in range(ctx.n):
            state[(i, j)] = AbstractTile(ctx.nb, ctx.nb, ctx.dtype)
        if ctx.nrhs > 0:
            state[(i, RHS_COLUMN)] = AbstractTile(ctx.nb, ctx.nrhs, ctx.dtype)
    return state


def signature_effect(task: Task, ctx: SigContext):
    """Resolve ``task``'s transfer rule and evaluate it.

    Returns ``(signature, effect, violation)``; on any failure the first two
    are ``None`` and the violation explains why (missing rule for the op, or
    the rule raising on malformed arguments).  Tasks without a descriptor
    (``task.call is None``) return all-``None`` — the caller decides whether
    opaque tasks are acceptable in its pass.
    """
    call = getattr(task, "call", None)
    if call is None:
        return None, None, None
    signature = KERNEL_SIGNATURES.get(call.kernel)
    if signature is None:
        return (
            None,
            None,
            Violation(
                kind="missing-transfer-rule",
                message=(
                    f"kernel op {call.kernel!r} has no entry in KERNEL_SIGNATURES; "
                    "the abstract interpreter cannot model it"
                ),
                tasks=(task.uid,),
                subject=call.kernel,
            ),
        )
    try:
        effect = signature.effect(call, task.step, ctx)
    except Exception as exc:
        return (
            None,
            None,
            Violation(
                kind="signature-error",
                message=f"signature of {call.kernel!r} failed on task {task_label(task)}: {exc!r}",
                tasks=(task.uid,),
                subject=call.kernel,
            ),
        )
    return signature, effect, None


def _ref_label(ref: Tuple[int, int]) -> str:
    return f"rhs[{ref[0]}]" if ref[1] == RHS_COLUMN else f"tile{ref!r}"


def _operand_shape(
    operand: Any,
    state: Dict[Tuple[int, int], AbstractTile],
    task: Task,
    violations: List[Violation],
) -> Optional[Tuple[int, int]]:
    """Shape of a check operand, or None (violation already recorded)."""
    if isinstance(operand, tuple) and operand and operand[0] == "lit":
        return (operand[1], operand[2])
    if isinstance(operand, tuple) and operand and operand[0] == "stack":
        rows = 0
        cols: Optional[int] = None
        for ref in operand[1]:
            shape = _operand_shape(ref, state, task, violations)
            if shape is None:
                return None
            rows += shape[0]
            if cols is None:
                cols = shape[1]
            elif cols != shape[1]:
                violations.append(
                    Violation(
                        kind="shape-mismatch",
                        message=(
                            f"{task_label(task)}: stacked operand mixes column counts "
                            f"({cols} vs {shape[1]} at {_ref_label(ref)})"
                        ),
                        tasks=(task.uid,),
                        tile=ref,
                    )
                )
                return None
        return (rows, 0 if cols is None else cols)
    tile = state.get(operand)
    if tile is None:
        violations.append(
            Violation(
                kind="unknown-tile",
                message=f"{task_label(task)} references {_ref_label(operand)}, which does not exist",
                tasks=(task.uid,),
                tile=operand,
            )
        )
        return None
    return tile.shape


def _run_checks(
    task: Task,
    checks: Tuple[Any, ...],
    state: Dict[Tuple[int, int], AbstractTile],
    violations: List[Violation],
) -> None:
    for check in checks:
        kind = check[0]
        if kind == "matmul":
            _, a, b, out = check
            sa = _operand_shape(a, state, task, violations)
            sb = _operand_shape(b, state, task, violations)
            so = _operand_shape(out, state, task, violations)
            if sa is None or sb is None or so is None:
                continue
            if sa[1] != sb[0]:
                violations.append(
                    Violation(
                        kind="shape-mismatch",
                        message=(
                            f"{task_label(task)}: product does not conform "
                            f"({sa[0]}x{sa[1]} @ {sb[0]}x{sb[1]})"
                        ),
                        tasks=(task.uid,),
                    )
                )
            elif so != (sa[0], sb[1]):
                violations.append(
                    Violation(
                        kind="shape-mismatch",
                        message=(
                            f"{task_label(task)}: result shape {so[0]}x{so[1]} does not match "
                            f"the product shape {sa[0]}x{sb[1]}"
                        ),
                        tasks=(task.uid,),
                    )
                )
        elif kind == "same_shape":
            _, a, b = check
            sa = _operand_shape(a, state, task, violations)
            sb = _operand_shape(b, state, task, violations)
            if sa is not None and sb is not None and sa != sb:
                violations.append(
                    Violation(
                        kind="shape-mismatch",
                        message=(
                            f"{task_label(task)}: operands must share a shape "
                            f"({sa[0]}x{sa[1]} vs {sb[0]}x{sb[1]})"
                        ),
                        tasks=(task.uid,),
                    )
                )
        elif kind == "concrete":
            _, label, actual, expected = check
            if tuple(actual) != tuple(expected):
                violations.append(
                    Violation(
                        kind="shape-mismatch",
                        message=(
                            f"{task_label(task)}: carried array {label} has shape "
                            f"{tuple(actual)}, the plan geometry implies {tuple(expected)}"
                        ),
                        tasks=(task.uid,),
                        subject=label,
                    )
                )
        else:  # pragma: no cover - defensive against future check kinds
            violations.append(
                Violation(
                    kind="signature-error",
                    message=f"{task_label(task)}: unknown check kind {kind!r}",
                    tasks=(task.uid,),
                )
            )


def interpret_graph(
    graph: TaskGraph,
    ctx: SigContext,
    *,
    state: Optional[Dict[Tuple[int, int], AbstractTile]] = None,
    products: Optional[Dict[Any, Dict[str, Any]]] = None,
    result: Optional[AbstractResult] = None,
) -> AbstractResult:
    """Symbolically execute one graph; thread state/products across calls.

    Passing the ``state``/``products``/``result`` of a previous call chains
    interpretation across the pipeline-flushed step graphs of one
    factorization.
    """
    if result is None:
        result = AbstractResult()
    result.state = initial_state(ctx) if state is None else state
    result.products = {} if products is None else products
    state = result.state
    violations = result.violations

    for uid in graph.topological_order():
        task = graph.tasks[uid]
        result.tasks_checked += 1
        signature, effect, violation = signature_effect(task, ctx)
        if violation is not None:
            violations.append(violation)
            continue
        if effect is None:  # opaque task (no descriptor): nothing to model
            continue
        result.kernels_checked += effect.unit_count

        if frozenset(effect.reads) != frozenset(task.reads):
            violations.append(
                Violation(
                    kind="read-set-mismatch",
                    message=(
                        f"{task_label(task)}: planner declared reads "
                        f"{sorted(task.reads)} but the {task.call.kernel!r} signature "
                        f"implies {sorted(effect.reads)}"
                    ),
                    tasks=(uid,),
                    subject=task.call.kernel,
                )
            )
        if frozenset(effect.writes) != frozenset(task.writes):
            violations.append(
                Violation(
                    kind="write-set-mismatch",
                    message=(
                        f"{task_label(task)}: planner declared writes "
                        f"{sorted(task.writes)} but the {task.call.kernel!r} signature "
                        f"implies {sorted(effect.writes)}"
                    ),
                    tasks=(uid,),
                    subject=task.call.kernel,
                )
            )
        fused_units = max(int(getattr(task, "fused", 1) or 1), 1)
        if effect.unit_count != fused_units:
            violations.append(
                Violation(
                    kind="fused-unit-mismatch",
                    message=(
                        f"{task_label(task)}: task fuses {fused_units} kernels but the "
                        f"signature decomposes into {effect.unit_count}"
                    ),
                    tasks=(uid,),
                    subject=task.call.kernel,
                )
            )

        _run_checks(task, effect.checks, state, violations)

        # Dtype transfer: reads promote; an explicit rule overrides.  A write
        # whose dtype disagrees with the tile's current abstract dtype is a
        # preservation violation; the (wrong) dtype still propagates so every
        # contaminated downstream write is reported too.
        read_dtypes = [state[r].dtype for r in effect.reads if r in state]
        promoted = np.result_type(*read_dtypes) if read_dtypes else ctx.dtype
        if signature.dtype_rule != "preserve":
            promoted = np.dtype(signature.dtype_rule)
        for ref in effect.writes:
            tile = state.get(ref)
            if tile is None:
                # unknown-tile was already recorded by the checks above when
                # the ref appeared there; record it here too for writes that
                # no check touches.
                if not any(
                    v.kind == "unknown-tile" and v.tile == ref and uid in v.tasks
                    for v in violations
                ):
                    violations.append(
                        Violation(
                            kind="unknown-tile",
                            message=(
                                f"{task_label(task)} writes {_ref_label(ref)}, "
                                "which does not exist"
                            ),
                            tasks=(uid,),
                            tile=ref,
                        )
                    )
                continue
            if np.dtype(promoted) != np.dtype(tile.dtype):
                violations.append(
                    Violation(
                        kind="dtype-mismatch",
                        message=(
                            f"{task_label(task)}: {task.call.kernel!r} writes "
                            f"{_ref_label(ref)} as {np.dtype(promoted).name}, "
                            f"tile holds {np.dtype(tile.dtype).name}"
                        ),
                        tasks=(uid,),
                        tile=ref,
                        subject=task.call.kernel,
                    )
                )
                state[ref] = AbstractTile(tile.rows, tile.cols, np.dtype(promoted))

        produced = task.call.produces
        if produced is not None:
            result.products[produced] = {
                "bytes": effect.product_bytes,
                "dtype": np.dtype(promoted),
                "producer": uid,
            }
    return result


def interpret_graphs(
    graphs: List[TaskGraph], ctx: SigContext
) -> AbstractResult:
    """Interpret a sequence of flushed step graphs as one program."""
    result: Optional[AbstractResult] = None
    state: Optional[Dict[Tuple[int, int], AbstractTile]] = None
    products: Optional[Dict[Any, Dict[str, Any]]] = None
    for graph in graphs:
        result = interpret_graph(
            graph, ctx, state=state, products=products, result=result
        )
        state, products = result.state, result.products
    return result if result is not None else AbstractResult(state=initial_state(ctx))
