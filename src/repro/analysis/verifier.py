"""Static plan verifier for dataflow task graphs.

Checks one :class:`~repro.runtime.graph.TaskGraph` for every invariant
the executors rely on but never re-derive:

- **acyclicity** — a valid topological order exists (reusing
  :class:`~repro.runtime.graph.CycleError` for the diagnosis);
- **conflict freedom** — no two tasks that are concurrently schedulable
  (no dependency path in either direction) write the same tile
  (write-write, which covers duplicate writes without an ordering edge)
  or read a tile the other writes (read-write);
- **fused unions** — a fused task's declared ``reads``/``writes`` match
  exactly the union of its constituent per-kernel accesses, reconstructed
  from its ``fused.*`` :class:`~repro.kernels.dispatch.KernelCall`
  descriptor;
- **product flow** — every ``consumes`` key is produced by an ancestor
  task along every topological order (equivalently: by a task with a
  dependency path to the consumer), or by an earlier graph of the same
  factorization (``external_products``).

Reachability uses ancestor bitsets (one arbitrary-precision int per
task), so verifying a whole factorization plan of T tasks is O(E·T/64)
— fast enough to run over every solver in CI.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..runtime.graph import CycleError, TaskGraph
from ..runtime.task import RHS_COLUMN, Task, TileRef
from .report import Violation

__all__ = ["verify_graph", "expected_fused_sets"]


def expected_fused_sets(
    task: Task,
) -> Optional[Tuple[Set[TileRef], Set[TileRef], int]]:
    """Reconstruct ``(reads, writes, count)`` of a fused task's descriptor.

    Replays the per-tile access rules of the constituent kernels from the
    task's ``fused.*`` :class:`KernelCall` arguments (the QR chains take
    the elimination step ``k`` from ``task.step``).  Returns ``None`` for
    descriptors this verifier does not know how to expand.
    """
    call = task.call
    if call is None:
        return None
    k = task.step
    args = call.args
    if call.kernel == "fused.lu_gemm_sweep":
        _, kk, j, i0, i1 = args
        writes = {(i, j) for i in range(i0, i1)}
        reads = {(i, kk) for i in range(i0, i1)} | {(kk, j)} | writes
        return reads, writes, i1 - i0
    if call.kernel == "fused.lu_gemm_rhs_sweep":
        _, kk, i0, i1 = args
        writes = {(i, RHS_COLUMN) for i in range(i0, i1)}
        reads = {(i, kk) for i in range(i0, i1)} | {(kk, RHS_COLUMN)} | writes
        return reads, writes, i1 - i0
    if call.kernel == "fused.qr_column_chain":
        _, j, ops = args
        return _qr_chain_sets(ops, k, j)
    if call.kernel == "fused.qr_rhs_chain":
        (_, ops) = args
        return _qr_chain_sets(ops, k, RHS_COLUMN)
    if call.kernel == "fused.incpiv_ssssm_chain":
        _, kk, j, rows = args
        writes = {(kk, j)} | {(i, j) for i in rows}
        reads = {(i, kk) for i in rows} | writes
        return reads, writes, len(rows)
    if call.kernel == "fused.incpiv_ssssm_rhs_chain":
        _, kk, rows = args
        writes = {(kk, RHS_COLUMN)} | {(i, RHS_COLUMN) for i in rows}
        reads = {(i, kk) for i in rows} | writes
        return reads, writes, len(rows)
    return None


def _qr_chain_sets(
    ops: Iterable[tuple], k: int, j: int
) -> Tuple[Set[TileRef], Set[TileRef], int]:
    reads: Set[TileRef] = set()
    writes: Set[TileRef] = set()
    count = 0
    for op in ops:
        count += 1
        if op[0] == "unmqr":
            _, row, _ = op
            reads.update({(row, k), (row, j)})
            writes.add((row, j))
        else:
            _, elim, killed, _ = op
            reads.update({(killed, k), (elim, j), (killed, j)})
            writes.update({(elim, j), (killed, j)})
    return reads, writes, count


def _fmt_tiles(tiles: Iterable[TileRef], limit: int = 6) -> str:
    items = sorted(tiles)
    shown = ", ".join(map(str, items[:limit]))
    extra = len(items) - limit
    return shown + (f", ... +{extra}" if extra > 0 else "")


def verify_graph(
    graph: TaskGraph,
    *,
    external_products: FrozenSet = frozenset(),
) -> List[Violation]:
    """Verify one task graph; return all violations found (empty = clean).

    ``external_products`` names ``produces`` keys satisfied outside this
    graph — the lookahead pipeline flushes a factorization as several
    graphs, and a later flush may legally consume factors produced by an
    earlier one.
    """
    violations: List[Violation] = []
    try:
        order = graph.topological_order()
    except CycleError as exc:
        return [
            Violation(
                kind="cycle",
                message=str(exc),
                tasks=exc.task_uids,
            )
        ]

    # Ancestor bitsets: bit d of ancestors[uid] is set iff task d has a
    # dependency path to task uid.  Built in topological order so every
    # dependency's bitset is final before it is merged.
    ancestors: Dict[int, int] = {}
    for uid in order:
        bits = 0
        for d in graph.task(uid).deps:
            bits |= ancestors[d] | (1 << d)
        ancestors[uid] = bits

    def ordered(a: int, b: int) -> bool:
        return bool((ancestors[b] >> a) & 1 or (ancestors[a] >> b) & 1)

    # ------------------------------------------------------------------ #
    # Concurrent-access conflicts
    # ------------------------------------------------------------------ #
    writers: Dict[TileRef, List[int]] = defaultdict(list)
    readers: Dict[TileRef, List[int]] = defaultdict(list)
    for t in graph.tasks:
        for tile in t.writes:
            writers[tile].append(t.uid)
        for tile in t.reads - t.writes:
            readers[tile].append(t.uid)

    for tile, ws in sorted(writers.items()):
        for i, a in enumerate(ws):
            for b in ws[i + 1:]:
                if not ordered(a, b):
                    violations.append(
                        Violation(
                            kind="write-write-conflict",
                            message=(
                                f"tasks {a} ({graph.task(a).kernel}) and "
                                f"{b} ({graph.task(b).kernel}) both write "
                                f"tile {tile} with no ordering edge"
                            ),
                            tasks=(a, b),
                            tile=tile,
                        )
                    )
            for r in readers.get(tile, ()):
                if not ordered(a, r):
                    violations.append(
                        Violation(
                            kind="read-write-conflict",
                            message=(
                                f"task {r} ({graph.task(r).kernel}) reads "
                                f"tile {tile} concurrently with writer "
                                f"{a} ({graph.task(a).kernel})"
                            ),
                            tasks=(a, r),
                            tile=tile,
                        )
                    )

    # ------------------------------------------------------------------ #
    # Fused-task union sets
    # ------------------------------------------------------------------ #
    for t in graph.tasks:
        if t.fused <= 1:
            continue
        expected = expected_fused_sets(t)
        if expected is None:
            violations.append(
                Violation(
                    kind="fused-descriptor-missing",
                    message=(
                        f"fused task {t.uid} ({t.kernel}, x{t.fused}) has "
                        "no expandable fused.* KernelCall descriptor"
                        + (f" (got {t.call.kernel!r})" if t.call else "")
                    ),
                    tasks=(t.uid,),
                )
            )
            continue
        exp_reads, exp_writes, exp_count = expected
        if t.fused != exp_count:
            violations.append(
                Violation(
                    kind="fused-count-mismatch",
                    message=(
                        f"task {t.uid} ({t.kernel}) declares fused={t.fused} "
                        f"but its descriptor batches {exp_count} kernels"
                    ),
                    tasks=(t.uid,),
                )
            )
        for label, declared, exp in (
            ("reads", set(t.reads), exp_reads),
            ("writes", set(t.writes), exp_writes),
        ):
            if declared != exp:
                missing = exp - declared
                extra = declared - exp
                parts = []
                if missing:
                    parts.append(f"missing {_fmt_tiles(missing)}")
                if extra:
                    parts.append(f"extraneous {_fmt_tiles(extra)}")
                violations.append(
                    Violation(
                        kind="fused-union-mismatch",
                        message=(
                            f"task {t.uid} ({t.kernel}, x{t.fused}) declared "
                            f"{label} differ from the union of its "
                            f"constituent kernels: {'; '.join(parts)}"
                        ),
                        tasks=(t.uid,),
                    )
                )

    # ------------------------------------------------------------------ #
    # Produces/consumes product flow
    # ------------------------------------------------------------------ #
    producers: Dict[object, List[int]] = defaultdict(list)
    for t in graph.tasks:
        if t.call is not None and t.call.produces is not None:
            producers[t.call.produces].append(t.uid)
    for key, ps in producers.items():
        for i, a in enumerate(ps):
            for b in ps[i + 1:]:
                if not ordered(a, b):
                    violations.append(
                        Violation(
                            kind="duplicate-producer",
                            message=(
                                f"tasks {a} and {b} both produce key {key!r} "
                                "with no ordering edge"
                            ),
                            tasks=(a, b),
                        )
                    )
    for t in graph.tasks:
        if t.call is None:
            continue
        for key in t.call.consumes:
            ps = producers.get(key)
            if not ps:
                if key not in external_products:
                    violations.append(
                        Violation(
                            kind="missing-producer",
                            message=(
                                f"task {t.uid} ({t.kernel}) consumes key "
                                f"{key!r} that no task in the graph produces"
                            ),
                            tasks=(t.uid,),
                        )
                    )
                continue
            if not any((ancestors[t.uid] >> p) & 1 for p in ps):
                violations.append(
                    Violation(
                        kind="unordered-producer",
                        message=(
                            f"task {t.uid} ({t.kernel}) consumes key {key!r} "
                            f"but no producer ({ps}) is one of its ancestors"
                        ),
                        tasks=(t.uid, *ps),
                    )
                )

    return violations
