"""Lint for the plugin registries (solvers, executors, backends, kernels).

Worker processes and the calibration pipeline assume conventions the
registries themselves never enforce: every dispatchable kernel op must
have a picklable :class:`~repro.kernels.dispatch.KernelCall` form, must
map onto task-kernel names the cost model can price (a flops entry in
:mod:`repro.kernels.flops` or the documented generic ``nb^3`` fallback),
and every registered backend/executor/solver must satisfy the protocol
the runtime calls into.  A plugin that drifts from those conventions
otherwise fails deep inside a worker process, long after registration;
``lint_registries()`` catches the drift up front — run it at import time
(CI does, via the audit CLI) so a broken registration fails the build,
not a production solve.
"""

from __future__ import annotations

import inspect
import pickle
from typing import Dict, List, Tuple

from .report import Violation

__all__ = ["lint_registries", "TASK_KERNELS_OF_OP", "GENERIC_COST_KERNELS"]


#: Dispatch-op name -> task-kernel names its tasks are labelled with.
#: This is the seam between the worker-side KERNELS table and the
#: calibration/cost layer (ExecutionTrace.kernel_of_task records the
#: task-kernel names); an op missing here is plugin drift the cost model
#: cannot price.  Extend it when registering new kernel ops.
TASK_KERNELS_OF_OP: Dict[str, Tuple[str, ...]] = {
    "lu.scatter_factor": ("getrf",),
    "lu.swptrsm": ("swptrsm",),
    "lu.swptrsm_rhs": ("swptrsm",),
    "lu.trsm": ("trsm",),
    "lu.gemm": ("gemm",),
    "lu.gemm_rhs": ("gemm_rhs",),
    "qr.geqrt": ("geqrt",),
    "qr.unmqr": ("unmqr",),
    "qr.unmqr_rhs": ("unmqr_rhs",),
    "qr.couple": ("tsqrt", "ttqrt"),
    "qr.update": ("tsmqr", "ttmqr"),
    "qr.update_rhs": ("tsmqr_rhs", "ttmqr_rhs"),
    "incpiv.getrf": ("getrf",),
    "incpiv.swptrsm": ("swptrsm",),
    "incpiv.swptrsm_rhs": ("swptrsm",),
    "incpiv.tstrf": ("tstrf",),
    "incpiv.ssssm": ("ssssm",),
    "incpiv.ssssm_rhs": ("ssssm_rhs",),
    "fused.lu_gemm_sweep": ("gemm",),
    "fused.lu_gemm_rhs_sweep": ("gemm_rhs",),
    "fused.qr_column_chain": ("unmqr", "tsmqr"),
    "fused.qr_rhs_chain": ("unmqr_rhs", "tsmqr_rhs"),
    "fused.incpiv_ssssm_chain": ("ssssm",),
    "fused.incpiv_ssssm_rhs_chain": ("ssssm_rhs",),
}

#: Task kernels with no closed-form Table-I entry; kernel_cost_fn prices
#: them with the generic nb^3 fallback by design.
GENERIC_COST_KERNELS = frozenset({"tstrf", "ssssm"})


def _priceable(kernel: str) -> bool:
    """True when the cost layer can price a task-kernel name."""
    from ..kernels.flops import KernelFlops

    base = kernel[:-4] if kernel.endswith("_rhs") else kernel
    if base in GENERIC_COST_KERNELS:
        return True
    try:
        KernelFlops(8).of(base)
    except KeyError:
        return False
    return True


def _constructible_without_args(obj, skip: Tuple[str, ...] = ()) -> List[str]:
    """Names of required parameters beyond ``skip`` (empty = constructible)."""
    try:
        sig = inspect.signature(obj)
    except (TypeError, ValueError):  # builtins without signatures
        return []
    required = []
    for name, p in sig.parameters.items():
        if name in skip or p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
            continue
        if p.default is p.empty:
            required.append(name)
    return required


def _lint_kernels() -> Tuple[List[Violation], int]:
    from ..kernels.dispatch import KERNEL_SIGNATURES, KERNELS, KernelCall

    violations: List[Violation] = []
    # The abstract interpreter (repro.analysis.abstract) can only model ops
    # that declare a shape/dtype signature; drift in either direction —
    # a dispatchable op without a signature, or a signature for an op that
    # no longer dispatches — is a lint failure.
    for name in sorted(set(KERNELS) - set(KERNEL_SIGNATURES)):
        violations.append(
            Violation(
                kind="missing-kernel-signature",
                message=(
                    f"kernel op {name!r} is registered in KERNELS but has no "
                    "shape/dtype signature in KERNEL_SIGNATURES — the static "
                    "resource analyzer cannot model its tasks"
                ),
                subject=name,
            )
        )
    for name in sorted(set(KERNEL_SIGNATURES) - set(KERNELS)):
        violations.append(
            Violation(
                kind="orphan-kernel-signature",
                message=(
                    f"KERNEL_SIGNATURES declares {name!r} but no such op is "
                    "registered in KERNELS — stale signature, remove or "
                    "re-register the op"
                ),
                subject=name,
            )
        )
    for name in sorted(KERNELS):
        call = KernelCall(kernel=name)
        try:
            restored = pickle.loads(pickle.dumps(call))
        except Exception as exc:
            violations.append(
                Violation(
                    kind="unpicklable-kernel-call",
                    message=f"KernelCall({name!r}) does not pickle: {exc}",
                    subject=name,
                )
            )
        else:
            if restored != call:
                violations.append(
                    Violation(
                        kind="unpicklable-kernel-call",
                        message=(
                            f"KernelCall({name!r}) does not round-trip "
                            "through pickle unchanged"
                        ),
                        subject=name,
                    )
                )
        task_kernels = TASK_KERNELS_OF_OP.get(name)
        if task_kernels is None:
            violations.append(
                Violation(
                    kind="unmapped-kernel-op",
                    message=(
                        f"kernel op {name!r} is registered but not mapped to "
                        "task-kernel names in TASK_KERNELS_OF_OP — the cost "
                        "model and calibration cannot price its tasks"
                    ),
                    subject=name,
                )
            )
            continue
        for kernel in task_kernels:
            if not _priceable(kernel):
                violations.append(
                    Violation(
                        kind="missing-flops-entry",
                        message=(
                            f"task kernel {kernel!r} (from op {name!r}) has "
                            "no flops entry in kernels/flops.py and is not a "
                            "documented generic-cost kernel"
                        ),
                        subject=kernel,
                    )
                )
    return violations, len(KERNELS)


def _lint_solvers() -> Tuple[List[Violation], int]:
    from ..api.registry import SOLVERS
    from ..core.solver_base import TiledSolverBase

    violations: List[Violation] = []
    names = SOLVERS.names()
    for name in names:
        cls = SOLVERS.get(name)
        if not (isinstance(cls, type) and issubclass(cls, TiledSolverBase)):
            violations.append(
                Violation(
                    kind="solver-protocol",
                    message=f"solver {name!r} is not a TiledSolverBase subclass",
                    subject=name,
                )
            )
            continue
        if not isinstance(getattr(cls, "algorithm", None), str):
            violations.append(
                Violation(
                    kind="solver-protocol",
                    message=f"solver {name!r} has no string `algorithm` label",
                    subject=name,
                )
            )
        overrides_plan = cls._plan_step is not TiledSolverBase._plan_step
        overrides_step = cls._do_step is not TiledSolverBase._do_step
        if not (overrides_plan or overrides_step):
            violations.append(
                Violation(
                    kind="solver-protocol",
                    message=(
                        f"solver {name!r} overrides neither _plan_step nor "
                        "_do_step — it cannot perform elimination steps"
                    ),
                    subject=name,
                )
            )
        required = _constructible_without_args(cls, skip=("self", "tile_size"))
        if required:
            violations.append(
                Violation(
                    kind="solver-protocol",
                    message=(
                        f"solver {name!r} has required constructor parameters "
                        f"{required} beyond tile_size — the facade cannot "
                        "build it from a spec"
                    ),
                    subject=name,
                )
            )
    return violations, len(names)


def _lint_executors() -> Tuple[List[Violation], int]:
    from ..api.registry import EXECUTORS

    violations: List[Violation] = []
    names = EXECUTORS.names()
    for name in names:
        factory = EXECUTORS.get(name)
        if not callable(getattr(factory, "run", None)):
            violations.append(
                Violation(
                    kind="executor-protocol",
                    message=f"executor {name!r} has no callable `run(graph)`",
                    subject=name,
                )
            )
        required = _constructible_without_args(factory, skip=("self",))
        if required:
            violations.append(
                Violation(
                    kind="executor-protocol",
                    message=(
                        f"executor {name!r} has required constructor "
                        f"parameters {required} — the REPRO_EXECUTOR spec "
                        "path cannot build it without arguments"
                    ),
                    subject=name,
                )
            )
    return violations, len(names)


def _lint_kernel_backends() -> Tuple[List[Violation], int]:
    from ..api.registry import KERNEL_BACKENDS
    from ..kernels.backends import KernelBackend, resolve_backend

    violations: List[Violation] = []
    names = KERNEL_BACKENDS.names()
    sweep_methods = (
        "lu_gemm_sweep",
        "lu_gemm_rhs_sweep",
        "qr_column_chain",
        "qr_rhs_chain",
        "incpiv_ssssm_chain",
        "incpiv_ssssm_rhs_chain",
    )
    for name in names:
        try:
            backend = resolve_backend(name)
        except Exception as exc:
            violations.append(
                Violation(
                    kind="backend-protocol",
                    message=f"kernel backend {name!r} fails to resolve: {exc}",
                    subject=name,
                )
            )
            continue
        if not isinstance(backend, KernelBackend):
            violations.append(
                Violation(
                    kind="backend-protocol",
                    message=f"kernel backend {name!r} is not a KernelBackend",
                    subject=name,
                )
            )
            continue
        # Calibration tables, trace views, and fused descriptors key off
        # these names; both must resolve back through the registry.
        for label, value in (
            ("name", backend.name),
            ("descriptor_name", backend.descriptor_name),
        ):
            if value not in KERNEL_BACKENDS:
                violations.append(
                    Violation(
                        kind="backend-protocol",
                        message=(
                            f"kernel backend {name!r} has {label}={value!r} "
                            "which is not a registered backend name — its "
                            "calibration entries and fused descriptors would "
                            "be unresolvable"
                        ),
                        subject=name,
                    )
                )
        if not callable(getattr(backend, "warm", None)):
            violations.append(
                Violation(
                    kind="backend-protocol",
                    message=f"kernel backend {name!r} has no callable warm()",
                    subject=name,
                )
            )
        if backend.fuses:
            for method in sweep_methods:
                if getattr(type(backend), method, None) is getattr(
                    KernelBackend, method
                ):
                    violations.append(
                        Violation(
                            kind="backend-protocol",
                            message=(
                                f"kernel backend {name!r} declares fuses=True "
                                f"but does not implement {method}()"
                            ),
                            subject=name,
                        )
                    )
    return violations, len(names)


def lint_registries() -> List[Violation]:
    """Lint all four registries; return the violations found (empty = clean)."""
    violations: List[Violation] = []
    for linter in (
        _lint_kernels,
        _lint_solvers,
        _lint_executors,
        _lint_kernel_backends,
    ):
        found, _ = linter()
        violations.extend(found)
    return violations


def lint_registries_with_coverage() -> Tuple[List[Violation], Dict[str, int]]:
    """Like :func:`lint_registries` but also report per-registry entry counts."""
    violations: List[Violation] = []
    coverage: Dict[str, int] = {}
    for key, linter in (
        ("kernels", _lint_kernels),
        ("solvers", _lint_solvers),
        ("executors", _lint_executors),
        ("kernel_backends", _lint_kernel_backends),
    ):
        found, count = linter()
        violations.extend(found)
        coverage[key] = count
    return violations, coverage
