"""Dynamic access-tracing race detector.

The static verifier can only check what the planners *declare*; this
module checks what the kernels actually *do*.  A
:class:`TracingBackend` (registered as the ``tracing`` kernel backend)
interposes on the two seams every factorization flows through:

- :meth:`~repro.kernels.backends.KernelBackend.prepare_tiles` swaps the
  working :class:`~repro.tiles.tile_matrix.TileMatrix` for a
  :class:`TracingTileMatrix` whose tile accessors record every tile a
  kernel touches and hand out *read-only* numpy views for tiles outside
  the current task's declared write set;
- :meth:`~repro.kernels.backends.KernelBackend.wrap_task` wraps each
  planned task closure so a per-thread task context (declared reads and
  writes) is active exactly while the kernel body runs.

Any access outside the declared sets raises a structured
:class:`~repro.analysis.report.RaceReport` naming the task, kernel, and
tile — including in-place writes through a read-guarded view, which
numpy rejects and the wrapper translates.  Planning-time accesses
(panel analysis, criterion evaluation, growth-norm sampling) happen
outside any task context and pass through unguarded, exactly like the
runtime treats them.

Over-declaration is legal (a declared read that never happens adds a
spurious dependency edge, which is conservative, not racy); the tracer
flags only *under*-declaration, which is what breaks the superscalar
dependency inference.

Scope: the tracer observes in-process execution (inline and threaded
executors; thread-local contexts keep concurrent tasks separate).  The
process executor runs picklable descriptors inside worker processes
where closures never execute, so those runs are planned-and-verified
statically but not traced — ``repro.analysis.audit`` therefore always
drives its dynamic pass through an in-process harness.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import replace as dataclass_replace
from typing import Any, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..api.registry import register_kernel_backend
from ..kernels.backends import KernelBackend, resolve_backend
from ..runtime.task import RHS_COLUMN, TileRef
from ..tiles.tile_matrix import TileMatrix
from .report import RaceReport

__all__ = ["AccessRecorder", "TracingTileMatrix", "TracingBackend"]


class _TaskContext:
    """Declared sets and observed accesses of one in-flight task."""

    __slots__ = ("uid", "kernel", "step", "reads", "writes", "touched", "written")

    def __init__(self, uid, kernel, step, reads, writes) -> None:
        self.uid = uid
        self.kernel = kernel
        self.step = step
        self.reads = frozenset(reads)
        self.writes = frozenset(writes)
        self.touched: Set[TileRef] = set()
        self.written: Set[TileRef] = set()


class AccessRecorder:
    """Thread-local task contexts plus the accesses observed under them.

    ``begin``/``end`` bracket one task body on the calling thread; tile
    accessors call :meth:`on_read`/:meth:`on_write`, which record the
    access and raise :class:`RaceReport` the moment it falls outside the
    declared sets.  Accesses with no active context (planning, growth
    sampling, result extraction) are ignored.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.records: List[_TaskContext] = []

    @property
    def current(self) -> Optional[_TaskContext]:
        return getattr(self._local, "ctx", None)

    def begin(self, *, uid, kernel, step, reads, writes) -> _TaskContext:
        if self.current is not None:
            raise RuntimeError(
                f"task context for {kernel!r} opened while "
                f"{self.current.kernel!r} is still active on this thread"
            )
        ctx = _TaskContext(uid, kernel, step, reads, writes)
        self._local.ctx = ctx
        return ctx

    def end(self) -> Optional[_TaskContext]:
        ctx = self.current
        self._local.ctx = None
        if ctx is not None:
            with self._lock:
                self.records.append(ctx)
        return ctx

    def _race(self, ctx: _TaskContext, tile: TileRef, access: str) -> RaceReport:
        return RaceReport(
            f"kernel {ctx.kernel!r} (task {ctx.uid}, step {ctx.step}) "
            f"performed an undeclared {access} of tile {tile}; declared "
            f"reads={sorted(ctx.reads)} writes={sorted(ctx.writes)}",
            task_uid=ctx.uid,
            kernel=ctx.kernel,
            step=ctx.step,
            tile=tile,
            access=access,
            declared_reads=tuple(ctx.reads),
            declared_writes=tuple(ctx.writes),
        )

    def on_read(self, tile: TileRef) -> None:
        ctx = self.current
        if ctx is None:
            return
        ctx.touched.add(tile)
        if tile not in ctx.reads and tile not in ctx.writes:
            raise self._race(ctx, tile, "read")

    def on_write(self, tile: TileRef) -> None:
        ctx = self.current
        if ctx is None:
            return
        ctx.touched.add(tile)
        if tile not in ctx.writes:
            raise self._race(ctx, tile, "write")
        ctx.written.add(tile)


class TracingTileMatrix(TileMatrix):
    """Tile matrix whose accessors record and write-guard tile views.

    Aliases the storage of the matrix it wraps (no copies), so tracing
    observes the real factorization.  Under an active task context:

    - a tile inside the declared write set comes back as the ordinary
      writable view and is recorded as (potentially) written;
    - a tile inside the declared read set only comes back as a
      *read-only* view — numpy then rejects any in-place write;
    - a tile in neither set raises :class:`RaceReport` immediately;
    - block views are writable only when *every* covered tile is
      declared written.

    With no active context every accessor behaves exactly like
    :class:`TileMatrix`.
    """

    def __init__(
        self,
        data: np.ndarray,
        tile_size: int,
        rhs: Optional[np.ndarray] = None,
        recorder: Optional[AccessRecorder] = None,
        copy: bool = False,
    ) -> None:
        super().__init__(data, tile_size, rhs=rhs, copy=copy)
        self.recorder = recorder if recorder is not None else AccessRecorder()

    @classmethod
    def wrap(cls, tiles: TileMatrix, recorder: AccessRecorder) -> "TracingTileMatrix":
        """Wrap an existing tile matrix, aliasing its storage."""
        return cls(tiles.array, tiles.nb, rhs=tiles.rhs, recorder=recorder)

    # -- guarded single-tile views ------------------------------------- #
    @staticmethod
    def _read_only(view: np.ndarray) -> np.ndarray:
        guarded = view.view()
        guarded.flags.writeable = False
        return guarded

    def _guarded(self, view: np.ndarray, tile: TileRef) -> np.ndarray:
        ctx = self.recorder.current
        if ctx is None:
            return view
        if tile in ctx.writes:
            self.recorder.on_write(tile)
            return view
        self.recorder.on_read(tile)
        return self._read_only(view)

    def tile(self, i: int, j: int) -> np.ndarray:
        return self._guarded(TileMatrix.tile(self, i, j), (i, j))

    def rhs_tile(self, i: int) -> np.ndarray:
        return self._guarded(TileMatrix.rhs_tile(self, i), (i, RHS_COLUMN))

    def set_tile(self, i: int, j: int, value: np.ndarray) -> None:
        self.recorder.on_write((i, j))
        TileMatrix.tile(self, i, j)[...] = value

    # -- guarded block views ------------------------------------------- #
    def _guarded_block(
        self, view: np.ndarray, tiles: Sequence[TileRef]
    ) -> np.ndarray:
        ctx = self.recorder.current
        if ctx is None or not tiles:
            return view
        if all(t in ctx.writes for t in tiles):
            for t in tiles:
                self.recorder.on_write(t)
            return view
        for t in tiles:
            self.recorder.on_read(t)
        return self._read_only(view)

    def block(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        refs = [(i, j) for i in range(i0, i1) for j in range(j0, j1)]
        return self._guarded_block(TileMatrix.block(self, i0, i1, j0, j1), refs)

    def rhs_block(self, i0: int, i1: int) -> np.ndarray:
        refs = [(i, RHS_COLUMN) for i in range(i0, i1)]
        return self._guarded_block(TileMatrix.rhs_block(self, i0, i1), refs)

    def row_block(
        self, i: int, j_start: int, j_stop: Optional[int] = None
    ) -> np.ndarray:
        stop = self.n if j_stop is None else j_stop
        refs = [(i, j) for j in range(j_start, stop)]
        return self._guarded_block(
            TileMatrix.row_block(self, i, j_start, j_stop), refs
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracing{TileMatrix.__repr__(self)}"


@register_kernel_backend("tracing", aliases=("trace",))
class TracingBackend(KernelBackend):
    """Kernel backend that traces tile accesses of an inner backend.

    Delegates all computation (fusion plan included) to ``inner`` — the
    bit-exact ``numpy`` reference by default — so traced factorizations
    produce exactly the inner backend's results.  Collects every
    :class:`RaceReport` it raises in :attr:`reports`; per-task access
    records live on :attr:`recorder`.

    Usage::

        solver = repro.make_solver("hybrid", tile_size=8,
                                   kernel_backend="tracing")
        solver.factor(a)          # raises RaceReport on undeclared access
    """

    name = "tracing"

    def __init__(self, inner: Any = None) -> None:
        inner = resolve_backend(inner)
        if isinstance(inner, TracingBackend):
            raise ValueError("tracing backends cannot be nested")
        self.inner = inner
        self.recorder = AccessRecorder()
        self.reports: List[RaceReport] = []
        #: Bytes of the tile storage (matrix + RHS) of the last traced
        #: factorization — the allocation high-water mark of the always-live
        #: population, which the liveness pass cross-checks its certified
        #: base against.
        self.storage_bytes: int = 0
        self._uids = itertools.count()

    # -- identity ------------------------------------------------------ #
    @property
    def fuses(self) -> bool:
        return self.inner.fuses

    @property
    def descriptor_name(self) -> str:
        # Fused descriptors execute untraced in worker processes; ship
        # the compute backend's name, not ours.
        return self.inner.descriptor_name

    def warm(self, nb: int, dtype: Any = np.float64) -> None:
        self.inner.warm(nb, dtype)

    def reset(self) -> None:
        """Drop all recorded accesses and reports (new factorization)."""
        self.recorder = AccessRecorder()
        self.reports = []
        self.storage_bytes = 0
        self._uids = itertools.count()

    # -- instrumentation hooks ----------------------------------------- #
    def prepare_tiles(self, tiles: TileMatrix) -> TracingTileMatrix:
        self.reset()
        self.storage_bytes = int(tiles.array.nbytes) + (
            int(tiles.rhs.nbytes) if tiles.rhs is not None else 0
        )
        return TracingTileMatrix.wrap(tiles, self.recorder)

    def wrap_task(self, task, step: int):
        fn = task.fn
        if fn is None:
            return task
        uid = next(self._uids)

        def traced() -> None:
            recorder = self.recorder
            ctx = recorder.begin(
                uid=uid,
                kernel=task.kernel,
                step=step,
                reads=task.reads,
                writes=task.writes,
            )
            try:
                fn()
            except RaceReport as report:
                self.reports.append(report)
                raise
            except ValueError as exc:
                if "read-only" not in str(exc):
                    raise
                report = RaceReport(
                    f"kernel {ctx.kernel!r} (task {uid}, step {step}) wrote "
                    "in place through a read-guarded tile view — it touched "
                    "a tile outside its declared write set "
                    f"(writes={sorted(ctx.writes)})",
                    task_uid=uid,
                    kernel=ctx.kernel,
                    step=step,
                    access="write",
                    declared_reads=tuple(ctx.reads),
                    declared_writes=tuple(ctx.writes),
                )
                self.reports.append(report)
                raise report from exc
            finally:
                recorder.end()

        return dataclass_replace(task, fn=traced)

    # -- fused sweeps delegate to the inner backend --------------------- #
    def lu_gemm_sweep(self, tiles, k: int, j: int, i0: int, i1: int) -> None:
        self.inner.lu_gemm_sweep(tiles, k, j, i0, i1)

    def lu_gemm_rhs_sweep(self, tiles, k: int, i0: int, i1: int) -> None:
        self.inner.lu_gemm_rhs_sweep(tiles, k, i0, i1)

    def qr_column_chain(self, tiles, j: int, ops: Sequence[tuple], factors) -> None:
        self.inner.qr_column_chain(tiles, j, ops, factors)

    def qr_rhs_chain(self, tiles, ops: Sequence[tuple], factors) -> None:
        self.inner.qr_rhs_chain(tiles, ops, factors)

    def incpiv_ssssm_chain(
        self, tiles, k: int, j: int, rows: Sequence[int], pairs: Sequence[Any]
    ) -> None:
        self.inner.incpiv_ssssm_chain(tiles, k, j, rows, pairs)

    def incpiv_ssssm_rhs_chain(
        self, tiles, k: int, rows: Sequence[int], pairs: Sequence[Any]
    ) -> None:
        self.inner.incpiv_ssssm_rhs_chain(tiles, k, rows, pairs)

    def undeclared_accesses(self) -> List[Tuple[Any, TileRef]]:
        """Cross-check recorded accesses against declarations, post hoc.

        The on-access checks raise eagerly, so this is a defensive second
        pass (it would only find something if a proxy recorded without
        checking); returns ``(context, tile)`` pairs.
        """
        out: List[Tuple[Any, TileRef]] = []
        for ctx in self.recorder.records:
            declared = ctx.reads | ctx.writes
            for tile in sorted(ctx.touched - declared):
                out.append((ctx, tile))
            for tile in sorted(ctx.written - ctx.writes):
                out.append((ctx, tile))
        return out
