"""Estimation of ``||A^{-1}||_1`` from an LU factorization.

The Max and Sum criteria of the paper (Section III-A/B) compare
``alpha * ||(A_kk)^{-1}||_1^{-1}`` with the 1-norms of the off-diagonal
panel tiles.  Computing ``||A_kk^{-1}||_1`` exactly would require forming
the inverse (``O(nb^3)`` extra work); the paper instead approximates it
"using the L and U factors by an iterative method in O(nb^2) floating-point
operations".  That iterative method is Hager's / Higham's 1-norm condition
estimator (the algorithm behind LAPACK ``dlacon``), which only needs a few
solves with the already-computed LU factors.

This module provides both the exact norm (for testing and for small tiles)
and the Hager estimator.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.linalg as sla

__all__ = [
    "inverse_norm1_exact",
    "inverse_norm1_estimate",
    "hager_norm1_estimate",
    "smallest_inverse_norm_from_lu",
]


def inverse_norm1_exact(a: np.ndarray) -> float:
    """``||A^{-1}||_1`` computed exactly (via an explicit inverse).

    Intended for testing and small tiles; raises ``numpy.linalg.LinAlgError``
    when ``A`` is singular.
    """
    return float(np.linalg.norm(np.linalg.inv(a), 1))


def hager_norm1_estimate(
    solve: Callable[[np.ndarray], np.ndarray],
    solve_t: Callable[[np.ndarray], np.ndarray],
    n: int,
    max_iter: int = 5,
) -> float:
    """Hager/Higham 1-norm estimator of ``||B||_1`` given products ``B x`` and ``B^T x``.

    ``solve(x)`` must return ``B @ x`` and ``solve_t(x)`` must return
    ``B.T @ x`` (for the inverse-norm use case these are triangular solves
    against the LU factors).  The estimator performs at most ``max_iter``
    iterations, each costing two such products — ``O(n^2)`` per iteration.

    The returned value is a lower bound on ``||B||_1`` that is almost always
    within a factor of 2-3 of the true norm [Higham, *Accuracy and Stability
    of Numerical Algorithms*, Alg. 15.4].
    """
    x = np.full(n, 1.0 / n)
    gamma = 0.0
    for _ in range(max_iter):
        y = solve(x)
        gamma_new = float(np.linalg.norm(y, 1))
        xi = np.sign(y)
        xi[xi == 0.0] = 1.0
        z = solve_t(xi)
        j = int(np.argmax(np.abs(z)))
        if np.abs(z[j]) <= float(z @ x) or gamma_new <= gamma:
            gamma = max(gamma, gamma_new)
            break
        gamma = gamma_new
        x = np.zeros(n)
        x[j] = 1.0

    # Final "alternating" test vector improves robustness for matrices whose
    # columns have similar norms (as recommended by Higham).
    v = np.array([(-1.0) ** i * (1.0 + i / (n - 1.0)) if n > 1 else 1.0 for i in range(n)])
    y = solve(v)
    alt = 2.0 * float(np.linalg.norm(y, 1)) / (3.0 * n)
    return max(gamma, alt)


def inverse_norm1_estimate(lu: np.ndarray, piv: np.ndarray) -> float:
    """Estimate ``||A^{-1}||_1`` from the LU factors of ``A`` (``P A = L U``).

    ``lu``/``piv`` follow the storage convention of
    :func:`repro.linalg.pivoting.getrf`.  Each estimator iteration costs two
    triangular solves, i.e. ``O(nb^2)`` flops — this matches the complexity
    the paper quotes for criterion evaluation (Section III-D).
    """
    n = lu.shape[0]
    lo = np.tril(lu[:n, :n], k=-1) + np.eye(n)
    u = np.triu(lu[:n, :n])

    def perm_apply(x: np.ndarray) -> np.ndarray:
        y = x.copy()
        for j in range(len(piv)):
            p = int(piv[j])
            if p != j:
                y[[j, p]] = y[[p, j]]
        return y

    def perm_apply_t(x: np.ndarray) -> np.ndarray:
        y = x.copy()
        for j in range(len(piv) - 1, -1, -1):
            p = int(piv[j])
            if p != j:
                y[[j, p]] = y[[p, j]]
        return y

    def solve(x: np.ndarray) -> np.ndarray:
        # A^{-1} x = U^{-1} L^{-1} P x
        y = perm_apply(x)
        y = sla.solve_triangular(lo, y, lower=True, unit_diagonal=True)
        return sla.solve_triangular(u, y, lower=False)

    def solve_t(x: np.ndarray) -> np.ndarray:
        # A^{-T} x = P^T L^{-T} U^{-T} x
        y = sla.solve_triangular(u.T, x, lower=True)
        y = sla.solve_triangular(lo.T, y, lower=False, unit_diagonal=True)
        return perm_apply_t(y)

    return hager_norm1_estimate(solve, solve_t, n)


def smallest_inverse_norm_from_lu(lu: np.ndarray, piv: np.ndarray) -> float:
    """``||A^{-1}||_1^{-1}`` (a lower bound on the smallest "column scale" of A).

    This is the left-hand side quantity of the Max and Sum criteria,
    ``||(A_kk)^{-1}||_1^{-1}``, obtained from the already computed LU
    factors.  Returns ``0.0`` when the estimate of ``||A^{-1}||_1`` overflows
    (i.e. the tile is numerically singular), which makes the criteria fail
    and forces a QR step — the desired behaviour.
    """
    try:
        est = inverse_norm1_estimate(lu, piv)
    except (np.linalg.LinAlgError, ValueError, FloatingPointError):
        return 0.0
    if not np.isfinite(est) or est == 0.0:
        return 0.0
    return 1.0 / est
