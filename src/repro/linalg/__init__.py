"""Dense linear-algebra substrate: Householder QR, pivoted LU, norm estimation."""

from .householder import apply_q, apply_q_transpose, build_q, geqrt, house, larft
from .norm_est import (
    hager_norm1_estimate,
    inverse_norm1_estimate,
    inverse_norm1_exact,
    smallest_inverse_norm_from_lu,
)
from .pivoting import (
    SingularPanelError,
    apply_row_pivots,
    getrf,
    getrf_nopiv,
    pivots_to_permutation,
    recursive_getrf,
)
from .triangular import (
    tiled_back_substitution,
    trsm_lower_left_unit,
    trsm_upper_left,
    trsm_upper_right,
)

__all__ = [
    "house",
    "geqrt",
    "larft",
    "apply_q",
    "apply_q_transpose",
    "build_q",
    "getrf",
    "getrf_nopiv",
    "recursive_getrf",
    "apply_row_pivots",
    "pivots_to_permutation",
    "SingularPanelError",
    "inverse_norm1_exact",
    "inverse_norm1_estimate",
    "hager_norm1_estimate",
    "smallest_inverse_norm_from_lu",
    "trsm_upper_right",
    "trsm_lower_left_unit",
    "trsm_upper_left",
    "tiled_back_substitution",
]
