"""Compact-WY Householder QR — the substrate of the tiled QR kernels.

The PLASMA/DPLASMA tile kernels used by the paper (GEQRT, TSQRT, TSMQR,
TTQRT, TTMQR, UNMQR) are all built on blocked Householder reflections in
compact-WY form: a factorization step produces a unit-lower-trapezoidal
matrix ``V`` of reflector vectors and an upper-triangular matrix ``T`` such
that

    Q = I - V T V^T .

This module implements that machinery from scratch on top of numpy:

* :func:`house` — a single Householder reflector (LAPACK ``dlarfg``),
* :func:`geqrt` — blocked QR of a rectangular matrix returning ``(V, T, R)``
  (LAPACK ``dgeqrt``),
* :func:`larft` — build the triangular factor ``T`` from reflectors
  (LAPACK ``dlarft``, forward/columnwise),
* :func:`apply_q_transpose` / :func:`apply_q` — apply ``Q^T`` or ``Q`` to a
  matrix using the compact-WY form (LAPACK ``dlarfb``).

These routines are written for clarity and tested against
``numpy.linalg.qr``; the tile kernels in :mod:`repro.kernels.qr_kernels`
use them for every orthogonal transformation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["house", "geqrt", "larft", "apply_q", "apply_q_transpose", "build_q"]


def house(x: np.ndarray) -> Tuple[np.ndarray, float, float]:
    """Compute a Householder reflector annihilating ``x[1:]``.

    Returns ``(v, tau, beta)`` with ``v[0] == 1`` such that

        (I - tau * v v^T) x = [beta, 0, ..., 0]^T .

    Follows the LAPACK ``dlarfg`` convention: ``beta`` has the opposite sign
    of ``x[0]`` so that the computation is backward stable, and ``tau = 0``
    (reflector is the identity) when ``x[1:]`` is already zero.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    v = np.zeros(n)
    v[0] = 1.0
    if n == 1:
        return v, 0.0, float(x[0])

    alpha = float(x[0])
    sigma = float(np.dot(x[1:], x[1:]))
    if sigma == 0.0:
        # Nothing to annihilate.
        return v, 0.0, alpha

    mu = np.sqrt(alpha * alpha + sigma)
    beta = -mu if alpha >= 0 else mu
    v0 = alpha - beta
    v[1:] = x[1:] / v0
    tau = (beta - alpha) / beta
    return v, float(tau), float(beta)


def geqrt(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Blocked Householder QR of an ``m``-by-``k`` matrix (``m >= k``).

    Returns ``(V, T, R)`` where

    * ``V`` is ``m``-by-``k`` unit lower trapezoidal (reflector vectors),
    * ``T`` is ``k``-by-``k`` upper triangular (compact-WY factor),
    * ``R`` is ``k``-by-``k`` upper triangular,

    and ``A = Q [R; 0]`` with ``Q = I - V T V^T`` an ``m``-by-``m``
    orthogonal matrix.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    m, k = a.shape
    if m < k:
        raise ValueError(f"geqrt requires m >= k, got shape {a.shape}")

    v = np.zeros((m, k))
    taus = np.zeros(k)
    for j in range(k):
        vj, tau, beta = house(a[j:, j])
        v[j:, j] = vj
        taus[j] = tau
        # Apply (I - tau v v^T) to the trailing columns of A.
        if tau != 0.0 and j + 1 < k:
            w = vj @ a[j:, j + 1 :]
            a[j:, j + 1 :] -= np.outer(tau * vj, w)
        a[j, j] = beta
        if j + 1 <= m - 1:
            a[j + 1 :, j] = 0.0

    t = larft(v, taus)
    r = np.triu(a[:k, :k])
    return v, t, r


def larft(v: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Build the upper-triangular compact-WY factor ``T``.

    Given reflectors ``V`` (unit lower trapezoidal, one reflector per
    column) and their scalar factors ``taus``, produce ``T`` such that

        Q = H(0) H(1) ... H(k-1) = I - V T V^T .
    """
    v = np.asarray(v, dtype=np.float64)
    taus = np.asarray(taus, dtype=np.float64)
    k = v.shape[1]
    t = np.zeros((k, k))
    for j in range(k):
        tau = taus[j]
        if tau == 0.0:
            continue
        t[j, j] = tau
        if j > 0:
            # T[:j, j] = -tau * T[:j, :j] @ (V[:, :j]^T v_j)
            w = v[:, :j].T @ v[:, j]
            t[:j, j] = -tau * (t[:j, :j] @ w)
    return t


def apply_q_transpose(v: np.ndarray, t: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Compute ``Q^T @ C`` with ``Q = I - V T V^T`` (LAPACK ``dlarfb``)."""
    c = np.asarray(c, dtype=np.float64)
    w = v.T @ c              # (k, ncols)
    return c - v @ (t.T @ w)


def apply_q(v: np.ndarray, t: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Compute ``Q @ C`` with ``Q = I - V T V^T``."""
    c = np.asarray(c, dtype=np.float64)
    w = v.T @ c
    return c - v @ (t @ w)


def build_q(v: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Explicitly form the orthogonal factor ``Q = I - V T V^T``.

    Intended for testing and for small tiles only (``O(m^2 k)`` work).
    """
    m = v.shape[0]
    return np.eye(m) - v @ (t @ v.T)
