"""LU factorizations with partial pivoting — the substrate of the LU kernels.

The paper's LU step factors the *diagonal domain* (the panel tiles local to
the node owning the diagonal tile) with LU and partial pivoting, using the
multi-threaded *recursive* LU kernel of PLASMA to enlarge the pivot search
space while keeping efficiency (Section IV, "LU ON PANEL").  This module
provides:

* :func:`getrf` — right-looking LU with partial pivoting of a rectangular
  ``m``-by-``k`` matrix (LAPACK ``dgetrf`` on a tall panel),
* :func:`getrf_nopiv` — LU without pivoting (used by the LU NoPiv baseline),
* :func:`recursive_getrf` — recursive (cache-oblivious) LU with partial
  pivoting, the pure-Python analogue of PLASMA's recursive panel kernel,
* :func:`apply_row_pivots` / :func:`pivots_to_permutation` — helpers to apply
  the pivot sequence to trailing columns, as SWPTRSM does.

All routines return the pivot sequence in LAPACK convention: ``piv[i] = p``
means that row ``i`` was swapped with row ``p`` at elimination step ``i``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "getrf",
    "getrf_nopiv",
    "recursive_getrf",
    "apply_row_pivots",
    "pivots_to_permutation",
    "SingularPanelError",
]


class SingularPanelError(RuntimeError):
    """Raised when a zero pivot makes an LU factorization impossible.

    The paper observes exactly this failure for LU NoPiv and LUPP on the
    ``fiedler`` matrix ("small values rounded up to 0 and then illegally
    used in a division"); surfacing it as a dedicated exception lets the
    experiment harness record the breakdown instead of silently producing
    NaNs.
    """


def getrf(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """LU with partial pivoting of an ``m``-by-``k`` matrix (``m >= k``).

    The factorization is performed in place on a copy: on return the
    strictly-lower part of the leading ``k`` columns holds ``L`` (unit
    diagonal implicit) and the upper triangle of the top ``k`` rows holds
    ``U``, exactly as LAPACK's ``dgetrf`` stores them.

    Returns ``(lu, piv)``.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    m, k = a.shape
    if m < k:
        raise ValueError(f"getrf requires m >= k, got shape {a.shape}")
    piv = np.arange(k, dtype=np.int64)

    for j in range(k):
        # Pivot search over the remaining rows of column j.
        p = j + int(np.argmax(np.abs(a[j:, j])))
        piv[j] = p
        if a[p, j] == 0.0:
            raise SingularPanelError(f"zero pivot encountered at column {j}")
        if p != j:
            a[[j, p], :] = a[[p, j], :]
        # Eliminate below the pivot.
        if j + 1 < m:
            a[j + 1 :, j] /= a[j, j]
            if j + 1 < k:
                a[j + 1 :, j + 1 :] -= np.outer(a[j + 1 :, j], a[j, j + 1 :])
    return a, piv


def getrf_nopiv(a: np.ndarray) -> np.ndarray:
    """LU *without* pivoting of a square matrix (the LU NoPiv baseline kernel).

    Raises :class:`SingularPanelError` on a zero diagonal entry.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    m, k = a.shape
    if m != k:
        raise ValueError(f"getrf_nopiv requires a square matrix, got shape {a.shape}")
    for j in range(k):
        if a[j, j] == 0.0:
            raise SingularPanelError(f"zero diagonal entry at column {j} (no pivoting)")
        if j + 1 < m:
            a[j + 1 :, j] /= a[j, j]
            a[j + 1 :, j + 1 :] -= np.outer(a[j + 1 :, j], a[j, j + 1 :])
    return a


def recursive_getrf(a: np.ndarray, threshold: int = 16) -> Tuple[np.ndarray, np.ndarray]:
    """Recursive LU with partial pivoting of an ``m``-by-``k`` panel.

    This mirrors the recursive-LU panel kernel of PLASMA [Dongarra et al.
    2013] used by the paper: the panel is split column-wise in halves, the
    left half is factored recursively, its transformations are applied to
    the right half, and the right half is factored recursively in turn.
    The recursion bottoms out on :func:`getrf` below ``threshold`` columns.

    Returns ``(lu, piv)`` with the same storage convention as :func:`getrf`.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    m, k = a.shape
    if m < k:
        raise ValueError(f"recursive_getrf requires m >= k, got shape {a.shape}")

    piv = np.arange(k, dtype=np.int64)
    _recursive_getrf_inplace(a, piv, 0, k, threshold)
    return a, piv


def _recursive_getrf_inplace(
    a: np.ndarray, piv: np.ndarray, col0: int, ncols: int, threshold: int
) -> None:
    """Factor columns ``[col0, col0+ncols)`` of ``a`` in place, rows ``col0:``."""
    if ncols <= threshold:
        sub = a[col0:, col0 : col0 + ncols]
        lu, sub_piv = getrf(sub)
        sub[...] = lu
        piv[col0 : col0 + ncols] = sub_piv + col0
        # Apply the swaps to the columns left of the block (they belong to
        # already-factored L and must follow their rows).
        for j_local, p in enumerate(sub_piv):
            j = col0 + j_local
            p_global = col0 + int(p)
            if p_global != j and col0 > 0:
                a[[j, p_global], :col0] = a[[p_global, j], :col0]
        return

    half = ncols // 2
    # Factor the left half.
    _recursive_getrf_inplace(a, piv, col0, half, threshold)
    mid = col0 + half
    end = col0 + ncols

    # Apply the left half's pivots to the right half.
    for j in range(col0, mid):
        p = int(piv[j])
        if p != j:
            a[[j, p], mid:end] = a[[p, j], mid:end]

    # Triangular solve: A12 <- L11^{-1} A12 (L11 unit lower triangular).
    l11 = np.tril(a[col0:mid, col0:mid], k=-1) + np.eye(half)
    a[col0:mid, mid:end] = np.linalg.solve(l11, a[col0:mid, mid:end])

    # Schur update of the lower-right block.
    a[mid:, mid:end] -= a[mid:, col0:mid] @ a[col0:mid, mid:end]

    # Factor the right half.  (Its base cases apply their row swaps to every
    # column on their left — including the left half factored above — so no
    # further fix-up of the L columns is needed here.)
    _recursive_getrf_inplace(a, piv, mid, ncols - half, threshold)


def apply_row_pivots(c: np.ndarray, piv: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Apply a LAPACK-style pivot sequence to the rows of ``c`` (in place).

    With ``inverse=True`` the swaps are undone (applied in reverse order).
    Returns ``c`` for convenience.
    """
    indices = range(len(piv) - 1, -1, -1) if inverse else range(len(piv))
    for j in indices:
        p = int(piv[j])
        if p != j:
            c[[j, p], :] = c[[p, j], :]
    return c


def pivots_to_permutation(piv: np.ndarray, m: int) -> np.ndarray:
    """Convert a LAPACK pivot sequence into an explicit permutation vector.

    Returns ``perm`` such that ``(P A)[i] = A[perm[i]]`` where ``P`` is the
    permutation performed by :func:`apply_row_pivots`.
    """
    perm = np.arange(m, dtype=np.int64)
    for j in range(len(piv)):
        p = int(piv[j])
        if p != j:
            perm[[j, p]] = perm[[p, j]]
    return perm
