"""Triangular solves on dense blocks and on tiled matrices.

Provides the TRSM-style block solves used by the LU kernels, plus the final
tiled back-substitution used once the hybrid factorization has reduced
``[A | b]`` to an upper-triangular system (Section II-D1 of the paper).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

__all__ = [
    "trsm_upper_right",
    "trsm_lower_left_unit",
    "trsm_upper_left",
    "tiled_back_substitution",
]


def trsm_upper_right(u: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``X U = B`` for ``X`` with ``U`` upper triangular.

    This is the *Eliminate* kernel of the LU step: ``A_ik <- A_ik U_kk^{-1}``.
    """
    # X U = B  <=>  U^T X^T = B^T
    xt = sla.solve_triangular(u.T, b.T, lower=True)
    return xt.T


def trsm_lower_left_unit(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L X = B`` for ``X`` with ``L`` *unit* lower triangular.

    This is the triangular part of the *Apply* kernel (SWPTRSM):
    ``A_kj <- L_kk^{-1} P_kk A_kj``.
    """
    return sla.solve_triangular(l, b, lower=True, unit_diagonal=True)


def trsm_upper_left(u: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``U X = B`` for ``X`` with ``U`` upper triangular (back-substitution block)."""
    return sla.solve_triangular(u, b, lower=False)


def tiled_back_substitution(a: np.ndarray, c: np.ndarray, tile_size: int) -> np.ndarray:
    """Solve ``U x = c`` where ``U`` is the upper triangle of the tiled factorization.

    ``a`` is the ``(N, N)`` array left behind by the factorization: its upper
    triangle holds ``U`` (below-diagonal entries hold multipliers/reflectors
    and are ignored).  The solve proceeds tile row by tile row from the
    bottom, using GEMM updates between tiles so the memory-access pattern
    matches a tiled implementation.

    Returns the solution ``x`` with the same shape as ``c``.
    """
    n_total = a.shape[0]
    if n_total % tile_size != 0:
        raise ValueError(
            f"matrix order {n_total} is not a multiple of tile_size {tile_size}"
        )
    n = n_total // tile_size
    c = np.array(c, dtype=np.float64, copy=True)
    if c.ndim == 1:
        c = c.reshape(-1, 1)
        squeeze = True
    else:
        squeeze = False

    nb = tile_size
    x = np.zeros_like(c)
    for i in range(n - 1, -1, -1):
        rows = slice(i * nb, (i + 1) * nb)
        acc = c[rows].copy()
        for j in range(i + 1, n):
            cols = slice(j * nb, (j + 1) * nb)
            acc -= a[rows, cols] @ x[cols]
        u_ii = np.triu(a[rows, rows])
        x[rows] = trsm_upper_left(u_ii, acc)

    return x[:, 0] if squeeze else x
