"""Matrix generators: the Table III special collection and random workloads."""

from . import registry, special
from .random_gen import (
    block_diagonally_dominant,
    diagonally_dominant,
    matrix_with_condition,
    near_singular_leading_tile,
    random_matrix,
    random_rhs,
)
from .registry import TABLE_III, MatrixEntry, build, by_name, names

__all__ = [
    "special",
    "registry",
    "MatrixEntry",
    "TABLE_III",
    "by_name",
    "build",
    "names",
    "random_matrix",
    "random_rhs",
    "diagonally_dominant",
    "block_diagonally_dominant",
    "matrix_with_condition",
    "near_singular_leading_tile",
]
