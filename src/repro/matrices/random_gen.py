"""Random and structured-random matrix generators used by the experiments.

Figure 2 and Table II of the paper use dense random matrices (entries drawn
from a standard distribution); the concluding discussion also mentions
(block) diagonally dominant matrices, for which every criterion accepts an
LU step at every panel.  This module provides those generators plus a few
helpers to manufacture matrices with a prescribed conditioning, which are
useful for tests and ablations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "random_matrix",
    "random_rhs",
    "diagonally_dominant",
    "block_diagonally_dominant",
    "matrix_with_condition",
    "near_singular_leading_tile",
]


def random_matrix(n: int, seed: Optional[int] = None) -> np.ndarray:
    """Dense matrix with i.i.d. standard normal entries (the paper's workload)."""
    return np.random.default_rng(seed).standard_normal((n, n))


def random_rhs(n: int, seed: Optional[int] = None, nrhs: int = 1) -> np.ndarray:
    """Random right-hand side(s); 1-D when ``nrhs == 1``."""
    b = np.random.default_rng(seed).standard_normal((n, nrhs))
    return b[:, 0] if nrhs == 1 else b


def diagonally_dominant(n: int, seed: Optional[int] = None, margin: float = 1.0) -> np.ndarray:
    """Strictly (row and column) diagonally dominant random matrix.

    Every robustness criterion accepts every LU step on such matrices
    (Section III-B), so the hybrid algorithm degenerates into LU NoPiv with
    domain pivoting.
    """
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    np.fill_diagonal(a, 0.0)
    bound = np.maximum(np.abs(a).sum(axis=0), np.abs(a).sum(axis=1))
    signs = np.where(rng.random(n) < 0.5, -1.0, 1.0)
    np.fill_diagonal(a, signs * (bound + margin))
    return a


def block_diagonally_dominant(
    n: int, tile_size: int, seed: Optional[int] = None, margin: float = 1.0
) -> np.ndarray:
    """Block diagonally dominant matrix w.r.t. an ``nb``-tile partitioning.

    ``||A_jj^{-1}||^{-1} >= sum_{i != j} ||A_ij|| + margin`` for every block
    column ``j`` (1-norms), the sufficient condition under which the Max and
    Sum criteria with ``alpha >= 1`` are satisfied at every step.
    """
    if n % tile_size != 0:
        raise ValueError(f"n={n} is not a multiple of tile_size={tile_size}")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    nt = n // tile_size
    for j in range(nt):
        cols = slice(j * tile_size, (j + 1) * tile_size)
        off_norm = 0.0
        for i in range(nt):
            if i == j:
                continue
            rows = slice(i * tile_size, (i + 1) * tile_size)
            off_norm += np.linalg.norm(a[rows, cols], 1)
        # Make the diagonal block a well-conditioned scaled identity-plus-noise
        # whose inverse norm is controlled.
        rows = slice(j * tile_size, (j + 1) * tile_size)
        scale = off_norm + margin + 1.0
        block = np.eye(tile_size) * scale + 0.1 * rng.standard_normal((tile_size, tile_size))
        a[rows, cols] = block
    return a


def matrix_with_condition(n: int, cond: float, seed: Optional[int] = None) -> np.ndarray:
    """Random matrix with prescribed 2-norm condition number.

    Built as ``U diag(s) V^T`` with geometrically spaced singular values
    between ``1`` and ``1/cond`` and random orthogonal factors.
    """
    if cond < 1.0:
        raise ValueError("condition number must be >= 1")
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((n, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = np.geomspace(1.0, 1.0 / cond, n)
    return (u * s) @ v.T


def near_singular_leading_tile(
    n: int, tile_size: int, epsilon: float = 1e-12, seed: Optional[int] = None
) -> np.ndarray:
    """Random matrix whose leading ``nb x nb`` tile is nearly singular.

    Useful to force the robustness criteria to reject the first LU step:
    the leading tile is replaced by a matrix with smallest singular value
    ``epsilon`` while the rest of the matrix stays well scaled.
    """
    a = random_matrix(n, seed=seed)
    block = matrix_with_condition(tile_size, 1.0 / epsilon, seed=seed)
    a[:tile_size, :tile_size] = block
    return a
