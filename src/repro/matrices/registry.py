"""Registry of the Table III special matrices.

Maps the paper's matrix numbers/names to generator callables so that the
Figure 3 harness (and user code) can iterate over the whole collection:

>>> from repro.matrices import registry
>>> for entry in registry.TABLE_III:
...     a = entry.build(64)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from . import special

__all__ = ["MatrixEntry", "TABLE_III", "EXTRA", "by_name", "names", "build"]


@dataclass(frozen=True)
class MatrixEntry:
    """One row of Table III.

    Attributes
    ----------
    number:
        The paper's matrix number (1-21); 0 for extras not in the table.
    name:
        Matrix name (lower case, as in the table).
    description:
        The table's one-line description.
    generator:
        Callable ``f(n) -> ndarray`` producing the matrix of order ``n``.
    """

    number: int
    name: str
    description: str
    generator: Callable[[int], np.ndarray]

    def build(self, n: int) -> np.ndarray:
        """Generate the matrix of order ``n``."""
        return np.asarray(self.generator(n), dtype=np.float64)


TABLE_III: List[MatrixEntry] = [
    MatrixEntry(1, "house", "Householder matrix, A = eye(n) - beta*v*v'", special.house),
    MatrixEntry(2, "parter", "Parter matrix, Toeplitz with singular values near pi", special.parter),
    MatrixEntry(3, "ris", "Ris matrix, eigenvalues cluster around +/- pi/2", special.ris),
    MatrixEntry(4, "condex", "Counter-example matrix to condition estimators", special.condex),
    MatrixEntry(5, "circul", "Circulant matrix", special.circul),
    MatrixEntry(6, "hankel", "Random Hankel matrix", special.hankel),
    MatrixEntry(7, "compan", "Companion matrix (sparse)", special.compan),
    MatrixEntry(8, "lehmer", "Lehmer matrix, SPD with tridiagonal inverse", special.lehmer),
    MatrixEntry(9, "dorr", "Dorr matrix, diagonally dominant ill-conditioned tridiagonal", special.dorr),
    MatrixEntry(10, "demmel", "D*(eye(n) + 1e-7*rand(n)), D = diag(10^(14*(0:n-1)/n))", special.demmel),
    MatrixEntry(11, "chebvand", "Chebyshev Vandermonde matrix on [0, 1]", special.chebvand),
    MatrixEntry(12, "invhess", "Its inverse is an upper Hessenberg matrix", special.invhess),
    MatrixEntry(13, "prolate", "Prolate matrix, ill-conditioned Toeplitz", special.prolate),
    MatrixEntry(14, "cauchy", "Cauchy matrix", special.cauchy),
    MatrixEntry(15, "hilb", "Hilbert matrix, A(i,j) = 1/(i+j-1)", special.hilb),
    MatrixEntry(16, "lotkin", "Hilbert matrix with its first row set to ones", special.lotkin),
    MatrixEntry(17, "kahan", "Kahan matrix, upper trapezoidal", special.kahan),
    MatrixEntry(18, "orthog", "Symmetric eigenvector matrix sqrt(2/(n+1))*sin(ij*pi/(n+1))", special.orthog),
    MatrixEntry(19, "wilkinson", "Matrix attaining the GEPP growth-factor upper bound", special.wilkinson),
    MatrixEntry(20, "foster", "Volterra integral equation quadrature matrix", special.foster),
    MatrixEntry(21, "wright", "Exponential GEPP growth (multiple shooting)", special.wright),
]

EXTRA: List[MatrixEntry] = [
    MatrixEntry(0, "fiedler", "Fiedler matrix |i - j| (LU NoPiv and LUPP break down)", special.fiedler),
]

_ALL: Dict[str, MatrixEntry] = {e.name: e for e in TABLE_III + EXTRA}


def names(include_extra: bool = False) -> List[str]:
    """All matrix names of Table III (optionally plus the extras)."""
    base = [e.name for e in TABLE_III]
    return base + [e.name for e in EXTRA] if include_extra else base


def by_name(name: str) -> MatrixEntry:
    """Look up a matrix entry by name."""
    try:
        return _ALL[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown special matrix {name!r}; known: {sorted(_ALL)}"
        ) from exc


def build(name: str, n: int) -> np.ndarray:
    """Build special matrix ``name`` of order ``n``."""
    return by_name(name).build(n)
