"""The special-matrix collection of Table III.

The paper evaluates stability on a set of pathological matrices "on which
LUPP fails because of large growth factors", mostly taken from Higham's
Matrix Computation Toolbox / MATLAB's ``gallery``.  This module implements
every generator of Table III (plus the ``fiedler`` matrix discussed in
Section V-C) as pure-numpy functions of the matrix order ``n``.

All generators return dense ``float64`` arrays.  Generators that are random
in the paper (``house``, ``circul``, ``hankel``, ``compan``, ``demmel``)
accept a ``seed`` so experiments are reproducible.

Where the original toolbox definition depends on auxiliary parameters, the
toolbox defaults are used and documented on each function.  Two matrices —
``foster`` and ``wright`` — are not part of Higham's toolbox; they come from
the GEPP-failure literature (Foster 1994, Wright 1993) and are implemented
here following the published constructions (quadrature of a Volterra
integral equation, and a multiple-shooting two-point boundary-value matrix).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

__all__ = [
    "house",
    "parter",
    "ris",
    "condex",
    "circul",
    "hankel",
    "compan",
    "lehmer",
    "dorr",
    "demmel",
    "chebvand",
    "invhess",
    "prolate",
    "cauchy",
    "hilb",
    "lotkin",
    "kahan",
    "orthog",
    "wilkinson",
    "foster",
    "wright",
    "fiedler",
]


def _rng(seed):
    return np.random.default_rng(seed)


# --------------------------------------------------------------------------- #
# 1-21: Table III
# --------------------------------------------------------------------------- #
def house(n: int, seed: int | None = 0) -> np.ndarray:
    """No. 1 — Householder matrix ``A = I - beta v v^T``.

    ``v`` is a random Householder vector and ``beta = 2 / (v^T v)``, so the
    result is an orthogonal (and symmetric) reflector.
    """
    v = _rng(seed).standard_normal(n)
    beta = 2.0 / float(v @ v)
    return np.eye(n) - beta * np.outer(v, v)


def parter(n: int) -> np.ndarray:
    """No. 2 — Parter matrix, ``A(i, j) = 1 / (i - j + 0.5)`` (1-based).

    A Toeplitz matrix with most singular values near ``pi``.
    """
    i = np.arange(1, n + 1).reshape(-1, 1)
    j = np.arange(1, n + 1).reshape(1, -1)
    return 1.0 / (i - j + 0.5)


def ris(n: int) -> np.ndarray:
    """No. 3 — Ris matrix, ``A(i, j) = 0.5 / (n - i - j + 1.5)`` (1-based).

    Symmetric Hankel matrix; eigenvalues cluster around ``-pi/2`` and ``pi/2``.
    """
    i = np.arange(1, n + 1).reshape(-1, 1)
    j = np.arange(1, n + 1).reshape(1, -1)
    return 0.5 / (n - i - j + 1.5)


def condex(n: int, theta: float = 100.0) -> np.ndarray:
    """No. 4 — Counter-example matrix to condition estimators.

    Higham's mode-1 (Cline/Rew) 4-by-4 counter-example embedded in the
    leading block of ``theta * I_n`` (the toolbox embedding).  Requires
    ``n >= 4``.
    """
    if n < 4:
        raise ValueError("condex requires n >= 4")
    a4 = np.array(
        [
            [1.0, -1.0, -2.0 * theta, 0.0],
            [0.0, 1.0, theta, -theta],
            [0.0, 1.0, 1.0 + theta, -(theta + 1.0)],
            [0.0, 0.0, 0.0, theta],
        ]
    )
    a = theta * np.eye(n)
    a[:4, :4] = a4
    return a


def circul(n: int, seed: int | None = 0) -> np.ndarray:
    """No. 5 — Circulant matrix of a random first row."""
    c = _rng(seed).standard_normal(n)
    return sla.circulant(c)


def hankel(n: int, seed: int | None = 0) -> np.ndarray:
    """No. 6 — Random Hankel matrix, ``A = hankel(c, r)`` with ``c[n-1] = r[0]``."""
    rng = _rng(seed)
    c = rng.standard_normal(n)
    r = rng.standard_normal(n)
    c[-1] = r[0]
    return sla.hankel(c, r)


def compan(n: int, seed: int | None = 0) -> np.ndarray:
    """No. 7 — Companion matrix of a random degree-``n`` polynomial."""
    coeffs = _rng(seed).standard_normal(n + 1)
    # Guard against a (probability-zero) vanishing leading coefficient.
    if coeffs[0] == 0.0:
        coeffs[0] = 1.0
    return sla.companion(coeffs)


def lehmer(n: int) -> np.ndarray:
    """No. 8 — Lehmer matrix, ``A(i, j) = min(i, j) / max(i, j)``.

    Symmetric positive definite with a tridiagonal inverse.
    """
    i = np.arange(1, n + 1).reshape(-1, 1)
    j = np.arange(1, n + 1).reshape(1, -1)
    return np.minimum(i, j) / np.maximum(i, j)


def dorr(n: int, theta: float = 0.01) -> np.ndarray:
    """No. 9 — Dorr matrix: diagonally dominant, ill-conditioned, tridiagonal.

    Discretisation of a singularly-perturbed convection-diffusion problem
    (Dorr 1971), following the construction of Higham's toolbox ``dorr.m``.
    Returned dense.
    """
    if n < 2:
        raise ValueError("dorr requires n >= 2")
    h = 1.0 / (n + 1)
    m = (n + 1) // 2
    term = theta / h**2
    sub = np.zeros(n)    # c(i): entry (i, i-1)
    diag = np.zeros(n)
    sup = np.zeros(n)    # e(i): entry (i, i+1)
    for idx in range(n):
        i = idx + 1  # 1-based as in the reference implementation
        if i <= m:
            sub[idx] = -term
            sup[idx] = sub[idx] - (0.5 - i * h) / h
        else:
            sup[idx] = -term
            sub[idx] = sup[idx] + (0.5 - i * h) / h
        diag[idx] = -(sub[idx] + sup[idx])
    a = np.diag(diag)
    for idx in range(1, n):
        a[idx, idx - 1] = sub[idx]
    for idx in range(n - 1):
        a[idx, idx + 1] = sup[idx]
    return a


def demmel(n: int, seed: int | None = 0) -> np.ndarray:
    """No. 10 — Demmel matrix, ``A = D (I + 1e-7 R)`` with huge diagonal scaling.

    ``D = diag(10^(14 (0:n-1)/n))`` and ``R`` uniform random in ``[0, 1)``.
    """
    rng = _rng(seed)
    d = np.power(10.0, 14.0 * np.arange(n) / n)
    return np.diag(d) @ (np.eye(n) + 1e-7 * rng.random((n, n)))


def chebvand(n: int) -> np.ndarray:
    """No. 11 — Chebyshev Vandermonde matrix on ``n`` equispaced points of [0, 1].

    ``A(i, j) = T_{i-1}(p_j)`` built with the Chebyshev three-term recurrence.
    """
    p = np.linspace(0.0, 1.0, n)
    a = np.ones((n, n))
    if n > 1:
        a[1, :] = p
        for i in range(2, n):
            a[i, :] = 2.0 * p * a[i - 1, :] - a[i - 2, :]
    return a


def invhess(n: int) -> np.ndarray:
    """No. 12 — Matrix whose inverse is upper Hessenberg.

    Toolbox definition with ``x = 1..n`` and ``y = -x``:
    ``A(i, j) = x(j)`` for ``i >= j`` and ``A(i, j) = y(i)`` for ``i < j``.
    """
    x = np.arange(1, n + 1, dtype=np.float64)
    y = -x
    a = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            a[i, j] = x[j] if i >= j else y[i]
    return a


def prolate(n: int, w: float = 0.25) -> np.ndarray:
    """No. 13 — Prolate matrix: symmetric, ill-conditioned Toeplitz.

    First row/column ``a_0 = 2w``, ``a_k = sin(2 pi w k) / (pi k)``.
    """
    a = np.empty(n)
    a[0] = 2.0 * w
    k = np.arange(1, n)
    a[1:] = np.sin(2.0 * np.pi * w * k) / (np.pi * k)
    return sla.toeplitz(a)


def cauchy(n: int) -> np.ndarray:
    """No. 14 — Cauchy matrix ``A(i, j) = 1 / (x_i + y_j)`` with ``x = y = 1..n``."""
    x = np.arange(1, n + 1).reshape(-1, 1)
    y = np.arange(1, n + 1).reshape(1, -1)
    return 1.0 / (x + y)


def hilb(n: int) -> np.ndarray:
    """No. 15 — Hilbert matrix ``A(i, j) = 1 / (i + j - 1)`` (1-based)."""
    i = np.arange(1, n + 1).reshape(-1, 1)
    j = np.arange(1, n + 1).reshape(1, -1)
    return 1.0 / (i + j - 1.0)


def lotkin(n: int) -> np.ndarray:
    """No. 16 — Lotkin matrix: the Hilbert matrix with its first row set to ones."""
    a = hilb(n)
    a[0, :] = 1.0
    return a


def kahan(n: int, theta: float = 1.2) -> np.ndarray:
    """No. 17 — Kahan matrix: upper triangular (trapezoidal), ill-conditioned.

    ``U(i, i) = s^(i-1)``, ``U(i, j) = -c s^(i-1)`` for ``j > i`` with
    ``s = sin(theta)``, ``c = cos(theta)``.
    """
    s, c = np.sin(theta), np.cos(theta)
    a = np.zeros((n, n))
    for i in range(n):
        a[i, i] = s**i
        a[i, i + 1 :] = -c * s**i
    return a


def orthog(n: int) -> np.ndarray:
    """No. 18 — Symmetric orthogonal eigenvector matrix.

    ``A(i, j) = sqrt(2 / (n + 1)) sin(i j pi / (n + 1))`` — the eigenvector
    matrix of the second-difference matrix; it is orthogonal and symmetric.
    """
    i = np.arange(1, n + 1).reshape(-1, 1)
    j = np.arange(1, n + 1).reshape(1, -1)
    return np.sqrt(2.0 / (n + 1)) * np.sin(i * j * np.pi / (n + 1))


def wilkinson(n: int) -> np.ndarray:
    """No. 19 — Wilkinson's GEPP growth matrix (growth factor ``2^(n-1)``).

    ``A(i, i) = 1``, ``A(i, j) = -1`` for ``i > j``, last column all ones.
    Partial pivoting never swaps rows, and the last column doubles at every
    elimination step.
    """
    a = np.eye(n) - np.tril(np.ones((n, n)), -1)
    a[:, -1] = 1.0
    return a


def foster(n: int, c: float = 1.0, k: float = 2.0) -> np.ndarray:
    """No. 20 — Foster's Volterra-quadrature matrix (GEPP growth in practice).

    Trapezoid-rule discretisation of the Volterra integral equation
    ``x(t) - c * integral_0^t k x(s) ds = g(t)`` (Foster 1994, "Gaussian
    elimination with partial pivoting can fail in practice").  With step
    ``h = 1/(n-1)``:

    * ``A(i, i) = 1 - c k h / 2``,
    * ``A(i, 0) = -c k h / 2`` for ``i > 0``,
    * ``A(i, j) = -c k h`` for ``0 < j < i``,
    * last column tied to the quadrature of the final node:
      ``A(i, n-1) = -c k h / 2`` for ``i < n-1``.

    The accumulation of the nearly-equal sub-diagonal entries makes partial
    pivoting choose poor pivots and the factor growth increases
    exponentially with ``n`` for suitable ``c k h``.
    """
    if n < 2:
        raise ValueError("foster requires n >= 2")
    h = 1.0 / (n - 1)
    ckh = c * k * h
    a = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i == j:
                a[i, j] = 1.0 - ckh / 2.0
            elif j == 0 and i > 0:
                a[i, j] = -ckh / 2.0
            elif j < i:
                a[i, j] = -ckh
        if i < n - 1:
            a[i, n - 1] += -ckh / 2.0
    a[0, 0] = 1.0 - ckh / 2.0
    return a


def wright(n: int, h: float = 0.3) -> np.ndarray:
    """No. 21 — Wright's multiple-shooting matrix (exponential GEPP growth).

    Two-point boundary-value problems solved by multiple shooting produce
    an almost block-bidiagonal system (Wright 1993).  With 2x2 blocks,
    identity diagonal blocks, sub-diagonal blocks ``-exp(M h)`` for a fixed
    matrix ``M``, and boundary-condition blocks ``B_a`` (top-left) and
    ``B_b`` (top-right), partial pivoting leaves the growth of the trailing
    block column unchecked.  ``n`` must be even.
    """
    if n % 2 != 0 or n < 4:
        raise ValueError("wright requires an even n >= 4")
    m_blocks = n // 2
    mmat = np.array([[0.0, 1.0], [1.0, 0.0]])
    emh = sla.expm(mmat * h)
    a = np.zeros((n, n))
    # Boundary conditions occupy the first block row.
    a[0:2, 0:2] = np.eye(2)
    a[0:2, n - 2 : n] = np.eye(2)
    # Shooting blocks: row block i couples block columns i-1 and i.
    for blk in range(1, m_blocks):
        r = 2 * blk
        a[r : r + 2, r - 2 : r] = -emh
        a[r : r + 2, r : r + 2] = np.eye(2)
    return a


# --------------------------------------------------------------------------- #
# Extra matrix discussed in Section V-C
# --------------------------------------------------------------------------- #
def fiedler(n: int) -> np.ndarray:
    """Fiedler matrix ``A(i, j) = |i - j|`` (zero diagonal).

    Not part of Table III but used in Section V-C: LU NoPiv and LUPP break
    down on it ("small values rounded up to 0 and then illegally used in a
    division"), while the hybrid criteria survive.
    """
    i = np.arange(n).reshape(-1, 1)
    j = np.arange(n).reshape(1, -1)
    return np.abs(i - j).astype(np.float64)
