"""PaRSEC-like dataflow runtime: task graph, executors, platform model, simulator."""

from .dataflow import DataflowStage, StepDataflow
from .executor import ExecutionTrace, SequentialExecutor, ThreadedExecutor
from .graph import TaskGraph
from .platform import Platform, dancer_platform, laptop_platform
from .schedule import (
    KernelTask,
    build_step_graph,
    merge_traces,
    run_step_tasks,
    written_tiles,
)
from .simulator import ScheduledTask, SimulationResult, simulate
from .task import Task, TileRef

__all__ = [
    "Task",
    "TileRef",
    "TaskGraph",
    "KernelTask",
    "build_step_graph",
    "run_step_tasks",
    "merge_traces",
    "written_tiles",
    "Platform",
    "dancer_platform",
    "laptop_platform",
    "simulate",
    "SimulationResult",
    "ScheduledTask",
    "SequentialExecutor",
    "ThreadedExecutor",
    "ExecutionTrace",
    "StepDataflow",
    "DataflowStage",
]
