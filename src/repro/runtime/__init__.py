"""PaRSEC-like dataflow runtime: task graph, executors, platform model, simulator.

Three executors run a task graph for real: ``SequentialExecutor`` (the
correctness reference), ``ThreadedExecutor`` (overlaps tasks while numpy
is inside BLAS, which releases the GIL), and ``ProcessExecutor`` (true
multi-core execution on a worker-process pool, no GIL at all).

**Pickling constraint of the multi-process backend:** worker processes
cannot receive closures, so tasks destined for ``ProcessExecutor`` must
carry a picklable :class:`~repro.kernels.dispatch.KernelCall` descriptor
(``kernel name + tile indices + picklable args``) in ``KernelTask.call`` /
``Task.call``, resolved against the ``repro.kernels.dispatch.KERNELS``
table inside the worker.  The built-in step planners emit both the closure
and the descriptor, so their plans run on any executor; custom tasks that
only carry a closure are rejected by ``ProcessExecutor`` with a clear
error.  Execution-time products (compact-WY factors, pairwise pivot
factors) flow between descriptors through ``produces``/``consumes`` keys
instead of shared Python dicts.
"""

from .dataflow import DataflowStage, StepDataflow
from .executor import ExecutionTrace, SequentialExecutor, ThreadedExecutor
from .graph import TaskGraph
from .process_executor import ProcessExecutor, shutdown_worker_pools
from .platform import Platform, dancer_platform, laptop_platform
from .schedule import (
    KernelTask,
    StepPipeline,
    assign_task_priorities,
    build_step_graph,
    kernel_cost_fn,
    merge_traces,
    run_step_tasks,
    written_tiles,
)
from .simulator import ScheduledTask, SimulationResult, simulate
from .task import Task, TileRef

__all__ = [
    "Task",
    "TileRef",
    "TaskGraph",
    "KernelTask",
    "StepPipeline",
    "build_step_graph",
    "run_step_tasks",
    "merge_traces",
    "written_tiles",
    "kernel_cost_fn",
    "assign_task_priorities",
    "Platform",
    "dancer_platform",
    "laptop_platform",
    "simulate",
    "SimulationResult",
    "ScheduledTask",
    "SequentialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "shutdown_worker_pools",
    "ExecutionTrace",
    "StepDataflow",
    "DataflowStage",
]
