"""Executors that actually run a task graph on the local machine.

Beyond the discrete-event *simulator* (which only models time), the runtime
can execute task graphs whose tasks carry a Python callable:

* :class:`SequentialExecutor` runs tasks one by one in a valid topological
  order — useful for debugging and as a correctness reference;
* :class:`ThreadedExecutor` dispatches ready tasks to a thread pool,
  releasing successors as their dependencies complete — the same dataflow
  execution model as PaRSEC inside one node.  Numpy kernels release the GIL
  inside BLAS, so tile algorithms actually overlap.

Both executors return an :class:`ExecutionTrace` with per-task timings so
examples and tests can inspect the achieved parallelism.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api.registry import register_executor
from .graph import TaskGraph
from .task import TileRef

__all__ = ["ExecutionTrace", "SequentialExecutor", "ThreadedExecutor"]


@dataclass
class ExecutionTrace:
    """Wall-clock trace of a real (non-simulated) task-graph execution.

    Besides per-task timings, the trace records each task's kernel name
    (``kernel_of_task``) so per-kernel cost calibration
    (:mod:`repro.perf.calibrate`) can be fed from traces alone, the batch
    count of fused tasks (``fused_of_task``, recorded only when > 1, so
    calibration can divide a fused sweep's duration back into per-kernel
    samples), and optionally the tile norms sampled by the multi-process
    executor's workers (``tile_norms``, used for exact growth tracking
    under cross-step lookahead).
    """

    start_times: Dict[int, float] = field(default_factory=dict)
    finish_times: Dict[int, float] = field(default_factory=dict)
    worker_of_task: Dict[int, str] = field(default_factory=dict)
    kernel_of_task: Dict[int, str] = field(default_factory=dict)
    fused_of_task: Dict[int, int] = field(default_factory=dict)
    tile_norms: Dict[int, Dict[TileRef, float]] = field(default_factory=dict)
    #: Logical (block-cyclic) rank each task executed under — recorded only
    #: by distribution-aware executors, so owner-computes placement can be
    #: asserted directly from the trace.
    rank_of_task: Dict[int, int] = field(default_factory=dict)
    wall_time: float = 0.0

    @property
    def n_tasks(self) -> int:
        return len(self.finish_times)

    @property
    def n_started(self) -> int:
        """Tasks that started, whether or not they finished (errored runs)."""
        return len(self.start_times)

    def concurrency_profile(self, resolution: int = 200) -> List[int]:
        """Number of tasks in flight sampled at ``resolution`` points.

        Robust to partial traces: a task that started but never finished
        (it errored, or the run timed out) is counted as in flight until
        the end of the sampled window.
        """
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        # Snapshot the dicts: after a timeout, a leaked worker thread may
        # still be writing into this trace while the caller inspects it.
        start_times = dict(self.start_times)
        finish_times = dict(self.finish_times)
        if not start_times:
            return []
        t0 = min(start_times.values())
        t1 = max(start_times.values())
        if finish_times:
            t1 = max(t1, max(finish_times.values()))
        if t1 <= t0:
            return [len(start_times)]
        if resolution == 1:
            points = [t0]  # a single sample, taken at the window start
        else:
            points = [t0 + (t1 - t0) * i / (resolution - 1) for i in range(resolution)]
        out = []
        for p in points:
            running = sum(
                1
                for uid, start in start_times.items()
                if start <= p < finish_times.get(uid, float("inf"))
            )
            out.append(running)
        return out

    @property
    def max_concurrency(self) -> int:
        profile = self.concurrency_profile()
        return max(profile) if profile else 0


@register_executor("sequential", aliases=("seq",))
class SequentialExecutor:
    """Run every task of the graph in topological (submission) order.

    The trace of the most recent :meth:`run` call is kept in
    ``last_trace`` so it stays inspectable even when a task raised.
    """

    def __init__(self) -> None:
        self.last_trace: Optional[ExecutionTrace] = None

    def run(self, graph: TaskGraph) -> ExecutionTrace:
        trace = ExecutionTrace()
        self.last_trace = trace
        t_begin = time.perf_counter()
        try:
            for uid in graph.topological_order():
                task = graph.task(uid)
                trace.start_times[uid] = time.perf_counter()
                trace.worker_of_task[uid] = "main"
                trace.kernel_of_task[uid] = task.kernel
                if task.fused > 1:
                    trace.fused_of_task[uid] = task.fused
                try:
                    if task.fn is not None:
                        task.fn()
                finally:
                    # Record a finish time even for a task that raised, so
                    # the partial trace stays inspectable.
                    trace.finish_times[uid] = time.perf_counter()
        finally:
            trace.wall_time = time.perf_counter() - t_begin
        return trace


@register_executor("threaded", aliases=("threads", "threadpool"))
class ThreadedExecutor:
    """Dataflow execution on a thread pool (one node of a PaRSEC-like runtime).

    Parameters
    ----------
    workers:
        Number of worker threads (cores of the simulated node).

    Ready tasks are pulled from a priority-ordered set (largest
    ``Task.priority`` first, submission order breaking ties), so a graph
    whose priorities encode critical-path depth is executed along its
    critical path whenever more tasks are ready than workers are free.
    Priorities never relax dependencies: results stay bit-identical to the
    sequential reference for any priority assignment.

    The trace of the most recent :meth:`run` call is kept in ``last_trace``
    so partial traces stay inspectable after a task error or a timeout.
    After a :exc:`TimeoutError`, tasks that were mid-execution keep running
    detached (threads cannot be cancelled), so the data the graph's
    closures write must be treated as indeterminate by the caller.
    """

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self.last_trace: Optional[ExecutionTrace] = None

    def run(self, graph: TaskGraph, timeout: Optional[float] = None) -> ExecutionTrace:
        trace = ExecutionTrace()
        self.last_trace = trace
        tasks = graph.tasks
        if not tasks:
            return trace

        successors = graph.successors()
        remaining = {t.uid: len(t.deps) for t in tasks}
        lock = threading.Lock()
        done = threading.Event()
        pending = {"count": len(tasks)}
        errors: List[BaseException] = []
        # Ready tasks ordered by (-priority, uid): each pool dispatch pops
        # the currently most critical ready task instead of a fixed one, so
        # priorities take effect at the moment a worker frees up.
        ready_heap: List[Tuple[float, int]] = []

        t_begin = time.perf_counter()

        def dispatch() -> None:
            with lock:
                if errors or not ready_heap:
                    # A task already failed: abort cleanly without starting
                    # new work (successors of the failed task were never
                    # released, and already-queued dispatches drain here).
                    return
                _, uid = heapq.heappop(ready_heap)
            execute(uid)

        def execute(uid: int) -> None:
            task = tasks[uid]
            trace.start_times[uid] = time.perf_counter()
            trace.worker_of_task[uid] = threading.current_thread().name
            trace.kernel_of_task[uid] = task.kernel
            if task.fused > 1:
                trace.fused_of_task[uid] = task.fused
            try:
                if task.fn is not None:
                    task.fn()
            except BaseException as exc:  # propagate to the caller
                # Record the finish time so the partial trace is inspectable
                # (concurrency_profile, per-task timings) after the failure.
                trace.finish_times[uid] = time.perf_counter()
                with lock:
                    errors.append(exc)
                    done.set()
                return
            trace.finish_times[uid] = time.perf_counter()
            n_ready = 0
            with lock:
                pending["count"] -= 1
                if pending["count"] == 0:
                    done.set()
                for succ in successors[uid]:
                    remaining[succ] -= 1
                    if remaining[succ] == 0:
                        heapq.heappush(ready_heap, (-tasks[succ].priority, succ))
                        n_ready += 1
            for _ in range(n_ready):
                try:
                    pool.submit(dispatch)
                except RuntimeError:
                    # The pool was shut down after an error/timeout in
                    # another task; drop the successor.
                    return

        initial = [t.uid for t in tasks if remaining[t.uid] == 0]
        if not initial:
            raise ValueError("task graph has no source task (dependency cycle?)")
        pool = ThreadPoolExecutor(max_workers=self.workers, thread_name_prefix="worker")
        completed = False
        try:
            for uid in initial:
                heapq.heappush(ready_heap, (-tasks[uid].priority, uid))
            for _ in range(len(initial)):
                pool.submit(dispatch)
            completed = done.wait(timeout=timeout)
        finally:
            # On timeout, do not block on tasks that may never return.
            # Python threads cannot be killed: an in-flight task keeps
            # running detached and may still write the trace *and* whatever
            # data its closure touches, so after a TimeoutError the graph's
            # data must be treated as indeterminate.  Queued-but-unstarted
            # tasks are cancelled.
            pool.shutdown(wait=completed, cancel_futures=not completed)

        trace.wall_time = time.perf_counter() - t_begin
        if not completed:
            raise TimeoutError(
                f"task graph execution timed out after {timeout} s "
                f"({len(trace.finish_times)}/{len(tasks)} tasks finished)"
            )
        if errors:
            raise errors[0]
        return trace
