"""Executors that actually run a task graph on the local machine.

Beyond the discrete-event *simulator* (which only models time), the runtime
can execute task graphs whose tasks carry a Python callable:

* :class:`SequentialExecutor` runs tasks one by one in a valid topological
  order — useful for debugging and as a correctness reference;
* :class:`ThreadedExecutor` dispatches ready tasks to a thread pool,
  releasing successors as their dependencies complete — the same dataflow
  execution model as PaRSEC inside one node.  Numpy kernels release the GIL
  inside BLAS, so tile algorithms actually overlap.

Both executors return an :class:`ExecutionTrace` with per-task timings so
examples and tests can inspect the achieved parallelism.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .graph import TaskGraph

__all__ = ["ExecutionTrace", "SequentialExecutor", "ThreadedExecutor"]


@dataclass
class ExecutionTrace:
    """Wall-clock trace of a real (non-simulated) task-graph execution."""

    start_times: Dict[int, float] = field(default_factory=dict)
    finish_times: Dict[int, float] = field(default_factory=dict)
    worker_of_task: Dict[int, str] = field(default_factory=dict)
    wall_time: float = 0.0

    @property
    def n_tasks(self) -> int:
        return len(self.finish_times)

    def concurrency_profile(self, resolution: int = 200) -> List[int]:
        """Number of tasks in flight sampled at ``resolution`` points."""
        if not self.finish_times:
            return []
        t0 = min(self.start_times.values())
        t1 = max(self.finish_times.values())
        if t1 <= t0:
            return [self.n_tasks]
        points = [t0 + (t1 - t0) * i / (resolution - 1) for i in range(resolution)]
        out = []
        for p in points:
            running = sum(
                1
                for uid in self.start_times
                if self.start_times[uid] <= p < self.finish_times[uid]
            )
            out.append(running)
        return out

    @property
    def max_concurrency(self) -> int:
        profile = self.concurrency_profile()
        return max(profile) if profile else 0


class SequentialExecutor:
    """Run every task of the graph in topological (submission) order."""

    def run(self, graph: TaskGraph) -> ExecutionTrace:
        trace = ExecutionTrace()
        t_begin = time.perf_counter()
        for uid in graph.topological_order():
            task = graph.task(uid)
            trace.start_times[uid] = time.perf_counter()
            if task.fn is not None:
                task.fn()
            trace.finish_times[uid] = time.perf_counter()
            trace.worker_of_task[uid] = "main"
        trace.wall_time = time.perf_counter() - t_begin
        return trace


class ThreadedExecutor:
    """Dataflow execution on a thread pool (one node of a PaRSEC-like runtime).

    Parameters
    ----------
    workers:
        Number of worker threads (cores of the simulated node).
    """

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)

    def run(self, graph: TaskGraph, timeout: Optional[float] = None) -> ExecutionTrace:
        trace = ExecutionTrace()
        tasks = graph.tasks
        if not tasks:
            return trace

        successors = graph.successors()
        remaining = {t.uid: len(t.deps) for t in tasks}
        lock = threading.Lock()
        done = threading.Event()
        pending = {"count": len(tasks)}
        errors: List[BaseException] = []

        t_begin = time.perf_counter()

        def execute(uid: int) -> None:
            task = tasks[uid]
            trace.start_times[uid] = time.perf_counter()
            trace.worker_of_task[uid] = threading.current_thread().name
            try:
                if task.fn is not None:
                    task.fn()
            except BaseException as exc:  # propagate to the caller
                with lock:
                    errors.append(exc)
                    done.set()
                return
            trace.finish_times[uid] = time.perf_counter()
            newly_ready: List[int] = []
            with lock:
                pending["count"] -= 1
                if pending["count"] == 0:
                    done.set()
                for succ in successors[uid]:
                    remaining[succ] -= 1
                    if remaining[succ] == 0:
                        newly_ready.append(succ)
            for succ in newly_ready:
                pool.submit(execute, succ)

        with ThreadPoolExecutor(max_workers=self.workers, thread_name_prefix="worker") as pool:
            initial = [t.uid for t in tasks if remaining[t.uid] == 0]
            if not initial:
                raise ValueError("task graph has no source task (dependency cycle?)")
            for uid in initial:
                pool.submit(execute, uid)
            if not done.wait(timeout=timeout):
                raise TimeoutError("task graph execution timed out")

        if errors:
            raise errors[0]
        trace.wall_time = time.perf_counter() - t_begin
        return trace
