"""Task graph with superscalar (last-writer) dependency construction.

PaRSEC derives the task graph of a tiled algorithm from the data accessed
by each task.  We reproduce the same mechanism: tasks are appended in the
sequential (program) order of the algorithm, and the graph records, for
every tile, the last task that wrote it; a new task depends on the last
writer of every tile it touches, and on the previous readers of every tile
it writes (write-after-read).  The result is exactly the dataflow DAG of
the tiled algorithm, without any manual dependency bookkeeping in the
drivers.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .task import Task, TileRef

__all__ = ["CycleError", "TaskGraph"]


class CycleError(ValueError):
    """A task graph has no valid topological order.

    Raised by :meth:`TaskGraph.topological_order` when the dependency
    edges contain a cycle (or reference tasks that do not exist);
    ``task_uids`` names the tasks that could not be ordered — the cycle
    members plus anything downstream of them.
    """

    def __init__(self, message: str, task_uids: Iterable[int] = ()) -> None:
        super().__init__(message)
        self.task_uids: Tuple[int, ...] = tuple(task_uids)


class TaskGraph:
    """A DAG of :class:`~repro.runtime.task.Task` objects.

    Tasks must be submitted in a valid sequential order (the program order
    of the algorithm); dependencies are inferred automatically from tile
    accesses, but can also be added explicitly (control dependencies).
    """

    def __init__(self) -> None:
        self._tasks: List[Task] = []
        self._last_writer: Dict[TileRef, int] = {}
        self._readers_since_write: Dict[TileRef, Set[int]] = defaultdict(set)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_task(
        self,
        kernel: str,
        step: int,
        reads: Iterable[TileRef] = (),
        writes: Iterable[TileRef] = (),
        owner: int = 0,
        flops: float = 0.0,
        critical: bool = False,
        duration_hint: Optional[float] = None,
        fn=None,
        call=None,
        fused: int = 1,
        extra_deps: Iterable[int] = (),
    ) -> Task:
        """Append a task; infer its dependencies from tile accesses."""
        reads_f: FrozenSet[TileRef] = frozenset(reads)
        writes_f: FrozenSet[TileRef] = frozenset(writes)
        task = Task(
            uid=len(self._tasks),
            kernel=kernel,
            step=step,
            reads=reads_f,
            writes=writes_f,
            owner=owner,
            flops=flops,
            critical=critical,
            duration_hint=duration_hint,
            fn=fn,
            call=call,
            fused=max(int(fused), 1),
        )

        deps: Set[int] = set(extra_deps)
        # Read-after-write and write-after-write: depend on the last writer
        # of every accessed tile.
        for tile in task.touches():
            if tile in self._last_writer:
                deps.add(self._last_writer[tile])
        # Write-after-read: a writer must wait for every reader since the
        # previous write of the tile.
        for tile in writes_f:
            deps.update(self._readers_since_write.get(tile, ()))
        deps.discard(task.uid)
        task.deps = deps

        # Bookkeeping for future tasks.
        for tile in writes_f:
            self._last_writer[tile] = task.uid
            self._readers_since_write[tile] = set()
        for tile in reads_f - writes_f:
            self._readers_since_write[tile].add(task.uid)

        self._tasks.append(task)
        return task

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def tasks(self) -> List[Task]:
        return self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def task(self, uid: int) -> Task:
        return self._tasks[uid]

    def successors(self) -> Dict[int, List[int]]:
        """Adjacency list ``uid -> [successor uids]``."""
        succ: Dict[int, List[int]] = {t.uid: [] for t in self._tasks}
        for t in self._tasks:
            for d in t.deps:
                succ[d].append(t.uid)
        return succ

    def total_flops(self) -> float:
        return float(sum(t.flops for t in self._tasks))

    def kernel_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for t in self._tasks:
            counts[t.kernel] = counts.get(t.kernel, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[int]:
        """Task uids in a valid execution order (submission order is one).

        Graphs built through :meth:`add_task` only ever have backward
        dependencies, so submission order is returned unchanged.  Graphs
        whose edges were edited by hand (or corrupted) fall back to a
        Kahn sort; if no order exists this raises :class:`CycleError`
        naming the tasks that could not be ordered.
        """
        if all(d < t.uid for t in self._tasks for d in t.deps):
            return [t.uid for t in self._tasks]
        return self._kahn_order()

    def _kahn_order(self) -> List[int]:
        n = len(self._tasks)
        for t in self._tasks:
            bad = sorted(d for d in t.deps if not 0 <= d < n)
            if bad:
                raise CycleError(
                    f"task {t.uid} depends on unknown task(s) {bad}", (t.uid,)
                )
        indegree = {t.uid: len(t.deps) for t in self._tasks}
        succ = self.successors()
        ready = [uid for uid, deg in indegree.items() if deg == 0]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            uid = heapq.heappop(ready)
            order.append(uid)
            for s in succ[uid]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    heapq.heappush(ready, s)
        if len(order) != n:
            stuck = sorted(set(indegree) - set(order))
            raise CycleError(
                f"task graph has a dependency cycle; {len(stuck)} task(s) "
                f"cannot be ordered: uids {stuck}",
                stuck,
            )
        return order

    def tile_intervals(self, offset: int = 0) -> Dict[TileRef, Tuple[int, int]]:
        """Live interval (first/last access position) of every tile.

        Positions index the topological order, shifted by ``offset`` so the
        intervals of consecutive pipeline-flushed graphs can be merged onto
        one global program-order axis (pass the running task count).  This
        is the first-def/last-use skeleton the liveness pass builds its
        peak-memory certification on.
        """
        intervals: Dict[TileRef, Tuple[int, int]] = {}
        for pos, uid in enumerate(self.topological_order(), start=offset):
            for tile in self._tasks[uid].touches():
                first, _ = intervals.get(tile, (pos, pos))
                intervals[tile] = (first, pos)
        return intervals

    def blevels(
        self, cost: Optional[Callable[[Task], float]] = None
    ) -> Dict[int, float]:
        """Bottom level of every task: its critical-path depth.

        The b-level of a task is its own cost plus the longest-cost chain
        of successors below it — the classic critical-path priority of
        list scheduling (tasks on the critical path get the largest
        values).  ``cost`` maps a task to its execution cost; when omitted
        every task counts for 1.
        """
        succ = self.successors()
        levels: Dict[int, float] = {}
        for uid in reversed(self.topological_order()):
            task = self._tasks[uid]
            own = 1.0 if cost is None else float(cost(task))
            below = max((levels[s] for s in succ[uid]), default=0.0)
            levels[uid] = own + below
        return levels

    def assign_priorities(
        self, cost: Optional[Callable[[Task], float]] = None
    ) -> Dict[int, float]:
        """Set every task's ``priority`` to its b-level and return the map.

        Executors with a priority-ordered ready set then favour the
        critical path: among simultaneously ready tasks, the one heading
        the longest remaining dependency chain (under the given cost
        model) starts first.
        """
        levels = self.blevels(cost)
        for task in self._tasks:
            task.priority = levels[task.uid]
        return levels

    def critical_path_length(
        self, duration: Optional[Dict[int, float]] = None
    ) -> float:
        """Length of the longest dependency chain.

        ``duration`` maps task uid to its execution time; when omitted every
        task counts for 1 (the critical path in number of tasks).
        """
        finish: Dict[int, float] = {}
        for uid in self.topological_order():
            t = self._tasks[uid]
            d = 1.0 if duration is None else duration.get(uid, 0.0)
            start = max((finish[p] for p in t.deps), default=0.0)
            finish[uid] = start + d
        return max(finish.values(), default=0.0)
