"""Dynamic task-graph selection — the paper's extension of PaRSEC (Figure 1).

A standard tiled LU or QR factorization has a *static* task graph: every
task is known before execution.  The hybrid algorithm does not — at each
step either the LU tasks or the QR tasks run, and the choice is made at run
time by the robustness criterion.  The paper solves this inside PaRSEC by:

* **BACKUP PANEL** tasks that save the diagonal-domain panel tiles before
  the in-place criterion factorization;
* **LU ON PANEL** tasks that factor the diagonal domain, compute the local
  criterion data, and take part in an all-reduce so every node learns the
  decision;
* **PROPAGATE** tasks (one per tile) that receive the decision through a
  control flow and forward the data to the tasks of the *selected*
  factorization, restoring the backup when QR is chosen;
* both the LU-step tasks and the QR-step tasks are present in the graph,
  and the ones on the unselected path are discarded.

:class:`StepDataflow` reproduces that structure for one elimination step:
it materialises both branches (with control dependencies from the
propagate layer), and :meth:`StepDataflow.resolve` prunes the branch that
the decision rules out — returning the task graph that would actually
execute.  The Figure 1 harness prints this structure; the DAG builder used
for performance simulation generates only the selected branch directly
(the pruning outcome), plus the decision-overhead tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..tiles.distribution import BlockCyclicDistribution
from .graph import TaskGraph
from .task import Task

__all__ = ["StepDataflow", "DataflowStage"]


@dataclass
class DataflowStage:
    """A named group of tasks of the per-step dataflow (one box of Figure 1)."""

    name: str
    tasks: List[int] = field(default_factory=list)


class StepDataflow:
    """Both potential execution paths of one elimination step.

    Parameters
    ----------
    dist:
        Block-cyclic distribution (defines owners and the diagonal domain).
    k:
        Elimination step.
    nb:
        Tile size (only used for flop annotations).
    """

    def __init__(self, dist: BlockCyclicDistribution, k: int, nb: int) -> None:
        self.dist = dist
        self.k = k
        self.nb = nb
        self.graph = TaskGraph()
        self.stages: Dict[str, DataflowStage] = {}
        self._lu_branch: List[int] = []
        self._qr_branch: List[int] = []
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _stage(self, name: str) -> DataflowStage:
        if name not in self.stages:
            self.stages[name] = DataflowStage(name=name)
        return self.stages[name]

    def _add(self, stage: str, branch: Optional[str], **kwargs) -> Task:
        task = self.graph.add_task(**kwargs)
        self._stage(stage).tasks.append(task.uid)
        if branch == "lu":
            self._lu_branch.append(task.uid)
        elif branch == "qr":
            self._qr_branch.append(task.uid)
        return task

    def _build(self) -> None:
        k, n = self.k, self.dist.n
        dist = self.dist
        panel_rows = dist.panel_rows(k)
        domain_rows = dist.diagonal_domain_rows(k)
        diag_owner = dist.diagonal_owner(k)

        # BACKUP PANEL: collect/copy the panel tiles of the diagonal domain.
        backup_tasks = []
        for i in domain_rows:
            t = self._add(
                "backup_panel",
                None,
                kernel="backup_panel",
                step=k,
                reads={(i, k)},
                writes=set(),
                owner=diag_owner,
                critical=True,
            )
            backup_tasks.append(t.uid)

        # LU ON PANEL: criterion factorization of the domain + local criterion
        # data on every panel-owning node, then the all-reduce of the decision.
        lu_on_panel = self._add(
            "lu_on_panel",
            None,
            kernel="panel_getrf",
            step=k,
            reads={(i, k) for i in domain_rows},
            writes={(i, k) for i in domain_rows},
            owner=diag_owner,
            critical=True,
            extra_deps=backup_tasks,
        )
        criterion_tasks = [lu_on_panel.uid]
        for rank in dist.panel_owners(k):
            if rank == diag_owner:
                continue
            t = self._add(
                "lu_on_panel",
                None,
                kernel="criterion_local",
                step=k,
                reads={(i, k) for i in dist.domain_rows(k, rank)},
                writes=set(),
                owner=rank,
                critical=True,
            )
            criterion_tasks.append(t.uid)
        allreduce = self._add(
            "decision",
            None,
            kernel="criterion_allreduce",
            step=k,
            owner=diag_owner,
            critical=True,
            extra_deps=criterion_tasks,
        )

        # PROPAGATE: one task per panel tile, gated by the decision; they
        # forward the data to the selected branch (and restore the backup on
        # the QR path).
        propagate_tasks = []
        for i in panel_rows:
            t = self._add(
                "propagate",
                None,
                kernel="propagate",
                step=k,
                reads={(i, k)},
                writes={(i, k)},
                owner=dist.owner(i, k),
                critical=True,
                extra_deps=[allreduce.uid],
            )
            propagate_tasks.append(t.uid)

        # LU branch (variant A1).
        for i in panel_rows[1:]:
            self._add(
                "lu_step",
                "lu",
                kernel="trsm",
                step=k,
                reads={(i, k), (k, k)},
                writes={(i, k)},
                owner=dist.owner(i, k),
                extra_deps=propagate_tasks,
            )
        for j in range(k + 1, n):
            self._add(
                "lu_step",
                "lu",
                kernel="swptrsm",
                step=k,
                reads={(k, j), (k, k)},
                writes={(k, j)},
                owner=dist.owner(k, j),
                extra_deps=propagate_tasks,
            )
        for i in panel_rows[1:]:
            for j in range(k + 1, n):
                self._add(
                    "lu_step",
                    "lu",
                    kernel="gemm",
                    step=k,
                    reads={(i, k), (k, j), (i, j)},
                    writes={(i, j)},
                    owner=dist.owner(i, j),
                )

        # QR branch (hierarchical QR with TS kernels along a flat chain is
        # shown for readability; the real elimination list depends on the
        # configured trees).
        self._add(
            "qr_step",
            "qr",
            kernel="geqrt",
            step=k,
            reads={(k, k)},
            writes={(k, k)},
            owner=dist.owner(k, k),
            extra_deps=propagate_tasks,
        )
        for j in range(k + 1, n):
            self._add(
                "qr_step",
                "qr",
                kernel="unmqr",
                step=k,
                reads={(k, k), (k, j)},
                writes={(k, j)},
                owner=dist.owner(k, j),
            )
        for i in panel_rows[1:]:
            self._add(
                "qr_step",
                "qr",
                kernel="tsqrt",
                step=k,
                reads={(k, k), (i, k)},
                writes={(k, k), (i, k)},
                owner=dist.owner(i, k),
            )
            for j in range(k + 1, n):
                self._add(
                    "qr_step",
                    "qr",
                    kernel="tsmqr",
                    step=k,
                    reads={(i, k), (k, j), (i, j)},
                    writes={(k, j), (i, j)},
                    owner=dist.owner(i, j),
                )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def lu_branch(self) -> List[int]:
        """Task uids of the LU branch."""
        return list(self._lu_branch)

    @property
    def qr_branch(self) -> List[int]:
        """Task uids of the QR branch."""
        return list(self._qr_branch)

    def control_tasks(self) -> List[int]:
        """Uids of the decision-overhead tasks (backup/criterion/propagate)."""
        return [t.uid for t in self.graph.tasks if t.critical]

    def resolve(self, use_lu: bool) -> List[Task]:
        """Tasks that actually execute once the decision is known.

        The tasks of the unselected branch are discarded (their owners'
        local task counters are decremented in the real runtime); what
        remains is the control layer plus the selected branch, in program
        order.
        """
        discard = set(self._qr_branch if use_lu else self._lu_branch)
        return [t for t in self.graph.tasks if t.uid not in discard]

    def summary(self) -> Dict[str, int]:
        """Number of tasks per stage (handy for the Figure 1 harness)."""
        return {name: len(stage.tasks) for name, stage in self.stages.items()}
