"""Tasks: the unit of work of the dataflow runtime.

The paper implements its algorithms on top of PaRSEC, a distributed
dataflow runtime that executes a graph of *tasks* (tile kernels) whose
edges are data dependencies between tiles.  This module defines the task
abstraction used by our pure-Python substitute: a task knows

* which kernel it represents (``getrf``, ``gemm``, ``tsqrt``, ...),
* which elimination step it belongs to,
* which tiles it reads and writes (used both to build dependencies and to
  derive communication volumes),
* which process (node) owns it (the *owner computes* rule: a task runs on
  the node owning the tile it writes),
* its floating-point cost,
* optionally a Python callable so the threaded executor can actually run
  the numerical kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional, Set, Tuple

__all__ = ["TileRef", "Task"]

#: A tile coordinate ``(i, j)``; the right-hand-side tile of row ``i`` is
#: represented as ``(i, RHS_COLUMN)``.
TileRef = Tuple[int, int]

#: Pseudo-column index used for right-hand-side tiles in task read/write sets.
RHS_COLUMN = -1


@dataclass
class Task:
    """One node of the task graph.

    Attributes
    ----------
    uid:
        Unique integer id within its :class:`~repro.runtime.graph.TaskGraph`.
    kernel:
        Lower-case kernel name (drives the cost model).
    step:
        Elimination step ``k`` this task belongs to.
    reads / writes:
        Tiles read and written.  A tile that is modified in place appears
        in both sets.
    owner:
        Linear rank of the process executing the task.
    flops:
        Floating-point operations performed by the task.
    critical:
        Marks control/decision tasks (backup, propagate, all-reduce) that
        belong to the decision-making overhead of the hybrid algorithm.
    duration_hint:
        Optional fixed duration in seconds; when set, the simulator uses it
        instead of deriving a duration from ``flops`` and the kernel rate
        (used for communication/control tasks such as the criterion
        all-reduce or the LUPP pivot exchange).
    fn:
        Optional callable executed by the threaded/sequential executors.
    call:
        Optional picklable :class:`~repro.kernels.dispatch.KernelCall`
        descriptor of the same kernel, executed by the multi-process
        executor (closures cannot cross a process boundary).
    priority:
        Scheduling priority — larger runs first among simultaneously ready
        tasks.  Executors use it to order their ready sets; the canonical
        assignment is the critical-path depth (b-level) under a calibrated
        cost model, see :meth:`TaskGraph.assign_priorities
        <repro.runtime.graph.TaskGraph.assign_priorities>`.  Priorities
        never override dependencies, so they affect timing only, not
        results.
    fused:
        Number of logical per-tile kernels this task batches (1 for a
        plain per-tile task).  Fused backends collapse a trailing-update
        sweep into one task; the cost model and the simulator scale the
        per-kernel duration by this count, and calibration divides the
        measured duration back down so cost tables stay per-tile.
    """

    uid: int
    kernel: str
    step: int
    reads: FrozenSet[TileRef] = frozenset()
    writes: FrozenSet[TileRef] = frozenset()
    owner: int = 0
    flops: float = 0.0
    critical: bool = False
    duration_hint: Optional[float] = None
    fn: Optional[Callable[[], None]] = None
    call: Optional[object] = None
    priority: float = 0.0
    fused: int = 1
    deps: Set[int] = field(default_factory=set)

    def touches(self) -> FrozenSet[TileRef]:
        """All tiles accessed by the task."""
        return self.reads | self.writes

    def __hash__(self) -> int:
        return hash(self.uid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task(uid={self.uid}, kernel={self.kernel!r}, step={self.step}, "
            f"owner={self.owner}, deps={sorted(self.deps)})"
        )
