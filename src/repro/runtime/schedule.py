"""Schedule the *numerical* kernels of one elimination step on an executor.

The numerical drivers (:mod:`repro.core.lu_step`, :mod:`repro.core.qr_step`,
the baselines) describe each elimination step as an ordered list of
:class:`KernelTask` objects: a kernel name, the tiles it reads and writes,
and a closure performing the actual numpy computation.  This module turns
such a list into a :class:`~repro.runtime.graph.TaskGraph` — dependencies
are inferred with the same superscalar (last-writer) analysis PaRSEC uses,
exactly as :mod:`repro.core.dag_builder` does for the performance
simulation — and runs it on a real executor.

The per-step criterion decision of the hybrid algorithm stays sequential
(it is inherently dynamic, mirroring the BACKUP / LU ON PANEL / PROPAGATE
control layer of :mod:`repro.runtime.dataflow`), but every panel
elimination and trailing-matrix update within a step fans out; since numpy
kernels release the GIL inside BLAS, the updates genuinely overlap on a
:class:`~repro.runtime.executor.ThreadedExecutor`.

``build_step_graph`` accepts an existing graph to append to, which is the
seam for cross-step lookahead: a scheduler that plans step ``k+1``'s panel
tasks before step ``k``'s trailing update has drained can submit both task
lists into one graph and let the superscalar dependencies interleave them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Optional, Sequence

from .executor import ExecutionTrace
from .graph import TaskGraph
from .task import TileRef

__all__ = [
    "KernelTask",
    "build_step_graph",
    "run_step_tasks",
    "merge_traces",
    "written_tiles",
]


@dataclass
class KernelTask:
    """One numerical kernel invocation of an elimination step.

    Attributes
    ----------
    kernel:
        Lower-case kernel name (``"getrf"``, ``"gemm"``, ``"tsqrt"``, ...).
    fn:
        Closure performing the kernel on the tile matrix.  Closures read
        tile state lazily (at execution time), so the same task list can be
        run sequentially or handed to an executor.
    reads / writes:
        Tile coordinates accessed; right-hand-side tiles use the
        ``(i, RHS_COLUMN)`` convention of :mod:`repro.runtime.task`.
        Dependencies between tasks are inferred from these sets.
    flops:
        Optional flop count (forwarded to the graph for diagnostics).
    call:
        Optional picklable :class:`~repro.kernels.dispatch.KernelCall`
        descriptor form of the same kernel — the form the multi-process
        executor ships to its workers (closures cannot cross a process
        boundary, so a task without a descriptor can only run in-process).
    """

    kernel: str
    fn: Callable[[], None]
    reads: FrozenSet[TileRef] = frozenset()
    writes: FrozenSet[TileRef] = frozenset()
    flops: float = 0.0
    call: Optional[object] = None


def build_step_graph(
    tasks: Sequence[KernelTask],
    step: int = 0,
    graph: Optional[TaskGraph] = None,
) -> TaskGraph:
    """Materialise kernel tasks as a :class:`TaskGraph`.

    Tasks must be given in the sequential (program) order of the step;
    read/write dependencies are inferred by the graph's superscalar
    analysis.  Passing an existing ``graph`` appends the tasks to it —
    the entry point for cross-step lookahead.
    """
    if graph is None:
        graph = TaskGraph()
    for t in tasks:
        graph.add_task(
            kernel=t.kernel,
            step=step,
            reads=t.reads,
            writes=t.writes,
            flops=t.flops,
            fn=t.fn,
            call=t.call,
        )
    return graph


def run_step_tasks(
    tasks: Sequence[KernelTask],
    executor=None,
    step: int = 0,
) -> Optional[ExecutionTrace]:
    """Execute one step's kernel tasks, sequentially or on an executor.

    With ``executor=None`` the tasks simply run in program order with no
    graph overhead (the sequential reference path); otherwise the task
    graph is materialised and dispatched on the executor (sequential,
    threaded, or multi-process), and the execution trace is returned so
    callers can inspect the achieved parallelism.
    """
    if executor is None:
        for t in tasks:
            t.fn()
        return None
    graph = build_step_graph(tasks, step=step)
    return executor.run(graph)


def written_tiles(tasks: Iterable[KernelTask]) -> FrozenSet[TileRef]:
    """Union of the tiles written by the given tasks (RHS refs included)."""
    out: set = set()
    for t in tasks:
        out.update(t.writes)
    return frozenset(out)


def merge_traces(traces: Sequence[ExecutionTrace]) -> ExecutionTrace:
    """Concatenate per-step traces into one (uids offset per step).

    The merged trace keeps real wall-clock timestamps, so the concurrency
    profile of a whole factorization (one trace per elimination step) can
    be inspected at once; ``wall_time`` is the sum of the step wall times.
    """
    merged = ExecutionTrace()
    offset = 0
    for tr in traces:
        for uid, t in tr.start_times.items():
            merged.start_times[offset + uid] = t
        for uid, t in tr.finish_times.items():
            merged.finish_times[offset + uid] = t
        for uid, w in tr.worker_of_task.items():
            merged.worker_of_task[offset + uid] = w
        merged.wall_time += tr.wall_time
        # Advance past the largest uid seen, not the entry count: a partial
        # trace (errored/timed-out run) has non-contiguous uids, and a
        # length-based offset would collide with the next trace's entries.
        seen = set(tr.start_times) | set(tr.finish_times)
        offset += (max(seen) + 1) if seen else 0
    return merged
