"""Schedule the *numerical* kernels of one elimination step on an executor.

The numerical drivers (:mod:`repro.core.lu_step`, :mod:`repro.core.qr_step`,
the baselines) describe each elimination step as an ordered list of
:class:`KernelTask` objects: a kernel name, the tiles it reads and writes,
and a closure performing the actual numpy computation.  This module turns
such a list into a :class:`~repro.runtime.graph.TaskGraph` — dependencies
are inferred with the same superscalar (last-writer) analysis PaRSEC uses,
exactly as :mod:`repro.core.dag_builder` does for the performance
simulation — and runs it on a real executor.

The per-step criterion decision of the hybrid algorithm stays sequential
(it is inherently dynamic, mirroring the BACKUP / LU ON PANEL / PROPAGATE
control layer of :mod:`repro.runtime.dataflow`), but every panel
elimination and trailing-matrix update within a step fans out; since numpy
kernels release the GIL inside BLAS, the updates genuinely overlap on a
:class:`~repro.runtime.executor.ThreadedExecutor`.

``build_step_graph`` accepts an existing graph to append to, which is the
seam for cross-step lookahead; :class:`StepPipeline` builds on that seam:
it holds the planned-but-not-yet-executed tasks of several steps in one
pending window and flushes *dependency-closed* slices of it, so step
``k+1``'s panel tasks run in the same graph — and therefore concurrently
with — step ``k``'s still-draining trailing update, exactly the panel/
update overlap the paper obtains from PaRSEC's asynchrony.  Before each
flush the graph's tasks are prioritised by critical-path depth (b-level)
under the calibrated cost model, so the executors' priority-ordered ready
sets favour the panel chain.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace as dataclass_replace
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..kernels.flops import KernelFlops
from .executor import ExecutionTrace
from .graph import TaskGraph
from .task import Task, TileRef

__all__ = [
    "KernelTask",
    "StepPipeline",
    "build_step_graph",
    "run_step_tasks",
    "kernel_cost_fn",
    "assign_task_priorities",
    "merge_traces",
    "written_tiles",
]


@dataclass
class KernelTask:
    """One numerical kernel invocation of an elimination step.

    Attributes
    ----------
    kernel:
        Lower-case kernel name (``"getrf"``, ``"gemm"``, ``"tsqrt"``, ...).
    fn:
        Closure performing the kernel on the tile matrix.  Closures read
        tile state lazily (at execution time), so the same task list can be
        run sequentially or handed to an executor.
    reads / writes:
        Tile coordinates accessed; right-hand-side tiles use the
        ``(i, RHS_COLUMN)`` convention of :mod:`repro.runtime.task`.
        Dependencies between tasks are inferred from these sets.
    flops:
        Optional flop count (forwarded to the graph for diagnostics).
    call:
        Optional picklable :class:`~repro.kernels.dispatch.KernelCall`
        descriptor form of the same kernel — the form the multi-process
        executor ships to its workers (closures cannot cross a process
        boundary, so a task without a descriptor can only run in-process).
    fused:
        Number of logical per-tile kernels batched into this task (1 for
        plain per-tile tasks).  Set by the step planners when a fusing
        kernel backend collapses a trailing-update sweep into one task;
        the cost model multiplies the per-kernel duration by it and
        calibration divides measured durations back down.
    """

    kernel: str
    fn: Callable[[], None]
    reads: FrozenSet[TileRef] = frozenset()
    writes: FrozenSet[TileRef] = frozenset()
    flops: float = 0.0
    call: Optional[object] = None
    fused: int = 1


def build_step_graph(
    tasks: Sequence[KernelTask],
    step: int = 0,
    graph: Optional[TaskGraph] = None,
) -> TaskGraph:
    """Materialise kernel tasks as a :class:`TaskGraph`.

    Tasks must be given in the sequential (program) order of the step;
    read/write dependencies are inferred by the graph's superscalar
    analysis.  Passing an existing ``graph`` appends the tasks to it —
    the entry point for cross-step lookahead.
    """
    if graph is None:
        graph = TaskGraph()
    for t in tasks:
        graph.add_task(
            kernel=t.kernel,
            step=step,
            reads=t.reads,
            writes=t.writes,
            flops=t.flops,
            fn=t.fn,
            call=t.call,
            fused=t.fused,
        )
    return graph


def run_step_tasks(
    tasks: Sequence[KernelTask],
    executor=None,
    step: int = 0,
) -> Optional[ExecutionTrace]:
    """Execute one step's kernel tasks, sequentially or on an executor.

    With ``executor=None`` the tasks simply run in program order with no
    graph overhead (the sequential reference path); otherwise the task
    graph is materialised and dispatched on the executor (sequential,
    threaded, or multi-process), and the execution trace is returned so
    callers can inspect the achieved parallelism.
    """
    if executor is None:
        for t in tasks:
            t.fn()
        return None
    graph = build_step_graph(tasks, step=step)
    return executor.run(graph)


def kernel_cost_fn(
    tile_size: int, calibration: Optional[object] = None
) -> Callable[[Task], float]:
    """Per-task cost function for critical-path priorities.

    With a ``calibration`` (any object exposing
    ``kernel_duration(kernel, nb) -> Optional[float]`` and
    ``flops_per_second(nb) -> Optional[float]``, e.g.
    :class:`repro.perf.calibrate.Calibration`), measured per-kernel
    durations are used; kernels the calibration has never seen fall back
    to their Table-I flop count converted at the calibrated rate, so all
    costs stay in seconds.  Without a calibration, costs are plain flop
    counts — only relative magnitudes matter for priorities.  Kernels with
    no Table-I entry (``tstrf``, ``ssssm``, RHS variants strip their
    ``_rhs`` suffix first) are charged a generic ``nb^3``.
    """
    nb = int(tile_size)
    flops = KernelFlops(nb)

    def static_flops(kernel: str) -> float:
        base = kernel[:-4] if kernel.endswith("_rhs") else kernel
        try:
            return float(flops.of(base))
        except KeyError:
            return float(nb**3)

    if calibration is None:
        return lambda task: static_flops(task.kernel) * max(
            getattr(task, "fused", 1), 1
        )

    rate = calibration.flops_per_second(nb)

    def cost(task: Task) -> float:
        # Fused tasks batch `fused` logical kernels; calibration tables are
        # per logical kernel, so scale back up here.
        m = max(getattr(task, "fused", 1), 1)
        measured = calibration.kernel_duration(task.kernel, nb)
        if measured is not None and measured > 0.0:
            return float(measured) * m
        fl = static_flops(task.kernel) * m
        return fl / rate if rate else fl

    return cost


def assign_task_priorities(
    graph: TaskGraph, tile_size: int, calibration: Optional[object] = None
) -> None:
    """Assign b-level (critical-path) priorities to every task of ``graph``.

    Thin wrapper combining :func:`kernel_cost_fn` with
    :meth:`TaskGraph.assign_priorities
    <repro.runtime.graph.TaskGraph.assign_priorities>`.
    """
    graph.assign_priorities(kernel_cost_fn(tile_size, calibration))


class StepPipeline:
    """Cross-step lookahead: plan ahead, flush dependency-closed slices.

    The tiled drivers plan elimination steps one at a time (the per-step
    criterion decision is inherently sequential), but the planned kernel
    tasks need not run before the next step is planned.  The pipeline
    keeps up to ``lookahead + 1`` steps of planned tasks in one pending
    window and, before step ``k`` is planned, flushes only what planning
    step ``k`` actually needs: every pending writer of panel column ``k``
    (panel analysis reads column ``k`` alone), any task a flushed task
    depends on (the dependency closure under the superscalar analysis —
    RAW, WAW and WAR edges alike), and every task of steps older than the
    lookahead depth.  Each flush materialises one
    :class:`~repro.runtime.graph.TaskGraph` in program order, assigns
    critical-path priorities, and runs it to completion on the executor —
    so step ``k``'s panel tasks execute concurrently with step ``k-1``'s
    still-pending trailing update inside the same graph.

    Results are bit-identical to the sequential reference: the closure
    guarantees every flushed task sees exactly the tile bytes it would
    have seen inline, and tasks left pending only ever *depend on* flushed
    work, never the other way around.

    Growth tracking needs the per-step tile norms, which the host can no
    longer observe between steps once flushes interleave them; instead the
    last writer of each tile within a step samples the tile's 1-norm right
    after its kernel (via a wrapped closure in-process, or via
    ``KernelCall.norm_tiles`` on worker processes) into ``norm_samples``,
    which the driver replays step by step after the factorization — the
    samples are taken by the same ``region_tile_norms`` code path as the
    inline bookkeeping, so the replayed values are bit-identical.

    Parameters
    ----------
    executor:
        The dataflow executor every flush runs on.
    tile_size:
        Tile order ``nb`` (drives the priority cost model).
    lookahead:
        How many steps may stay pending behind the one being planned
        (``0`` degenerates to one flush per step; ``1`` is the classic
        panel/update overlap).
    calibration:
        Optional calibrated cost model for priorities (see
        :func:`kernel_cost_fn`).
    collect_graphs:
        Keep each flush's :class:`TaskGraph` in ``graphs`` (used to replay
        real executions through the simulator).
    """

    def __init__(
        self,
        executor,
        tile_size: int,
        lookahead: int = 1,
        calibration: Optional[object] = None,
        collect_graphs: bool = False,
    ) -> None:
        if lookahead < 0:
            raise ValueError(f"lookahead must be >= 0, got {lookahead}")
        self.executor = executor
        self.tile_size = int(tile_size)
        self.lookahead = int(lookahead)
        self.calibration = calibration
        self.collect_graphs = bool(collect_graphs)
        self.traces: List[ExecutionTrace] = []
        self.graphs: List[TaskGraph] = []
        #: ``(min_step, max_step)`` per flush — how many elimination steps
        #: were in flight together.  The liveness pass uses flush windows as
        #: its memory-certification granularity, so the spans double as a
        #: direct measure of how much lookahead actually materialised.
        self.window_spans: List[Tuple[int, int]] = []
        #: ``step -> {tile: 1-norm after that step}`` samples for growth
        #: replay; only populated when ``submit`` is given the tiles.
        self.norm_samples: Dict[int, Dict[TileRef, float]] = {}
        self._pending: List[Tuple[int, KernelTask]] = []
        # Executors whose kernels run outside this process (shared-memory
        # workers or distributed cluster nodes) must sample norms on the
        # worker, via KernelCall.norm_tiles; in-process executors sample
        # through a wrapped closure over the live tiles.
        self._shared_tiles = bool(
            getattr(executor, "uses_shared_tiles", False)
            or getattr(executor, "distributes_tiles", False)
        )
        self._lock = threading.Lock()
        self._failed = False

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------ #
    # Driver-facing API
    # ------------------------------------------------------------------ #
    def submit(
        self, tasks: Sequence[KernelTask], step: int, tiles=None
    ) -> None:
        """Append one planned step's tasks to the pending window.

        ``tiles`` (the live :class:`~repro.tiles.tile_matrix.TileMatrix`)
        enables norm sampling for growth tracking; pass ``None`` when
        growth is not tracked.
        """
        entries = list(tasks)
        if tiles is not None and entries:
            entries = self._attach_norm_sampling(entries, step, tiles)
        self._pending.extend((step, t) for t in entries)

    def advance(self, k: int) -> None:
        """Flush everything planning step ``k`` needs (call before planning)."""
        if not self._pending:
            return
        horizon = k - 1 - self.lookahead

        def needed(step: int, task: KernelTask) -> bool:
            return step <= horizon or any(j == k for (_, j) in task.writes)

        self._flush(needed)

    def flush_all(self) -> None:
        """Run every still-pending task (end of factorization/breakdown)."""
        if self._failed:
            # A previous flush died mid-graph; re-running its tasks would
            # re-apply kernels to half-updated tiles.  The factorization is
            # being torn down anyway, so just drop the window.
            self._pending.clear()
            return
        self._flush(lambda step, task: True)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _attach_norm_sampling(
        self, entries: List[KernelTask], step: int, tiles
    ) -> List[KernelTask]:
        n = tiles.n
        last_writer: Dict[TileRef, int] = {}
        for idx, task in enumerate(entries):
            for tile in task.writes:
                if 0 <= tile[1] < n:  # matrix tiles only, RHS is not tracked
                    last_writer[tile] = idx
        sample_of: Dict[int, List[TileRef]] = {}
        for tile, idx in last_writer.items():
            sample_of.setdefault(idx, []).append(tile)
        for idx, sample_tiles in sample_of.items():
            task = entries[idx]
            ordered = tuple(sorted(sample_tiles))
            if self._shared_tiles:
                # Worker processes mutate their own mapping of the shared
                # segment; sampling must happen worker-side, piggybacked on
                # the kernel descriptor and harvested from the trace.
                if task.call is not None:
                    entries[idx] = dataclass_replace(
                        task,
                        call=dataclass_replace(task.call, norm_tiles=ordered),
                    )
            else:
                entries[idx] = dataclass_replace(
                    task, fn=self._sampling_fn(task.fn, tiles, step, ordered)
                )
        return entries

    def _sampling_fn(
        self, fn: Callable[[], None], tiles, step: int, sample_tiles
    ) -> Callable[[], None]:
        def sampled() -> None:
            fn()
            # Sample after the write; the next writer of each tile lives in
            # a later step and therefore depends on this task, so no other
            # task can touch the tile between the write and the sample.
            values = [
                (t, float(tiles.region_tile_norms(t[0], t[0] + 1, t[1], t[1] + 1)[0, 0]))
                for t in sample_tiles
            ]
            with self._lock:
                store = self.norm_samples.setdefault(step, {})
                for tile, value in values:
                    store[tile] = value

        return sampled

    def _flush(self, needed: Callable[[int, KernelTask], bool]) -> None:
        if not self._pending:
            return
        # Dependency oracle over the whole pending window: the superscalar
        # analysis turns every RAW/WAW/WAR relation into an edge, so the
        # ancestor closure below is exactly "everything a selected task
        # needs to have run first".
        oracle = TaskGraph()
        for step, task in self._pending:
            oracle.add_task(
                kernel=task.kernel, step=step, reads=task.reads, writes=task.writes
            )
        selected = [needed(step, task) for step, task in self._pending]
        for idx in range(len(self._pending) - 1, -1, -1):
            if selected[idx]:
                for dep in oracle.task(idx).deps:
                    selected[dep] = True
        if not any(selected):
            return
        graph = TaskGraph()
        for idx, (step, task) in enumerate(self._pending):
            if selected[idx]:
                graph.add_task(
                    kernel=task.kernel,
                    step=step,
                    reads=task.reads,
                    writes=task.writes,
                    flops=task.flops,
                    fn=task.fn,
                    call=task.call,
                    fused=task.fused,
                )
        assign_task_priorities(graph, self.tile_size, self.calibration)
        steps = [step for idx, (step, _) in enumerate(self._pending) if selected[idx]]
        self.window_spans.append((min(steps), max(steps)))
        if self.collect_graphs:
            self.graphs.append(graph)
        try:
            trace = self.executor.run(graph)
        except BaseException:
            self._failed = True
            raise
        self.traces.append(trace)
        # Harvest worker-side norm samples (multi-process path).
        for uid, norms in trace.tile_norms.items():
            store = self.norm_samples.setdefault(graph.task(uid).step, {})
            store.update(norms)
        self._pending = [
            entry for idx, entry in enumerate(self._pending) if not selected[idx]
        ]


def written_tiles(tasks: Iterable[KernelTask]) -> FrozenSet[TileRef]:
    """Union of the tiles written by the given tasks (RHS refs included)."""
    out: set = set()
    for t in tasks:
        out.update(t.writes)
    return frozenset(out)


def _check_trace_consistency(tr: ExecutionTrace) -> None:
    """Reject traces whose fused bookkeeping contradicts the kernel map.

    Executors record ``kernel_of_task`` for every task they start and add
    a ``fused_of_task`` entry (the per-task kernel multiplicity, always
    >= 2) only for fused tasks.  A trace that violates either invariant
    was corrupted upstream; merging it would silently skew calibration
    (fused durations are split back into per-kernel samples), so fail
    loudly here instead.
    """
    fused = getattr(tr, "fused_of_task", {})
    orphans = sorted(uid for uid in fused if uid not in tr.kernel_of_task)
    if orphans:
        raise ValueError(
            "inconsistent ExecutionTrace: fused_of_task names task uids "
            f"{orphans} that kernel_of_task never recorded"
        )
    bad_counts = sorted(uid for uid, m in fused.items() if int(m) < 2)
    if bad_counts:
        raise ValueError(
            "inconsistent ExecutionTrace: fused_of_task records a "
            f"multiplicity < 2 for task uids {bad_counts} (fused tasks "
            "always batch at least two kernels)"
        )


def merge_traces(traces: Sequence[ExecutionTrace]) -> ExecutionTrace:
    """Concatenate per-step traces into one (uids offset per step).

    The merged trace keeps real wall-clock timestamps, so the concurrency
    profile of a whole factorization (one trace per elimination step) can
    be inspected at once; ``wall_time`` is the sum of the step wall times.
    Robust to the partial traces of errored or timed-out runs: an empty
    sequence merges to an empty trace, and tasks missing their start or
    finish timestamp are carried through as-is (cost calibration filters
    them out rather than tripping over them here).
    """
    merged = ExecutionTrace()
    offset = 0
    for tr in traces:
        _check_trace_consistency(tr)
        for uid, t in tr.start_times.items():
            merged.start_times[offset + uid] = t
        for uid, t in tr.finish_times.items():
            merged.finish_times[offset + uid] = t
        for uid, w in tr.worker_of_task.items():
            merged.worker_of_task[offset + uid] = w
        for uid, kernel in tr.kernel_of_task.items():
            merged.kernel_of_task[offset + uid] = kernel
        for uid, m in getattr(tr, "fused_of_task", {}).items():
            merged.fused_of_task[offset + uid] = m
        for uid, norms in tr.tile_norms.items():
            merged.tile_norms[offset + uid] = dict(norms)
        for uid, rank in getattr(tr, "rank_of_task", {}).items():
            merged.rank_of_task[offset + uid] = rank
        merged.wall_time += tr.wall_time
        # Advance past the largest uid seen, not the entry count: a partial
        # trace (errored/timed-out run) has non-contiguous uids, and a
        # length-based offset would collide with the next trace's entries.
        # A task that errored before finishing may only appear in the
        # worker/kernel maps, so those count toward the offset too.
        seen = (
            set(tr.start_times)
            | set(tr.finish_times)
            | set(tr.worker_of_task)
            | set(tr.kernel_of_task)
            | set(getattr(tr, "fused_of_task", ()))
            | set(tr.tile_norms)
            | set(getattr(tr, "rank_of_task", ()))
        )
        offset += (max(seen) + 1) if seen else 0
    return merged
