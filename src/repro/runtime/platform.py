"""Platform model: nodes, cores, kernel rates and network parameters.

The paper's experiments run on "Dancer", a 16-node cluster with 8 cores per
node (two Intel Westmere-EP E5606 CPUs at 2.13 GHz), an Infiniband 10G
interconnect, MKL BLAS and the PaRSEC runtime; the theoretical peak of the
16 nodes is 1091 GFLOP/s.  We cannot run on that machine, so performance is
obtained by *simulating* the execution of the task graph on an analytic
platform model:

* every node has ``cores`` identical workers;
* each kernel class runs at a per-core rate (GFLOP/s) reflecting how well
  its BLAS implementation performs — GEMM close to peak, the QR coupling
  kernels substantially lower ("QR kernels are more complex and much less
  tuned, hence not that efficient", Section VI);
* data dependencies crossing nodes pay ``latency + bytes / bandwidth``;
* control messages (criterion all-reduce, decisions) pay latency-dominated
  collectives.

The :class:`Platform` dataclass holds those parameters;
:func:`dancer_platform` returns the calibration used throughout the
experiments (chosen so that the simulated numbers land in the same range
as the paper's Table II, e.g. LU NoPiv ≈ 78% of peak at N = 20,000 on a
4x4 grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..tiles.distribution import ProcessGrid

__all__ = ["Platform", "dancer_platform", "laptop_platform"]


#: Default per-core kernel efficiencies, as a fraction of the GEMM rate.
_DEFAULT_KERNEL_EFFICIENCY: Dict[str, float] = {
    # LU-step kernels: GEMM-dominated, close to peak.  The 0.87 GEMM
    # efficiency reflects that even LU NoPiv only reaches ~78% of the
    # theoretical peak on the real machine (Table II).
    "gemm": 0.87,
    "gemm_rhs": 0.87,
    "trsm": 0.80,
    "swptrsm": 0.80,
    "getrf": 0.70,
    "getrf_discarded": 0.70,
    # Pairwise-pivoting kernels of LU IncPiv are notoriously slow
    # ("low-performing kernels", Section VI-C).
    "tstrf": 0.45,
    "ssssm": 0.60,
    "ssssm_rhs": 0.60,
    # QR-step kernels: more complex, less tuned (Section VI).
    "geqrt": 0.55,
    "unmqr": 0.75,
    "unmqr_rhs": 0.75,
    "tsqrt": 0.55,
    "tsmqr": 0.75,
    "tsmqr_rhs": 0.75,
    "ttqrt": 0.50,
    "ttmqr": 0.70,
    "ttmqr_rhs": 0.70,
}


@dataclass
class Platform:
    """Analytic model of a distributed multicore platform.

    Parameters
    ----------
    grid:
        Virtual process grid (one process per node).
    cores:
        Cores per node (each runs one kernel at a time).
    gemm_gflops:
        Per-core GEMM rate in GFLOP/s; all other kernel rates are derived
        from it through ``kernel_efficiency``.
    kernel_efficiency:
        Per-kernel fraction of the GEMM rate.
    latency:
        One-way network latency (seconds) between two nodes.
    bandwidth:
        Network bandwidth in bytes/second.
    allreduce_latency_factor:
        Multiplier applied to ``latency`` for the criterion all-reduce
        (a Bruck all-reduce over the panel owners costs ``O(log p)``
        latencies).
    pivot_exchange_latency_factor:
        Multiplier for the per-step panel-wide pivoting of LUPP (column-wise
        pivot search + row swaps across the panel owners).
    name:
        Human-readable platform name.
    """

    grid: ProcessGrid
    cores: int
    gemm_gflops: float
    kernel_efficiency: Dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_KERNEL_EFFICIENCY)
    )
    latency: float = 5.0e-6
    bandwidth: float = 1.25e9
    allreduce_latency_factor: float = 4.0
    pivot_exchange_latency_factor: float = 40.0
    name: str = "generic"

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> int:
        return self.grid.size

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores

    @property
    def peak_gflops(self) -> float:
        """Aggregate peak rate (GEMM rate of all cores)."""
        return self.total_cores * self.gemm_gflops

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def kernel_rate(self, kernel: str) -> float:
        """Per-core execution rate of a kernel, in flops/second."""
        eff = self.kernel_efficiency.get(kernel, 0.8)
        return max(eff, 1e-3) * self.gemm_gflops * 1.0e9

    def kernel_duration(self, kernel: str, flops: float) -> float:
        """Execution time (seconds) of one kernel invocation on one core."""
        if flops <= 0.0:
            return 0.0
        return flops / self.kernel_rate(kernel)

    def transfer_time(self, nbytes: float) -> float:
        """Time to ship a ``nbytes`` message between two different nodes.

        Accepts the *actual* message sizes a distributed executor produces:
        ``nbytes == 0`` is a pure control message (heartbeat, ack) costing
        one latency, and any positive size — not just multiples of the
        8-byte double-precision itemsize — is priced exactly.  Negative or
        non-finite sizes are a caller bug and raise instead of silently
        pricing as a control message.
        """
        import math

        nbytes = float(nbytes)
        if not math.isfinite(nbytes) or nbytes < 0.0:
            raise ValueError(f"message size must be a finite >= 0 byte count, got {nbytes!r}")
        if nbytes == 0.0:
            return self.latency
        return self.latency + nbytes / self.bandwidth

    def tile_bytes(self, nb: int, itemsize: float = 8.0) -> float:
        """Size in bytes of one ``nb x nb`` tile (double precision default)."""
        if nb < 0:
            raise ValueError(f"tile order must be >= 0, got {nb}")
        if not itemsize > 0.0:
            raise ValueError(f"itemsize must be positive, got {itemsize!r}")
        return float(itemsize) * nb * nb

    def allreduce_time(self, participants: int, nbytes: float) -> float:
        """Cost of the criterion all-reduce among ``participants`` nodes.

        Like :meth:`transfer_time`, takes exact payload sizes: a 0-byte
        all-reduce (a barrier) costs only the latency rounds, and arbitrary
        itemsizes are priced by the byte.
        """
        import math

        nbytes = float(nbytes)
        if not math.isfinite(nbytes) or nbytes < 0.0:
            raise ValueError(f"message size must be a finite >= 0 byte count, got {nbytes!r}")
        if participants < 0:
            raise ValueError(f"participants must be >= 0, got {participants}")
        if participants <= 1:
            return 0.0
        rounds = max(1.0, math.ceil(math.log2(participants)))
        return self.allreduce_latency_factor * rounds * self.latency + rounds * (
            nbytes / self.bandwidth
        )

    def pivot_exchange_time(self, participants: int, nb: int) -> float:
        """Cost of one panel-wide pivot search/exchange step of LUPP.

        Partial pivoting over a distributed panel needs ``nb`` column-wise
        max-reductions plus ``nb`` row exchanges; the model charges a
        latency-dominated term proportional to the tile width and the
        (log of the) number of participating nodes.
        """
        if participants <= 1:
            return 0.0
        import math

        rounds = max(1.0, math.ceil(math.log2(participants)))
        per_column = self.pivot_exchange_latency_factor * self.latency * rounds
        return nb * per_column + nb * (8.0 * nb) / self.bandwidth


def dancer_platform(grid: ProcessGrid | None = None) -> Platform:
    """The paper's "Dancer" cluster: 16 nodes x 8 cores, Infiniband 10G.

    The per-core GEMM rate is set to 8.52 GFLOP/s so that the 128 cores add
    up to the 1091 GFLOP/s theoretical peak quoted in Section V-A.
    """
    return Platform(
        grid=grid if grid is not None else ProcessGrid(4, 4),
        cores=8,
        gemm_gflops=8.52,
        latency=5.0e-6,
        bandwidth=1.25e9,
        name="dancer",
    )


def laptop_platform(cores: int = 4) -> Platform:
    """A single shared-memory node, handy for examples and tests."""
    return Platform(
        grid=ProcessGrid(1, 1),
        cores=cores,
        gemm_gflops=20.0,
        latency=0.0,
        bandwidth=1.0e12,
        name="laptop",
    )
