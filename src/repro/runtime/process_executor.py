"""Multi-process dataflow executor: tile kernels beyond the GIL.

:class:`~repro.runtime.executor.ThreadedExecutor` only overlaps work while
numpy is inside BLAS (which releases the GIL); the pivot searches,
triangular solves on small tiles, and all pure-Python bookkeeping of the
kernels still serialize on one interpreter.  :class:`ProcessExecutor`
removes that ceiling: tiles live in a
:class:`~repro.tiles.shared_buffer.SharedTileBuffer` (one
``multiprocessing.shared_memory`` segment), kernel tasks are shipped to a
persistent worker-process pool as picklable
:class:`~repro.kernels.dispatch.KernelCall` descriptors resolved against
the :data:`~repro.kernels.dispatch.KERNELS` table, and the scheduler
releases successors exactly as the threaded executor does — every worker
is a full interpreter with its own GIL.

The pickling constraint this imposes: tasks must carry a descriptor
(``KernelTask.call``), not just a closure, and everything inside the
descriptor must pickle.  The step planners
(:mod:`repro.core.lu_step`, :mod:`repro.core.qr_step`,
:mod:`repro.baselines.lu_incpiv`) emit both forms, so the same plan runs
on any executor.  Execution-time data (compact-WY factors, pairwise pivot
factors) flows along graph edges through the descriptors'
``produces``/``consumes`` keys; the tile access sets already order each
producer before its consumers, so a consumed value is always available
when a task is dispatched.

Worker pools are shared per ``(workers, start_method)`` configuration and
kept alive across factorizations (the descriptors re-attach to the current
shared segment by name), so only the first factorization pays the process
start-up cost.
"""

from __future__ import annotations

import atexit
import heapq
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

import multiprocessing

from ..api.registry import register_executor
from ..kernels.dispatch import execute_kernel_call
from ..tiles.shared_buffer import SharedBufferMeta
from .executor import ExecutionTrace
from .graph import TaskGraph

__all__ = ["ProcessExecutor", "shutdown_worker_pools"]


#: Shared worker pools keyed by (workers, start_method); kept alive until
#: interpreter exit so repeated factorizations (and the many solvers a test
#: suite builds under ``REPRO_EXECUTOR=processes``) reuse warm workers.
_POOLS: Dict[Tuple[int, str], ProcessPoolExecutor] = {}
#: Pools pulled out of rotation after a timeout: a straggler worker may
#: still be running, and other runs sharing the pool must keep their
#: futures, so these are only shut down at interpreter exit.
_ABANDONED_POOLS: List[ProcessPoolExecutor] = []
_POOLS_LOCK = threading.Lock()


def _default_start_method() -> str:
    # forkserver workers are forked from a clean, exec'd, single-threaded
    # server process, so creating a pool lazily from a serving thread is
    # safe; plain fork from an already-threaded parent can deadlock the
    # child (and is deprecated on Python >= 3.12).  Workers never rely on
    # inherited state — segments are attached by name and the kernel table
    # is populated at import — so fork's inheritance is not needed (pass
    # ``start_method="fork"`` explicitly for runtime-registered custom
    # kernels, which only forked workers inherit).
    methods = multiprocessing.get_all_start_methods()
    for preferred in ("forkserver", "fork"):
        if preferred in methods:
            return preferred
    return methods[0]


def _pool_for(workers: int, start_method: str) -> ProcessPoolExecutor:
    key = (workers, start_method)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context(start_method),
            )
            _POOLS[key] = pool
        return pool


def _discard_pool(workers: int, start_method: str) -> None:
    """Destructively shut a broken pool down (its futures are dead anyway)."""
    with _POOLS_LOCK:
        pool = _POOLS.pop((workers, start_method), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def _abandon_pool(workers: int, start_method: str) -> None:
    """Pull a pool out of rotation without shutting it down.

    Used after a timeout: the pool may be shared by concurrent runs whose
    queued futures must not be cancelled, so the pool merely stops being
    handed out (new runs get a fresh one) and is reaped at interpreter
    exit.
    """
    with _POOLS_LOCK:
        pool = _POOLS.pop((workers, start_method), None)
        if pool is not None:
            _ABANDONED_POOLS.append(pool)


def shutdown_worker_pools() -> None:
    """Shut down every shared worker pool (mostly for tests/teardown)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values()) + _ABANDONED_POOLS
        _POOLS.clear()
        _ABANDONED_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_worker_pools)


@register_executor("processes", aliases=("process", "procs", "multiprocess"))
class ProcessExecutor:
    """Dataflow execution on a pool of worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes (default 8).
    start_method:
        ``multiprocessing`` start method; defaults to ``forkserver`` where
        available (workers fork from a clean, exec'd server process, which
        is safe even when pools are created lazily from serving threads),
        then ``fork``, then the platform default.  Pass ``"fork"``
        explicitly if workers must inherit runtime state such as kernels
        registered with :func:`repro.kernels.dispatch.kernel_op` after
        import.

    The executor must be *bound* to the
    :class:`~repro.tiles.shared_buffer.SharedBufferMeta` of the shared
    segment holding the tiles before :meth:`run` is called;
    :class:`~repro.core.solver_base.TiledSolverBase` does this
    automatically (it materializes the factorization in a
    :class:`~repro.tiles.shared_buffer.SharedTileBuffer` whenever the
    configured executor advertises ``uses_shared_tiles``).  Results are
    bit-identical to the sequential reference: workers run the exact same
    kernel operations on the exact same float64 bytes.

    Ready tasks are dispatched by descending ``Task.priority`` (submission
    order breaking ties), with at most one in-flight task per worker so
    the priority order is honoured at every dispatch decision.

    Like the threaded executor, the trace of the most recent :meth:`run`
    is kept in ``last_trace``; after a :exc:`TimeoutError` the in-flight
    worker processes keep running detached and the shared tiles must be
    treated as indeterminate.
    """

    #: Tells the tiled drivers to place tiles in shared memory.
    uses_shared_tiles = True

    def __init__(self, workers: int = 8, start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self.start_method = start_method or _default_start_method()
        self.last_trace: Optional[ExecutionTrace] = None
        # The binding is thread-local: a solver binds, steps, and unbinds
        # all on its factoring thread, so concurrent factorizations of
        # *different* matrices sharing one executor (e.g. SolverSession
        # misses on different keys, which factor concurrently by design)
        # each run against their own shared segment instead of racing one
        # per-executor slot.
        self._binding = threading.local()

    # ------------------------------------------------------------------ #
    # Shared-buffer binding
    # ------------------------------------------------------------------ #
    def bind(self, meta: SharedBufferMeta) -> None:
        """Target this thread's subsequent :meth:`run` calls at a segment."""
        self._binding.meta = meta
        # Execution-time products (compact-WY factors, pivot pairs) live
        # for the whole binding, not one run(): the lookahead pipeline may
        # flush a producer in an earlier graph than its consumers.
        self._binding.results = {}

    def unbind(self) -> None:
        self._binding.meta = None
        self._binding.results = None

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, graph: TaskGraph, timeout: Optional[float] = None) -> ExecutionTrace:
        trace = ExecutionTrace()
        self.last_trace = trace
        tasks = graph.tasks
        if not tasks:
            return trace
        meta = getattr(self._binding, "meta", None)
        if meta is None:
            raise RuntimeError(
                "ProcessExecutor is not bound to a shared tile buffer; run the "
                "factorization through a tiled solver (which materializes the "
                "tiles in a SharedTileBuffer and calls bind()), or bind() a "
                "SharedBufferMeta yourself"
            )
        missing = sorted({t.kernel for t in tasks if t.call is None})
        if missing:
            raise RuntimeError(
                "ProcessExecutor needs picklable kernel descriptors "
                f"(KernelTask.call), but tasks {', '.join(missing)} only carry "
                "closures; plan the step with the descriptor-emitting planners"
            )

        pool = _pool_for(self.workers, self.start_method)
        successors = graph.successors()
        remaining = {t.uid: len(t.deps) for t in tasks}
        results = getattr(self._binding, "results", None)
        if results is None:  # standalone run() without bind-scoped products
            results = {}
        errors: List[BaseException] = []
        outstanding: Dict[object, int] = {}
        # Ready tasks ordered by (-priority, uid).  At most one in-flight
        # task per worker: keeping the surplus in the host-side heap (rather
        # than the pool's FIFO queue) means a task that becomes ready while
        # others wait is dispatched strictly by priority when a worker
        # frees up, at the cost of one completion round-trip per refill.
        ready_heap: List[Tuple[float, int]] = []

        def submit(uid: int) -> None:
            call = tasks[uid].call
            inputs = tuple(results[key] for key in call.consumes)
            outstanding[pool.submit(execute_kernel_call, meta, call, inputs)] = uid

        def pump() -> None:
            while ready_heap and len(outstanding) < self.workers:
                _, uid = heapq.heappop(ready_heap)
                submit(uid)

        initial = [t.uid for t in tasks if remaining[t.uid] == 0]
        if not initial:
            raise ValueError("task graph has no source task (dependency cycle?)")

        t_begin = time.perf_counter()
        deadline = None if timeout is None else t_begin + timeout
        try:
            for uid in initial:
                heapq.heappush(ready_heap, (-tasks[uid].priority, uid))
            pump()
            while outstanding:
                wait_for = None
                if deadline is not None:
                    wait_for = max(deadline - time.perf_counter(), 0.0)
                done, _ = wait(
                    list(outstanding), timeout=wait_for, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Worker processes cannot be interrupted mid-task;
                    # abandon the shared pool so stragglers cannot corrupt a
                    # later run, and leave the shared tiles indeterminate.
                    # (Abandon, not shut down: concurrent runs sharing the
                    # pool keep their queued futures and drain normally.)
                    _abandon_pool(self.workers, self.start_method)
                    raise TimeoutError(
                        f"task graph execution timed out after {timeout} s "
                        f"({len(trace.finish_times)}/{len(tasks)} tasks finished)"
                    )
                for fut in done:
                    uid = outstanding.pop(fut)
                    try:
                        value, norms, start, finish, worker = fut.result()
                    except BaseException as exc:
                        # Stop releasing successors; already-submitted tasks
                        # drain through the wait loop.
                        errors.append(exc)
                        continue
                    trace.start_times[uid] = start
                    trace.finish_times[uid] = finish
                    trace.worker_of_task[uid] = worker
                    trace.kernel_of_task[uid] = tasks[uid].kernel
                    if tasks[uid].fused > 1:
                        trace.fused_of_task[uid] = tasks[uid].fused
                    call = tasks[uid].call
                    if norms is not None:
                        trace.tile_norms[uid] = dict(zip(call.norm_tiles, norms))
                    if call.produces is not None:
                        results[call.produces] = value
                    if errors:
                        continue
                    for succ in successors[uid]:
                        remaining[succ] -= 1
                        if remaining[succ] == 0:
                            heapq.heappush(
                                ready_heap, (-tasks[succ].priority, succ)
                            )
                if not errors:
                    pump()
        except BrokenProcessPool:
            # submit() raises synchronously on a pool whose worker died
            # between runs (OOM kill, external signal); evict it so the
            # next run gets a fresh pool instead of failing forever.
            _discard_pool(self.workers, self.start_method)
            raise
        finally:
            trace.wall_time = time.perf_counter() - t_begin
        if errors:
            if any(isinstance(exc, BrokenProcessPool) for exc in errors):
                _discard_pool(self.workers, self.start_method)
            raise errors[0]
        if len(trace.finish_times) != len(tasks):
            # Every submitted task finished but some never became ready: a
            # dependency cycle below the sources (possible via extra_deps).
            # Returning normally would present half-executed tiles as done.
            stuck = sorted(uid for uid, n in remaining.items() if n > 0)
            raise ValueError(
                f"tasks {stuck} never became ready (dependency cycle?); "
                f"{len(trace.finish_times)}/{len(tasks)} tasks finished"
            )
        return trace
