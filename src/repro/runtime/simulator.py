"""Discrete-event simulator of a task-graph execution on a modelled platform.

This is the substitute for running the real PaRSEC runtime on the paper's
cluster: given the task graph of an algorithm (built by
:mod:`repro.core.dag_builder`) and a :class:`~repro.runtime.platform.Platform`,
the simulator performs greedy earliest-start list scheduling:

* a task becomes *data ready* when every predecessor has finished and the
  tiles it consumes from other nodes have been transferred
  (``latency + bytes/bandwidth`` per remote dependency);
* each node owns ``cores`` identical workers; a ready task starts on the
  earliest available core of its owner node;
* kernel durations come from the explicit ``duration_hint`` of
  control/communication tasks, else from a measured
  :class:`~repro.perf.calibrate.Calibration` when one is passed, else
  from the platform's analytic per-kernel rates.

The result (makespan, per-node utilisation, communication volume, schedule
trace) is what the performance model converts into the GFLOP/s numbers of
Figure 2 and Table II.  With a calibration the same machinery turns
predictive: a simulated makespan estimates what a *measured* run on this
host would take, which is what the autotuner
(:mod:`repro.perf.autotune`) compares across candidate configurations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .graph import TaskGraph
from .platform import Platform
from .task import Task

__all__ = ["ScheduledTask", "SimulationResult", "simulate"]


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one task in the simulated schedule."""

    uid: int
    kernel: str
    step: int
    owner: int
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class SimulationResult:
    """Outcome of simulating one task graph on one platform."""

    makespan: float
    schedule: List[ScheduledTask]
    busy_time_per_node: Dict[int, float]
    communication_bytes: float
    communication_events: int
    critical_path_time: float
    platform_name: str = ""
    per_kernel_time: Dict[str, float] = field(default_factory=dict)

    @property
    def total_busy_time(self) -> float:
        return float(sum(self.busy_time_per_node.values()))

    def utilization(self, platform: Platform) -> float:
        """Average core utilisation over the makespan."""
        capacity = self.makespan * platform.total_cores
        return self.total_busy_time / capacity if capacity > 0 else 0.0


def _task_duration(task: Task, platform: Platform, tile_size: int, calibration) -> float:
    if task.duration_hint is not None:
        return float(task.duration_hint)
    # Fused tasks batch several logical per-tile kernels; cost tables are
    # per logical kernel, so the duration scales with the batch count.
    m = max(getattr(task, "fused", 1), 1)
    if calibration is not None:
        measured = calibration.kernel_duration(task.kernel, tile_size)
        if measured is not None and measured > 0.0:
            return float(measured) * m
    return platform.kernel_duration(task.kernel, task.flops) * m


def _dependency_transfer(task: Task, dep: Task, platform: Platform, nb: int) -> Tuple[float, float]:
    """(transfer time, bytes) for the data ``task`` consumes from ``dep``."""
    if task.owner == dep.owner:
        return 0.0, 0.0
    shared = dep.writes & task.reads
    ntiles = max(1, len(shared))
    nbytes = ntiles * platform.tile_bytes(nb)
    return platform.transfer_time(nbytes), nbytes


def simulate(
    graph: TaskGraph,
    platform: Platform,
    tile_size: int,
    record_schedule: bool = True,
    calibration=None,
) -> SimulationResult:
    """Simulate the execution of ``graph`` on ``platform``.

    ``tile_size`` is needed to convert cross-node tile dependencies into
    message sizes.  Set ``record_schedule=False`` for large graphs when only
    the makespan matters.  ``calibration`` (a
    :class:`~repro.perf.calibrate.Calibration`) replaces the platform's
    analytic rates with per-kernel durations measured on this host for
    every kernel the calibration has observed; unobserved kernels keep the
    analytic fallback, so mixing is safe.
    """
    tasks = graph.tasks
    n_tasks = len(tasks)
    if n_tasks == 0:
        return SimulationResult(
            makespan=0.0,
            schedule=[],
            busy_time_per_node={},
            communication_bytes=0.0,
            communication_events=0,
            critical_path_time=0.0,
            platform_name=platform.name,
        )

    successors = graph.successors()
    remaining = {t.uid: len(t.deps) for t in tasks}
    finish: Dict[int, float] = {}
    data_ready: Dict[int, float] = {t.uid: 0.0 for t in tasks}

    # Per-node heaps of core-available times.
    cores: Dict[int, List[float]] = {}
    for t in tasks:
        cores.setdefault(t.owner, [0.0] * platform.cores)
    for heap in cores.values():
        heapq.heapify(heap)

    ready_heap: List[Tuple[float, int]] = []
    for t in tasks:
        if remaining[t.uid] == 0:
            heapq.heappush(ready_heap, (0.0, t.uid))

    comm_bytes = 0.0
    comm_events = 0
    busy: Dict[int, float] = {node: 0.0 for node in cores}
    per_kernel_time: Dict[str, float] = {}
    schedule: List[ScheduledTask] = []
    makespan = 0.0
    scheduled_count = 0

    while ready_heap:
        ready_time, uid = heapq.heappop(ready_heap)
        task = tasks[uid]
        node_heap = cores[task.owner]
        core_free = heapq.heappop(node_heap)
        start = max(ready_time, core_free)
        duration = _task_duration(task, platform, tile_size, calibration)
        end = start + duration
        heapq.heappush(node_heap, end)

        finish[uid] = end
        busy[task.owner] += duration
        per_kernel_time[task.kernel] = per_kernel_time.get(task.kernel, 0.0) + duration
        makespan = max(makespan, end)
        scheduled_count += 1
        if record_schedule:
            schedule.append(
                ScheduledTask(
                    uid=uid,
                    kernel=task.kernel,
                    step=task.step,
                    owner=task.owner,
                    start=start,
                    finish=end,
                )
            )

        for succ_uid in successors[uid]:
            succ = tasks[succ_uid]
            transfer, nbytes = _dependency_transfer(succ, task, platform, tile_size)
            if nbytes > 0.0:
                comm_bytes += nbytes
                comm_events += 1
            data_ready[succ_uid] = max(data_ready[succ_uid], end + transfer)
            remaining[succ_uid] -= 1
            if remaining[succ_uid] == 0:
                heapq.heappush(ready_heap, (data_ready[succ_uid], succ_uid))

    if scheduled_count != n_tasks:
        raise RuntimeError(
            f"simulation deadlock: scheduled {scheduled_count} of {n_tasks} tasks "
            "(the task graph has a dependency cycle)"
        )

    durations = {
        t.uid: _task_duration(t, platform, tile_size, calibration) for t in tasks
    }
    critical = graph.critical_path_length(durations)

    return SimulationResult(
        makespan=makespan,
        schedule=schedule,
        busy_time_per_node=busy,
        communication_bytes=comm_bytes,
        communication_events=comm_events,
        critical_path_time=critical,
        platform_name=platform.name,
        per_kernel_time=per_kernel_time,
    )
