"""Stability metrics (HPL3, backward error) and growth-factor tracking."""

from .growth import (
    GrowthTracker,
    max_criterion_growth_bound,
    partial_pivoting_growth_bound,
    scalar_growth_factor,
    sum_criterion_growth_bound,
)
from .metrics import (
    StabilityReport,
    forward_error,
    hpl1,
    hpl2,
    hpl3,
    normwise_backward_error,
    stability_report,
)

__all__ = [
    "hpl1",
    "hpl2",
    "hpl3",
    "normwise_backward_error",
    "forward_error",
    "StabilityReport",
    "stability_report",
    "GrowthTracker",
    "max_criterion_growth_bound",
    "sum_criterion_growth_bound",
    "partial_pivoting_growth_bound",
    "scalar_growth_factor",
]
