"""Backward-error metrics used by the paper's stability evaluation.

The paper measures backward stability with the HPL3 accuracy test of the
High-Performance Linpack benchmark:

    HPL3 = ||A x - b||_inf / (||A||_inf ||x||_inf eps N)

where ``x`` is the computed solution and ``eps`` the machine precision.
Results are reported as the *relative* HPL3: the ratio to the HPL3 value of
the LUPP reference on the same system.  This module implements HPL3, its
two HPL companions (HPL1, HPL2), the normwise relative backward error of
Oettli-Prager/Rigal-Gaches form, and the forward error when the true
solution is known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "hpl1",
    "hpl2",
    "hpl3",
    "normwise_backward_error",
    "forward_error",
    "StabilityReport",
    "stability_report",
]

_EPS = float(np.finfo(np.float64).eps)


def _residual_inf(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    r = a @ x - b
    return float(np.linalg.norm(np.ravel(r), np.inf))


def hpl1(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """HPL1 = ||Ax - b||_inf / (eps ||A||_1 N)."""
    n = a.shape[0]
    denom = _EPS * np.linalg.norm(a, 1) * n
    return _residual_inf(a, x, b) / denom if denom > 0 else np.inf


def hpl2(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """HPL2 = ||Ax - b||_inf / (eps ||A||_1 ||x||_1)."""
    denom = _EPS * np.linalg.norm(a, 1) * np.linalg.norm(np.ravel(x), 1)
    return _residual_inf(a, x, b) / denom if denom > 0 else np.inf


def hpl3(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """The paper's accuracy metric.

    ``HPL3 = ||A x - b||_inf / (||A||_inf ||x||_inf eps N)``; values of
    order 1 (say below ~16) indicate a backward-stable solve, large values
    indicate instability.
    """
    n = a.shape[0]
    denom = np.linalg.norm(a, np.inf) * np.linalg.norm(np.ravel(x), np.inf) * _EPS * n
    return _residual_inf(a, x, b) / denom if denom > 0 else np.inf


def normwise_backward_error(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """Rigal-Gaches normwise relative backward error.

    ``||Ax - b||_inf / (||A||_inf ||x||_inf + ||b||_inf)`` — the smallest
    relative perturbation of ``(A, b)`` for which ``x`` is an exact solution.
    """
    denom = np.linalg.norm(a, np.inf) * np.linalg.norm(np.ravel(x), np.inf) + np.linalg.norm(
        np.ravel(b), np.inf
    )
    return _residual_inf(a, x, b) / denom if denom > 0 else np.inf


def forward_error(x: np.ndarray, x_true: np.ndarray) -> float:
    """Relative forward error ``||x - x_true||_inf / ||x_true||_inf``."""
    denom = float(np.linalg.norm(np.ravel(x_true), np.inf))
    if denom == 0.0:
        return float(np.linalg.norm(np.ravel(x), np.inf))
    return float(np.linalg.norm(np.ravel(x) - np.ravel(x_true), np.inf)) / denom


@dataclass(frozen=True)
class StabilityReport:
    """All stability metrics of one solve, for convenience in experiments."""

    hpl1: float
    hpl2: float
    hpl3: float
    backward_error: float
    forward_error: Optional[float] = None

    def relative_to(self, reference: "StabilityReport") -> float:
        """Relative HPL3 w.r.t. a reference run (the paper's y-axis)."""
        if reference.hpl3 == 0.0:
            return np.inf
        return self.hpl3 / reference.hpl3


def stability_report(
    a: np.ndarray,
    x: np.ndarray,
    b: np.ndarray,
    x_true: Optional[np.ndarray] = None,
) -> StabilityReport:
    """Compute every metric of :class:`StabilityReport` for one solve."""
    return StabilityReport(
        hpl1=hpl1(a, x, b),
        hpl2=hpl2(a, x, b),
        hpl3=hpl3(a, x, b),
        backward_error=normwise_backward_error(a, x, b),
        forward_error=None if x_true is None else forward_error(x, x_true),
    )
