"""Growth-factor tracking and the theoretical bounds of Section III.

The stability analysis of the paper bounds the growth of the *norms of the
tiles* of the updated trailing matrix:

* Max criterion:  ``max_{i,j,k} ||A^(k)_ij||_1 / max_{i,j} ||A_ij||_1
  <= (1 + alpha)^(n-1)`` — analogous to the scalar ``2^(n-1)`` bound of
  partial pivoting when ``alpha = 1``.
* Sum criterion (``alpha = 1``): the same ratio is bounded by ``n``
  (linear growth), and by ``2`` for block diagonally dominant matrices.

:class:`GrowthTracker` records the largest tile norm seen after each panel
step so the hybrid driver can report the measured growth factor next to the
theoretical bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = [
    "GrowthTracker",
    "max_criterion_growth_bound",
    "sum_criterion_growth_bound",
    "partial_pivoting_growth_bound",
    "scalar_growth_factor",
]


@dataclass
class GrowthTracker:
    """Track tile-norm growth across the elimination steps.

    Parameters
    ----------
    initial_max_norm:
        ``max_{i,j} ||A_ij||_1`` of the original matrix.
    """

    initial_max_norm: float
    per_step: List[float] = field(default_factory=list)

    def record(self, current_max_norm: float) -> None:
        """Record the largest tile norm after one elimination step."""
        self.per_step.append(float(current_max_norm))

    @property
    def growth_factor(self) -> float:
        """``max_k max_{i,j} ||A^(k)_ij||_1 / max_{i,j} ||A_ij||_1``."""
        if self.initial_max_norm == 0.0:
            return np.inf if self.per_step and max(self.per_step) > 0 else 1.0
        peak = max(self.per_step, default=self.initial_max_norm)
        return max(peak, self.initial_max_norm) / self.initial_max_norm


def max_criterion_growth_bound(alpha: float, n_tiles: int) -> float:
    """Upper bound ``(1 + alpha)^(n-1)`` on tile-norm growth under the Max criterion."""
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    return float((1.0 + alpha) ** (n_tiles - 1))


def sum_criterion_growth_bound(n_tiles: int, diagonally_dominant: bool = False) -> float:
    """Upper bound on tile-norm growth under the Sum criterion with ``alpha = 1``.

    ``n`` in general, reduced to ``2`` for (block) diagonally dominant
    matrices (Section III-B).
    """
    return 2.0 if diagonally_dominant else float(n_tiles)


def partial_pivoting_growth_bound(n_order: int) -> float:
    """Scalar GEPP growth bound ``2^(N-1)`` (for reference/analogy)."""
    return float(2.0 ** (n_order - 1))


def scalar_growth_factor(a_original: np.ndarray, u_factor: np.ndarray) -> float:
    """Classical scalar growth factor ``max|u_ij| / max|a_ij|``."""
    denom = float(np.max(np.abs(a_original)))
    if denom == 0.0:
        return np.inf
    return float(np.max(np.abs(u_factor))) / denom
