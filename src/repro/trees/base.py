"""Reduction trees for the tiled/hierarchical QR elimination step.

A QR step at panel ``k`` must zero out every tile below the diagonal tile.
The paper (following the HQR framework [Dongarra et al. 2013]) describes
the step entirely by its *elimination list*: the ordered list of operations
``elim(i, eliminator(i, k), k)`` where tile ``(i, k)`` is killed by the
eliminator tile ``(eliminator(i, k), k)``.  Two kinds of eliminations
exist:

* **TS** (Triangle on top of Square): the killed tile is still a full
  square tile; only the eliminator must have been triangularized
  (GEQRT) beforehand.
* **TT** (Triangle on top of Triangle): both tiles are already triangular;
  used when merging eliminators, e.g. across domains.

The shape of the tree does not change the numerical result (all trees are
unconditionally stable), only the amount of parallelism: a flat tree
serializes the panel, whereas greedy/Fibonacci trees have logarithmic
critical paths.  This module defines the common interface; concrete trees
live in the sibling modules, and :class:`repro.trees.hierarchical.HierarchicalTree`
composes an intra-domain tree with an inter-domain tree exactly as the
paper's default configuration (GREEDY inside nodes, FIBONACCI between
nodes).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["Elimination", "ReductionTree", "validate_eliminations", "elimination_depth"]


@dataclass(frozen=True)
class Elimination:
    """One elimination ``elim(killed, eliminator, k)`` of a QR panel.

    Attributes
    ----------
    killed:
        Tile-row index of the tile being zeroed out.
    eliminator:
        Tile-row index of the eliminator tile.
    kind:
        ``"TS"`` (square tile killed by a triangular one) or ``"TT"``
        (triangular tile killed by a triangular one).
    """

    killed: int
    eliminator: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("TS", "TT"):
            raise ValueError(f"elimination kind must be 'TS' or 'TT', got {self.kind!r}")
        if self.killed == self.eliminator:
            raise ValueError("a tile cannot eliminate itself")


class ReductionTree(ABC):
    """Strategy producing the elimination list of one QR panel.

    ``rows`` is the ordered list of tile-row indices of the panel
    (``rows[0]`` is the diagonal row, which must be the unique survivor).
    """

    name: str = "abstract"

    @abstractmethod
    def eliminations(self, rows: Sequence[int]) -> List[Elimination]:
        """Return the ordered elimination list reducing ``rows`` to ``rows[0]``."""

    def depth(self, rows: Sequence[int]) -> int:
        """Length of the critical path of the elimination list (in eliminations)."""
        return elimination_depth(self.eliminations(rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def validate_eliminations(rows: Sequence[int], elims: Sequence[Elimination]) -> None:
    """Check that an elimination list is a valid reduction of ``rows``.

    Rules enforced (Section II-B of the paper):

    * every row except ``rows[0]`` is killed exactly once;
    * ``rows[0]`` is never killed;
    * an eliminator can only be a row of the panel that has not been killed
      *before* it is used;
    * concurrent eliminations involve disjoint tile pairs — implied by the
      "killed exactly once / not yet killed" rules for a sequential list.

    Raises ``ValueError`` on the first violation.
    """
    rows = list(rows)
    if not rows:
        raise ValueError("empty panel")
    alive = set(rows)
    killed_set = set()
    root = rows[0]
    for e in elims:
        if e.killed not in alive:
            raise ValueError(f"row {e.killed} killed twice or not in panel")
        if e.eliminator not in alive:
            raise ValueError(f"eliminator {e.eliminator} already killed or not in panel")
        if e.killed == root:
            raise ValueError("the diagonal row must survive the reduction")
        alive.remove(e.killed)
        killed_set.add(e.killed)
    expected_killed = set(rows) - {root}
    if killed_set != expected_killed:
        missing = sorted(expected_killed - killed_set)
        raise ValueError(f"rows {missing} were never eliminated")


def elimination_depth(elims: Sequence[Elimination]) -> int:
    """Critical-path length of an elimination list.

    Each elimination becomes ready when both its tiles are ready (a tile is
    ready at time 0, or after the last elimination that touched it).  The
    returned depth is the completion time of the last elimination, counting
    each elimination as one time unit — the standard coarse model used to
    compare reduction trees.
    """
    ready: Dict[int, int] = {}
    depth = 0
    for e in elims:
        start = max(ready.get(e.killed, 0), ready.get(e.eliminator, 0))
        finish = start + 1
        ready[e.eliminator] = finish
        ready[e.killed] = finish
        depth = max(depth, finish)
    return depth
