"""Binary reduction tree (TT merges, logarithmic critical path)."""

from __future__ import annotations

from typing import List, Sequence

from ..api.registry import register_tree
from .base import Elimination, ReductionTree

__all__ = ["BinaryTree"]


@register_tree("binary")
class BinaryTree(ReductionTree):
    """Pairwise TT reduction.

    Every row is first (conceptually) triangularized, then surviving rows
    are merged two by two, round after round, until only the first row
    remains.  The critical path is ``ceil(log2(len(rows)))`` TT merges, at
    the price of one GEQRT per row and TT kernels everywhere — the
    classical trade-off of binary communication trees, best suited to the
    inter-node level.
    """

    name = "binary"

    def eliminations(self, rows: Sequence[int]) -> List[Elimination]:
        alive = list(rows)
        out: List[Elimination] = []
        while len(alive) > 1:
            survivors: List[int] = []
            # Pair neighbours: (0,1), (2,3), ... — the lower-position row
            # survives, keeping the diagonal row (position 0) alive.
            for idx in range(0, len(alive), 2):
                if idx + 1 < len(alive):
                    out.append(
                        Elimination(killed=alive[idx + 1], eliminator=alive[idx], kind="TT")
                    )
                survivors.append(alive[idx])
            alive = survivors
        return out
