"""Flat reduction tree (PLASMA-style TS chain)."""

from __future__ import annotations

from typing import List, Sequence

from ..api.registry import register_tree
from .base import Elimination, ReductionTree

__all__ = ["FlatTree"]


@register_tree("flat")
class FlatTree(ReductionTree):
    """The diagonal row eliminates every other row, one after the other.

    All eliminations use TS kernels (the killed tiles are still square) and
    all share the same eliminator, so they are fully serialized: the
    critical path is ``len(rows) - 1``.  This is the tree used by the
    original tiled QR of PLASMA inside a panel; it minimises the number of
    GEQRT calls but offers no parallelism along the panel.
    """

    name = "flat"

    def eliminations(self, rows: Sequence[int]) -> List[Elimination]:
        rows = list(rows)
        root = rows[0]
        return [Elimination(killed=i, eliminator=root, kind="TS") for i in rows[1:]]
