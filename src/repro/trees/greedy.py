"""Greedy reduction tree (maximum eliminations per round)."""

from __future__ import annotations

from typing import List, Sequence

from ..api.registry import register_tree
from .base import Elimination, ReductionTree

__all__ = ["GreedyTree"]


@register_tree("greedy")
class GreedyTree(ReductionTree):
    """Kill as many tiles as possible at every round.

    Following the GREEDY strategy of the HQR framework [Dongarra et al.
    2013], every round pairs the surviving rows so that the top half of
    the alive set eliminates the bottom half (TT kernels); with ``m`` alive
    rows, ``floor(m/2)`` tiles disappear per round and the critical path is
    ``ceil(log2(m))`` rounds.  The paper uses this tree *inside* each node,
    where all tiles of the domain are local and the extra GEQRT per row is
    cheap compared to the gain in parallelism.
    """

    name = "greedy"

    def eliminations(self, rows: Sequence[int]) -> List[Elimination]:
        alive = list(rows)
        out: List[Elimination] = []
        while len(alive) > 1:
            m = len(alive)
            kills = m // 2
            survivors = alive[: m - kills]
            victims = alive[m - kills :]
            # Pair the bottom-most victims with the bottom-most survivors so
            # that the diagonal row (alive[0]) only works when unavoidable.
            for offset in range(kills):
                eliminator = survivors[len(survivors) - kills + offset]
                out.append(
                    Elimination(killed=victims[offset], eliminator=eliminator, kind="TT")
                )
            alive = survivors
        return out
