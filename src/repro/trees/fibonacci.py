"""Fibonacci reduction tree (short critical path, good inter-panel pipelining)."""

from __future__ import annotations

from typing import List, Sequence

from ..api.registry import register_tree
from .base import Elimination, ReductionTree

__all__ = ["FibonacciTree", "fibonacci_batches"]


def fibonacci_batches(count: int) -> List[int]:
    """Split ``count`` items into batches of Fibonacci sizes ``1, 1, 2, 3, 5, ...``.

    The last batch is truncated so the sizes sum to ``count`` exactly.
    """
    if count <= 0:
        return []
    sizes: List[int] = []
    a, b = 1, 1
    remaining = count
    while remaining > 0:
        take = min(a, remaining)
        sizes.append(take)
        remaining -= take
        a, b = b, a + b
    return sizes


@register_tree("fibonacci")
class FibonacciTree(ReductionTree):
    """Fibonacci-batched reduction, used by the paper *between* nodes.

    The panel rows below the diagonal are grouped (from the top) into
    batches whose sizes follow the Fibonacci sequence.  Each batch is
    first reduced internally with a TS chain rooted at its top row, and the
    batch survivors are then folded into the diagonal row with TT merges,
    deepest batch first.  Larger batches sit lower in the panel and start
    their (longer) internal reductions immediately, so consecutive panels
    pipeline well — the property for which the paper selects a FIBONACCI
    tree at the inter-node level (Section IV, "QR STEP").
    """

    name = "fibonacci"

    def eliminations(self, rows: Sequence[int]) -> List[Elimination]:
        rows = list(rows)
        root = rows[0]
        below = rows[1:]
        if not below:
            return []

        out: List[Elimination] = []
        batch_heads: List[int] = []
        start = 0
        for size in fibonacci_batches(len(below)):
            batch = below[start : start + size]
            start += size
            head = batch[0]
            batch_heads.append(head)
            # Intra-batch reduction: flat TS chain rooted at the batch head.
            for row in batch[1:]:
                out.append(Elimination(killed=row, eliminator=head, kind="TS"))
        # Fold the batch heads into the diagonal row, deepest batch first so
        # that the largest batches (which finish last) are merged last.
        for head in reversed(batch_heads):
            out.append(Elimination(killed=head, eliminator=root, kind="TT"))
        return out
