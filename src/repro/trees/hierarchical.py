"""Hierarchical reduction tree: intra-domain tree + inter-domain tree.

The paper's QR step runs an instance of the generic hierarchical QR
factorization (HQR [8]): inside each *domain* (the panel tiles owned by one
node) a local tree eliminates everything down to one triangular tile
without inter-node communication; the per-domain survivors are then merged
across nodes by a second-level tree using TT kernels.  The paper's default —
used in all of its experiments and ours — is a GREEDY tree inside nodes and
a FIBONACCI tree between nodes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..tiles.distribution import BlockCyclicDistribution
from .base import Elimination, ReductionTree
from .fibonacci import FibonacciTree
from .greedy import GreedyTree

__all__ = ["HierarchicalTree"]


class HierarchicalTree(ReductionTree):
    """Two-level reduction tree matching a multicore-cluster topology.

    Parameters
    ----------
    distribution:
        Block-cyclic distribution used to group panel rows into domains.
        When ``None``, the whole panel forms a single domain (shared-memory
        behaviour) and only the intra-domain tree is used.
    intra_tree:
        Tree used inside each domain (default: :class:`GreedyTree`).
    inter_tree:
        Tree used across domain survivors (default: :class:`FibonacciTree`).
    step:
        Panel index ``k``; needed to query the distribution for domains.
        It can also be supplied per-call via :meth:`eliminations_for_step`.
    """

    name = "hierarchical"

    def __init__(
        self,
        distribution: Optional[BlockCyclicDistribution] = None,
        intra_tree: Optional[ReductionTree] = None,
        inter_tree: Optional[ReductionTree] = None,
        step: int = 0,
    ) -> None:
        self.distribution = distribution
        self.intra_tree = intra_tree if intra_tree is not None else GreedyTree()
        self.inter_tree = inter_tree if inter_tree is not None else FibonacciTree()
        self.step = step

    def eliminations(self, rows: Sequence[int]) -> List[Elimination]:
        return self.eliminations_for_step(self.step, rows)

    def eliminations_for_step(self, k: int, rows: Sequence[int]) -> List[Elimination]:
        """Elimination list of panel ``k`` over the given tile rows."""
        rows = list(rows)
        if not rows:
            return []
        if self.distribution is None:
            return list(self.intra_tree.eliminations(rows))

        dist = self.distribution
        diag_rank = dist.owner(rows[0], k)
        # Group rows by owning rank, preserving panel order inside a group.
        groups: dict[int, List[int]] = {}
        for i in rows:
            groups.setdefault(dist.owner(i, k), []).append(i)

        out: List[Elimination] = []
        survivors: List[int] = []
        # The diagonal domain is reduced first and its survivor leads the
        # inter-domain reduction (it must hold the final R tile).
        ordered_ranks = [diag_rank] + [r for r in sorted(groups) if r != diag_rank]
        for rank in ordered_ranks:
            domain_rows = groups[rank]
            out.extend(self.intra_tree.eliminations(domain_rows))
            survivors.append(domain_rows[0])

        if len(survivors) > 1:
            inter = self.inter_tree.eliminations(survivors)
            # Inter-domain merges always couple two triangular tiles.
            out.extend(
                Elimination(killed=e.killed, eliminator=e.eliminator, kind="TT")
                for e in inter
            )
        return out
