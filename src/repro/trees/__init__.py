"""Reduction trees for the hierarchical tiled QR (HQR) elimination step."""

from .base import Elimination, ReductionTree, elimination_depth, validate_eliminations
from .binary import BinaryTree
from .fibonacci import FibonacciTree, fibonacci_batches
from .flat import FlatTree
from .greedy import GreedyTree
from .hierarchical import HierarchicalTree

__all__ = [
    "Elimination",
    "ReductionTree",
    "validate_eliminations",
    "elimination_depth",
    "FlatTree",
    "BinaryTree",
    "GreedyTree",
    "FibonacciTree",
    "fibonacci_batches",
    "HierarchicalTree",
]
