"""repro — reproduction of "Designing LU-QR Hybrid Solvers for Performance and Stability".

Faverge, Herrmann, Langou, Lowery, Robert, Dongarra (IPDPS 2014).

The package implements the hybrid LU-QR tiled factorization, its robustness
criteria (Max, Sum, MUMPS, random), the baselines it is compared against
(LU NoPiv, LU IncPiv, LUPP, HQR), a PaRSEC-like dataflow runtime with a
discrete-event performance simulator of the paper's "Dancer" platform, the
Table III special-matrix collection, the HPL3 stability metrics, and the
experiment harnesses that regenerate every table and figure of the paper.

Quick start
-----------
>>> import numpy as np
>>> from repro import HybridLUQRSolver, MaxCriterion
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal((96, 96)); b = rng.standard_normal(96)
>>> solver = HybridLUQRSolver(tile_size=8, criterion=MaxCriterion(alpha=50.0))
>>> result = solver.solve(a, b)
>>> result.x.shape, result.factorization.lu_percentage >= 0.0
((96,), True)
"""

from .baselines import HQRSolver, LUIncPivSolver, LUNoPivSolver, LUPPSolver
from .core import Factorization, HybridLUQRSolver, SolveResult, StepRecord
from .runtime import SequentialExecutor, ThreadedExecutor
from .criteria import (
    AlwaysLU,
    AlwaysQR,
    MaxCriterion,
    MumpsCriterion,
    RandomCriterion,
    SumCriterion,
)
from .stability import hpl3, stability_report
from .tiles import BlockCyclicDistribution, ProcessGrid, TileMatrix

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "HybridLUQRSolver",
    "LUNoPivSolver",
    "LUIncPivSolver",
    "LUPPSolver",
    "HQRSolver",
    "MaxCriterion",
    "SumCriterion",
    "MumpsCriterion",
    "RandomCriterion",
    "AlwaysLU",
    "AlwaysQR",
    "Factorization",
    "SolveResult",
    "StepRecord",
    "TileMatrix",
    "ProcessGrid",
    "BlockCyclicDistribution",
    "hpl3",
    "stability_report",
    "SequentialExecutor",
    "ThreadedExecutor",
]
