"""repro — reproduction of "Designing LU-QR Hybrid Solvers for Performance and Stability".

Faverge, Herrmann, Langou, Lowery, Robert, Dongarra (IPDPS 2014).

The package implements the hybrid LU-QR tiled factorization, its robustness
criteria (Max, Sum, MUMPS, random), the baselines it is compared against
(LU NoPiv, LU IncPiv, LUPP, HQR), a PaRSEC-like dataflow runtime with a
discrete-event performance simulator of the paper's "Dancer" platform, the
Table III special-matrix collection, the HPL3 stability metrics, and the
experiment harnesses that regenerate every table and figure of the paper.

Quick start
-----------
The canonical entry point is the declarative facade: name an algorithm and
its policies as string specs and let the plugin registries assemble the
solver (``repro.make_solver`` returns the same object you would construct
by hand, so the results are bit-identical):

>>> import numpy as np
>>> import repro
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal((96, 96)); b = rng.standard_normal(96)
>>> result = repro.solve(a, b, algorithm="hybrid", tile_size=8,
...                      criterion="max(alpha=50)")
>>> result.x.shape, result.factorization.lu_percentage >= 0.0
((96,), True)

Serving many requests against the same matrix goes through a
:class:`~repro.api.session.SolverSession`, which caches factorizations by
matrix fingerprint so only the first request pays the O(n^3) cost:

>>> session = repro.SolverSession(algorithm="hybrid", tile_size=8,
...                               criterion="max(alpha=50)")
>>> x1 = session.solve(a, b)                        # cache miss: factors
>>> x2 = session.solve(a, rng.standard_normal(96))  # cache hit: back-subst.
>>> (session.stats.misses, session.stats.hits)
(1, 1)

The asynchronous layer on top is :class:`~repro.api.service.SolverService`:
``register`` a matrix once (one fingerprint, a cheap handle), ``submit``
right-hand sides without blocking, and let the dispatcher coalesce queued
requests against the same matrix into one back-substitution pass — or
simply ``await repro.asolve(a, b)`` from asyncio code.
"""

from .baselines import HQRSolver, LUIncPivSolver, LUNoPivSolver, LUPPSolver
from .core import Factorization, HybridLUQRSolver, SolveResult, StepRecord
from .runtime import ProcessExecutor, SequentialExecutor, ThreadedExecutor
from .criteria import (
    AlwaysLU,
    AlwaysQR,
    MaxCriterion,
    MumpsCriterion,
    RandomCriterion,
    SumCriterion,
)
from .stability import hpl3, stability_report
from .tiles import BlockCyclicDistribution, ProcessGrid, TileMatrix
from .api import (
    CacheStats,
    MatrixHandle,
    ServiceClosed,
    ServiceStats,
    SolveFuture,
    SolverService,
    SolverSession,
    SolverSpec,
    asolve,
    factor,
    make_criterion,
    make_executor,
    make_kernel_backend,
    make_solver,
    make_tree,
    matrix_fingerprint,
    parse_spec,
    register_criterion,
    register_executor,
    register_kernel_backend,
    register_solver,
    register_tree,
    solve,
)
# Imported for its side effect as well as the namespace: registering the
# `tracing` kernel backend, so worker processes (which import the repro
# package) can resolve it like any other backend.
from . import analysis  # noqa: E402
# Registers the `cluster(...)` executor spec and exposes the distributed
# execution + sharded serving layer.
from .cluster import (  # noqa: E402
    ClusterError,
    ClusterExecutor,
    ConsistentHashRing,
    MemoryAdmissionError,
    ShardedSolverService,
    ShardRemoved,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    "analysis",
    "solve",
    "factor",
    "make_solver",
    "make_criterion",
    "make_tree",
    "make_executor",
    "make_kernel_backend",
    "parse_spec",
    "SolverSpec",
    "SolverSession",
    "CacheStats",
    "matrix_fingerprint",
    "SolverService",
    "MatrixHandle",
    "SolveFuture",
    "ServiceStats",
    "ServiceClosed",
    "asolve",
    "register_solver",
    "register_criterion",
    "register_tree",
    "register_executor",
    "register_kernel_backend",
    "HybridLUQRSolver",
    "LUNoPivSolver",
    "LUIncPivSolver",
    "LUPPSolver",
    "HQRSolver",
    "MaxCriterion",
    "SumCriterion",
    "MumpsCriterion",
    "RandomCriterion",
    "AlwaysLU",
    "AlwaysQR",
    "Factorization",
    "SolveResult",
    "StepRecord",
    "TileMatrix",
    "ProcessGrid",
    "BlockCyclicDistribution",
    "hpl3",
    "stability_report",
    "SequentialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "ClusterExecutor",
    "ClusterError",
    "MemoryAdmissionError",
    "ConsistentHashRing",
    "ShardedSolverService",
    "ShardRemoved",
]
