"""LUPP baseline: LU with partial pivoting across the whole panel.

This is the reference algorithm for stability in the paper (the ScaLAPACK
implementation, called LUPP / PDGETRF there).  At every step the pivot
search spans *every* tile of the elimination panel, which requires
panel-wide communication and synchronization on a distributed platform —
the very overhead the hybrid algorithm avoids — but yields the well-known
practical stability of GEPP.

Numerically this is the hybrid LU step with the diagonal domain extended to
the full panel; the performance model charges the panel-wide pivot search
and the row exchanges that the real algorithm needs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..api.registry import register_solver
from ..core.factorization import StepRecord
from ..core.lu_step import lu_step_tasks
from ..core.panel_analysis import analyze_panel
from ..core.solver_base import Executor, TiledSolverBase
from ..runtime.schedule import KernelTask
from ..tiles.distribution import BlockCyclicDistribution, ProcessGrid
from ..tiles.tile_matrix import TileMatrix

__all__ = ["LUPPSolver"]


@register_solver("lupp")
class LUPPSolver(TiledSolverBase):
    """Tiled LU with partial pivoting over the entire elimination panel."""

    algorithm = "LUPP"

    def __init__(
        self,
        tile_size: int,
        grid: Optional[ProcessGrid] = None,
        track_growth: bool = True,
        executor: Optional[Executor] = None,
        lookahead: int = 1,
        kernel_backend=None,
    ) -> None:
        super().__init__(
            tile_size=tile_size,
            grid=grid,
            track_growth=track_growth,
            executor=executor,
            lookahead=lookahead,
            kernel_backend=kernel_backend,
        )

    def _plan_step(
        self, tiles: TileMatrix, dist: BlockCyclicDistribution, k: int
    ) -> Tuple[StepRecord, List[KernelTask]]:
        record = StepRecord(k=k, kind="LU", decision_overhead=False)
        # A single-process distribution makes the "diagonal domain" cover the
        # whole panel, which is exactly the panel-wide pivot search of LUPP.
        full_panel_dist = BlockCyclicDistribution(ProcessGrid(1, 1), tiles.n)
        analysis = analyze_panel(
            tiles, full_panel_dist, k, domain_pivoting=True, recursive_panel=True
        )
        record.domain_rows = analysis.domain_rows
        record.add_kernel("panel_pivot_exchange")
        return record, lu_step_tasks(
            tiles, k, analysis, record, backend=self.kernel_backend
        )
