"""Baseline solvers of Section V/VI: LU NoPiv, LU IncPiv, LUPP, HQR."""

from .hqr import HQRSolver
from .lu_incpiv import LUIncPivSolver
from .lu_nopiv import LUNoPivSolver
from .lupp import LUPPSolver

__all__ = ["LUNoPivSolver", "LUIncPivSolver", "LUPPSolver", "HQRSolver"]
