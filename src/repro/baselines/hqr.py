"""HQR baseline: hierarchical tiled QR factorization.

The unconditionally stable end of the paper's spectrum: every panel is
eliminated with orthogonal transformations, organised by a two-level
reduction tree (GREEDY inside nodes, FIBONACCI between nodes, the same
configuration as the QR steps of the hybrid algorithm).  Costs twice the
flops of LU and exposes less parallelism in the update, but never grows the
norm of the trailing matrix.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..api.registry import register_solver
from ..core.factorization import StepRecord
from ..core.qr_step import qr_step_tasks
from ..core.solver_base import Executor, TiledSolverBase
from ..runtime.schedule import KernelTask
from ..tiles.distribution import BlockCyclicDistribution, ProcessGrid
from ..tiles.tile_matrix import TileMatrix
from ..trees.base import ReductionTree
from ..trees.fibonacci import FibonacciTree
from ..trees.greedy import GreedyTree
from ..trees.hierarchical import HierarchicalTree

__all__ = ["HQRSolver"]


@register_solver("hqr")
class HQRSolver(TiledSolverBase):
    """Hierarchical tiled QR solver (always stable, twice the flops of LU).

    Parameters
    ----------
    tile_size, grid, track_growth:
        See :class:`~repro.core.solver_base.TiledSolverBase`.
    intra_tree / inter_tree:
        Reduction trees used inside a domain / across domains.
    """

    algorithm = "HQR"

    def __init__(
        self,
        tile_size: int,
        grid: Optional[ProcessGrid] = None,
        intra_tree: Optional[ReductionTree] = None,
        inter_tree: Optional[ReductionTree] = None,
        track_growth: bool = True,
        executor: Optional[Executor] = None,
        lookahead: int = 1,
        kernel_backend=None,
    ) -> None:
        super().__init__(
            tile_size=tile_size,
            grid=grid,
            track_growth=track_growth,
            executor=executor,
            lookahead=lookahead,
            kernel_backend=kernel_backend,
        )
        self.intra_tree = intra_tree if intra_tree is not None else GreedyTree()
        self.inter_tree = inter_tree if inter_tree is not None else FibonacciTree()

    def _plan_step(
        self, tiles: TileMatrix, dist: BlockCyclicDistribution, k: int
    ) -> Tuple[StepRecord, List[KernelTask]]:
        record = StepRecord(k=k, kind="QR", decision_overhead=False)
        tree = HierarchicalTree(
            distribution=dist,
            intra_tree=self.intra_tree,
            inter_tree=self.inter_tree,
            step=k,
        )
        elims = tree.eliminations_for_step(k, list(range(k, tiles.n)))
        return record, qr_step_tasks(
            tiles, k, elims, record, backend=self.kernel_backend
        )
