"""LU IncPiv baseline: incremental (pairwise) pivoting.

"LU IncPiv performs incremental pairwise pivoting across all tiles in the
elimination panel (still efficient but not stable either)" (Section V-B,
after Buttari et al. and Quintana-Orti et al.).  The diagonal tile is
factored first; then each sub-diagonal tile of the panel is eliminated by a
*pairwise* LU factorization of the current (triangular) diagonal tile
stacked on top of it, with pivoting restricted to those ``2 nb`` rows.  The
trailing tiles of the two rows involved are updated after every pairwise
elimination (the SSSSM kernel of PLASMA).

Stability degrades as the number of tiles grows because the pairwise
eliminations compound growth — the behaviour Figure 2 shows for LU IncPiv.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..api.registry import register_solver
from ..core.factorization import StepRecord
from ..core.solver_base import Executor, TiledSolverBase
from ..kernels.dispatch import KernelCall
from ..kernels.lu_kernels import LUPanelFactor, apply_swptrsm, factor_panel_lu, factor_tile_lu
from ..runtime.schedule import KernelTask
from ..runtime.task import RHS_COLUMN
from ..tiles.distribution import BlockCyclicDistribution, ProcessGrid
from ..tiles.tile_matrix import TileMatrix

__all__ = ["LUIncPivSolver"]


@register_solver("lu_incpiv", aliases=("incpiv", "luincpiv"))
class LUIncPivSolver(TiledSolverBase):
    """Tiled LU with incremental pairwise pivoting."""

    algorithm = "LU IncPiv"

    def __init__(
        self,
        tile_size: int,
        grid: Optional[ProcessGrid] = None,
        track_growth: bool = True,
        executor: Optional[Executor] = None,
        lookahead: int = 1,
        kernel_backend=None,
    ) -> None:
        super().__init__(
            tile_size=tile_size,
            grid=grid,
            track_growth=track_growth,
            executor=executor,
            lookahead=lookahead,
            kernel_backend=kernel_backend,
        )

    def _plan_step(
        self, tiles: TileMatrix, dist: BlockCyclicDistribution, k: int
    ) -> Tuple[StepRecord, List[KernelTask]]:
        record = StepRecord(k=k, kind="LU", decision_overhead=False)
        nb = tiles.nb
        n = tiles.n
        tasks: List[KernelTask] = []
        # Pairwise factors are computed at execution time (they depend on the
        # evolving diagonal tile) and flow to their SSSSM updates through
        # this table; the tile access sets serialize the chain through
        # (k, k) while the updates fan out across trailing columns.
        factors: Dict[object, LUPanelFactor] = {}

        # ---- Factor the diagonal tile (pivoting inside the tile). -------- #
        def do_getrf() -> None:
            factor = factor_tile_lu(tiles.tile(k, k))
            factors["diag"] = factor
            tiles.set_tile(k, k, np.triu(factor.lu))

        # Descriptor keys carrying the pairwise factors along graph edges
        # on the multi-process executor (mirroring the ``factors`` table).
        diag_key = ("incpiv-diag", k)
        tasks.append(
            KernelTask(
                "getrf",
                do_getrf,
                reads=frozenset({(k, k)}),
                writes=frozenset({(k, k)}),
                call=KernelCall("incpiv.getrf", args=(k,), produces=diag_key),
            )
        )
        record.add_kernel("getrf")

        # Apply its transformation to the trailing row k and the RHS.
        for j in range(k + 1, n):
            def do_swptrsm(j=j) -> None:
                tiles.set_tile(k, j, apply_swptrsm(factors["diag"], tiles.tile(k, j)))

            tasks.append(
                KernelTask(
                    "swptrsm",
                    do_swptrsm,
                    reads=frozenset({(k, k), (k, j)}),
                    writes=frozenset({(k, j)}),
                    call=KernelCall(
                        "incpiv.swptrsm", args=(k, j), consumes=(diag_key,)
                    ),
                )
            )
            record.add_kernel("swptrsm")
        if tiles.has_rhs:
            def do_swptrsm_rhs() -> None:
                tiles.rhs_tile(k)[...] = apply_swptrsm(factors["diag"], tiles.rhs_tile(k))

            tasks.append(
                KernelTask(
                    "swptrsm",
                    do_swptrsm_rhs,
                    reads=frozenset({(k, k), (k, RHS_COLUMN)}),
                    writes=frozenset({(k, RHS_COLUMN)}),
                    call=KernelCall(
                        "incpiv.swptrsm_rhs", args=(k,), consumes=(diag_key,)
                    ),
                )
            )
            record.add_kernel("swptrsm")

        # ---- Pairwise elimination of every sub-diagonal panel tile. ------ #
        backend = self.kernel_backend
        sub_rows = list(range(k + 1, n))
        if (
            backend is not None
            and getattr(backend, "fuses", False)
            and len(sub_rows) >= 2
        ):
            return record, self._plan_fused_elimination(
                tiles, k, record, tasks, factors, backend, sub_rows
            )

        for i in range(k + 1, n):
            key = ("pair", i)

            def do_tstrf(i=i, key=key) -> None:
                stacked = np.vstack([np.triu(tiles.tile(k, k)), tiles.tile(i, k)])
                pair = factor_panel_lu(stacked, nb, recursive=False)
                factors[key] = pair
                tiles.set_tile(k, k, np.triu(pair.lu[:nb]))
                tiles.set_tile(i, k, pair.lu[nb:])

            pair_key = ("incpiv-pair", k, i)
            tasks.append(
                KernelTask(
                    "tstrf",  # PLASMA's pairwise panel kernel
                    do_tstrf,
                    reads=frozenset({(k, k), (i, k)}),
                    writes=frozenset({(k, k), (i, k)}),
                    call=KernelCall(
                        "incpiv.tstrf", args=(k, i), produces=pair_key
                    ),
                )
            )
            record.add_kernel("tstrf")

            for j in range(k + 1, n):
                def do_ssssm(i=i, j=j, key=key) -> None:
                    pair = factors[key]
                    l2 = pair.lu[nb:]
                    c = np.vstack([tiles.tile(k, j), tiles.tile(i, j)])
                    c = apply_swptrsm(pair, c)
                    top = c[:nb]
                    bottom = c[nb:] - l2 @ top
                    tiles.set_tile(k, j, top)
                    tiles.set_tile(i, j, bottom)

                tasks.append(
                    KernelTask(
                        "ssssm",
                        do_ssssm,
                        reads=frozenset({(i, k), (k, j), (i, j)}),
                        writes=frozenset({(k, j), (i, j)}),
                        call=KernelCall(
                            "incpiv.ssssm", args=(k, i, j), consumes=(pair_key,)
                        ),
                    )
                )
                record.add_kernel("ssssm")
            if tiles.has_rhs:
                def do_ssssm_rhs(i=i, key=key) -> None:
                    pair = factors[key]
                    l2 = pair.lu[nb:]
                    c = np.vstack([tiles.rhs_tile(k), tiles.rhs_tile(i)])
                    c = apply_swptrsm(pair, c)
                    top = c[:nb]
                    bottom = c[nb:] - l2 @ top
                    tiles.rhs_tile(k)[...] = top
                    tiles.rhs_tile(i)[...] = bottom

                tasks.append(
                    KernelTask(
                        "ssssm_rhs",
                        do_ssssm_rhs,
                        reads=frozenset({(i, k), (k, RHS_COLUMN), (i, RHS_COLUMN)}),
                        writes=frozenset({(k, RHS_COLUMN), (i, RHS_COLUMN)}),
                        call=KernelCall(
                            "incpiv.ssssm_rhs", args=(k, i), consumes=(pair_key,)
                        ),
                    )
                )
                record.add_kernel("ssssm_rhs")
        return record, tasks

    def _plan_fused_elimination(
        self,
        tiles: TileMatrix,
        k: int,
        record: StepRecord,
        tasks: List[KernelTask],
        factors: Dict[object, LUPanelFactor],
        backend,
        sub_rows: List[int],
    ) -> List[KernelTask]:
        """Fused plan for the pairwise eliminations of step ``k``.

        All TSTRF tasks are emitted first, then one SSSSM *chain* task per
        trailing column replays the pairwise updates of that column in
        program order.  This reordering is bit-exact: SSSSM closures read
        the pairwise factor objects (not the panel tile bytes), TSTRF only
        touches panel tiles ``(k, k)``/``(i, k)``, and within each column
        the update order is unchanged.  The chain's reads over the whole
        panel column give it RAW edges from every TSTRF, so the dataflow
        executors never start a chain before its factors exist.
        """
        nb = tiles.nb
        n = tiles.n
        rows_t = tuple(sub_rows)
        m = len(sub_rows)
        inproc_keys = []
        pair_keys = []
        for i in sub_rows:
            key = ("pair", i)
            inproc_keys.append(key)

            def do_tstrf(i=i, key=key) -> None:
                stacked = np.vstack([np.triu(tiles.tile(k, k)), tiles.tile(i, k)])
                pair = factor_panel_lu(stacked, nb, recursive=False)
                factors[key] = pair
                tiles.set_tile(k, k, np.triu(pair.lu[:nb]))
                tiles.set_tile(i, k, pair.lu[nb:])

            pair_key = ("incpiv-pair", k, i)
            pair_keys.append(pair_key)
            tasks.append(
                KernelTask(
                    "tstrf",
                    do_tstrf,
                    reads=frozenset({(k, k), (i, k)}),
                    writes=frozenset({(k, k), (i, k)}),
                    call=KernelCall("incpiv.tstrf", args=(k, i), produces=pair_key),
                )
            )
            record.add_kernel("tstrf")

        panel_reads = frozenset((i, k) for i in sub_rows)
        keys_t = tuple(inproc_keys)
        consumes = tuple(pair_keys)
        bname = backend.descriptor_name
        for j in range(k + 1, n):
            def do_ssssm_chain(j=j) -> None:
                pairs = tuple(factors[key] for key in keys_t)
                backend.incpiv_ssssm_chain(tiles, k, j, rows_t, pairs)

            col = frozenset({(k, j)}) | frozenset((i, j) for i in sub_rows)
            tasks.append(
                KernelTask(
                    "ssssm",
                    do_ssssm_chain,
                    reads=panel_reads | col,
                    writes=col,
                    fused=m,
                    call=KernelCall(
                        "fused.incpiv_ssssm_chain",
                        args=(bname, k, j, rows_t),
                        consumes=consumes,
                    ),
                )
            )
            record.add_kernel("ssssm", m)
        if tiles.has_rhs:
            def do_ssssm_rhs_chain() -> None:
                pairs = tuple(factors[key] for key in keys_t)
                backend.incpiv_ssssm_rhs_chain(tiles, k, rows_t, pairs)

            rhs_col = frozenset({(k, RHS_COLUMN)}) | frozenset(
                (i, RHS_COLUMN) for i in sub_rows
            )
            tasks.append(
                KernelTask(
                    "ssssm_rhs",
                    do_ssssm_rhs_chain,
                    reads=panel_reads | rhs_col,
                    writes=rhs_col,
                    fused=m,
                    call=KernelCall(
                        "fused.incpiv_ssssm_rhs_chain",
                        args=(bname, k, rows_t),
                        consumes=consumes,
                    ),
                )
            )
            record.add_kernel("ssssm_rhs", m)
        return tasks
