"""LU IncPiv baseline: incremental (pairwise) pivoting.

"LU IncPiv performs incremental pairwise pivoting across all tiles in the
elimination panel (still efficient but not stable either)" (Section V-B,
after Buttari et al. and Quintana-Orti et al.).  The diagonal tile is
factored first; then each sub-diagonal tile of the panel is eliminated by a
*pairwise* LU factorization of the current (triangular) diagonal tile
stacked on top of it, with pivoting restricted to those ``2 nb`` rows.  The
trailing tiles of the two rows involved are updated after every pairwise
elimination (the SSSSM kernel of PLASMA).

Stability degrades as the number of tiles grows because the pairwise
eliminations compound growth — the behaviour Figure 2 shows for LU IncPiv.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.factorization import StepRecord
from ..core.solver_base import TiledSolverBase
from ..kernels.lu_kernels import apply_swptrsm, factor_panel_lu, factor_tile_lu
from ..tiles.distribution import BlockCyclicDistribution, ProcessGrid
from ..tiles.tile_matrix import TileMatrix

__all__ = ["LUIncPivSolver"]


class LUIncPivSolver(TiledSolverBase):
    """Tiled LU with incremental pairwise pivoting."""

    algorithm = "LU IncPiv"

    def __init__(
        self,
        tile_size: int,
        grid: Optional[ProcessGrid] = None,
        track_growth: bool = True,
    ) -> None:
        super().__init__(tile_size=tile_size, grid=grid, track_growth=track_growth)

    def _do_step(
        self, tiles: TileMatrix, dist: BlockCyclicDistribution, k: int
    ) -> StepRecord:
        record = StepRecord(k=k, kind="LU", decision_overhead=False)
        nb = tiles.nb
        n = tiles.n

        # ---- Factor the diagonal tile (pivoting inside the tile). -------- #
        factor = factor_tile_lu(tiles.tile(k, k))
        record.add_kernel("getrf")
        # Apply its transformation to the trailing row k and the RHS, then
        # keep only the triangular factor in the diagonal tile.
        for j in range(k + 1, n):
            tiles.set_tile(k, j, apply_swptrsm(factor, tiles.tile(k, j)))
            record.add_kernel("swptrsm")
        if tiles.has_rhs:
            tiles.rhs_tile(k)[...] = apply_swptrsm(factor, tiles.rhs_tile(k))
            record.add_kernel("swptrsm")
        tiles.set_tile(k, k, np.triu(factor.lu))

        # ---- Pairwise elimination of every sub-diagonal panel tile. ------ #
        for i in range(k + 1, n):
            stacked = np.vstack([np.triu(tiles.tile(k, k)), tiles.tile(i, k)])
            pair = factor_panel_lu(stacked, nb, recursive=False)
            record.add_kernel("tstrf")  # PLASMA's pairwise panel kernel
            tiles.set_tile(k, k, np.triu(pair.lu[:nb]))
            tiles.set_tile(i, k, pair.lu[nb:])
            l2 = pair.lu[nb:]

            for j in range(k + 1, n):
                c = np.vstack([tiles.tile(k, j), tiles.tile(i, j)])
                c = apply_swptrsm(pair, c)
                top = c[:nb]
                bottom = c[nb:] - l2 @ top
                tiles.set_tile(k, j, top)
                tiles.set_tile(i, j, bottom)
                record.add_kernel("ssssm")
            if tiles.has_rhs:
                c = np.vstack([tiles.rhs_tile(k), tiles.rhs_tile(i)])
                c = apply_swptrsm(pair, c)
                top = c[:nb]
                bottom = c[nb:] - l2 @ top
                tiles.rhs_tile(k)[...] = top
                tiles.rhs_tile(i)[...] = bottom
                record.add_kernel("ssssm_rhs")
        return record
