"""LU NoPiv baseline: pivoting inside the diagonal tile only.

"LU NoPiv performs pivoting only inside the diagonal tile but no pivoting
across tiles (known to be both efficient and unstable)" (Section V-B).
Every step is an LU step of variant A1 with the pivot search restricted to
the diagonal tile; nothing is ever checked, so there is no decision-making
overhead.  The factorization breaks down (raising through the
``Factorization.breakdown`` field) when a diagonal tile is singular —
exactly the failure the paper reports on the ``fiedler`` matrix.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..api.registry import register_solver
from ..core.factorization import StepRecord
from ..core.lu_step import lu_step_tasks
from ..core.panel_analysis import analyze_panel
from ..core.solver_base import Executor, TiledSolverBase
from ..runtime.schedule import KernelTask
from ..tiles.distribution import BlockCyclicDistribution, ProcessGrid
from ..tiles.tile_matrix import TileMatrix

__all__ = ["LUNoPivSolver"]


@register_solver("lu_nopiv", aliases=("nopiv", "lunopiv"))
class LUNoPivSolver(TiledSolverBase):
    """Tiled LU without inter-tile pivoting (fast, conditionally stable).

    Parameters
    ----------
    tile_size, grid, track_growth:
        See :class:`~repro.core.solver_base.TiledSolverBase`.
    domain_pivoting:
        When True the pivot search covers the diagonal *domain* rather than
        the diagonal tile, which is the behaviour of the hybrid algorithm
        with ``alpha = inf``; the plain LU NoPiv baseline of the paper uses
        False (diagonal tile only).
    """

    algorithm = "LU NoPiv"

    def __init__(
        self,
        tile_size: int,
        grid: Optional[ProcessGrid] = None,
        domain_pivoting: bool = False,
        track_growth: bool = True,
        executor: Optional[Executor] = None,
        lookahead: int = 1,
        kernel_backend=None,
    ) -> None:
        super().__init__(
            tile_size=tile_size,
            grid=grid,
            track_growth=track_growth,
            executor=executor,
            lookahead=lookahead,
            kernel_backend=kernel_backend,
        )
        self.domain_pivoting = bool(domain_pivoting)

    def _plan_step(
        self, tiles: TileMatrix, dist: BlockCyclicDistribution, k: int
    ) -> Tuple[StepRecord, List[KernelTask]]:
        record = StepRecord(k=k, kind="LU", decision_overhead=False)
        analysis = analyze_panel(
            tiles, dist, k, domain_pivoting=self.domain_pivoting, recursive_panel=False
        )
        record.domain_rows = analysis.domain_rows
        return record, lu_step_tasks(
            tiles, k, analysis, record, backend=self.kernel_backend
        )
