"""Pluggable kernel-execution backends (per-tile reference, fused, JIT).

The hot path of every tiled factorization is the trailing-update sweep:
after the panel of step ``k`` is factored, every trailing column receives
one small kernel per tile (``lu.gemm``, ``qr.update``/``qr.unmqr``,
``incpiv.ssssm``).  Executing those one tile at a time pays a Python
dispatch round-trip per ``nb``-by-``nb`` GEMM, which dwarfs the BLAS time
at practical tile sizes.  A *kernel backend* tells the step planners how
to batch that sweep:

``numpy``
    The bit-exact per-tile reference.  Planners emit exactly the task
    graphs they always have — one task per tile kernel — so results stay
    bit-identical to the seed implementation.  This is the default.

``fused``
    Planners collapse each trailing column's update chain into a single
    task.  For LU the whole column update becomes one stacked GEMM over a
    contiguous :meth:`~repro.tiles.tile_matrix.TileMatrix.block` view;
    for QR and IncPiv the per-column kernel chain runs inside one task in
    exactly the program order of the per-tile plan, so per-column numerics
    are unchanged (the LU stacked GEMM is mathematically identical but may
    differ from the per-tile reference in the last bits, which is why
    non-NumPy backends are validated to error *tolerance*, not bitwise).

``jit``
    Same fusion plan as ``fused`` with the stacked-GEMM inner loop
    compiled by Numba's ``@njit`` when numba is importable; compiled
    kernels are cached per dtype and warmed via :meth:`KernelBackend.warm`
    outside every timed window (calibration, benchmarks).  Without numba
    the backend silently degrades to the NumPy-fused implementation, so it
    is always safe to request.

Backends register into :data:`~repro.api.registry.KERNEL_BACKENDS` with
``@register_kernel_backend`` exactly like solvers and executors; unknown
names raise a :class:`ValueError` listing the available options.  Fused
tasks ship across process boundaries as generic ``fused.*``
:class:`~repro.kernels.dispatch.KernelCall` descriptors that carry the
backend *name* and re-resolve it worker-side, so all three executors
(inline, threaded, processes) honor the same fusion plan.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Set, Tuple

import numpy as np

from ..api.registry import KERNEL_BACKENDS, register_kernel_backend
from .dispatch import _RHS, OpEffect, _ssssm_pair, kernel_op, kernel_signature
from .qr_kernels import tsmqr, unmqr

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "FusedBackend",
    "JitBackend",
    "resolve_backend",
    "numba_available",
]


def numba_available() -> bool:
    """True when numba can be imported (the ``jit`` backend compiles)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


# --------------------------------------------------------------------------- #
# Backend classes
# --------------------------------------------------------------------------- #
class KernelBackend:
    """How the step planners execute (and batch) tile-kernel sweeps.

    Attributes
    ----------
    name:
        Canonical registry name; fused task descriptors carry it across
        process boundaries.
    fuses:
        When True the step planners emit one fused task per trailing
        column instead of one task per tile; the ``*_sweep`` / ``*_chain``
        methods below are then the task bodies.
    """

    name = "abstract"
    fuses = False

    @property
    def descriptor_name(self) -> str:
        """Backend name embedded in ``fused.*`` task descriptors.

        Worker processes re-resolve this name to execute fused tasks, so
        it must name a *compute* backend.  Instrumenting wrappers (the
        access tracer) override it to their inner backend's name — worker
        processes execute descriptors directly and cannot be traced, so
        shipping the wrapper's own name would be wrong twice over.
        """
        return self.name

    def warm(self, nb: int, dtype: Any = np.float64) -> None:
        """Prime any compiled kernels for ``(nb, dtype)``.

        Called by solvers and the calibration harness *before* their timed
        windows so first-call compilation can never poison cost tables or
        benchmarks.  The base implementation is a no-op.
        """

    # ------------------------------------------------------------------ #
    # Instrumentation hooks (no-ops for compute backends)
    # ------------------------------------------------------------------ #
    def prepare_tiles(self, tiles):
        """Hook: wrap or replace the tile matrix before a factorization.

        Called by :class:`~repro.core.solver_base.TiledSolverBase` right
        after the working tiles are materialized and before any step is
        planned, so an instrumenting backend (e.g. the access-tracing
        backend in :mod:`repro.analysis`) can interpose proxied tile
        views.  Must return a tile matrix aliasing the same storage; the
        base implementation returns ``tiles`` unchanged.
        """
        return tiles

    def wrap_task(self, task, step: int):
        """Hook: wrap or replace a planned kernel task before it runs.

        Called once per planned task (inline and pipelined paths alike)
        before submission, so an instrumenting backend can wrap the task
        closure with bookkeeping.  Must return a task with identical
        declared ``reads``/``writes``; the base implementation returns
        ``task`` unchanged.
        """
        return task

    # ------------------------------------------------------------------ #
    # Fused-sweep operations (only called when ``fuses`` is True)
    # ------------------------------------------------------------------ #
    def lu_gemm_sweep(self, tiles, k: int, j: int, i0: int, i1: int) -> None:
        raise NotImplementedError

    def lu_gemm_rhs_sweep(self, tiles, k: int, i0: int, i1: int) -> None:
        raise NotImplementedError

    def qr_column_chain(self, tiles, j: int, ops: Sequence[tuple], factors) -> None:
        raise NotImplementedError

    def qr_rhs_chain(self, tiles, ops: Sequence[tuple], factors) -> None:
        raise NotImplementedError

    def incpiv_ssssm_chain(
        self, tiles, k: int, j: int, rows: Sequence[int], pairs: Sequence[Any]
    ) -> None:
        raise NotImplementedError

    def incpiv_ssssm_rhs_chain(
        self, tiles, k: int, rows: Sequence[int], pairs: Sequence[Any]
    ) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, fuses={self.fuses})"


@register_kernel_backend("numpy", aliases=("reference", "ref"))
class NumpyBackend(KernelBackend):
    """Bit-exact per-tile reference: one task per tile kernel.

    With this backend the planners produce exactly the task graphs of the
    seed implementation, so factors are bit-identical to it on every
    executor.
    """

    name = "numpy"
    fuses = False


@register_kernel_backend("fused", aliases=("batched",))
class FusedBackend(KernelBackend):
    """Batch each trailing column's update sweep into one task.

    The LU sweep is a single stacked GEMM over a contiguous block view;
    QR/IncPiv chains replay the per-tile kernels of one column in program
    order inside one task (identical numerics, one dispatch).
    """

    name = "fused"
    fuses = True

    def lu_gemm_sweep(self, tiles, k: int, j: int, i0: int, i1: int) -> None:
        c = tiles.block(i0, i1, j, j + 1)
        c -= tiles.block(i0, i1, k, k + 1) @ tiles.tile(k, j)

    def lu_gemm_rhs_sweep(self, tiles, k: int, i0: int, i1: int) -> None:
        c = tiles.rhs_block(i0, i1)
        c -= tiles.block(i0, i1, k, k + 1) @ tiles.rhs_tile(k)

    def qr_column_chain(self, tiles, j: int, ops: Sequence[tuple], factors) -> None:
        for op in ops:
            if op[0] == "unmqr":
                _, row, fkey = op
                tiles.set_tile(row, j, unmqr(factors[fkey], tiles.tile(row, j)))
            else:
                _, elim, killed, fkey = op
                top, bottom = tsmqr(
                    factors[fkey], tiles.tile(elim, j), tiles.tile(killed, j)
                )
                tiles.set_tile(elim, j, top)
                tiles.set_tile(killed, j, bottom)

    def qr_rhs_chain(self, tiles, ops: Sequence[tuple], factors) -> None:
        for op in ops:
            if op[0] == "unmqr":
                _, row, fkey = op
                tiles.rhs_tile(row)[...] = unmqr(factors[fkey], tiles.rhs_tile(row))
            else:
                _, elim, killed, fkey = op
                top, bottom = tsmqr(
                    factors[fkey], tiles.rhs_tile(elim), tiles.rhs_tile(killed)
                )
                tiles.rhs_tile(elim)[...] = top
                tiles.rhs_tile(killed)[...] = bottom

    def incpiv_ssssm_chain(
        self, tiles, k: int, j: int, rows: Sequence[int], pairs: Sequence[Any]
    ) -> None:
        nb = tiles.nb
        for i, pair in zip(rows, pairs):
            top, bottom = _ssssm_pair(pair, nb, tiles.tile(k, j), tiles.tile(i, j))
            tiles.set_tile(k, j, top)
            tiles.set_tile(i, j, bottom)

    def incpiv_ssssm_rhs_chain(
        self, tiles, k: int, rows: Sequence[int], pairs: Sequence[Any]
    ) -> None:
        nb = tiles.nb
        for i, pair in zip(rows, pairs):
            top, bottom = _ssssm_pair(pair, nb, tiles.rhs_tile(k), tiles.rhs_tile(i))
            tiles.rhs_tile(k)[...] = top
            tiles.rhs_tile(i)[...] = bottom


#: Lazily compiled numba kernels, shared by every JitBackend instance in
#: the process (compilation is expensive; the functions are stateless).
_NUMBA_CACHE: Dict[str, Any] = {"kernels": None, "tried": False}


def _numba_kernels() -> Optional[Dict[str, Any]]:
    if _NUMBA_CACHE["tried"]:
        return _NUMBA_CACHE["kernels"]
    _NUMBA_CACHE["tried"] = True
    try:
        import numba
    except Exception:
        return None

    @numba.njit(cache=True, fastmath=False)
    def gemm_update(c, lpanel, u):
        return c - lpanel @ u

    _NUMBA_CACHE["kernels"] = {"gemm_update": gemm_update}
    return _NUMBA_CACHE["kernels"]


@register_kernel_backend("jit", aliases=("numba",))
class JitBackend(FusedBackend):
    """Numba-compiled fused sweeps with a NumPy-fused fallback.

    When numba is importable the stacked trailing-update GEMM runs inside
    an ``@njit``-compiled kernel (block views are row-strided, so operands
    are made contiguous first — the copy is amortized over the whole
    sweep).  :meth:`warm` triggers compilation once per ``(nb, dtype)``
    outside any timed window.  Without numba every method falls back to
    the :class:`FusedBackend` implementation, so requesting ``jit`` never
    fails — it just does not compile.
    """

    name = "jit"
    fuses = True

    def __init__(self) -> None:
        self._compiled = _numba_kernels()
        self._warmed: Set[Tuple[int, str]] = set()

    @property
    def jit_active(self) -> bool:
        """True when numba compiled kernels back this instance."""
        return self._compiled is not None

    def warm(self, nb: int, dtype: Any = np.float64) -> None:
        if self._compiled is None:
            return
        nb = max(int(nb), 1)
        key = (nb, np.dtype(dtype).str)
        if key in self._warmed:
            return
        c = np.zeros((2 * nb, nb), dtype=dtype)
        lpanel = np.zeros((2 * nb, nb), dtype=dtype)
        u = np.zeros((nb, nb), dtype=dtype)
        self._compiled["gemm_update"](c, lpanel, u)
        self._warmed.add(key)

    def lu_gemm_sweep(self, tiles, k: int, j: int, i0: int, i1: int) -> None:
        if self._compiled is None:
            return super().lu_gemm_sweep(tiles, k, j, i0, i1)
        c = tiles.block(i0, i1, j, j + 1)
        c[...] = self._compiled["gemm_update"](
            np.ascontiguousarray(c),
            np.ascontiguousarray(tiles.block(i0, i1, k, k + 1)),
            np.ascontiguousarray(tiles.tile(k, j)),
        )

    def lu_gemm_rhs_sweep(self, tiles, k: int, i0: int, i1: int) -> None:
        if self._compiled is None:
            return super().lu_gemm_rhs_sweep(tiles, k, i0, i1)
        c = tiles.rhs_block(i0, i1)
        c[...] = self._compiled["gemm_update"](
            np.ascontiguousarray(c),
            np.ascontiguousarray(tiles.block(i0, i1, k, k + 1)),
            np.ascontiguousarray(tiles.rhs_tile(k)),
        )


# --------------------------------------------------------------------------- #
# Resolution
# --------------------------------------------------------------------------- #
#: Shared instances per registry name, so the JIT compile/warm caches are
#: process-wide and worker-side descriptor resolution is cheap.
_SINGLETONS: Dict[str, KernelBackend] = {}


def resolve_backend(spec: Any = None) -> KernelBackend:
    """Resolve a backend spec (name, instance, or None) to an instance.

    ``None`` means the default ``numpy`` reference.  Names resolve through
    :data:`~repro.api.registry.KERNEL_BACKENDS` to a shared per-process
    instance (aliases included); unknown names raise a :class:`ValueError`
    listing the available backends.  Ready instances pass through.
    """
    if spec is None:
        spec = "numpy"
    if isinstance(spec, KernelBackend):
        return spec
    if not isinstance(spec, str):
        return KERNEL_BACKENDS.create(spec)
    key = spec.strip().lower()
    cached = _SINGLETONS.get(key)
    if cached is None:
        # Aliases share their canonical name's instance: register under the
        # canonical name first, then point the requested key at whichever
        # instance won.
        created = KERNEL_BACKENDS.create(key)
        cached = _SINGLETONS.setdefault(getattr(created, "name", key), created)
        _SINGLETONS[key] = cached
    return cached


# --------------------------------------------------------------------------- #
# Worker-side dispatch of fused tasks
# --------------------------------------------------------------------------- #
# Fused tasks cross process boundaries as generic descriptors carrying the
# backend *name*; the worker re-resolves it against the registry (this
# module is imported by ``repro.kernels``, so the ops below exist in every
# worker).  QR chains receive their panel factors through ``consumes`` and
# reference them by input index.
@kernel_op("fused.lu_gemm_sweep")
def _fused_lu_gemm_sweep(tiles, inputs, backend, k, j, i0, i1) -> None:
    resolve_backend(backend).lu_gemm_sweep(tiles, k, j, i0, i1)


@kernel_op("fused.lu_gemm_rhs_sweep")
def _fused_lu_gemm_rhs_sweep(tiles, inputs, backend, k, i0, i1) -> None:
    resolve_backend(backend).lu_gemm_rhs_sweep(tiles, k, i0, i1)


@kernel_op("fused.qr_column_chain")
def _fused_qr_column_chain(tiles, inputs, backend, j, ops) -> None:
    resolve_backend(backend).qr_column_chain(tiles, j, ops, dict(enumerate(inputs)))


@kernel_op("fused.qr_rhs_chain")
def _fused_qr_rhs_chain(tiles, inputs, backend, ops) -> None:
    resolve_backend(backend).qr_rhs_chain(tiles, ops, dict(enumerate(inputs)))


@kernel_op("fused.incpiv_ssssm_chain")
def _fused_incpiv_ssssm_chain(tiles, inputs, backend, k, j, rows) -> None:
    resolve_backend(backend).incpiv_ssssm_chain(tiles, k, j, rows, inputs)


@kernel_op("fused.incpiv_ssssm_rhs_chain")
def _fused_incpiv_ssssm_rhs_chain(tiles, inputs, backend, k, rows) -> None:
    resolve_backend(backend).incpiv_ssssm_rhs_chain(tiles, k, rows, inputs)


# --------------------------------------------------------------------------- #
# Shape/dtype signatures of the fused descriptors
# --------------------------------------------------------------------------- #
# The fused effects are the unions of their constituent per-tile effects
# (the analyzer cross-checks the union against the verifier's
# expected_fused_sets), and each logical kernel is kept as a placement
# constituent so a sweep whose tiles span owners is priced per unit rather
# than treated as one opaque blob.
def _lu_sweep_effect(k, j, i0, i1):
    panel = tuple((i, k) for i in range(i0, i1))
    col = tuple((i, j) for i in range(i0, i1))
    return OpEffect(
        reads=frozenset(panel) | frozenset({(k, j)}) | frozenset(col),
        writes=frozenset(col),
        checks=(("matmul", ("stack", panel), (k, j), ("stack", col)),),
        constituents=tuple(
            (((i, k), (k, j), (i, j)), (i, j)) for i in range(i0, i1)
        ),
        unit_count=max(i1 - i0, 1),
    )


@kernel_signature("fused.lu_gemm_sweep")
def _sig_fused_lu_gemm_sweep(call, step, ctx):
    _backend, k, j, i0, i1 = call.args
    return _lu_sweep_effect(k, j, i0, i1)


@kernel_signature("fused.lu_gemm_rhs_sweep")
def _sig_fused_lu_gemm_rhs_sweep(call, step, ctx):
    _backend, k, i0, i1 = call.args
    return _lu_sweep_effect(k, _RHS, i0, i1)


def _qr_chain_effect(j, ops, step, ctx):
    reads, writes = set(), set()
    checks, constituents = [], []
    for op in ops:
        if op[0] == "unmqr":
            _, row, _fkey = op
            unit_reads = ((row, step), (row, j))
            anchor = (row, j)
            checks.append(("matmul", ("lit", ctx.nb, ctx.nb), (row, j), (row, j)))
        else:
            _, elim, killed, _fkey = op
            pair = ((elim, j), (killed, j))
            unit_reads = ((killed, step),) + pair
            anchor = (killed, j)
            checks.append(
                ("matmul", ("lit", 2 * ctx.nb, 2 * ctx.nb), ("stack", pair), ("stack", pair))
            )
            writes.add((elim, j))
        reads.update(unit_reads)
        writes.add(anchor)
        constituents.append((unit_reads, anchor))
    reads.update(writes)
    return OpEffect(
        reads=frozenset(reads),
        writes=frozenset(writes),
        checks=tuple(checks),
        constituents=tuple(constituents),
        unit_count=max(len(ops), 1),
    )


@kernel_signature("fused.qr_column_chain")
def _sig_fused_qr_column_chain(call, step, ctx):
    _backend, j, ops = call.args
    return _qr_chain_effect(j, ops, step, ctx)


@kernel_signature("fused.qr_rhs_chain")
def _sig_fused_qr_rhs_chain(call, step, ctx):
    _backend, ops = call.args
    return _qr_chain_effect(_RHS, ops, step, ctx)


def _incpiv_chain_effect(k, j, rows, ctx):
    checks = tuple(
        ("matmul", ("lit", 2 * ctx.nb, 2 * ctx.nb), ("stack", ((k, j), (i, j))), ("stack", ((k, j), (i, j))))
        for i in rows
    )
    return OpEffect(
        reads=frozenset((i, k) for i in rows) | frozenset({(k, j)}) | frozenset((i, j) for i in rows),
        writes=frozenset({(k, j)}) | frozenset((i, j) for i in rows),
        checks=checks,
        constituents=tuple((((i, k), (k, j), (i, j)), (i, j)) for i in rows),
        unit_count=max(len(rows), 1),
    )


@kernel_signature("fused.incpiv_ssssm_chain")
def _sig_fused_incpiv_ssssm_chain(call, step, ctx):
    _backend, k, j, rows = call.args
    return _incpiv_chain_effect(k, j, rows, ctx)


@kernel_signature("fused.incpiv_ssssm_rhs_chain")
def _sig_fused_incpiv_ssssm_rhs_chain(call, step, ctx):
    _backend, k, rows = call.args
    return _incpiv_chain_effect(k, _RHS, rows, ctx)
