"""Tile kernels of the QR elimination step (tiled / hierarchical QR).

A QR step eliminates every tile below the diagonal of the panel using
orthogonal transformations.  The kernels, named after their PLASMA
counterparts, are:

* **GEQRT**  — QR of a single square tile, producing ``(V, T, R)`` in
  compact-WY form.
* **TSQRT**  — QR of a *triangular* tile stacked on a *square* tile
  (Triangle on top of Square): kills a square tile using an eliminator
  tile that is already triangular.
* **TSMQR**  — apply the TSQRT transformation to the trailing tiles of the
  two rows involved.
* **UNMQR**  — apply a GEQRT transformation to a trailing tile of the
  eliminator row.
* **TTQRT**  — QR of a triangular tile stacked on a *triangular* tile
  (Triangle on top of Triangle): merges two eliminators, used by the
  inter-domain reduction trees.
* **TTMQR**  — apply the TTQRT transformation to trailing tiles.

Every kernel returns new tile values (functional style); the drivers in
:mod:`repro.core.qr_step` and :mod:`repro.baselines.hqr` write them back
into the :class:`~repro.tiles.TileMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..linalg.householder import apply_q_transpose, geqrt

__all__ = [
    "QRTileFactor",
    "geqrt_tile",
    "unmqr",
    "tsqrt",
    "tsmqr",
    "ttqrt",
    "ttmqr",
]


@dataclass
class QRTileFactor:
    """Compact-WY representation ``Q = I - V T V^T`` of a tile elimination.

    ``V`` has ``2*nb`` rows for the coupled kernels (TSQRT/TTQRT) and ``nb``
    rows for GEQRT; ``r`` is the resulting upper-triangular tile.
    """

    v: np.ndarray
    t: np.ndarray
    r: np.ndarray
    nb: int


def geqrt_tile(a_kk: np.ndarray) -> QRTileFactor:
    """GEQRT: QR of one square tile. Returns the compact-WY factor and ``R``."""
    nb = a_kk.shape[0]
    v, t, r = geqrt(a_kk)
    return QRTileFactor(v=v, t=t, r=r, nb=nb)


def unmqr(factor: QRTileFactor, c: np.ndarray) -> np.ndarray:
    """UNMQR: apply ``Q^T`` of a GEQRT factorization to a trailing tile."""
    return apply_q_transpose(factor.v, factor.t, c)


def tsqrt(r_top: np.ndarray, a_bottom: np.ndarray) -> QRTileFactor:
    """TSQRT: eliminate a square tile using a triangular eliminator tile.

    Factors the ``2nb x nb`` stacked matrix ``[R_top; A_bottom]`` where
    ``R_top`` is upper triangular.  The result's ``r`` replaces the
    eliminator tile, while the killed tile conceptually stores the
    reflectors (returned in ``v``).
    """
    nb = r_top.shape[0]
    stacked = np.vstack([np.triu(r_top), a_bottom])
    v, t, r = geqrt(stacked)
    return QRTileFactor(v=v, t=t, r=r, nb=nb)


def tsmqr(
    factor: QRTileFactor, c_top: np.ndarray, c_bottom: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """TSMQR: apply a TSQRT transformation to a pair of trailing tiles.

    ``c_top`` belongs to the eliminator row, ``c_bottom`` to the killed row.
    Returns the updated ``(c_top, c_bottom)``.
    """
    nb = factor.nb
    stacked = np.vstack([c_top, c_bottom])
    out = apply_q_transpose(factor.v, factor.t, stacked)
    return out[:nb], out[nb:]


def ttqrt(r_top: np.ndarray, r_bottom: np.ndarray) -> QRTileFactor:
    """TTQRT: merge two triangular eliminator tiles (reduction-tree kernel).

    Factors ``[R_top; R_bottom]`` with both blocks upper triangular; used
    when combining the local eliminators of different domains along the
    inter-node reduction tree.
    """
    nb = r_top.shape[0]
    stacked = np.vstack([np.triu(r_top), np.triu(r_bottom)])
    v, t, r = geqrt(stacked)
    return QRTileFactor(v=v, t=t, r=r, nb=nb)


def ttmqr(
    factor: QRTileFactor, c_top: np.ndarray, c_bottom: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """TTMQR: apply a TTQRT transformation to a pair of trailing tiles."""
    return tsmqr(factor, c_top, c_bottom)
