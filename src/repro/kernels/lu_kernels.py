"""Tile kernels of the LU elimination step (variant A1 of the paper).

One LU step at panel ``k`` (Algorithm 2 of the paper) is built from four
kernels:

* **Factor**   ``A_kk <- GETRF(A_kk)``: LU with partial pivoting of the
  diagonal tile (or of the whole diagonal domain in the variant used for
  the experiments), producing ``P A = L U`` stored in place.
* **Eliminate** ``A_ik <- TRSM(A_kk, A_ik)``: ``A_ik <- A_ik U_kk^{-1}``.
* **Apply**     ``A_kj <- SWPTRSM(A_kk, A_kj)``: ``A_kj <- L_kk^{-1} P_kk A_kj``.
* **Update**    ``A_ij <- GEMM(A_ik, A_kj, A_ij)``: ``A_ij <- A_ij - A_ik A_kj``.

The kernels below operate on plain numpy arrays (tiles); the step driver in
:mod:`repro.core.lu_step` wires them together over a :class:`~repro.tiles.TileMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..linalg.pivoting import apply_row_pivots, getrf, recursive_getrf
from ..linalg.triangular import trsm_lower_left_unit, trsm_upper_right

__all__ = [
    "LUPanelFactor",
    "factor_tile_lu",
    "factor_panel_lu",
    "eliminate_trsm",
    "apply_swptrsm",
    "update_gemm",
]


@dataclass
class LUPanelFactor:
    """Result of factoring a (possibly multi-tile) panel with partial pivoting.

    Attributes
    ----------
    lu:
        The packed factors: unit-lower ``L`` below the diagonal of the
        leading ``nb`` columns, ``U`` in the upper triangle of the top
        ``nb`` rows.  Shape ``(d*nb, nb)`` where ``d`` is the number of
        stacked tiles.
    piv:
        LAPACK-style pivot sequence (length ``nb``): row ``j`` of the
        stacked panel was swapped with row ``piv[j]``.
    nb:
        Tile order.
    """

    lu: np.ndarray
    piv: np.ndarray
    nb: int

    @property
    def u(self) -> np.ndarray:
        """The ``nb x nb`` upper-triangular factor ``U``."""
        return np.triu(self.lu[: self.nb, : self.nb])

    @property
    def l_top(self) -> np.ndarray:
        """The ``nb x nb`` unit-lower-triangular top block of ``L``."""
        return np.tril(self.lu[: self.nb, : self.nb], k=-1) + np.eye(self.nb)

    @property
    def smallest_pivot(self) -> float:
        """Smallest absolute diagonal entry of ``U`` (breakdown indicator)."""
        return float(np.min(np.abs(np.diag(self.lu[: self.nb, : self.nb]))))


def factor_tile_lu(tile: np.ndarray) -> LUPanelFactor:
    """Factor kernel on the diagonal tile only: ``P A_kk = L U``."""
    lu, piv = getrf(tile)
    return LUPanelFactor(lu=lu, piv=piv, nb=tile.shape[0])


def factor_panel_lu(stacked: np.ndarray, nb: int, recursive: bool = True) -> LUPanelFactor:
    """Factor kernel on the stacked diagonal *domain* (the experimental variant).

    ``stacked`` is the vertical concatenation of all panel tiles owned by
    the diagonal node (diagonal tile first).  Searching pivots across the
    whole domain rather than a single tile "increases the smallest singular
    value of the factored region and therefore increases the likelihood of
    an LU step" (Section II-A), without any inter-node communication.

    The recursive variant mirrors PLASMA's multi-threaded recursive-LU
    panel kernel used in the paper's implementation (Section IV).
    """
    if stacked.shape[1] != nb:
        raise ValueError(f"stacked panel must have {nb} columns, got {stacked.shape[1]}")
    if recursive:
        lu, piv = recursive_getrf(stacked)
    else:
        lu, piv = getrf(stacked)
    return LUPanelFactor(lu=lu, piv=piv, nb=nb)


def eliminate_trsm(factor: LUPanelFactor, a_ik: np.ndarray) -> np.ndarray:
    """Eliminate kernel: ``A_ik <- A_ik U_kk^{-1}`` (in-place semantics by return)."""
    return trsm_upper_right(factor.u, a_ik)


def apply_swptrsm(factor: LUPanelFactor, a_kj: np.ndarray) -> np.ndarray:
    """Apply kernel: ``A_kj <- L_kk^{-1} P_kk A_kj``.

    ``a_kj`` must contain the rows of the *whole factored region* (i.e. the
    stacked domain rows for the domain variant) so the pivot swaps can be
    applied; only the top ``nb`` rows are transformed by the triangular
    solve and the caller is responsible for scattering all rows back.
    """
    c = np.array(a_kj, dtype=np.float64, copy=True)
    if c.shape[0] != factor.lu.shape[0]:
        raise ValueError(
            f"apply_swptrsm expects {factor.lu.shape[0]} rows, got {c.shape[0]}"
        )
    apply_row_pivots(c, factor.piv)
    c[: factor.nb] = trsm_lower_left_unit(factor.l_top, c[: factor.nb])
    return c


def update_gemm(a_ij: np.ndarray, a_ik: np.ndarray, a_kj: np.ndarray) -> np.ndarray:
    """Update kernel: ``A_ij <- A_ij - A_ik A_kj`` (returns the new tile)."""
    return a_ij - a_ik @ a_kj
