"""Floating-point operation model of the tile kernels (Table I of the paper).

Table I of the paper gives the cost of one elimination step, in units of
``nb^3`` floating-point operations, for an LU step (variant A1) and a QR
step::

                      LU step, var A1            QR step
    factor   A        2/3        GETRF           4/3        GEQRT
    eliminate B       (n-1)      TRSM            2(n-1)     TSQRT
    apply    C        (n-1)      TRSM (SWPTRSM)  2(n-1)     TSMQR
    update   D        2(n-1)^2   GEMM            4(n-1)^2   UNMQR/TSMQR

so a QR step is roughly twice as expensive as an LU step, and a full
factorization costs ``2/3 N^3`` flops if every step is LU and ``4/3 N^3``
flops if every step is QR.

This module provides:

* per-kernel flop counts (functions of the tile size ``nb``),
* per-step totals for LU and QR steps (functions of ``nb`` and the number
  of remaining tiles), reproducing Table I,
* whole-factorization totals, including the *true* flop count of a hybrid
  run given the fraction of LU steps (the formula used in Table II:
  ``(2/3 f_LU + 4/3 (1 - f_LU)) N^3``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "KernelFlops",
    "kernel_flops",
    "lu_step_flops",
    "qr_step_flops",
    "step_flops_table",
    "factorization_flops_lu",
    "factorization_flops_qr",
    "true_flops",
    "fake_flops",
]


@dataclass(frozen=True)
class KernelFlops:
    """Flop count of every tile kernel for a given tile size ``nb``.

    The counts are the standard LAPACK/PLASMA operation counts (leading
    order in ``nb``); the coefficients match the units-of-``nb^3`` entries
    of Table I.
    """

    nb: int

    # ----------------------- LU-step kernels -------------------------- #
    @property
    def getrf(self) -> float:
        """LU factorization with partial pivoting of one ``nb x nb`` tile."""
        return (2.0 / 3.0) * self.nb**3

    @property
    def trsm(self) -> float:
        """Triangular solve of one tile against a triangular tile."""
        return float(self.nb**3)

    @property
    def swptrsm(self) -> float:
        """Row-swap + unit-lower triangular solve (the Apply kernel of A1)."""
        return float(self.nb**3)

    @property
    def gemm(self) -> float:
        """General tile-tile multiply-accumulate ``C <- C - A B``."""
        return 2.0 * self.nb**3

    # ----------------------- QR-step kernels -------------------------- #
    @property
    def geqrt(self) -> float:
        """Householder QR of one ``nb x nb`` tile (compact WY)."""
        return (4.0 / 3.0) * self.nb**3

    @property
    def tsqrt(self) -> float:
        """QR of a triangular tile stacked on a square tile (2nb x nb)."""
        return 2.0 * self.nb**3

    @property
    def tsmqr(self) -> float:
        """Apply a TSQRT transformation to a pair of trailing tiles."""
        return 4.0 * self.nb**3

    @property
    def unmqr(self) -> float:
        """Apply a GEQRT transformation to one trailing tile."""
        return 2.0 * self.nb**3

    @property
    def ttqrt(self) -> float:
        """QR of a triangular tile stacked on a triangular tile."""
        return (2.0 / 3.0) * self.nb**3

    @property
    def ttmqr(self) -> float:
        """Apply a TTQRT transformation to a pair of trailing tiles."""
        return 2.0 * self.nb**3

    # ---------------------- Auxiliary kernels -------------------------- #
    @property
    def tile_norm(self) -> float:
        """1-norm of a tile (criterion bookkeeping), ``nb^2`` operations."""
        return float(self.nb**2)

    @property
    def norm_estimate(self) -> float:
        """Hager estimate of ``||A_kk^{-1}||_1`` from LU factors (few solves)."""
        return 10.0 * self.nb**2

    def of(self, name: str) -> float:
        """Flop count of a kernel by (lower-case) name."""
        try:
            return float(getattr(self, name.lower()))
        except AttributeError as exc:
            raise KeyError(f"unknown kernel {name!r}") from exc


def kernel_flops(name: str, nb: int) -> float:
    """Flop count of kernel ``name`` at tile size ``nb``."""
    return KernelFlops(nb).of(name)


def lu_step_flops(nb: int, remaining: int) -> Dict[str, float]:
    """Flop count of one LU step (variant A1) with ``remaining`` tiles left.

    ``remaining`` is the number of tile rows/columns still to eliminate at
    this step, i.e. ``n - k`` so that ``remaining - 1`` matches the
    ``(n - 1)`` factors of Table I for the first step.
    """
    k = KernelFlops(nb)
    r = remaining - 1
    return {
        "factor": k.getrf,
        "eliminate": r * k.trsm,
        "apply": r * k.swptrsm,
        "update": r * r * k.gemm,
        "total": k.getrf + r * k.trsm + r * k.swptrsm + r * r * k.gemm,
    }


def qr_step_flops(nb: int, remaining: int) -> Dict[str, float]:
    """Flop count of one QR step with ``remaining`` tiles left (cf. Table I)."""
    k = KernelFlops(nb)
    r = remaining - 1
    return {
        "factor": k.geqrt,
        "eliminate": r * k.tsqrt,
        "apply": r * k.unmqr,
        "update": r * r * k.tsmqr,
        "total": k.geqrt + r * k.tsqrt + r * k.unmqr + r * r * k.tsmqr,
    }


def step_flops_table(nb: int, remaining: int) -> Dict[str, Dict[str, float]]:
    """Both columns of Table I, in units of ``nb^3``, for a given step size."""
    scale = float(nb**3)
    lu = lu_step_flops(nb, remaining)
    qr = qr_step_flops(nb, remaining)
    return {
        "lu": {key: val / scale for key, val in lu.items()},
        "qr": {key: val / scale for key, val in qr.items()},
    }


def factorization_flops_lu(n_order: int) -> float:
    """Flops of a full LU factorization of an ``N x N`` matrix: ``2/3 N^3``."""
    return (2.0 / 3.0) * float(n_order) ** 3


def factorization_flops_qr(n_order: int) -> float:
    """Flops of a full QR factorization of an ``N x N`` matrix: ``4/3 N^3``."""
    return (4.0 / 3.0) * float(n_order) ** 3


def fake_flops(n_order: int) -> float:
    """The "fake" flop count used to normalise GFLOP/s in the paper.

    Every algorithm is credited ``2/3 N^3`` flops (the LU count) regardless
    of what it actually performs, so that a QR-based run shows roughly half
    the GFLOP/s of an LU-based run of the same duration (Section V-A).
    """
    return factorization_flops_lu(n_order)


def true_flops(n_order: int, lu_fraction: float) -> float:
    """The "true" flop count of a hybrid run (Table II).

    ``(2/3 f_LU + 4/3 (1 - f_LU)) N^3`` where ``f_LU`` is the fraction of
    elimination steps that were LU steps.
    """
    if not 0.0 <= lu_fraction <= 1.0:
        raise ValueError(f"lu_fraction must be in [0, 1], got {lu_fraction}")
    coeff = (2.0 / 3.0) * lu_fraction + (4.0 / 3.0) * (1.0 - lu_fraction)
    return coeff * float(n_order) ** 3
