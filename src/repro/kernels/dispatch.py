"""Picklable kernel descriptors and the worker-side dispatch table.

Kernel *closures* (the ``fn`` of a
:class:`~repro.runtime.schedule.KernelTask`) capture live objects — the
:class:`~repro.tiles.tile_matrix.TileMatrix`, panel factors, the step's
factor table — so they can run on threads but can never cross a process
boundary.  The multi-process executor therefore ships each task as a
:class:`KernelCall` descriptor instead: a kernel *name* resolved against
the :data:`KERNELS` table below, plus a tuple of picklable arguments (tile
indices, domain rows, pre-computed panel factors).

Data produced at execution time (compact-WY factors from GEQRT/TSQRT,
pairwise-pivot factors from TSTRF) flows along the graph edges exactly as
in PaRSEC: a producing call names a ``produces`` key, the scheduler
publishes the worker's return value under that key, and consuming calls
list the key in ``consumes`` — the values are injected when the consumer
is dispatched, which is always after the producer finished because the
tile access sets already order producer before consumer.

Every operation reads and writes tiles through a
:class:`~repro.tiles.tile_matrix.TileMatrix` view over the shared-memory
segment described by a
:class:`~repro.tiles.shared_buffer.SharedBufferMeta`; attachments are
cached per worker process so only the first task of a factorization pays
the attach cost.

The numerical code below mirrors the closures in
:mod:`repro.core.lu_step`, :mod:`repro.core.qr_step` and
:mod:`repro.baselines.lu_incpiv` operation for operation, so descriptor
execution is bit-identical to closure execution.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing import current_process
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..tiles.shared_buffer import SharedBufferMeta, SharedTileBuffer
from ..tiles.tile_matrix import TileMatrix
from .lu_kernels import apply_swptrsm, eliminate_trsm, factor_panel_lu, factor_tile_lu
from .qr_kernels import geqrt_tile, tsmqr, tsqrt, ttqrt, unmqr

__all__ = [
    "KernelCall",
    "KERNELS",
    "kernel_op",
    "execute_kernel_call",
    "SigContext",
    "OpEffect",
    "KernelSignature",
    "KERNEL_SIGNATURES",
    "kernel_signature",
]


@dataclass(frozen=True)
class KernelCall:
    """Picklable form of one kernel task.

    Attributes
    ----------
    kernel:
        Name resolved against :data:`KERNELS` in the executing process.
    args:
        Static positional arguments (tile indices, domain rows, panel
        factors) — everything here must pickle.
    consumes:
        Keys of upstream results injected at dispatch time (ordered; the
        operation receives them as its ``inputs`` tuple).
    produces:
        Key under which the operation's return value is published for
        downstream ``consumes``.
    norm_tiles:
        Tile coordinates whose 1-norms the worker samples right after the
        operation (outside the timed window) and ships back with the
        result.  The scheduler attaches these to the last writer of each
        tile per elimination step so growth tracking stays exact — and
        bit-identical to the inline path — even when cross-step lookahead
        interleaves steps (the host cannot sample between steps then).
    """

    kernel: str
    args: Tuple[Any, ...] = ()
    consumes: Tuple[Any, ...] = ()
    produces: Optional[Any] = None
    norm_tiles: Tuple[Tuple[int, int], ...] = ()


#: Name -> operation table the worker resolves descriptors against.
KERNELS: Dict[str, Callable[..., Any]] = {}


def kernel_op(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a worker-side kernel operation under ``name``."""

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in KERNELS:
            raise ValueError(f"kernel operation {name!r} is already registered")
        KERNELS[name] = fn
        return fn

    return decorator


# --------------------------------------------------------------------------- #
# LU step (variant A1) — mirrors repro.core.lu_step closures
# --------------------------------------------------------------------------- #
@kernel_op("lu.scatter_factor")
def _lu_scatter_factor(tiles: TileMatrix, inputs, k, domain_rows, factor) -> None:
    tiles.scatter_panel(k, list(domain_rows), factor.lu)


@kernel_op("lu.swptrsm")
def _lu_swptrsm(tiles: TileMatrix, inputs, j, domain_rows, factor) -> None:
    rows = list(domain_rows)
    stacked = tiles.panel(j, rows)
    stacked = apply_swptrsm(factor, stacked)
    tiles.scatter_panel(j, rows, stacked)


@kernel_op("lu.swptrsm_rhs")
def _lu_swptrsm_rhs(tiles: TileMatrix, inputs, domain_rows, factor) -> None:
    nb = tiles.nb
    rows = list(domain_rows)
    stacked = np.vstack([tiles.rhs_tile(i) for i in rows])
    stacked = apply_swptrsm(factor, stacked)
    for idx, i in enumerate(rows):
        tiles.rhs_tile(i)[...] = stacked[idx * nb : (idx + 1) * nb]


@kernel_op("lu.trsm")
def _lu_trsm(tiles: TileMatrix, inputs, i, k, factor) -> None:
    tiles.set_tile(i, k, eliminate_trsm(factor, tiles.tile(i, k)))


@kernel_op("lu.gemm")
def _lu_gemm(tiles: TileMatrix, inputs, i, j, k) -> None:
    tiles.tile(i, j)[...] -= tiles.tile(i, k) @ tiles.tile(k, j)


@kernel_op("lu.gemm_rhs")
def _lu_gemm_rhs(tiles: TileMatrix, inputs, i, k) -> None:
    tiles.rhs_tile(i)[...] -= tiles.tile(i, k) @ tiles.rhs_tile(k)


# --------------------------------------------------------------------------- #
# QR step (hierarchical tiled QR) — mirrors repro.core.qr_step closures
# --------------------------------------------------------------------------- #
@kernel_op("qr.geqrt")
def _qr_geqrt(tiles: TileMatrix, inputs, row, k):
    factor = geqrt_tile(tiles.tile(row, k))
    tiles.set_tile(row, k, np.triu(factor.r))
    return factor


@kernel_op("qr.unmqr")
def _qr_unmqr(tiles: TileMatrix, inputs, row, j) -> None:
    (factor,) = inputs
    tiles.set_tile(row, j, unmqr(factor, tiles.tile(row, j)))


@kernel_op("qr.unmqr_rhs")
def _qr_unmqr_rhs(tiles: TileMatrix, inputs, row) -> None:
    (factor,) = inputs
    tiles.rhs_tile(row)[...] = unmqr(factor, tiles.rhs_tile(row))


@kernel_op("qr.couple")
def _qr_couple(tiles: TileMatrix, inputs, kind, eliminator, killed, k):
    couple = ttqrt if kind == "TT" else tsqrt
    factor = couple(tiles.tile(eliminator, k), tiles.tile(killed, k))
    tiles.set_tile(eliminator, k, np.triu(factor.r))
    tiles.set_tile(killed, k, np.zeros((tiles.nb, tiles.nb), dtype=tiles.dtype))
    return factor


@kernel_op("qr.update")
def _qr_update(tiles: TileMatrix, inputs, eliminator, killed, j) -> None:
    (factor,) = inputs
    top, bottom = tsmqr(factor, tiles.tile(eliminator, j), tiles.tile(killed, j))
    tiles.set_tile(eliminator, j, top)
    tiles.set_tile(killed, j, bottom)


@kernel_op("qr.update_rhs")
def _qr_update_rhs(tiles: TileMatrix, inputs, eliminator, killed) -> None:
    (factor,) = inputs
    top, bottom = tsmqr(factor, tiles.rhs_tile(eliminator), tiles.rhs_tile(killed))
    tiles.rhs_tile(eliminator)[...] = top
    tiles.rhs_tile(killed)[...] = bottom


# --------------------------------------------------------------------------- #
# LU IncPiv — mirrors repro.baselines.lu_incpiv closures
# --------------------------------------------------------------------------- #
@kernel_op("incpiv.getrf")
def _incpiv_getrf(tiles: TileMatrix, inputs, k):
    factor = factor_tile_lu(tiles.tile(k, k))
    tiles.set_tile(k, k, np.triu(factor.lu))
    return factor


@kernel_op("incpiv.swptrsm")
def _incpiv_swptrsm(tiles: TileMatrix, inputs, k, j) -> None:
    (factor,) = inputs
    tiles.set_tile(k, j, apply_swptrsm(factor, tiles.tile(k, j)))


@kernel_op("incpiv.swptrsm_rhs")
def _incpiv_swptrsm_rhs(tiles: TileMatrix, inputs, k) -> None:
    (factor,) = inputs
    tiles.rhs_tile(k)[...] = apply_swptrsm(factor, tiles.rhs_tile(k))


@kernel_op("incpiv.tstrf")
def _incpiv_tstrf(tiles: TileMatrix, inputs, k, i):
    nb = tiles.nb
    stacked = np.vstack([np.triu(tiles.tile(k, k)), tiles.tile(i, k)])
    pair = factor_panel_lu(stacked, nb, recursive=False)
    tiles.set_tile(k, k, np.triu(pair.lu[:nb]))
    tiles.set_tile(i, k, pair.lu[nb:])
    return pair


def _ssssm_pair(pair, nb, top, bottom):
    l2 = pair.lu[nb:]
    c = np.vstack([top, bottom])
    c = apply_swptrsm(pair, c)
    return c[:nb], c[nb:] - l2 @ c[:nb]


@kernel_op("incpiv.ssssm")
def _incpiv_ssssm(tiles: TileMatrix, inputs, k, i, j) -> None:
    (pair,) = inputs
    top, bottom = _ssssm_pair(pair, tiles.nb, tiles.tile(k, j), tiles.tile(i, j))
    tiles.set_tile(k, j, top)
    tiles.set_tile(i, j, bottom)


@kernel_op("incpiv.ssssm_rhs")
def _incpiv_ssssm_rhs(tiles: TileMatrix, inputs, k, i) -> None:
    (pair,) = inputs
    top, bottom = _ssssm_pair(pair, tiles.nb, tiles.rhs_tile(k), tiles.rhs_tile(i))
    tiles.rhs_tile(k)[...] = top
    tiles.rhs_tile(i)[...] = bottom


# --------------------------------------------------------------------------- #
# Shape/dtype signatures — abstract transfer rules for the static analyzer
# --------------------------------------------------------------------------- #
# The analyzer (repro.analysis.abstract) symbolically executes plans over an
# abstract domain of (tile shape, dtype) values.  Each kernel operation in
# KERNELS declares a *signature*: a function mapping a KernelCall to the tile
# sets it reads and writes, the conformability checks its numerics imply, an
# owner anchor for placement (owner-computes on the written tile), and the
# byte size of any produced factor.  Registry lint fails when KERNELS and
# KERNEL_SIGNATURES drift apart in either direction.
#
# The RHS pseudo-column constant mirrors repro.runtime.task.RHS_COLUMN; it is
# not imported because repro.runtime.__init__ imports the process executor,
# which imports this module.
_RHS = -1


@dataclass(frozen=True)
class SigContext:
    """Problem-level context a signature is evaluated under.

    ``dtype`` is the dtype of the *input* matrix (pre tile-storage cast), so
    abstract interpretation covers dtypes the concrete TileMatrix would
    normalise away.
    """

    n: int
    nb: int
    nrhs: int
    dtype: Any

    @property
    def itemsize(self) -> int:
        return int(np.dtype(self.dtype).itemsize)


@dataclass(frozen=True)
class OpEffect:
    """Abstract effect of one kernel application.

    ``checks`` is a tuple of conformability assertions over shape operands.
    An operand is a tile reference ``(i, j)`` (column ``-1`` = RHS), a
    literal ``("lit", rows, cols)``, or a vertical stack
    ``("stack", (ref, ...))`` whose row counts add and whose column counts
    must agree.  Check forms:

    - ``("matmul", a, b, out)`` — ``a @ b`` conforms and matches ``out``
    - ``("same_shape", a, b)``
    - ``("concrete", label, actual_shape, expected_shape)`` — a concrete
      array carried inside the call (panel factors) has the shape the plan
      geometry implies

    ``owner_tile`` anchors the task's owner under a distribution
    (owner-computes on the written tile).  ``constituents`` decomposes a
    fused operation into ``((read_refs, ...), anchor_ref)`` units so
    placement can price intra-sweep communication per logical kernel.
    ``product_bytes`` sizes the value published under ``call.produces``.
    ``unit_count`` is the number of logical kernels (cross-checked against
    ``Task.fused``).
    """

    reads: Any
    writes: Any
    checks: Tuple[Any, ...] = ()
    owner_tile: Optional[Tuple[int, int]] = None
    constituents: Tuple[Any, ...] = ()
    product_bytes: int = 0
    unit_count: int = 1


@dataclass(frozen=True)
class KernelSignature:
    """Transfer rule for one kernel op.

    ``effect(call, step, ctx) -> OpEffect`` derives the abstract effect;
    ``dtype_rule`` is ``"preserve"`` (writes take the promoted dtype of the
    reads) or a concrete numpy dtype name the operation forces its outputs
    to.
    """

    effect: Callable[[KernelCall, int, SigContext], OpEffect]
    dtype_rule: str = "preserve"


#: Name -> signature table, lint-checked against :data:`KERNELS` both ways.
KERNEL_SIGNATURES: Dict[str, KernelSignature] = {}


def kernel_signature(
    name: str, dtype_rule: str = "preserve"
) -> Callable[[Callable[..., OpEffect]], Callable[..., OpEffect]]:
    """Register the shape/dtype signature for kernel op ``name``."""

    def decorator(fn: Callable[..., OpEffect]) -> Callable[..., OpEffect]:
        if name in KERNEL_SIGNATURES:
            raise ValueError(f"kernel signature {name!r} is already registered")
        KERNEL_SIGNATURES[name] = KernelSignature(effect=fn, dtype_rule=dtype_rule)
        return fn

    return decorator


def _factor_lu_shape(factor: Any) -> Tuple[int, ...]:
    return tuple(getattr(getattr(factor, "lu", None), "shape", ()))


@kernel_signature("lu.scatter_factor")
def _sig_lu_scatter_factor(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    k, rows, factor = call.args
    refs = frozenset((i, k) for i in rows)
    return OpEffect(
        reads=refs,
        writes=refs,
        checks=(
            (
                "concrete",
                "scatter_factor.lu",
                _factor_lu_shape(factor),
                (len(rows) * ctx.nb, ctx.nb),
            ),
        ),
        owner_tile=(k, k),
    )


@kernel_signature("lu.swptrsm")
def _sig_lu_swptrsm(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    j, rows, factor = call.args
    panel = frozenset((i, step) for i in rows)
    col = tuple((i, j) for i in rows)
    d = len(rows) * ctx.nb
    return OpEffect(
        reads=panel | frozenset(col),
        writes=frozenset(col),
        checks=(
            ("concrete", "swptrsm.lu", _factor_lu_shape(factor), (d, ctx.nb)),
            ("matmul", ("lit", d, d), ("stack", col), ("stack", col)),
        ),
        owner_tile=(rows[0], j),
    )


@kernel_signature("lu.swptrsm_rhs")
def _sig_lu_swptrsm_rhs(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    rows, factor = call.args
    panel = frozenset((i, step) for i in rows)
    col = tuple((i, _RHS) for i in rows)
    d = len(rows) * ctx.nb
    return OpEffect(
        reads=panel | frozenset(col),
        writes=frozenset(col),
        checks=(
            ("concrete", "swptrsm.lu", _factor_lu_shape(factor), (d, ctx.nb)),
            ("matmul", ("lit", d, d), ("stack", col), ("stack", col)),
        ),
        owner_tile=(rows[0], _RHS),
    )


@kernel_signature("lu.trsm")
def _sig_lu_trsm(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    i, k, _factor = call.args
    return OpEffect(
        reads=frozenset({(k, k), (i, k)}),
        writes=frozenset({(i, k)}),
        checks=(("matmul", (i, k), ("lit", ctx.nb, ctx.nb), (i, k)),),
        owner_tile=(i, k),
    )


@kernel_signature("lu.gemm")
def _sig_lu_gemm(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    i, j, k = call.args
    return OpEffect(
        reads=frozenset({(i, k), (k, j), (i, j)}),
        writes=frozenset({(i, j)}),
        checks=(("matmul", (i, k), (k, j), (i, j)),),
        owner_tile=(i, j),
    )


@kernel_signature("lu.gemm_rhs")
def _sig_lu_gemm_rhs(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    i, k = call.args
    return OpEffect(
        reads=frozenset({(i, k), (k, _RHS), (i, _RHS)}),
        writes=frozenset({(i, _RHS)}),
        checks=(("matmul", (i, k), (k, _RHS), (i, _RHS)),),
        owner_tile=(i, _RHS),
    )


@kernel_signature("qr.geqrt")
def _sig_qr_geqrt(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    row, k = call.args
    return OpEffect(
        reads=frozenset({(row, k)}),
        writes=frozenset({(row, k)}),
        checks=(("matmul", ("lit", ctx.nb, ctx.nb), (row, k), (row, k)),),
        owner_tile=(row, k),
        product_bytes=3 * ctx.nb * ctx.nb * ctx.itemsize,
    )


@kernel_signature("qr.unmqr")
def _sig_qr_unmqr(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    row, j = call.args
    return OpEffect(
        reads=frozenset({(row, step), (row, j)}),
        writes=frozenset({(row, j)}),
        checks=(("matmul", ("lit", ctx.nb, ctx.nb), (row, j), (row, j)),),
        owner_tile=(row, j),
    )


@kernel_signature("qr.unmqr_rhs")
def _sig_qr_unmqr_rhs(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    (row,) = call.args
    return OpEffect(
        reads=frozenset({(row, step), (row, _RHS)}),
        writes=frozenset({(row, _RHS)}),
        checks=(("matmul", ("lit", ctx.nb, ctx.nb), (row, _RHS), (row, _RHS)),),
        owner_tile=(row, _RHS),
    )


@kernel_signature("qr.couple")
def _sig_qr_couple(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    _kind, eliminator, killed, k = call.args
    pair = ((eliminator, k), (killed, k))
    return OpEffect(
        reads=frozenset(pair),
        writes=frozenset(pair),
        checks=(
            ("same_shape", (eliminator, k), (killed, k)),
            ("matmul", ("lit", 2 * ctx.nb, 2 * ctx.nb), ("stack", pair), ("stack", pair)),
        ),
        owner_tile=(killed, k),
        product_bytes=4 * ctx.nb * ctx.nb * ctx.itemsize,
    )


@kernel_signature("qr.update")
def _sig_qr_update(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    eliminator, killed, j = call.args
    pair = ((eliminator, j), (killed, j))
    return OpEffect(
        reads=frozenset(pair) | frozenset({(killed, step)}),
        writes=frozenset(pair),
        checks=(
            ("matmul", ("lit", 2 * ctx.nb, 2 * ctx.nb), ("stack", pair), ("stack", pair)),
        ),
        owner_tile=(killed, j),
    )


@kernel_signature("qr.update_rhs")
def _sig_qr_update_rhs(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    eliminator, killed = call.args
    pair = ((eliminator, _RHS), (killed, _RHS))
    return OpEffect(
        reads=frozenset(pair) | frozenset({(killed, step)}),
        writes=frozenset(pair),
        checks=(
            ("matmul", ("lit", 2 * ctx.nb, 2 * ctx.nb), ("stack", pair), ("stack", pair)),
        ),
        owner_tile=(killed, _RHS),
    )


@kernel_signature("incpiv.getrf")
def _sig_incpiv_getrf(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    (k,) = call.args
    return OpEffect(
        reads=frozenset({(k, k)}),
        writes=frozenset({(k, k)}),
        checks=(("matmul", ("lit", ctx.nb, ctx.nb), (k, k), (k, k)),),
        owner_tile=(k, k),
        product_bytes=ctx.nb * ctx.nb * ctx.itemsize + ctx.nb * 8,
    )


@kernel_signature("incpiv.swptrsm")
def _sig_incpiv_swptrsm(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    k, j = call.args
    return OpEffect(
        reads=frozenset({(k, k), (k, j)}),
        writes=frozenset({(k, j)}),
        checks=(("matmul", ("lit", ctx.nb, ctx.nb), (k, j), (k, j)),),
        owner_tile=(k, j),
    )


@kernel_signature("incpiv.swptrsm_rhs")
def _sig_incpiv_swptrsm_rhs(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    (k,) = call.args
    return OpEffect(
        reads=frozenset({(k, k), (k, _RHS)}),
        writes=frozenset({(k, _RHS)}),
        checks=(("matmul", ("lit", ctx.nb, ctx.nb), (k, _RHS), (k, _RHS)),),
        owner_tile=(k, _RHS),
    )


@kernel_signature("incpiv.tstrf")
def _sig_incpiv_tstrf(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    k, i = call.args
    pair = ((k, k), (i, k))
    return OpEffect(
        reads=frozenset(pair),
        writes=frozenset(pair),
        checks=(
            ("same_shape", (k, k), (i, k)),
            ("matmul", ("lit", 2 * ctx.nb, 2 * ctx.nb), ("stack", pair), ("stack", pair)),
        ),
        owner_tile=(i, k),
        product_bytes=2 * ctx.nb * ctx.nb * ctx.itemsize + ctx.nb * 8,
    )


@kernel_signature("incpiv.ssssm")
def _sig_incpiv_ssssm(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    k, i, j = call.args
    pair = ((k, j), (i, j))
    return OpEffect(
        reads=frozenset({(i, k), (k, j), (i, j)}),
        writes=frozenset(pair),
        checks=(
            ("matmul", ("lit", 2 * ctx.nb, 2 * ctx.nb), ("stack", pair), ("stack", pair)),
        ),
        owner_tile=(i, j),
    )


@kernel_signature("incpiv.ssssm_rhs")
def _sig_incpiv_ssssm_rhs(call: KernelCall, step: int, ctx: SigContext) -> OpEffect:
    k, i = call.args
    pair = ((k, _RHS), (i, _RHS))
    return OpEffect(
        reads=frozenset({(i, k), (k, _RHS), (i, _RHS)}),
        writes=frozenset(pair),
        checks=(
            ("matmul", ("lit", 2 * ctx.nb, 2 * ctx.nb), ("stack", pair), ("stack", pair)),
        ),
        owner_tile=(i, _RHS),
    )


# --------------------------------------------------------------------------- #
# Worker entry point
# --------------------------------------------------------------------------- #
@dataclass
class _Attachment:
    buffer: SharedTileBuffer
    tiles: TileMatrix


#: Per-process cache of shared-segment attachments, so only the first task
#: of a factorization pays the attach cost.  Bounded: concurrent
#: factorizations interleave tasks of different segments through the same
#: worker, so a few attachments stay warm at once; beyond that the oldest
#: is closed.  Segments the owner already unlinked are dropped eagerly
#: (checked against /dev/shm where POSIX shared memory lives), so a big
#: finished factorization does not stay resident in every worker until
#: unrelated traffic happens to evict it.  A fully *idle* worker still
#: holds its most recent attachments until the next task or pool shutdown
#: — the price of a persistent pool.
_ATTACHMENTS: Dict[str, _Attachment] = {}
_MAX_ATTACHMENTS = 4


def _segment_unlinked(name: str) -> bool:
    try:
        return os.path.isdir("/dev/shm") and not os.path.exists("/dev/shm/" + name)
    except OSError:  # pragma: no cover - defensive
        return False


def _drop_attachment(name: str) -> None:
    stale = _ATTACHMENTS.pop(name, None)
    if stale is not None:
        stale.tiles = None
        stale.buffer.close()


def _tiles_for(meta: SharedBufferMeta) -> TileMatrix:
    for name in list(_ATTACHMENTS):
        if name != meta.name and _segment_unlinked(name):
            _drop_attachment(name)
    cached = _ATTACHMENTS.get(meta.name)
    if cached is not None:
        return cached.tiles
    while len(_ATTACHMENTS) >= _MAX_ATTACHMENTS:
        _drop_attachment(next(iter(_ATTACHMENTS)))
    buffer = SharedTileBuffer.attach(meta)
    attachment = _Attachment(buffer=buffer, tiles=buffer.tile_matrix())
    _ATTACHMENTS[meta.name] = attachment
    return attachment.tiles


def execute_kernel_call(
    meta: SharedBufferMeta, call: KernelCall, inputs: Tuple[Any, ...]
) -> Tuple[Any, Optional[Tuple[float, ...]], float, float, str]:
    """Run one :class:`KernelCall` against the shared tiles (worker side).

    Returns ``(result, norms, start, finish, worker_name)`` where the
    timestamps come from :func:`time.perf_counter` (system-wide monotonic
    on Linux, so they are comparable across the worker processes of one
    node) and ``norms`` holds the 1-norms of ``call.norm_tiles`` (``None``
    when no sampling was requested).  The norms are computed after
    ``finish`` is taken, so sampling never skews kernel timings used for
    calibration.
    """
    tiles = _tiles_for(meta)
    try:
        op = KERNELS[call.kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel operation {call.kernel!r}; available: "
            f"{', '.join(sorted(KERNELS))}"
        ) from None
    start = time.perf_counter()
    result = op(tiles, inputs, *call.args)
    finish = time.perf_counter()
    norms: Optional[Tuple[float, ...]] = None
    if call.norm_tiles:
        # Same code path as the incremental norm cache of the tiled
        # drivers (region_tile_norms over a 1x1 tile region), so the
        # sampled values are bit-identical to the inline bookkeeping.
        norms = tuple(
            float(tiles.region_tile_norms(i, i + 1, j, j + 1)[0, 0])
            for (i, j) in call.norm_tiles
        )
    return result, norms, start, finish, current_process().name
