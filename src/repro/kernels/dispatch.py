"""Picklable kernel descriptors and the worker-side dispatch table.

Kernel *closures* (the ``fn`` of a
:class:`~repro.runtime.schedule.KernelTask`) capture live objects — the
:class:`~repro.tiles.tile_matrix.TileMatrix`, panel factors, the step's
factor table — so they can run on threads but can never cross a process
boundary.  The multi-process executor therefore ships each task as a
:class:`KernelCall` descriptor instead: a kernel *name* resolved against
the :data:`KERNELS` table below, plus a tuple of picklable arguments (tile
indices, domain rows, pre-computed panel factors).

Data produced at execution time (compact-WY factors from GEQRT/TSQRT,
pairwise-pivot factors from TSTRF) flows along the graph edges exactly as
in PaRSEC: a producing call names a ``produces`` key, the scheduler
publishes the worker's return value under that key, and consuming calls
list the key in ``consumes`` — the values are injected when the consumer
is dispatched, which is always after the producer finished because the
tile access sets already order producer before consumer.

Every operation reads and writes tiles through a
:class:`~repro.tiles.tile_matrix.TileMatrix` view over the shared-memory
segment described by a
:class:`~repro.tiles.shared_buffer.SharedBufferMeta`; attachments are
cached per worker process so only the first task of a factorization pays
the attach cost.

The numerical code below mirrors the closures in
:mod:`repro.core.lu_step`, :mod:`repro.core.qr_step` and
:mod:`repro.baselines.lu_incpiv` operation for operation, so descriptor
execution is bit-identical to closure execution.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing import current_process
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..tiles.shared_buffer import SharedBufferMeta, SharedTileBuffer
from ..tiles.tile_matrix import TileMatrix
from .lu_kernels import apply_swptrsm, eliminate_trsm, factor_panel_lu, factor_tile_lu
from .qr_kernels import geqrt_tile, tsmqr, tsqrt, ttqrt, unmqr

__all__ = ["KernelCall", "KERNELS", "kernel_op", "execute_kernel_call"]


@dataclass(frozen=True)
class KernelCall:
    """Picklable form of one kernel task.

    Attributes
    ----------
    kernel:
        Name resolved against :data:`KERNELS` in the executing process.
    args:
        Static positional arguments (tile indices, domain rows, panel
        factors) — everything here must pickle.
    consumes:
        Keys of upstream results injected at dispatch time (ordered; the
        operation receives them as its ``inputs`` tuple).
    produces:
        Key under which the operation's return value is published for
        downstream ``consumes``.
    norm_tiles:
        Tile coordinates whose 1-norms the worker samples right after the
        operation (outside the timed window) and ships back with the
        result.  The scheduler attaches these to the last writer of each
        tile per elimination step so growth tracking stays exact — and
        bit-identical to the inline path — even when cross-step lookahead
        interleaves steps (the host cannot sample between steps then).
    """

    kernel: str
    args: Tuple[Any, ...] = ()
    consumes: Tuple[Any, ...] = ()
    produces: Optional[Any] = None
    norm_tiles: Tuple[Tuple[int, int], ...] = ()


#: Name -> operation table the worker resolves descriptors against.
KERNELS: Dict[str, Callable[..., Any]] = {}


def kernel_op(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a worker-side kernel operation under ``name``."""

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in KERNELS:
            raise ValueError(f"kernel operation {name!r} is already registered")
        KERNELS[name] = fn
        return fn

    return decorator


# --------------------------------------------------------------------------- #
# LU step (variant A1) — mirrors repro.core.lu_step closures
# --------------------------------------------------------------------------- #
@kernel_op("lu.scatter_factor")
def _lu_scatter_factor(tiles: TileMatrix, inputs, k, domain_rows, factor) -> None:
    tiles.scatter_panel(k, list(domain_rows), factor.lu)


@kernel_op("lu.swptrsm")
def _lu_swptrsm(tiles: TileMatrix, inputs, j, domain_rows, factor) -> None:
    rows = list(domain_rows)
    stacked = tiles.panel(j, rows)
    stacked = apply_swptrsm(factor, stacked)
    tiles.scatter_panel(j, rows, stacked)


@kernel_op("lu.swptrsm_rhs")
def _lu_swptrsm_rhs(tiles: TileMatrix, inputs, domain_rows, factor) -> None:
    nb = tiles.nb
    rows = list(domain_rows)
    stacked = np.vstack([tiles.rhs_tile(i) for i in rows])
    stacked = apply_swptrsm(factor, stacked)
    for idx, i in enumerate(rows):
        tiles.rhs_tile(i)[...] = stacked[idx * nb : (idx + 1) * nb]


@kernel_op("lu.trsm")
def _lu_trsm(tiles: TileMatrix, inputs, i, k, factor) -> None:
    tiles.set_tile(i, k, eliminate_trsm(factor, tiles.tile(i, k)))


@kernel_op("lu.gemm")
def _lu_gemm(tiles: TileMatrix, inputs, i, j, k) -> None:
    tiles.tile(i, j)[...] -= tiles.tile(i, k) @ tiles.tile(k, j)


@kernel_op("lu.gemm_rhs")
def _lu_gemm_rhs(tiles: TileMatrix, inputs, i, k) -> None:
    tiles.rhs_tile(i)[...] -= tiles.tile(i, k) @ tiles.rhs_tile(k)


# --------------------------------------------------------------------------- #
# QR step (hierarchical tiled QR) — mirrors repro.core.qr_step closures
# --------------------------------------------------------------------------- #
@kernel_op("qr.geqrt")
def _qr_geqrt(tiles: TileMatrix, inputs, row, k):
    factor = geqrt_tile(tiles.tile(row, k))
    tiles.set_tile(row, k, np.triu(factor.r))
    return factor


@kernel_op("qr.unmqr")
def _qr_unmqr(tiles: TileMatrix, inputs, row, j) -> None:
    (factor,) = inputs
    tiles.set_tile(row, j, unmqr(factor, tiles.tile(row, j)))


@kernel_op("qr.unmqr_rhs")
def _qr_unmqr_rhs(tiles: TileMatrix, inputs, row) -> None:
    (factor,) = inputs
    tiles.rhs_tile(row)[...] = unmqr(factor, tiles.rhs_tile(row))


@kernel_op("qr.couple")
def _qr_couple(tiles: TileMatrix, inputs, kind, eliminator, killed, k):
    couple = ttqrt if kind == "TT" else tsqrt
    factor = couple(tiles.tile(eliminator, k), tiles.tile(killed, k))
    tiles.set_tile(eliminator, k, np.triu(factor.r))
    tiles.set_tile(killed, k, np.zeros((tiles.nb, tiles.nb), dtype=tiles.dtype))
    return factor


@kernel_op("qr.update")
def _qr_update(tiles: TileMatrix, inputs, eliminator, killed, j) -> None:
    (factor,) = inputs
    top, bottom = tsmqr(factor, tiles.tile(eliminator, j), tiles.tile(killed, j))
    tiles.set_tile(eliminator, j, top)
    tiles.set_tile(killed, j, bottom)


@kernel_op("qr.update_rhs")
def _qr_update_rhs(tiles: TileMatrix, inputs, eliminator, killed) -> None:
    (factor,) = inputs
    top, bottom = tsmqr(factor, tiles.rhs_tile(eliminator), tiles.rhs_tile(killed))
    tiles.rhs_tile(eliminator)[...] = top
    tiles.rhs_tile(killed)[...] = bottom


# --------------------------------------------------------------------------- #
# LU IncPiv — mirrors repro.baselines.lu_incpiv closures
# --------------------------------------------------------------------------- #
@kernel_op("incpiv.getrf")
def _incpiv_getrf(tiles: TileMatrix, inputs, k):
    factor = factor_tile_lu(tiles.tile(k, k))
    tiles.set_tile(k, k, np.triu(factor.lu))
    return factor


@kernel_op("incpiv.swptrsm")
def _incpiv_swptrsm(tiles: TileMatrix, inputs, k, j) -> None:
    (factor,) = inputs
    tiles.set_tile(k, j, apply_swptrsm(factor, tiles.tile(k, j)))


@kernel_op("incpiv.swptrsm_rhs")
def _incpiv_swptrsm_rhs(tiles: TileMatrix, inputs, k) -> None:
    (factor,) = inputs
    tiles.rhs_tile(k)[...] = apply_swptrsm(factor, tiles.rhs_tile(k))


@kernel_op("incpiv.tstrf")
def _incpiv_tstrf(tiles: TileMatrix, inputs, k, i):
    nb = tiles.nb
    stacked = np.vstack([np.triu(tiles.tile(k, k)), tiles.tile(i, k)])
    pair = factor_panel_lu(stacked, nb, recursive=False)
    tiles.set_tile(k, k, np.triu(pair.lu[:nb]))
    tiles.set_tile(i, k, pair.lu[nb:])
    return pair


def _ssssm_pair(pair, nb, top, bottom):
    l2 = pair.lu[nb:]
    c = np.vstack([top, bottom])
    c = apply_swptrsm(pair, c)
    return c[:nb], c[nb:] - l2 @ c[:nb]


@kernel_op("incpiv.ssssm")
def _incpiv_ssssm(tiles: TileMatrix, inputs, k, i, j) -> None:
    (pair,) = inputs
    top, bottom = _ssssm_pair(pair, tiles.nb, tiles.tile(k, j), tiles.tile(i, j))
    tiles.set_tile(k, j, top)
    tiles.set_tile(i, j, bottom)


@kernel_op("incpiv.ssssm_rhs")
def _incpiv_ssssm_rhs(tiles: TileMatrix, inputs, k, i) -> None:
    (pair,) = inputs
    top, bottom = _ssssm_pair(pair, tiles.nb, tiles.rhs_tile(k), tiles.rhs_tile(i))
    tiles.rhs_tile(k)[...] = top
    tiles.rhs_tile(i)[...] = bottom


# --------------------------------------------------------------------------- #
# Worker entry point
# --------------------------------------------------------------------------- #
@dataclass
class _Attachment:
    buffer: SharedTileBuffer
    tiles: TileMatrix


#: Per-process cache of shared-segment attachments, so only the first task
#: of a factorization pays the attach cost.  Bounded: concurrent
#: factorizations interleave tasks of different segments through the same
#: worker, so a few attachments stay warm at once; beyond that the oldest
#: is closed.  Segments the owner already unlinked are dropped eagerly
#: (checked against /dev/shm where POSIX shared memory lives), so a big
#: finished factorization does not stay resident in every worker until
#: unrelated traffic happens to evict it.  A fully *idle* worker still
#: holds its most recent attachments until the next task or pool shutdown
#: — the price of a persistent pool.
_ATTACHMENTS: Dict[str, _Attachment] = {}
_MAX_ATTACHMENTS = 4


def _segment_unlinked(name: str) -> bool:
    try:
        return os.path.isdir("/dev/shm") and not os.path.exists("/dev/shm/" + name)
    except OSError:  # pragma: no cover - defensive
        return False


def _drop_attachment(name: str) -> None:
    stale = _ATTACHMENTS.pop(name, None)
    if stale is not None:
        stale.tiles = None
        stale.buffer.close()


def _tiles_for(meta: SharedBufferMeta) -> TileMatrix:
    for name in list(_ATTACHMENTS):
        if name != meta.name and _segment_unlinked(name):
            _drop_attachment(name)
    cached = _ATTACHMENTS.get(meta.name)
    if cached is not None:
        return cached.tiles
    while len(_ATTACHMENTS) >= _MAX_ATTACHMENTS:
        _drop_attachment(next(iter(_ATTACHMENTS)))
    buffer = SharedTileBuffer.attach(meta)
    attachment = _Attachment(buffer=buffer, tiles=buffer.tile_matrix())
    _ATTACHMENTS[meta.name] = attachment
    return attachment.tiles


def execute_kernel_call(
    meta: SharedBufferMeta, call: KernelCall, inputs: Tuple[Any, ...]
) -> Tuple[Any, Optional[Tuple[float, ...]], float, float, str]:
    """Run one :class:`KernelCall` against the shared tiles (worker side).

    Returns ``(result, norms, start, finish, worker_name)`` where the
    timestamps come from :func:`time.perf_counter` (system-wide monotonic
    on Linux, so they are comparable across the worker processes of one
    node) and ``norms`` holds the 1-norms of ``call.norm_tiles`` (``None``
    when no sampling was requested).  The norms are computed after
    ``finish`` is taken, so sampling never skews kernel timings used for
    calibration.
    """
    tiles = _tiles_for(meta)
    try:
        op = KERNELS[call.kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel operation {call.kernel!r}; available: "
            f"{', '.join(sorted(KERNELS))}"
        ) from None
    start = time.perf_counter()
    result = op(tiles, inputs, *call.args)
    finish = time.perf_counter()
    norms: Optional[Tuple[float, ...]] = None
    if call.norm_tiles:
        # Same code path as the incremental norm cache of the tiled
        # drivers (region_tile_norms over a 1x1 tile region), so the
        # sampled values are bit-identical to the inline bookkeeping.
        norms = tuple(
            float(tiles.region_tile_norms(i, i + 1, j, j + 1)[0, 0])
            for (i, j) in call.norm_tiles
        )
    return result, norms, start, finish, current_process().name
