"""Tile kernels (LU and QR), their flop model (Table I), the picklable
kernel-descriptor dispatch table used by the multi-process executor, and
the pluggable kernel backends (per-tile reference, fused, JIT)."""

from .backends import (
    FusedBackend,
    JitBackend,
    KernelBackend,
    NumpyBackend,
    numba_available,
    resolve_backend,
)
from .dispatch import KERNELS, KernelCall, execute_kernel_call
from .flops import (
    KernelFlops,
    factorization_flops_lu,
    factorization_flops_qr,
    fake_flops,
    kernel_flops,
    lu_step_flops,
    qr_step_flops,
    step_flops_table,
    true_flops,
)
from .lu_kernels import (
    LUPanelFactor,
    apply_swptrsm,
    eliminate_trsm,
    factor_panel_lu,
    factor_tile_lu,
    update_gemm,
)
from .qr_kernels import QRTileFactor, geqrt_tile, tsmqr, tsqrt, ttmqr, ttqrt, unmqr

__all__ = [
    "KernelCall",
    "KERNELS",
    "execute_kernel_call",
    "KernelBackend",
    "NumpyBackend",
    "FusedBackend",
    "JitBackend",
    "resolve_backend",
    "numba_available",
    "KernelFlops",
    "kernel_flops",
    "lu_step_flops",
    "qr_step_flops",
    "step_flops_table",
    "factorization_flops_lu",
    "factorization_flops_qr",
    "fake_flops",
    "true_flops",
    "LUPanelFactor",
    "factor_tile_lu",
    "factor_panel_lu",
    "eliminate_trsm",
    "apply_swptrsm",
    "update_gemm",
    "QRTileFactor",
    "geqrt_tile",
    "unmqr",
    "tsqrt",
    "tsmqr",
    "ttqrt",
    "ttmqr",
]
