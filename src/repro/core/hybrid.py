"""The hybrid LU-QR solver (Algorithm 1 of the paper).

At every panel the solver:

1. **Backs up** the panel tiles of the diagonal domain (so a QR step can
   start from pristine data),
2. **Factors** the diagonal domain with LU and partial pivoting and gathers
   the criterion data (tile norms, per-column maxima, pivots) — the
   "LU ON PANEL" stage of Figure 1,
3. **Checks** the robustness criterion (conceptually after an all-reduce of
   the panel information across the nodes hosting panel tiles),
4. Performs an **LU step** (variant A1, reusing the domain factorization)
   when the criterion accepts, or discards the factorization, restores the
   panel and performs a **QR step** (hierarchical tiled QR) otherwise.

The decision and the per-step kernel activity are recorded in
:class:`~repro.core.factorization.StepRecord` objects so the performance
model can replay the run on a simulated platform, including the
backup/restore overhead of the decision-making process (measured at ~10%
in the paper, Section V-B).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..api.registry import register_solver
from ..criteria.base import RobustnessCriterion
from ..criteria.max_criterion import MaxCriterion
from ..runtime.schedule import KernelTask
from ..tiles.distribution import BlockCyclicDistribution, ProcessGrid
from ..tiles.tile_matrix import TileMatrix
from ..trees.base import ReductionTree
from ..trees.fibonacci import FibonacciTree
from ..trees.greedy import GreedyTree
from ..trees.hierarchical import HierarchicalTree
from .factorization import StepRecord
from .lu_step import lu_step_tasks
from .panel_analysis import analyze_panel
from .qr_step import qr_step_tasks
from .solver_base import Executor, TiledSolverBase

__all__ = ["HybridLUQRSolver"]


@register_solver("hybrid", aliases=("luqr", "lu-qr"))
class HybridLUQRSolver(TiledSolverBase):
    """Dense solver that dynamically mixes LU and QR elimination steps.

    Parameters
    ----------
    tile_size:
        Tile order ``nb``.
    criterion:
        Robustness criterion deciding between LU and QR at every step
        (default: :class:`~repro.criteria.MaxCriterion` with ``alpha = 1``).
    grid:
        Virtual process grid (2D block-cyclic distribution).  The grid both
        defines the diagonal domains used for local pivoting and drives the
        performance model.
    intra_tree / inter_tree:
        Reduction trees used by QR steps inside a domain and across domains
        (defaults: GREEDY inside, FIBONACCI across — the paper's choice).
    domain_pivoting:
        Search LU pivots across the whole diagonal domain (True, the
        paper's experimental variant) or only inside the diagonal tile.
    recursive_panel:
        Use the recursive panel LU kernel for the domain factorization.
    executor:
        Optional dataflow executor for the numerical kernels; the per-step
        decision stays sequential but the selected branch's kernels fan
        out (see :class:`~repro.core.solver_base.TiledSolverBase`).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import HybridLUQRSolver, MaxCriterion
    >>> rng = np.random.default_rng(0)
    >>> a = rng.standard_normal((64, 64)); b = rng.standard_normal(64)
    >>> solver = HybridLUQRSolver(tile_size=8, criterion=MaxCriterion(alpha=100.0))
    >>> result = solver.solve(a, b)
    >>> bool(result.hpl3 < 50)
    True
    """

    algorithm = "LUQR"

    def __init__(
        self,
        tile_size: int,
        criterion: Optional[RobustnessCriterion] = None,
        grid: Optional[ProcessGrid] = None,
        intra_tree: Optional[ReductionTree] = None,
        inter_tree: Optional[ReductionTree] = None,
        domain_pivoting: bool = True,
        recursive_panel: bool = True,
        track_growth: bool = True,
        executor: Optional[Executor] = None,
        lookahead: int = 1,
        kernel_backend=None,
    ) -> None:
        super().__init__(
            tile_size=tile_size,
            grid=grid,
            track_growth=track_growth,
            executor=executor,
            lookahead=lookahead,
            kernel_backend=kernel_backend,
        )
        self.criterion = criterion if criterion is not None else MaxCriterion(alpha=1.0)
        self.intra_tree = intra_tree if intra_tree is not None else GreedyTree()
        self.inter_tree = inter_tree if inter_tree is not None else FibonacciTree()
        self.domain_pivoting = bool(domain_pivoting)
        self.recursive_panel = bool(recursive_panel)

    # ------------------------------------------------------------------ #
    # TiledSolverBase hooks
    # ------------------------------------------------------------------ #
    def _criterion_name(self) -> Optional[str]:
        return self.criterion.name

    def _alpha(self) -> Optional[float]:
        return getattr(self.criterion, "alpha", None)

    def _reset(self) -> None:
        self.criterion.reset()

    def _plan_step(
        self, tiles: TileMatrix, dist: BlockCyclicDistribution, k: int
    ) -> Tuple[StepRecord, List[KernelTask]]:
        record = StepRecord(k=k, kind="LU", decision_overhead=True)
        # Backup of the diagonal-domain panel tiles (Figure 1, BACKUP PANEL).
        # The numerical driver never overwrites the tiles before the decision,
        # so the backup is pure bookkeeping here, but it is charged by the
        # performance model exactly like the real implementation.
        record.add_kernel("panel_backup")

        analysis = analyze_panel(
            tiles,
            dist,
            k,
            domain_pivoting=self.domain_pivoting,
            recursive_panel=self.recursive_panel,
        )
        record.add_kernel("criterion_allreduce")
        record.domain_rows = analysis.domain_rows

        decision = self.criterion.evaluate(analysis.info)
        record.decision = decision

        # A singular diagonal domain cannot be used for an LU step no matter
        # what the criterion says (there is no factorization to reuse).
        if decision.use_lu and not analysis.singular:
            record.kind = "LU"
            tasks = lu_step_tasks(
                tiles, k, analysis, record, backend=self.kernel_backend
            )
        else:
            record.kind = "QR"
            # The domain factorization is discarded and the panel restored
            # (Figure 1, PROPAGATE): charge the wasted factorization and the
            # restore, then run the hierarchical QR step on pristine tiles.
            record.add_kernel("getrf_discarded")
            record.add_kernel("panel_restore")
            tree = HierarchicalTree(
                distribution=dist,
                intra_tree=self.intra_tree,
                inter_tree=self.inter_tree,
                step=k,
            )
            elims = tree.eliminations_for_step(k, list(range(k, tiles.n)))
            tasks = qr_step_tasks(
                tiles, k, elims, record, backend=self.kernel_backend
            )
        return record, tasks
