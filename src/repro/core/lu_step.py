"""The LU elimination step (variant A1, with diagonal-domain pivoting).

This implements Algorithm 2 of the paper in its experimental variant: the
panel tiles of the *diagonal domain* are factored together with partial
pivoting (the pivot search never leaves the node owning the diagonal tile),
the resulting row permutation is applied to the trailing columns of the
domain rows, the remaining panel tiles are eliminated with TRSM against
``U_kk``, and the trailing sub-matrix receives the embarrassingly parallel
GEMM update ``A_ij <- A_ij - A_ik A_kj``.

The attached right-hand side is updated exactly like an extra trailing
column, so the factorization directly produces the transformed ``b``.

The step is *planned* rather than executed: :func:`lu_step_tasks` emits the
ordered list of :class:`~repro.runtime.schedule.KernelTask` closures with
their tile read/write sets, so the same plan can run inline (the sequential
reference, :func:`perform_lu_step`) or fan out on a dataflow executor with
dependencies inferred exactly as the DAG builder infers them for the
performance simulation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..kernels.dispatch import KernelCall
from ..kernels.lu_kernels import apply_swptrsm, eliminate_trsm
from ..linalg.pivoting import SingularPanelError
from ..runtime.schedule import KernelTask
from ..runtime.task import RHS_COLUMN
from ..tiles.tile_matrix import TileMatrix
from .factorization import StepRecord
from .panel_analysis import PanelAnalysis

__all__ = ["perform_lu_step", "lu_step_tasks"]


def lu_step_tasks(
    tiles: TileMatrix,
    k: int,
    analysis: PanelAnalysis,
    record: StepRecord,
    backend=None,
) -> List[KernelTask]:
    """Plan one LU step (variant A1) as a list of kernel tasks.

    ``analysis`` must come from :func:`repro.core.panel_analysis.analyze_panel`
    for the same ``tiles`` and ``k``; its domain factorization is reused (it
    is *not* recomputed), exactly as in the paper where the factorization
    performed for the criterion check becomes the factorization of the step
    when the LU branch is selected.

    ``record`` receives the kernel counts at planning time (they describe
    the step regardless of how it is executed).  Closures read tile state
    lazily, so the returned tasks are valid for sequential execution in
    program order and for dataflow execution under the superscalar
    dependency rules.

    ``backend`` (a :class:`~repro.kernels.backends.KernelBackend`) controls
    the trailing-update plan: a fusing backend collapses each trailing
    column's GEMM sweep into one stacked-GEMM task (``fused`` tasks carry
    the logical kernel count); ``None`` or the ``numpy`` reference keeps
    the bit-exact one-task-per-tile plan.
    """
    if analysis.factor is None:
        raise SingularPanelError(
            f"diagonal domain of panel {k} is singular; an LU step is impossible"
        )
    nb = tiles.nb
    n = tiles.n
    domain_rows: List[int] = analysis.domain_rows
    factor = analysis.factor
    domain_set = set(domain_rows)
    panel_refs = frozenset((i, k) for i in domain_rows)
    tasks: List[KernelTask] = []

    # ------------------------------------------------------------------ #
    # Factor: write the packed domain factorization into the panel tiles.
    # The diagonal tile receives L1\U, the other domain tiles receive their
    # L blocks (which are exactly the Schur multipliers of those rows).
    # ------------------------------------------------------------------ #
    def do_factor() -> None:
        tiles.scatter_panel(k, domain_rows, factor.lu)

    # Descriptor forms ship the pre-computed domain factorization (a
    # picklable LUPanelFactor) with every task that uses it, so the plan
    # can also run on the multi-process executor.
    rows_t = tuple(domain_rows)
    tasks.append(
        KernelTask(
            "getrf",
            do_factor,
            reads=panel_refs,
            writes=panel_refs,
            call=KernelCall("lu.scatter_factor", args=(k, rows_t, factor)),
        )
    )
    record.add_kernel("getrf")

    # ------------------------------------------------------------------ #
    # Apply (SWPTRSM): for each trailing column (and the RHS), permute the
    # domain rows with the panel pivots and solve the unit-lower system on
    # the new row k:  A_kj <- L1^{-1} P A_kj.
    # ------------------------------------------------------------------ #
    for j in range(k + 1, n):
        def do_apply(j=j) -> None:
            stacked = tiles.panel(j, domain_rows)
            stacked = apply_swptrsm(factor, stacked)
            tiles.scatter_panel(j, domain_rows, stacked)

        col_refs = frozenset((i, j) for i in domain_rows)
        tasks.append(
            KernelTask(
                "swptrsm",
                do_apply,
                reads=panel_refs | col_refs,
                writes=col_refs,
                call=KernelCall("lu.swptrsm", args=(j, rows_t, factor)),
            )
        )
        record.add_kernel("swptrsm")

    if tiles.has_rhs:
        def do_apply_rhs() -> None:
            stacked_rhs = np.vstack([tiles.rhs_tile(i) for i in domain_rows])
            stacked_rhs = apply_swptrsm(factor, stacked_rhs)
            for idx, i in enumerate(domain_rows):
                tiles.rhs_tile(i)[...] = stacked_rhs[idx * nb : (idx + 1) * nb]

        rhs_refs = frozenset((i, RHS_COLUMN) for i in domain_rows)
        tasks.append(
            KernelTask(
                "swptrsm",
                do_apply_rhs,
                reads=panel_refs | rhs_refs,
                writes=rhs_refs,
                call=KernelCall("lu.swptrsm_rhs", args=(rows_t, factor)),
            )
        )
        record.add_kernel("swptrsm")

    # ------------------------------------------------------------------ #
    # Eliminate (TRSM): panel tiles outside the diagonal domain become the
    # Schur multipliers A_ik U_kk^{-1}.  (Domain tiles below the diagonal
    # already hold their multipliers from the packed factorization.)
    # ------------------------------------------------------------------ #
    for i in (i for i in range(k + 1, n) if i not in domain_set):
        def do_eliminate(i=i) -> None:
            tiles.set_tile(i, k, eliminate_trsm(factor, tiles.tile(i, k)))

        tasks.append(
            KernelTask(
                "trsm",
                do_eliminate,
                reads=frozenset({(k, k), (i, k)}),
                writes=frozenset({(i, k)}),
                call=KernelCall("lu.trsm", args=(i, k, factor)),
            )
        )
    # Table I charges one TRSM per sub-diagonal panel tile regardless of
    # which node performs it.
    record.add_kernel("trsm", max(n - k - 1, 0))

    # ------------------------------------------------------------------ #
    # Update (GEMM): A_ij <- A_ij - A_ik A_kj for every trailing tile, plus
    # the same update of the RHS tiles.  A fusing backend collapses each
    # trailing column into one stacked GEMM over contiguous block views:
    # the sweep's tile rows are contiguous (k+1..n-1), so the whole column
    # update is a single (m*nb, nb) x (nb, nb) product — mathematically
    # identical to the per-tile loop, one dispatch instead of m.
    # ------------------------------------------------------------------ #
    m = n - k - 1
    if backend is not None and getattr(backend, "fuses", False) and m >= 2:
        i0, i1 = k + 1, n
        sweep_panel = frozenset((i, k) for i in range(i0, i1))
        for j in range(k + 1, n):
            def do_update_col(j=j) -> None:
                backend.lu_gemm_sweep(tiles, k, j, i0, i1)

            col_refs = frozenset((i, j) for i in range(i0, i1))
            tasks.append(
                KernelTask(
                    "gemm",
                    do_update_col,
                    reads=sweep_panel | frozenset({(k, j)}) | col_refs,
                    writes=col_refs,
                    fused=m,
                    call=KernelCall(
                        "fused.lu_gemm_sweep", args=(backend.descriptor_name, k, j, i0, i1)
                    ),
                )
            )
            record.add_kernel("gemm", m)
        if tiles.has_rhs:
            def do_update_rhs_sweep() -> None:
                backend.lu_gemm_rhs_sweep(tiles, k, i0, i1)

            rhs_refs = frozenset((i, RHS_COLUMN) for i in range(i0, i1))
            tasks.append(
                KernelTask(
                    "gemm_rhs",
                    do_update_rhs_sweep,
                    reads=sweep_panel | frozenset({(k, RHS_COLUMN)}) | rhs_refs,
                    writes=rhs_refs,
                    fused=m,
                    call=KernelCall(
                        "fused.lu_gemm_rhs_sweep", args=(backend.descriptor_name, k, i0, i1)
                    ),
                )
            )
            record.add_kernel("gemm_rhs", m)
        return tasks

    for i in range(k + 1, n):
        for j in range(k + 1, n):
            def do_update(i=i, j=j) -> None:
                tiles.tile(i, j)[...] -= tiles.tile(i, k) @ tiles.tile(k, j)

            tasks.append(
                KernelTask(
                    "gemm",
                    do_update,
                    reads=frozenset({(i, k), (k, j), (i, j)}),
                    writes=frozenset({(i, j)}),
                    call=KernelCall("lu.gemm", args=(i, j, k)),
                )
            )
            record.add_kernel("gemm")
        if tiles.has_rhs:
            def do_update_rhs(i=i) -> None:
                tiles.rhs_tile(i)[...] -= tiles.tile(i, k) @ tiles.rhs_tile(k)

            tasks.append(
                KernelTask(
                    "gemm_rhs",
                    do_update_rhs,
                    reads=frozenset({(i, k), (k, RHS_COLUMN), (i, RHS_COLUMN)}),
                    writes=frozenset({(i, RHS_COLUMN)}),
                    call=KernelCall("lu.gemm_rhs", args=(i, k)),
                )
            )
            record.add_kernel("gemm_rhs")
    return tasks


def perform_lu_step(
    tiles: TileMatrix,
    k: int,
    analysis: PanelAnalysis,
    record: StepRecord,
) -> None:
    """Apply one LU step (variant A1) in place, using a pre-factored panel.

    Sequential reference driver: plans the step with :func:`lu_step_tasks`
    and runs the kernels in program order.
    """
    for task in lu_step_tasks(tiles, k, analysis, record):
        task.fn()
