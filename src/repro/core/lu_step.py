"""The LU elimination step (variant A1, with diagonal-domain pivoting).

This implements Algorithm 2 of the paper in its experimental variant: the
panel tiles of the *diagonal domain* are factored together with partial
pivoting (the pivot search never leaves the node owning the diagonal tile),
the resulting row permutation is applied to the trailing columns of the
domain rows, the remaining panel tiles are eliminated with TRSM against
``U_kk``, and the trailing sub-matrix receives the embarrassingly parallel
GEMM update ``A_ij <- A_ij - A_ik A_kj``.

The attached right-hand side is updated exactly like an extra trailing
column, so the factorization directly produces the transformed ``b``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..kernels.lu_kernels import apply_swptrsm, eliminate_trsm
from ..linalg.pivoting import SingularPanelError
from ..tiles.tile_matrix import TileMatrix
from .factorization import StepRecord
from .panel_analysis import PanelAnalysis

__all__ = ["perform_lu_step"]


def perform_lu_step(
    tiles: TileMatrix,
    k: int,
    analysis: PanelAnalysis,
    record: StepRecord,
) -> None:
    """Apply one LU step (variant A1) in place, using a pre-factored panel.

    ``analysis`` must come from :func:`repro.core.panel_analysis.analyze_panel`
    for the same ``tiles`` and ``k``; its domain factorization is reused (it
    is *not* recomputed), exactly as in the paper where the factorization
    performed for the criterion check becomes the factorization of the step
    when the LU branch is selected.
    """
    if analysis.factor is None:
        raise SingularPanelError(
            f"diagonal domain of panel {k} is singular; an LU step is impossible"
        )
    nb = tiles.nb
    n = tiles.n
    domain_rows: List[int] = analysis.domain_rows
    factor = analysis.factor
    domain_set = set(domain_rows)

    # ------------------------------------------------------------------ #
    # Factor: write the packed domain factorization into the panel tiles.
    # The diagonal tile receives L1\U, the other domain tiles receive their
    # L blocks (which are exactly the Schur multipliers of those rows).
    # ------------------------------------------------------------------ #
    tiles.scatter_panel(k, domain_rows, factor.lu)
    record.add_kernel("getrf")

    # ------------------------------------------------------------------ #
    # Apply (SWPTRSM): for each trailing column (and the RHS), permute the
    # domain rows with the panel pivots and solve the unit-lower system on
    # the new row k:  A_kj <- L1^{-1} P A_kj.
    # ------------------------------------------------------------------ #
    for j in range(k + 1, n):
        stacked = tiles.panel(j, domain_rows)
        stacked = apply_swptrsm(factor, stacked)
        tiles.scatter_panel(j, domain_rows, stacked)
        record.add_kernel("swptrsm")

    if tiles.has_rhs:
        stacked_rhs = np.vstack([tiles.rhs_tile(i) for i in domain_rows])
        stacked_rhs = apply_swptrsm(factor, stacked_rhs)
        for idx, i in enumerate(domain_rows):
            tiles.rhs_tile(i)[...] = stacked_rhs[idx * nb : (idx + 1) * nb]
        record.add_kernel("swptrsm")

    # ------------------------------------------------------------------ #
    # Eliminate (TRSM): panel tiles outside the diagonal domain become the
    # Schur multipliers A_ik U_kk^{-1}.  (Domain tiles below the diagonal
    # already hold their multipliers from the packed factorization.)
    # ------------------------------------------------------------------ #
    off_rows = [i for i in range(k + 1, n) if i not in domain_set]
    for i in off_rows:
        tiles.set_tile(i, k, eliminate_trsm(factor, tiles.tile(i, k)))
    # Table I charges one TRSM per sub-diagonal panel tile regardless of
    # which node performs it.
    record.add_kernel("trsm", max(n - k - 1, 0))

    # ------------------------------------------------------------------ #
    # Update (GEMM): A_ij <- A_ij - A_ik A_kj for every trailing tile, plus
    # the same update of the RHS tiles.
    # ------------------------------------------------------------------ #
    for i in range(k + 1, n):
        multiplier = tiles.tile(i, k)
        for j in range(k + 1, n):
            tiles.tile(i, j)[...] -= multiplier @ tiles.tile(k, j)
            record.add_kernel("gemm")
        if tiles.has_rhs:
            tiles.rhs_tile(i)[...] -= multiplier @ tiles.rhs_tile(k)
            record.add_kernel("gemm_rhs")
